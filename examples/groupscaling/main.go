// Groupscaling reproduces the paper's group-scalability claim (§7.3,
// Figure 12): self-stabilizing protocols hold their delivery ratio as the
// multicast group grows, while on-demand protocols' overheads scale with
// membership.
//
//	go run ./examples/groupscaling
package main

import (
	"fmt"

	"repro/internal/scenario"
)

func main() {
	protos := []scenario.ProtocolKind{
		scenario.MAODV, scenario.SSSPST, scenario.SSSPSTE, scenario.ODMRP,
	}
	groups := []int{10, 25, 49}

	fmt.Println("Group scalability at 1 m/s (paper Figures 12/13)")
	fmt.Println()
	fmt.Printf("%-8s", "group")
	for _, p := range protos {
		fmt.Printf("%26s", p)
	}
	fmt.Println()

	for _, g := range groups {
		fmt.Printf("%-8d", g)
		for _, p := range protos {
			cfg := scenario.Default()
			cfg.Protocol = p
			cfg.GroupSize = g
			cfg.VMax = 1
			cfg.Duration = 240
			s := scenario.Run(cfg).Summary
			fmt.Printf("  PDR %.2f ctrl/data %.3f", s.PDR, s.CtrlPerDataByte)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Expected shape: the SS columns stay flat in both PDR and overhead")
	fmt.Println("(group-scalable: beacons are paid once, whatever the group size);")
	fmt.Println("MAODV and ODMRP control overhead climbs with every added member.")
}
