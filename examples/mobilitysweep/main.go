// Mobilitysweep reproduces the paper's headline energy-latency trade-off
// (Figures 7/9 in miniature): it sweeps node mobility and prints, for
// each SS-SPST metric, the delivery ratio, energy per delivered packet
// and delay side by side.
//
//	go run ./examples/mobilitysweep
package main

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

func main() {
	protos := []scenario.ProtocolKind{
		scenario.SSSPST, scenario.SSSPSTT, scenario.SSSPSTF, scenario.SSSPSTE,
	}
	velocities := []float64{1, 5, 10, 20}

	fmt.Println("SS-SPST metric family under increasing mobility")
	fmt.Println("(50 nodes, 20 receivers, 64 kb/s CBR, 2 s beacons, 240 s runs)")
	fmt.Println()
	fmt.Printf("%-12s", "vmax (m/s)")
	for _, p := range protos {
		fmt.Printf("%24s", p)
	}
	fmt.Println()

	rows := make(map[float64]map[scenario.ProtocolKind]metrics.Summary)
	var cfgs []scenario.Config
	type key struct {
		v float64
		p scenario.ProtocolKind
	}
	var keys []key
	for _, v := range velocities {
		rows[v] = map[scenario.ProtocolKind]metrics.Summary{}
		for _, p := range protos {
			cfg := scenario.Default()
			cfg.Protocol = p
			cfg.VMax = v
			cfg.Duration = 240
			cfgs = append(cfgs, cfg)
			keys = append(keys, key{v, p})
		}
	}
	for i, res := range scenario.Sweep(cfgs) {
		rows[keys[i].v][keys[i].p] = res.Summary
	}

	for _, v := range velocities {
		fmt.Printf("%-12.0f", v)
		for _, p := range protos {
			s := rows[v][p]
			fmt.Printf("  PDR %.2f %5.1fmJ %4.0fms", s.PDR, s.EnergyPerDeliveredJ*1e3, s.AvgDelayS*1e3)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Expected shape (paper §7.1): the energy-aware metric delivers the")
	fmt.Println("cheapest packets, paying for it with deeper trees — higher delay and")
	fmt.Println("a delivery ratio below plain SS-SPST; the gap narrows as mobility")
	fmt.Println("grows and stabilization lags behind faults for every metric.")
}
