// Papertopo reproduces the paper's worked example (Figures 1–6): one
// static 10-node topology on which each SS-SPST cost metric stabilizes to
// a visibly different multicast tree.
//
// The paper's exact coordinates are not recoverable from the text (its
// printed edge labels are mutually inconsistent as distances), so this is
// a faithful *qualitative* reconstruction engineered to exhibit the same
// behaviours the paper walks through:
//
//   - SS-SPST (Example 1): minimum hop count — member 2 hangs directly
//     off the source over one long 220 m link.
//
//   - SS-SPST-T (Example 2): the link-energy metric relays member 2
//     through node 1 (two 110 m hops), trading a hop for energy.
//
//   - SS-SPST-F (Example 3): the costliest-neighbour node metric lets
//     member 7 share parent 5's cheap marginal cost (5 sits inside the
//     source's already-paid range, and 7 is nearer to 5 than to 6).
//
//   - SS-SPST-E (Examples 4–5, Figure 5): with discard energy counted,
//     member 7 avoids parent 5 — whose transmission would also be paid
//     for by bystanders 8 and 9 — and joins the "clean" parent 6 instead,
//     even though 6 is farther away. Parent 5's subtree then prunes, so
//     8 and 9 never overhear data at all.
//
//     go run ./examples/papertopo
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/medium"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Positions is the 10-node worked topology. Node 0 is the multicast
// source; its farthest member children (3, 4, at 230 m) fix its
// power-controlled range, so mid-field nodes ride inside it for free —
// the wireless multicast advantage the node-based metrics exploit.
var Positions = []geom.Point{
	{X: 0, Y: 0},       // 0: source
	{X: 110, Y: 0},     // 1: relay candidate (non-member)
	{X: 220, Y: 0},     // 2: member — direct long link vs relay via 1
	{X: 0, Y: -230},    // 3: member
	{X: -163, Y: -163}, // 4: member
	{X: -60, Y: 200},   // 5: parent candidate A (non-member, crowded)
	{X: 90, Y: 200},    // 6: parent candidate B (non-member, clean)
	{X: 10, Y: 255},    // 7: member choosing between A and B (out of the source's direct reach)
	{X: -90, Y: 230},   // 8: bystander inside A's range (non-member)
	{X: -120, Y: 160},  // 9: bystander inside A's range (non-member)
}

// Members are the multicast receivers.
var Members = []int{2, 3, 4, 7}

func main() {
	fmt.Println("Paper worked example (Figures 1-6), qualitative reconstruction")
	fmt.Println("members: 2, 3, 4, 7   source: 0")
	fmt.Println()
	for _, v := range []core.Variant{core.Hop, core.TxLink, core.Farthest, core.EnergyAware} {
		protos := Run(v)
		tree := core.BuildTree(protos, 0)
		fmt.Printf("%s:\n", v)
		for i, p := range tree.Parent {
			switch p {
			case -1:
				continue
			case topology.Detached:
				fmt.Printf("  node %d: detached\n", i)
			default:
				star := " "
				if isMember(i) {
					star = "*"
				}
				fmt.Printf("  node %d%s <- parent %d  (%.0f m, hop %d)\n",
					i, star, p, Positions[i].Dist(Positions[p]), protos[i].HopCount())
			}
		}
		fmt.Printf("  physical tree energy: %.3f mJ per data packet\n\n", PhysicalTreeEnergy(tree)*1e3)
	}
}

func isMember(i int) bool {
	for _, m := range Members {
		if m == i {
			return true
		}
	}
	return false
}

// Run stabilizes the given variant on the static example topology and
// returns the per-node protocol instances.
func Run(v core.Variant) []*core.Protocol {
	s := sim.New(7)
	tracker := mobility.NewTracker(len(Positions), mobility.Static{Points: Positions})
	mcfg := medium.DefaultConfig()
	mcfg.LossProb = 0
	mem := make([]packet.NodeID, len(Members))
	for i, m := range Members {
		mem[i] = packet.NodeID(m)
	}
	net := netsim.New(s, tracker, netsim.Config{
		N: len(Positions), Source: 0, Members: mem,
		Medium: mcfg, PayloadBytes: packet.DataPayload,
	})
	protos := make([]*core.Protocol, len(Positions))
	for i := range Positions {
		protos[i] = core.New(core.Config{Variant: v, BeaconInterval: 2}, len(Positions))
		net.SetProtocol(packet.NodeID(i), protos[i])
	}
	net.Start()
	s.Run(120) // 60 beacon rounds: far beyond stabilization
	return protos
}

// PhysicalTreeEnergy evaluates any tree under one common physical
// yardstick — per data packet: each node with downstream members
// transmits at the range of its farthest such child, and every node
// inside that range pays reception energy (useful or discard alike).
// This is the energy the network actually burns per packet, independent
// of which metric built the tree.
func PhysicalTreeEnergy(tree topology.Tree) float64 {
	mcfg := medium.DefaultConfig()
	em := mcfg.Energy
	bytes := packet.DataPayload + packet.IPHeaderBytes + packet.MACHeaderBytes

	// downstream[i]: subtree of i contains a member.
	downstream := make([]bool, len(tree.Parent))
	for _, m := range Members {
		for v := m; v != tree.Root; {
			downstream[v] = true
			p := tree.Parent[v]
			if p < 0 {
				break
			}
			v = p
		}
	}
	total := 0.0
	for u := range tree.Parent {
		r := 0.0
		for v, p := range tree.Parent {
			if p == u && downstream[v] {
				if d := Positions[u].Dist(Positions[v]); d > r {
					r = d
				}
			}
		}
		if r == 0 {
			continue
		}
		total += em.TxEnergy(bytes, r)
		for w := range tree.Parent {
			if w != u && Positions[u].Dist(Positions[w]) <= r {
				total += em.RxEnergy(bytes, r)
			}
		}
	}
	return total
}
