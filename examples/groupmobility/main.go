// Groupmobility is the worked example for the mobility-model suite: it
// runs the paper's baseline multicast scenario (SS-SPST-E, 50 nodes, 20
// receivers, 64 kb/s CBR) under four movement models and prints the
// headline metrics side by side.
//
// The interesting contrast is *how* the receivers move relative to each
// other, not just how fast. Under RPGM (reference-point group mobility)
// members orbit a shared roaming centroid, so a repaired branch tends to
// fix several receivers at once; under random waypoint or Gauss-Markov
// they drift independently and every member is its own repair problem;
// Manhattan constrains everyone to a street grid, making links long-lived
// along a street and brittle across blocks.
//
//	go run ./examples/groupmobility
package main

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

func main() {
	models := []scenario.MobilityKind{
		scenario.RandomWaypoint, scenario.GaussMarkov, scenario.RPGM, scenario.Manhattan,
	}
	const seeds = 3

	fmt.Println("Mobility-model suite under the paper baseline (SS-SPST-E)")
	fmt.Println("(50 nodes, 20 receivers, 5 m/s max, 64 kb/s CBR, 240 s runs, 3 seeds)")
	fmt.Println()
	fmt.Printf("%-16s%10s%14s%12s%12s\n", "model", "PDR", "energy/pkt", "delay", "unavail")

	var cfgs []scenario.Config
	for _, m := range models {
		for s := 0; s < seeds; s++ {
			cfg := scenario.Default()
			cfg.Mobility = m
			cfg.VMax = 5
			cfg.Duration = 240
			cfg.Seed = 1 + uint64(s)*1000003
			// RPGM: four roaming groups of ~12 nodes, 125 m disks.
			cfg.GroupCount = 4
			cfg.GroupRadius = 125
			cfgs = append(cfgs, cfg)
		}
	}
	results := scenario.Sweep(cfgs)

	for mi, m := range models {
		var sums []metrics.Summary
		for s := 0; s < seeds; s++ {
			sums = append(sums, results[mi*seeds+s].Summary)
		}
		sum := metrics.Mean(sums)
		fmt.Printf("%-16s%10.3f%12.1fmJ%10.0fms%12.3f\n",
			m, sum.PDR, sum.EnergyPerDeliveredJ*1e3, sum.AvgDelayS*1e3, sum.Unavailability)
	}

	fmt.Println()
	fmt.Println("Expected shape: RPGM's coherent receiver motion is the friendliest")
	fmt.Println("to tree maintenance (fewest distinct link breaks per unit time);")
	fmt.Println("Gauss-Markov sits near random waypoint but without waypoint turn")
	fmt.Println("artifacts; Manhattan's street grid concentrates nodes on shared")
	fmt.Println("lines — stable while a branch follows a street, harsh when it")
	fmt.Println("must span blocks.")
}
