// Quickstart: run one SS-SPST-E scenario with the paper's defaults and
// print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/scenario"
)

func main() {
	cfg := scenario.Default() // 750 m², 50 nodes, RWP, 64 kb/s CBR, 2 s beacons
	cfg.Protocol = scenario.SSSPSTE
	cfg.VMax = 5
	cfg.Duration = 300 // the paper runs 1800 s; 300 s is plenty for a demo
	cfg.Seed = 42

	res := scenario.Run(cfg)
	s := res.Summary

	fmt.Println("SS-SPST-E, 50 nodes, 20 receivers, vmax 5 m/s, 300 s:")
	fmt.Printf("  packet delivery ratio  %.3f\n", s.PDR)
	fmt.Printf("  energy per delivery    %.2f mJ\n", s.EnergyPerDeliveredJ*1e3)
	fmt.Printf("  average delay          %.1f ms\n", s.AvgDelayS*1e3)
	fmt.Printf("  control overhead       %.3f bytes/byte\n", s.CtrlPerDataByte)
	fmt.Printf("  unavailability         %.3f\n", s.Unavailability)
	fmt.Printf("  energy split           tx %.1f J / rx %.1f J / discard %.1f J\n",
		s.TxJ, s.RxJ, s.DiscardJ)
	fmt.Printf("  channel                %d transmissions, %d collisions\n",
		res.Medium.Transmissions, res.Medium.Collisions)

	// The same scenario under the plain hop metric, for contrast.
	cfg.Protocol = scenario.SSSPST
	base := scenario.Run(cfg).Summary
	fmt.Printf("\nSS-SPST (hop metric) on the identical scenario: PDR %.3f, %.2f mJ/delivery\n",
		base.PDR, base.EnergyPerDeliveredJ*1e3)
	fmt.Printf("energy saving of SS-SPST-E: %.0f%%\n",
		100*(1-s.EnergyPerDeliveredJ/base.EnergyPerDeliveredJ))
}
