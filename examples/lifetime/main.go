// Lifetime is an extension experiment beyond the paper's evaluation: with
// finite per-node batteries, how long does the network stay useful under
// each SS-SPST metric? The paper motivates SS-SPST-E with exactly this
// energy-constrained setting (citing the network-lifetime line of work,
// its refs [7][28]); this example closes the loop by measuring it with
// the time-resolved death tracker: first-node-death time, the half-dead
// landmark with the payload delivered by then, and the dead-fraction
// timeline. Figure 19 (cmd/figures -fig 19) runs the multi-seed version.
//
//	go run ./examples/lifetime
package main

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

func main() {
	fmt.Println("Network lifetime extension experiment (finite batteries)")
	fmt.Println("(50 nodes, 20 receivers, vmax 2 m/s, 8 J per node, 600 s)")
	fmt.Println()

	for _, p := range []scenario.ProtocolKind{
		scenario.SSSPST, scenario.SSSPSTT, scenario.SSSPSTF, scenario.SSSPSTE,
	} {
		cfg := scenario.Default()
		cfg.Protocol = p
		cfg.VMax = 2
		cfg.Duration = 600
		cfg.Battery = 8 // joules; small enough that depletion shapes the run

		s := scenario.Run(cfg).Summary
		first := "never"
		if s.FirstDeaths > 0 {
			first = fmt.Sprintf("%.0f s", s.FirstDeathS)
		}
		half := "not reached"
		if s.HalfDeaths > 0 {
			half = fmt.Sprintf("%.0f s (%.0f kB delivered by then)",
				s.HalfDeathS, s.HalfDeadDeliveredB/1e3)
		}
		fmt.Printf("%-10s  PDR %.3f   dead %2d/%d   first death %s   half-dead %s\n",
			p, s.PDR, s.DeadNodes, s.Nodes, first, half)
		fmt.Printf("%-10s  dead-fraction timeline: %s\n", "", sparkline(s.DeadFrac))
	}
	fmt.Println()
	fmt.Println("SS-SPST-E's lower total and discard energy translate directly into")
	fmt.Println("a later first death and a flatter dead-fraction curve — the")
	fmt.Println("energy-aware metric's savings compound over the run.")
}

// sparkline renders the fixed-bucket dead-fraction timeline as one text
// row, one glyph per bucket.
func sparkline(frac [metrics.LifetimeBuckets]float64) string {
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, f := range frac {
		i := int(f * float64(len(glyphs)-1))
		if i == 0 && f > 0 {
			i = 1 // any death is visible
		}
		if i >= len(glyphs) {
			i = len(glyphs) - 1
		}
		b.WriteRune(glyphs[i])
	}
	return b.String()
}
