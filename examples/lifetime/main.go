// Lifetime is an extension experiment beyond the paper's evaluation: with
// finite per-node batteries, how long until the first node dies under
// each SS-SPST metric? The paper motivates SS-SPST-E with exactly this
// energy-constrained setting (citing the network-lifetime line of work,
// its refs [7][28]); this example closes the loop by measuring it.
//
//	go run ./examples/lifetime
package main

import (
	"fmt"

	"repro/internal/scenario"
)

func main() {
	fmt.Println("Network lifetime extension experiment (finite batteries)")
	fmt.Println("(50 nodes, 20 receivers, vmax 2 m/s, 20 J per node)")
	fmt.Println()

	for _, p := range []scenario.ProtocolKind{
		scenario.SSSPST, scenario.SSSPSTT, scenario.SSSPSTF, scenario.SSSPSTE,
	} {
		cfg := scenario.Default()
		cfg.Protocol = p
		cfg.VMax = 2
		cfg.Duration = 600
		cfg.Battery = 20 // joules; small enough to deplete within the run

		res := scenario.Run(cfg)
		s := res.Summary
		// Total draw divided by N approximates mean depletion; the spread
		// between tx-heavy tree nodes and leaves decides first death, so
		// report the energy profile alongside delivery.
		fmt.Printf("%-10s  delivered %6d pkts   PDR %.3f   dead nodes %2d   mean draw %.2f J   (tx %.1f / rx %.1f / discard %.1f J)\n",
			p, s.Delivered, s.PDR, s.DeadNodes, s.TotalEnergyJ/50, s.TxJ, s.RxJ, s.DiscardJ)
	}
	fmt.Println()
	fmt.Println("Lower total and discard energy translate directly into longer")
	fmt.Println("lifetime under fixed reserves — the energy-aware metric's savings")
	fmt.Println("compound over the run.")
}
