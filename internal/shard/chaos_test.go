package shard

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fsio"
	"repro/internal/runerr"
	"repro/internal/scenario"
)

// chaosRate is high enough that every durable-write path faults many
// times across the seed sweep, low enough that runs still make progress.
const chaosRate = 0.3

// TestJournalChaosResume drives the journal through seed-scheduled I/O
// faults — short writes, failed fsyncs, torn renames, crash latches —
// restarting (fresh FaultFS over the same directory) after every
// injected failure, and requires the final journal to be byte-identical
// to a fault-free run's. The atomic-rewrite discipline guarantees the
// on-disk file is always a complete prefix of the append order, so a
// resume never loses more than the append in flight and never reads a
// torn file.
func TestJournalChaosResume(t *testing.T) {
	cfgs := grid(6)
	gridFP := GridFingerprint("figures", struct{}{}, cfgs)
	records := make([]JobRecord, len(cfgs))
	for i := range cfgs {
		records[i] = record(i, cfgs[i])
	}

	// Fault-free baseline bytes.
	base := filepath.Join(t.TempDir(), "base.journal")
	jb, _, err := OpenJournal(base, "figures", gridFP)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range records {
		if err := jb.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	for seed := uint64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			path := filepath.Join(t.TempDir(), "j.journal")
			done := 0
			for attempt := 0; done < len(records); attempt++ {
				if attempt > 100 {
					t.Fatal("no progress after 100 restarts")
				}
				ffs := fsio.NewFaultFS(fsio.OS, seed<<8|uint64(attempt), chaosRate)
				j, skipped, err := OpenJournalFS(ffs, path, "figures", gridFP)
				if err != nil {
					t.Fatalf("restart %d: journal refused to open: %v", attempt, err)
				}
				if skipped != 0 {
					t.Fatalf("restart %d: %d corrupt records survived an atomic write discipline", attempt, skipped)
				}
				// The on-disk journal must be a prefix of the append order:
				// records resume exactly where the last crash cut them off.
				done = 0
				for done < len(records) {
					if _, ok := j.Lookup(records[done].FP); !ok {
						break
					}
					done++
				}
				for k := done; k < len(records); k++ {
					if _, ok := j.Lookup(records[k].FP); ok {
						t.Fatalf("restart %d: journal holds record %d but not %d — on-disk state is not a prefix", attempt, k, done)
					}
				}
				for ; done < len(records); done++ {
					if err := j.Append(records[done]); err != nil {
						if !errors.Is(err, fsio.ErrInjected) {
							t.Fatalf("append %d failed with a non-injected error: %v", done, err)
						}
						break // crash: restart with a fresh FS
					}
				}
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("chaos journal differs from fault-free journal (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}

// TestArtifactChaosShardMerge runs a 2-way shard split where every
// artifact write goes through a faulting filesystem, retrying each
// shard with a fresh FS after injected failures, then merges and
// requires the result to equal the fault-free merge exactly.
func TestArtifactChaosShardMerge(t *testing.T) {
	cfgs := grid(5)
	gridFP := GridFingerprint("figures", struct{}{}, cfgs)

	cleanDir := t.TempDir()
	cleanPaths := twoShards(t, cleanDir, cfgs, gridFP)
	wantRecs, err := Merge(readAll(t, cleanPaths), cleanPaths, "figures", gridFP, len(cfgs))
	if err != nil {
		t.Fatal(err)
	}

	for seed := uint64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			paths := make([]string, 2)
			for k := 1; k <= 2; k++ {
				a := &Artifact{Kind: "figures", Shard: k, Shards: 2, TotalJobs: len(cfgs), GridFP: gridFP, Meta: []byte(`{}`)}
				for i := k - 1; i < len(cfgs); i += 2 {
					a.Jobs = append(a.Jobs, record(i, cfgs[i]))
				}
				paths[k-1] = filepath.Join(dir, fmt.Sprintf("s%d.json", k))
				wrote := false
				for attempt := 0; !wrote; attempt++ {
					if attempt > 100 {
						t.Fatal("no successful artifact write in 100 attempts")
					}
					ffs := fsio.NewFaultFS(fsio.OS, seed<<16|uint64(k)<<8|uint64(attempt), chaosRate)
					err := WriteArtifactFS(ffs, paths[k-1], a)
					switch {
					case err == nil:
						wrote = true
					case errors.Is(err, fsio.ErrInjected):
						// retry: the atomic write left the target absent or previous
					default:
						t.Fatalf("shard %d write failed with a non-injected error: %v", k, err)
					}
				}
			}
			got, err := Merge(readAll(t, paths), paths, "figures", gridFP, len(cfgs))
			if err != nil {
				t.Fatalf("merge of chaos-written artifacts failed: %v", err)
			}
			if len(got) != len(wantRecs) {
				t.Fatalf("merged %d records, want %d", len(got), len(wantRecs))
			}
			for i := range got {
				if got[i].FP != wantRecs[i].FP || got[i].Seed != wantRecs[i].Seed ||
					*got[i].Summary != *wantRecs[i].Summary {
					t.Fatalf("record %d differs from fault-free merge", i)
				}
			}
		})
	}
}

// TestJournalHeaderCorruption: damage to the header line — the binding
// between the journal and its grid — must be a hard typed refusal, not
// a silent skip: no record in the file can be trusted without it.
func TestJournalHeaderCorruption(t *testing.T) {
	mk := func(t *testing.T) (string, string) {
		cfgs := grid(2)
		gridFP := GridFingerprint("figures", struct{}{}, cfgs)
		path := filepath.Join(t.TempDir(), "j.journal")
		j, _, err := OpenJournal(path, "figures", gridFP)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cfgs {
			if err := j.Append(record(i, cfgs[i])); err != nil {
				t.Fatal(err)
			}
		}
		return path, gridFP
	}

	t.Run("torn", func(t *testing.T) {
		path, gridFP := mk(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		head := bytes.IndexByte(data, '\n')
		if err := os.WriteFile(path, data[:head/2], 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err = OpenJournal(path, "figures", gridFP)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("torn header not refused as ErrCorrupt: %v", err)
		}
		if !strings.Contains(err.Error(), "delete the journal") { //detlint:allow the operator-facing remedy text is the property under test; the refusal kind is asserted as ErrCorrupt above
			t.Fatalf("refusal does not tell the operator the remedy: %v", err)
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		path, gridFP := mk(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one bit mid-header: either the envelope no longer parses
		// or the CRC catches it — both must be the same typed refusal.
		data[bytes.IndexByte(data, '\n')/2] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenJournal(path, "figures", gridFP); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit-flipped header not refused as ErrCorrupt: %v", err)
		}
	})
}

// TestTypedShardErrors pins the errors.Is classification of the fabric's
// refusals: corrupt data, grid mismatches, and incomplete shard sets
// each carry their sentinel.
func TestTypedShardErrors(t *testing.T) {
	cfgs := grid(4)
	gridFP := GridFingerprint("figures", struct{}{}, cfgs)
	dir := t.TempDir()
	paths := twoShards(t, dir, cfgs, gridFP)

	// Corrupt artifact body → ErrCorrupt.
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(data, []byte(`"body"`), []byte(`"b0dy"`), 1)
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadArtifact(corrupt); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt artifact error = %v, want ErrCorrupt", err)
	}

	// Wrong grid fingerprint → ErrGridMismatch.
	arts := readAll(t, paths)
	if _, err := Merge(arts, paths, "figures", "1111111111111111", len(cfgs)); !errors.Is(err, ErrGridMismatch) {
		t.Fatalf("grid-mismatch merge error = %v, want ErrGridMismatch", err)
	}

	// Missing shard → ErrIncomplete.
	if _, err := Merge(arts[:1], paths[:1], "figures", gridFP, len(cfgs)); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("missing-shard merge error = %v, want ErrIncomplete", err)
	}

	// Journal bound to another grid → ErrGridMismatch.
	jp := filepath.Join(dir, "j.journal")
	j, _, err := OpenJournal(jp, "figures", gridFP)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(record(0, cfgs[0])); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(jp, "figures", "2222222222222222"); !errors.Is(err, ErrGridMismatch) {
		t.Fatalf("grid-mismatch journal error = %v, want ErrGridMismatch", err)
	}
}

// TestErrKindRoundTrip: a failed replication's taxonomy kind survives
// the journal round trip — the record stores runerr.Kind, rehydration
// re-marks the error so errors.Is classifies it like the live failure.
func TestErrKindRoundTrip(t *testing.T) {
	cfg := scenario.Default()
	res := scenario.Result{
		Config:   cfg,
		Attempts: 1,
		Err:      runerr.Mark(runerr.ErrStall, errors.New("scenario: run stalled")),
	}
	rec := RecordOf(3, res, false)
	if rec.ErrKind != "stall" {
		t.Fatalf("ErrKind = %q, want %q", rec.ErrKind, "stall")
	}
	back := rec.Result(cfg)
	if !errors.Is(back.Err, runerr.ErrStall) {
		t.Fatalf("rehydrated error lost its kind: %v", back.Err)
	}
}
