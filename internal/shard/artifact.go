package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fsio"
	"repro/internal/metrics"
	"repro/internal/runerr"
	"repro/internal/scenario"
)

// The shard fabric's typed failure classes. Callers branch on these with
// errors.Is to decide the remedy, instead of grepping messages:
var (
	// ErrCorrupt marks data that failed an integrity check — a CRC
	// mismatch, unparsable envelope, or out-of-range record. Remedy:
	// delete the file and re-run its shard.
	ErrCorrupt = errors.New("shard: corrupt data")
	// ErrGridMismatch marks inputs produced from a different job grid or
	// schema version than this invocation expects. Remedy: regenerate
	// with the same flags and code version, or point at the right files.
	ErrGridMismatch = errors.New("shard: input from a different grid")
	// ErrIncomplete marks a merge whose inputs do not cover the grid —
	// missing shard artifacts or uncovered jobs. Remedy: re-run the
	// missing shards (with -resume where a journal exists).
	ErrIncomplete = errors.New("shard: incomplete results")
)

// ArtifactVersion is bumped whenever the artifact schema changes
// incompatibly; readers refuse other versions with an explicit error
// instead of misinterpreting the payload.
const ArtifactVersion = 1

// JobRecord is one completed (or conclusively failed) replication: the
// job's position in the flattened grid, its identity (config fingerprint
// + seed), and its raw-counter result. Summary is nil exactly when the
// replication failed; Err then carries the (stack-truncated) failure and
// ErrKind its taxonomy label (runerr.Kind), so merged logs can summarize
// failures by class without re-parsing messages.
type JobRecord struct {
	Index    int    `json:"index"`
	Seed     uint64 `json:"seed"`
	FP       string `json:"fp"`
	Attempts int    `json:"attempts,omitempty"`
	Err      string `json:"err,omitempty"`
	ErrKind  string `json:"err_kind,omitempty"`

	Summary  *metrics.Counters  `json:"summary,omitempty"`
	PerGroup []metrics.Counters `json:"per_group,omitempty"`
}

// RecordOf packages one engine result as a journal/artifact record.
// withGroups controls whether the per-topic summaries ride along (the
// sweep CSV needs them; figure tables do not).
func RecordOf(index int, r scenario.Result, withGroups bool) JobRecord {
	rec := JobRecord{
		Index:    index,
		Seed:     r.Config.Seed,
		FP:       r.Config.Fingerprint(),
		Attempts: r.Attempts,
	}
	if r.Err != nil {
		rec.Err = r.Err.Error()
		rec.ErrKind = runerr.Kind(r.Err)
		return rec
	}
	c := metrics.CountersOf(r.Summary)
	rec.Summary = &c
	if withGroups {
		rec.PerGroup = make([]metrics.Counters, len(r.PerGroup))
		for i, g := range r.PerGroup {
			rec.PerGroup[i] = metrics.CountersOf(g)
		}
	}
	return rec
}

// Result rehydrates the record as an engine result for cfg — the config
// is reconstructed from the grid (never stored), so callers must have
// verified rec.FP == cfg.Fingerprint() first.
func (rec JobRecord) Result(cfg scenario.Config) scenario.Result {
	res := scenario.Result{Config: cfg, Attempts: rec.Attempts}
	if rec.Err != "" {
		res.Err = fmt.Errorf("%s", rec.Err)
		// Restore the taxonomy kind recorded at failure time, so a
		// rehydrated record classifies under errors.Is like a live one.
		if kind := runerr.Sentinel(rec.ErrKind); kind != nil {
			res.Err = runerr.Mark(kind, res.Err)
		}
		return res
	}
	if rec.Summary != nil {
		res.Summary = rec.Summary.Summary()
	}
	if len(rec.PerGroup) > 0 {
		res.PerGroup = make([]metrics.Summary, len(rec.PerGroup))
		for i, g := range rec.PerGroup {
			res.PerGroup[i] = g.Summary()
		}
	}
	return res
}

// Artifact is one shard's complete output: which slice of which grid it
// covers, the reducer inputs needed to rebuild that grid (Meta, a
// tool-specific JSON document), and one record per assigned job. The
// on-disk form wraps it in an integrity envelope (CRC-32 over the exact
// marshaled bytes), so truncated or bit-rotted files are detected at
// read time rather than merged.
type Artifact struct {
	Version   int    `json:"version"`
	Kind      string `json:"kind"` // "figures" or "sweep"
	Shard     int    `json:"shard"`
	Shards    int    `json:"shards"`
	TotalJobs int    `json:"total_jobs"`
	GridFP    string `json:"grid_fp"`

	Meta json.RawMessage `json:"meta"`
	Jobs []JobRecord     `json:"jobs"`
}

// envelope is the on-disk wrapper: Body is the exact marshaled payload
// and CRC its CRC-32 (IEEE). json.RawMessage round-trips verbatim, so
// the checksum is over the same bytes on both sides.
type envelope struct {
	Body json.RawMessage `json:"body"`
	CRC  uint32          `json:"crc"`
}

func seal(body []byte) ([]byte, error) {
	return json.Marshal(envelope{Body: body, CRC: crc32.ChecksumIEEE(body)})
}

func unseal(data []byte, what string) ([]byte, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, runerr.Mark(ErrCorrupt, fmt.Errorf("shard: %s is not a sealed JSON envelope: %w", what, err))
	}
	if got := crc32.ChecksumIEEE(env.Body); got != env.CRC {
		return nil, runerr.Mark(ErrCorrupt, fmt.Errorf("shard: %s is corrupt: CRC %08x, recorded %08x", what, got, env.CRC))
	}
	return env.Body, nil
}

// WriteArtifact persists a via write-temp → fsync → rename → dir fsync,
// so a crash mid-write leaves either the previous file or none — never a
// torn one.
func WriteArtifact(path string, a *Artifact) error {
	return WriteArtifactFS(fsio.OS, path, a)
}

// WriteArtifactFS is WriteArtifact over an explicit filesystem seam —
// the entry point chaos tests inject faults through.
func WriteArtifactFS(fsys fsio.FS, path string, a *Artifact) error {
	a.Version = ArtifactVersion
	body, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("shard: marshal artifact: %w", err)
	}
	sealed, err := seal(body)
	if err != nil {
		return fmt.Errorf("shard: seal artifact: %w", err)
	}
	return atomicWrite(fsys, path, append(sealed, '\n'))
}

// ReadArtifact loads and integrity-checks one shard artifact.
func ReadArtifact(path string) (*Artifact, error) {
	return ReadArtifactFS(fsio.OS, path)
}

// ReadArtifactFS is ReadArtifact over an explicit filesystem seam.
func ReadArtifactFS(fsys fsio.FS, path string) (*Artifact, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	body, err := unseal(data, fmt.Sprintf("artifact %s", path))
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(body, &a); err != nil {
		return nil, runerr.Mark(ErrCorrupt, fmt.Errorf("shard: artifact %s: %w", path, err))
	}
	if a.Version != ArtifactVersion {
		return nil, runerr.Mark(ErrGridMismatch,
			fmt.Errorf("shard: artifact %s has schema version %d, this build reads %d", path, a.Version, ArtifactVersion))
	}
	return &a, nil
}

// Merge validates a set of shard artifacts against the expected grid and
// flattens them into one record per job. It detects, with actionable
// errors naming the offending files: artifacts from different grids
// (fingerprint or kind mismatch — the merge flags must reproduce the
// shards' flags), disagreeing shard counts, missing shards, duplicate
// jobs (the same grid cell in two artifacts), and incomplete coverage
// (jobs no artifact carries). paths must parallel arts.
func Merge(arts []*Artifact, paths []string, kind, gridFP string, totalJobs int) ([]JobRecord, error) {
	if len(arts) == 0 {
		return nil, fmt.Errorf("shard: no artifacts to merge")
	}
	n := arts[0].Shards
	haveShard := map[int]string{}
	records := make([]JobRecord, totalJobs)
	owner := make([]string, totalJobs) // path that contributed each job
	for i, a := range arts {
		p := paths[i]
		if a.Kind != kind {
			return nil, runerr.Mark(ErrGridMismatch,
				fmt.Errorf("shard: %s holds %q results, merging %q — mixed tool outputs", p, a.Kind, kind))
		}
		if a.GridFP != gridFP {
			return nil, runerr.Mark(ErrGridMismatch,
				fmt.Errorf("shard: %s was produced from a different job grid (fingerprint %s, expected %s) — regenerate it with the same flags and code version", p, a.GridFP, gridFP))
		}
		if a.TotalJobs != totalJobs {
			return nil, runerr.Mark(ErrGridMismatch,
				fmt.Errorf("shard: %s covers a grid of %d jobs, expected %d", p, a.TotalJobs, totalJobs))
		}
		if a.Shards != n {
			return nil, runerr.Mark(ErrGridMismatch,
				fmt.Errorf("shard: %s says %d shards, %s says %d — mixed shard splits", p, a.Shards, paths[0], n))
		}
		if a.Shard < 1 || a.Shard > n {
			return nil, runerr.Mark(ErrCorrupt,
				fmt.Errorf("shard: %s has shard index %d outside 1..%d", p, a.Shard, n))
		}
		if prev, dup := haveShard[a.Shard]; dup {
			return nil, runerr.Mark(ErrGridMismatch,
				fmt.Errorf("shard: shard %d/%d appears in both %s and %s", a.Shard, n, prev, p))
		}
		haveShard[a.Shard] = p
		for _, rec := range a.Jobs {
			if rec.Index < 0 || rec.Index >= totalJobs {
				return nil, runerr.Mark(ErrCorrupt,
					fmt.Errorf("shard: %s carries job %d outside the grid (0..%d)", p, rec.Index, totalJobs-1))
			}
			if owner[rec.Index] != "" {
				return nil, runerr.Mark(ErrGridMismatch,
					fmt.Errorf("shard: job %d (seed %d) appears in both %s and %s", rec.Index, rec.Seed, owner[rec.Index], p))
			}
			owner[rec.Index] = p
			records[rec.Index] = rec
		}
	}
	if len(haveShard) != n {
		var missing []string
		for k := 1; k <= n; k++ {
			if _, ok := haveShard[k]; !ok {
				missing = append(missing, fmt.Sprintf("%d/%d", k, n))
			}
		}
		return nil, runerr.Mark(ErrIncomplete,
			fmt.Errorf("shard: incomplete shard set: missing %s (have %d of %d artifacts)", strings.Join(missing, ", "), len(haveShard), n))
	}
	var holes []int
	for i, o := range owner {
		if o == "" {
			holes = append(holes, i)
		}
	}
	if len(holes) > 0 {
		sort.Ints(holes)
		show := holes
		if len(show) > 8 {
			show = show[:8]
		}
		return nil, runerr.Mark(ErrIncomplete,
			fmt.Errorf("shard: %d job(s) covered by no artifact (e.g. %v) — a shard run exited before writing its records; re-run it with -resume", len(holes), show))
	}
	return records, nil
}

// GridFingerprint digests an ordered job grid: the producing tool's kind,
// its reducer meta (a pure value — rendered via %#v), and every job
// config's fingerprint in grid order. Two processes agree on it exactly
// when they would run the same jobs in the same slots and reduce them the
// same way; it is what artifact merging and journal resume verify before
// trusting any record.
func GridFingerprint(kind string, meta any, cfgs []scenario.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|v%d|%#v|%d", kind, ArtifactVersion, meta, len(cfgs))
	for i := range cfgs {
		b.WriteByte('|')
		b.WriteString(cfgs[i].Fingerprint())
	}
	h := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(h[:8])
}

// atomicWrite writes data to path via a temp file in the same directory,
// fsyncs it, renames it into place, and fsyncs the directory — without
// the final directory sync the rename itself can be lost to a power cut,
// resurrecting the previous file after the writer believed the new one
// durable.
func atomicWrite(fsys fsio.FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	defer fsys.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("shard: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("shard: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}
