package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/fsio"
	"repro/internal/runerr"
)

// Journal is the per-process checkpoint: every completed replication is
// appended as a sealed record, and each append rewrites the file via
// write-temp → fsync → rename, so at any instant the on-disk journal is
// a complete, CRC-verifiable prefix of the work done — a `kill -9`
// mid-sweep costs at most the one replication that was in flight.
//
// The file is line-oriented: a header envelope binding the journal to
// one (kind, grid fingerprint) pair, then one envelope per record. On
// open, records that fail the CRC or do not parse are skipped (counted,
// not fatal): an unverifiable record is simply re-run. A header bound to
// a different grid refuses to load — resuming a journal against changed
// flags would silently mix incompatible results.
//
// Append is safe to call concurrently with Flush (the signal handlers
// flush from their own goroutine); record appends themselves arrive
// serialized from the engine's completion callback.
type Journal struct {
	mu      sync.Mutex
	fsys    fsio.FS
	path    string
	header  journalHeader
	records []JobRecord
	byFP    map[string]int // fingerprint → index into records (latest wins)
	dirty   bool
}

type journalHeader struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	GridFP  string `json:"grid_fp"`
}

// OpenJournal opens (or creates) the journal at path for the given grid.
// An existing file must carry the same kind and grid fingerprint —
// otherwise the error explains the journal belongs to a different grid.
// skipped reports records dropped for failing their integrity check.
func OpenJournal(path, kind, gridFP string) (j *Journal, skipped int, err error) {
	return OpenJournalFS(fsio.OS, path, kind, gridFP)
}

// OpenJournalFS is OpenJournal over an explicit filesystem seam — the
// entry point chaos tests inject faults through. A corrupt header (the
// line binding the file to its grid) is a hard, typed refusal: without
// it no record in the file can be trusted to belong to this grid, so
// the remedy is to delete the journal and re-run, not to silently
// resume from it.
func OpenJournalFS(fsys fsio.FS, path, kind, gridFP string) (j *Journal, skipped int, err error) {
	j = &Journal{
		fsys:   fsys,
		path:   path,
		header: journalHeader{Version: ArtifactVersion, Kind: kind, GridFP: gridFP},
		byFP:   map[string]int{},
	}
	data, err := fsys.ReadFile(path)
	if os.IsNotExist(err) {
		return j, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("shard: %w", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, 16<<20)
	first := true
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			body, err := unseal(line, fmt.Sprintf("journal %s header", path))
			if err != nil {
				return nil, 0, fmt.Errorf("%w — delete the journal to restart this shard from scratch", err)
			}
			var h journalHeader
			if err := json.Unmarshal(body, &h); err != nil {
				return nil, 0, runerr.Mark(ErrCorrupt,
					fmt.Errorf("shard: journal %s header: %w — delete the journal to restart this shard from scratch", path, err))
			}
			if h.Version != ArtifactVersion {
				return nil, 0, runerr.Mark(ErrGridMismatch,
					fmt.Errorf("shard: journal %s has schema version %d, this build reads %d", path, h.Version, ArtifactVersion))
			}
			if h.Kind != kind || h.GridFP != gridFP {
				return nil, 0, runerr.Mark(ErrGridMismatch,
					fmt.Errorf("shard: journal %s was written for a different grid (kind %q fp %s; this run is kind %q fp %s) — delete it or point -journal elsewhere",
						path, h.Kind, h.GridFP, kind, gridFP))
			}
			continue
		}
		body, err := unseal(line, "journal record")
		if err != nil {
			skipped++ // unverifiable → the job will simply re-run
			continue
		}
		var rec JobRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			skipped++
			continue
		}
		j.addLocked(rec)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("shard: journal %s: %w", path, err)
	}
	return j, skipped, nil
}

func (j *Journal) addLocked(rec JobRecord) {
	if i, ok := j.byFP[rec.FP]; ok {
		j.records[i] = rec // a re-run of the same job supersedes
		return
	}
	j.byFP[rec.FP] = len(j.records)
	j.records = append(j.records, rec)
}

// Lookup returns the journaled record for a config fingerprint.
func (j *Journal) Lookup(fp string) (JobRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	i, ok := j.byFP[fp]
	if !ok {
		return JobRecord{}, false
	}
	return j.records[i], true
}

// Len returns the number of journaled records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.records)
}

// Append records one completed replication and flushes the journal —
// the per-record-batch write-temp-fsync-rename that gives the crash
// guarantee. Flush errors are returned, not fatal: the caller decides
// whether a degraded (journal-less) continuation is acceptable.
func (j *Journal) Append(rec JobRecord) error {
	j.mu.Lock()
	j.addLocked(rec)
	j.dirty = true
	j.mu.Unlock()
	return j.Flush()
}

// Flush atomically rewrites the journal with every record appended so
// far. It is a no-op when nothing changed since the last flush.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.dirty {
		return nil
	}
	var buf bytes.Buffer
	hb, err := json.Marshal(j.header)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	sealed, err := seal(hb)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	buf.Write(sealed)
	buf.WriteByte('\n')
	for _, rec := range j.records {
		rb, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("shard: %w", err)
		}
		sealed, err := seal(rb)
		if err != nil {
			return fmt.Errorf("shard: %w", err)
		}
		buf.Write(sealed)
		buf.WriteByte('\n')
	}
	if err := atomicWrite(j.fsys, j.path, buf.Bytes()); err != nil {
		return err
	}
	j.dirty = false
	return nil
}
