package shard

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

// TestPartitionProperties pins the contract every sharding process relies
// on: for any (costs, n), the shards are disjoint, jointly exhaustive,
// deterministic, sorted ascending, and cost-balanced to within one job.
func TestPartitionProperties(t *testing.T) {
	costs := make([]float64, 103)
	for i := range costs {
		// Strongly skewed costs (the ODMRP-vs-SS-SPST situation): a few
		// huge jobs, a long tail of small ones.
		costs[i] = float64((i*7919)%13) * 100
	}
	for _, n := range []int{1, 2, 3, 7, 103, 200} {
		seen := make([]bool, len(costs))
		perShard := make([]float64, n)
		maxJob := 0.0
		for _, c := range costs {
			if c > maxJob {
				maxJob = c
			}
		}
		for k := 1; k <= n; k++ {
			sel := Partition(costs, k, n)
			again := Partition(costs, k, n)
			if len(sel) != len(again) {
				t.Fatalf("n=%d k=%d: non-deterministic partition", n, k)
			}
			for i := range sel {
				if sel[i] != again[i] {
					t.Fatalf("n=%d k=%d: non-deterministic partition", n, k)
				}
				if i > 0 && sel[i] <= sel[i-1] {
					t.Fatalf("n=%d k=%d: indices not strictly ascending: %v", n, k, sel)
				}
			}
			for _, i := range sel {
				if seen[i] {
					t.Fatalf("n=%d: job %d assigned to more than one shard", n, i)
				}
				seen[i] = true
				perShard[k-1] += costs[i]
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("n=%d: job %d assigned to no shard", n, i)
			}
		}
		var lo, hi = perShard[0], perShard[0]
		for _, c := range perShard[1:] {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if n <= len(costs) && hi-lo > maxJob {
			t.Fatalf("n=%d: shard cost spread %.0f exceeds the largest job %.0f: %v", n, hi-lo, maxJob, perShard)
		}
	}
}

func TestParseSpec(t *testing.T) {
	k, n, err := ParseSpec("2/3")
	if err != nil || k != 2 || n != 3 {
		t.Fatalf("ParseSpec(2/3) = %d, %d, %v", k, n, err)
	}
	for _, bad := range []string{"", "3", "0/3", "4/3", "a/b", "1/0", "-1/2", "1/2/3"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// grid builds a small deterministic config grid for artifact tests.
func grid(jobs int) []scenario.Config {
	cfgs := make([]scenario.Config, jobs)
	for i := range cfgs {
		cfg := scenario.Default()
		cfg.Duration = 30
		cfg.Seed = scenario.ReplicationSeed(1, i)
		cfgs[i] = cfg
	}
	return cfgs
}

func record(i int, cfg scenario.Config) JobRecord {
	c := metrics.Counters{Sent: 10 + i, Expected: 10, Delivered: 9, TxJ: 1.25}
	return JobRecord{Index: i, Seed: cfg.Seed, FP: cfg.Fingerprint(), Attempts: 1, Summary: &c}
}

// twoShards writes a consistent 2-shard artifact set over the grid and
// returns their paths.
func twoShards(t *testing.T, dir string, cfgs []scenario.Config, gridFP string) []string {
	t.Helper()
	paths := make([]string, 2)
	for k := 1; k <= 2; k++ {
		a := &Artifact{Kind: "figures", Shard: k, Shards: 2, TotalJobs: len(cfgs), GridFP: gridFP, Meta: []byte(`{}`)}
		for i := k - 1; i < len(cfgs); i += 2 {
			a.Jobs = append(a.Jobs, record(i, cfgs[i]))
		}
		paths[k-1] = filepath.Join(dir, fmt.Sprintf("s%d.json", k))
		if err := WriteArtifact(paths[k-1], a); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

func readAll(t *testing.T, paths []string) []*Artifact {
	t.Helper()
	arts := make([]*Artifact, len(paths))
	for i, p := range paths {
		a, err := ReadArtifact(p)
		if err != nil {
			t.Fatal(err)
		}
		arts[i] = a
	}
	return arts
}

func TestArtifactRoundTripAndMerge(t *testing.T) {
	dir := t.TempDir()
	cfgs := grid(5)
	gridFP := GridFingerprint("figures", struct{}{}, cfgs)
	paths := twoShards(t, dir, cfgs, gridFP)
	arts := readAll(t, paths)

	recs, err := Merge(arts, paths, "figures", gridFP, len(cfgs))
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if rec.Index != i || rec.FP != cfgs[i].Fingerprint() {
			t.Fatalf("job %d merged out of place: %+v", i, rec)
		}
		if rec.Summary == nil || rec.Summary.Sent != 10+i {
			t.Fatalf("job %d lost its counters: %+v", i, rec)
		}
	}
}

func TestArtifactCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	cfgs := grid(3)
	gridFP := GridFingerprint("figures", struct{}{}, cfgs)
	paths := twoShards(t, dir, cfgs, gridFP)

	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload digit: either the CRC or the JSON parse must trip.
	i := bytes.LastIndexByte(data, '9')
	if i < 0 {
		i = bytes.LastIndexByte(data, '1')
	}
	data[i] = '7'
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadArtifact(paths[0]); err == nil {
		t.Fatal("bit-flipped artifact read back without error")
	}
}

func TestMergeValidation(t *testing.T) {
	dir := t.TempDir()
	cfgs := grid(5)
	gridFP := GridFingerprint("figures", struct{}{}, cfgs)
	paths := twoShards(t, dir, cfgs, gridFP)
	arts := readAll(t, paths)

	check := func(name string, arts []*Artifact, paths []string, fp string, total int, sentinel error, wantSub string) {
		t.Helper()
		_, err := Merge(arts, paths, "figures", fp, total)
		if !errors.Is(err, sentinel) {
			t.Fatalf("%s: error %v, want %v", name, err, sentinel)
		}
		if !strings.Contains(err.Error(), wantSub) { //detlint:allow the substring distinguishes which refusal fired within a sentinel class; the class itself is asserted with errors.Is above
			t.Fatalf("%s: error %v, want substring %q", name, err, wantSub)
		}
	}
	check("missing shard", arts[:1], paths[:1], gridFP, len(cfgs), ErrIncomplete, "missing 2/2")
	check("duplicate shard", []*Artifact{arts[0], arts[0]}, []string{paths[0], paths[0]}, gridFP, len(cfgs), ErrGridMismatch, "appears in both")
	check("grid mismatch", arts, paths, "0000000000000000", len(cfgs), ErrGridMismatch, "different job grid")
	check("wrong total", arts, paths, gridFP, len(cfgs)+1, ErrGridMismatch, "covers a grid of")

	kindArts := readAll(t, paths)
	kindArts[1].Kind = "sweep"
	check("mixed kinds", kindArts, paths, gridFP, len(cfgs), ErrGridMismatch, "mixed tool outputs")

	splitArts := readAll(t, paths)
	splitArts[1].Shards = 3
	check("mixed splits", splitArts, paths, gridFP, len(cfgs), ErrGridMismatch, "mixed shard splits")

	dupArts := readAll(t, paths)
	dupArts[1].Jobs = append(dupArts[1].Jobs, dupArts[0].Jobs[0])
	check("duplicate job", dupArts, paths, gridFP, len(cfgs), ErrGridMismatch, "appears in both")

	holeArts := readAll(t, paths)
	holeArts[0].Jobs = holeArts[0].Jobs[1:] // drop job 0
	check("coverage hole", holeArts, paths, gridFP, len(cfgs), ErrIncomplete, "covered by no artifact")
}

func TestJournalAppendResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.journal")
	cfgs := grid(4)
	gridFP := GridFingerprint("figures", struct{}{}, cfgs)

	j, skipped, err := OpenJournal(path, "figures", gridFP)
	if err != nil || skipped != 0 {
		t.Fatalf("fresh open: %v (skipped %d)", err, skipped)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(record(i, cfgs[i])); err != nil {
			t.Fatal(err)
		}
	}

	j2, skipped, err := OpenJournal(path, "figures", gridFP)
	if err != nil || skipped != 0 {
		t.Fatalf("reopen: %v (skipped %d)", err, skipped)
	}
	if j2.Len() != 3 {
		t.Fatalf("reopened journal has %d records, want 3", j2.Len())
	}
	for i := 0; i < 3; i++ {
		rec, ok := j2.Lookup(cfgs[i].Fingerprint())
		if !ok || rec.Index != i {
			t.Fatalf("job %d not found after reopen: %+v %v", i, rec, ok)
		}
	}
	if _, ok := j2.Lookup(cfgs[3].Fingerprint()); ok {
		t.Fatal("never-journaled job reported present")
	}

	// A re-run of the same job supersedes its earlier record.
	rerun := record(0, cfgs[0])
	rerun.Attempts = 2
	if err := j2.Append(rerun); err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 3 {
		t.Fatalf("supersede grew the journal to %d records", j2.Len())
	}
	if rec, _ := j2.Lookup(cfgs[0].Fingerprint()); rec.Attempts != 2 {
		t.Fatalf("supersede kept the stale record: %+v", rec)
	}
}

func TestJournalCorruptRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.journal")
	cfgs := grid(2)
	gridFP := GridFingerprint("figures", struct{}{}, cfgs)

	j, _, err := OpenJournal(path, "figures", gridFP)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := j.Append(record(i, cfgs[i])); err != nil {
			t.Fatal(err)
		}
	}
	// Torn tail write: a half-record the crash left behind.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"body":{"index":`)
	f.Close()

	j2, skipped, err := OpenJournal(path, "figures", gridFP)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || j2.Len() != 2 {
		t.Fatalf("skipped %d (want 1), kept %d (want 2)", skipped, j2.Len())
	}
}

func TestJournalGridMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.journal")
	cfgs := grid(1)
	gridFP := GridFingerprint("figures", struct{}{}, cfgs)

	j, _, err := OpenJournal(path, "figures", gridFP)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(record(0, cfgs[0])); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path, "figures", "1111111111111111"); !errors.Is(err, ErrGridMismatch) {
		t.Fatalf("grid-mismatched journal opened: %v", err)
	}
	if _, _, err := OpenJournal(path, "sweep", gridFP); !errors.Is(err, ErrGridMismatch) {
		t.Fatalf("kind-mismatched journal opened: %v", err)
	}
}

// TestGridFingerprintSensitivity: the fingerprint must move when any job
// config, the job order, the kind or the meta changes.
func TestGridFingerprintSensitivity(t *testing.T) {
	cfgs := grid(3)
	base := GridFingerprint("figures", struct{}{}, cfgs)

	if GridFingerprint("figures", struct{}{}, cfgs) != base {
		t.Fatal("fingerprint not deterministic")
	}
	if GridFingerprint("sweep", struct{}{}, cfgs) == base {
		t.Fatal("kind change did not move the fingerprint")
	}
	if GridFingerprint("figures", struct{ X int }{1}, cfgs) == base {
		t.Fatal("meta change did not move the fingerprint")
	}
	mut := grid(3)
	mut[1].VMax++
	if GridFingerprint("figures", struct{}{}, mut) == base {
		t.Fatal("config change did not move the fingerprint")
	}
	swapped := grid(3)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if GridFingerprint("figures", struct{}{}, swapped) == base {
		t.Fatal("order change did not move the fingerprint")
	}
}
