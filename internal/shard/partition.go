// Package shard is the crash-tolerant distributed-execution layer over
// the sweep engine: deterministic partitioning of a flattened job grid
// across processes, versioned raw-counter artifacts with integrity
// checks (one per shard, merged by cmd/mergefigs), and a crash-safe
// checkpoint journal that makes a SIGKILLed sweep resumable at the
// granularity of one replication.
//
// Everything in the package is keyed by config fingerprints
// (scenario.Config.Fingerprint — seed included) and a grid fingerprint
// over the whole ordered job list, so shards produced from mismatched
// flags, figure sets or code-changed grids are detected instead of
// silently merged. Because the metrics layer pools raw numerators and
// denominators (metrics.Counters round-trips a per-run Summary bit for
// bit), a sharded run merged back together is byte-identical to the
// single-process run — exact, not approximate.
package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Partition returns the job indices assigned to 1-based shard k of n,
// in ascending index order. Assignment is by LPT cost rank: jobs are
// ranked by (cost descending, index ascending) — the same priority the
// engine's longest-job-first queue uses — and dealt to shards in
// serpentine (boustrophedon) order, so each shard receives one job from
// every consecutive cost band and the per-shard cost totals stay within
// one job of balanced even when costs are strongly skewed (ODMRP jobs
// cost ~2× SS-SPST at equal N·T). The assignment is a pure function of
// (costs, k, n): every process computes the same partition without
// coordination, and the shards are disjoint and jointly exhaustive.
func Partition(costs []float64, k, n int) []int {
	if n < 1 {
		n = 1
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	rank := make([]int, len(costs))
	for i := range rank {
		rank[i] = i
	}
	sort.SliceStable(rank, func(a, b int) bool {
		if costs[rank[a]] != costs[rank[b]] {
			return costs[rank[a]] > costs[rank[b]]
		}
		return rank[a] < rank[b]
	})
	var sel []int
	for r, job := range rank {
		round, pos := r/n, r%n
		if round%2 == 1 {
			pos = n - 1 - pos
		}
		if pos == k-1 {
			sel = append(sel, job)
		}
	}
	sort.Ints(sel)
	return sel
}

// ParseSpec parses a "-shard k/n" flag value ("2/3") into its 1-based
// shard index and shard count.
func ParseSpec(s string) (k, n int, err error) {
	bad := func() (int, int, error) {
		return 0, 0, fmt.Errorf("shard: bad spec %q (want k/n with 1 <= k <= n, e.g. 2/3)", s)
	}
	a, b, ok := strings.Cut(strings.TrimSpace(s), "/")
	if !ok {
		return bad()
	}
	k, errK := strconv.Atoi(strings.TrimSpace(a))
	n, errN := strconv.Atoi(strings.TrimSpace(b))
	if errK != nil || errN != nil || k < 1 || n < 1 || k > n {
		return bad()
	}
	return k, n, nil
}
