package core

import "repro/internal/packet"

// BeaconPayload is the tree state a node advertises each beacon interval.
// Neighbours use it to maintain their tables and to evaluate join costs.
type BeaconPayload struct {
	// Cost is the sender's current tree energy cost c(v).
	Cost float64
	// Hop is the sender's hop count h(v) to the root, capped at MaxHops.
	Hop int
	// Parent is the sender's current parent, or packet.Broadcast when
	// detached. The root advertises itself.
	Parent packet.NodeID
	// Root marks the multicast source.
	Root bool
	// Member marks multicast group membership.
	Member bool
	// Downstream is the pruning flag: the sender's subtree contains at
	// least one member, so data must flow through it.
	Downstream bool
	// Range is the sender's current power-controlled forwarding range
	// (distance to its costliest child; 0 when it has no children).
	Range float64
	// Range2 is the distance to the sender's second-costliest child
	// (0 with fewer than two children). The costliest child needs it to
	// price its own departure honestly: "the energy cost difference
	// experienced by u with and without v as its child" (paper §5) —
	// without it the costliest child free-rides on its own contribution
	// and never leaves, suppressing the Example-3 dynamics.
	Range2 float64
	// Children is the sender's tree child count.
	Children int
	// NbrDists carries the sender's neighbour distances, sorted
	// ascending. Present only under SS-SPST-E (Variant.NeedsNeighborDists)
	// — the extra control bytes the paper notes for SS-SPST-E.
	NbrDists []float64
	// RootPath is the sender's current path of node ids from the root
	// down to (and including) the sender. Nodes refuse to adopt a parent
	// whose path already contains them: a path-vector strengthening of
	// the paper's count-to-infinity hop cap (Lemma 3) that suppresses
	// transient routing loops within one round instead of N.
	RootPath []packet.NodeID
}

// Beacon frame sizing in bytes. Base: cost(4) + hop(2) + parent(4) +
// flags(1) + range(4) + children(2) + seq(4) = 21 application bytes on
// top of MAC+IP headers; each advertised neighbour distance adds 2.
const (
	beaconBaseBytes   = 21
	beaconPerNbrBytes = 1 // distances quantized to ~1 m (250 m / 256)
	beaconPerHopBytes = 1 // root-path node ids (N ≤ 256 in all scenarios)
)

// beaconBytes returns the on-air size of a beacon carrying nNbr neighbour
// distances (0 unless the variant needs them) and a root path of pathLen
// entries.
func beaconBytes(nNbr, pathLen int) int {
	return packet.MACHeaderBytes + packet.IPHeaderBytes + beaconBaseBytes +
		nNbr*beaconPerNbrBytes + pathLen*beaconPerHopBytes
}
