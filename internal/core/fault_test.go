package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/packet"
)

// diamond is a topology with two disjoint relay paths from the source to
// a far member:
//
//	       1 (relay)
//	     /   \
//	0 —        — 3 (member)
//	     \   /
//	       2 (relay)
//
// Node 3 is out of the source's direct range; killing whichever relay is
// in use forces a self-stabilizing repair through the other.
func diamond() []geom.Point {
	return []geom.Point{
		{X: 0, Y: 0},
		{X: 200, Y: 90},
		{X: 200, Y: -90},
		{X: 400, Y: 0},
	}
}

func TestRepairAfterRelayDeath(t *testing.T) {
	for _, v := range []Variant{Hop, TxLink, EnergyAware} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			tn := buildStatic(t, diamond(), v, []int{3}, 2, 1)
			tn.runRounds(8)
			parent, ok := tn.protos[3].TreeParent()
			if !ok {
				t.Fatal("member did not stabilize")
			}
			if parent != 1 && parent != 2 {
				t.Fatalf("member's parent %v is not a relay", parent)
			}

			// Fault injection: kill the in-use relay. The member must
			// detect the silence (neighbour TTL) and re-stabilize onto
			// the surviving relay within a few rounds.
			tn.net.Kill(parent)
			survivor := packet.NodeID(3) - parent // 1<->2
			tn.runRounds(6)
			newParent, ok := tn.protos[3].TreeParent()
			if !ok {
				t.Fatal("member detached permanently after relay death")
			}
			if newParent != survivor {
				t.Errorf("member re-parented to %v, want surviving relay %v", newParent, survivor)
			}
		})
	}
}

func TestDeliveryResumesAfterRepair(t *testing.T) {
	tn := buildStatic(t, diamond(), EnergyAware, []int{3}, 2, 1)
	tn.runRounds(8)
	send := func(k int) {
		for i := 0; i < k; i++ {
			tn.net.Collector.DataSent(1)
			tn.net.Nodes[0].Slots[0].Proto.Originate()
			tn.sim.Run(tn.sim.Now() + 0.1)
		}
	}
	send(10)
	before := tn.net.Collector.Delivered
	if before < 8 {
		t.Fatalf("pre-fault delivery broken: %d/10", before)
	}
	parent, _ := tn.protos[3].TreeParent()
	tn.net.Kill(parent)
	tn.runRounds(6) // repair window
	send(10)
	after := tn.net.Collector.Delivered - before
	if after < 8 {
		t.Errorf("post-repair deliveries %d/10", after)
	}
}

func TestSourceDeathSilencesService(t *testing.T) {
	tn := buildStatic(t, diamond(), Hop, []int{3}, 2, 1)
	tn.runRounds(6)
	tn.net.Kill(0)
	tn.runRounds(1)
	txJ := tn.net.Meters[0].TxJ
	tn.net.Nodes[0].Slots[0].Proto.Originate()
	tn.sim.Run(tn.sim.Now() + 1)
	if tn.net.Meters[0].TxJ != txJ {
		t.Error("dead source still spent transmission energy")
	}
	// Neighbours eventually detach: their only path to the root is gone.
	tn.runRounds(10)
	if _, ok := tn.protos[1].TreeParent(); ok {
		if p, _ := tn.protos[1].TreeParent(); p == 0 {
			t.Error("node 1 still claims the dead source as parent after TTL")
		}
	}
}

func TestDynamicLeaveShedsBranch(t *testing.T) {
	// Chain 0-1-2-3 with member 3; when 3 leaves the group, the relays'
	// downstream flags clear and forwarding stops.
	pts := []geom.Point{{X: 0}, {X: 100}, {X: 200}, {X: 300}}
	tn := buildStatic(t, pts, Hop, []int{3}, 2, 1)
	tn.runRounds(8)
	// Find 3's relay parent and confirm it forwards.
	parent, _ := tn.protos[3].TreeParent()
	if r := tn.protos[parent].forwardRange(); r <= 0 {
		t.Fatalf("relay %v not forwarding before leave", parent)
	}
	tn.net.SetMember(3, false)
	tn.runRounds(4) // flag propagates: 3's beacon, then the relay's round
	if r := tn.protos[parent].forwardRange(); r != 0 {
		t.Errorf("relay %v still forwards after the member left (range %v)", parent, r)
	}
}

func TestDynamicJoinGrowsBranch(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 100}, {X: 200}, {X: 300}}
	tn := buildStatic(t, pts, Hop, []int{1}, 2, 1) // only node 1 is a member
	tn.runRounds(8)
	// Node 3's branch is pruned: its upstream forwards nothing for it.
	parent3, _ := tn.protos[3].TreeParent()
	_ = parent3
	tn.net.SetMember(3, true)
	tn.runRounds(4)
	parent3, ok := tn.protos[3].TreeParent()
	if !ok {
		t.Fatal("new member has no parent")
	}
	if r := tn.protos[parent3].forwardRange(); r <= 0 {
		t.Errorf("relay %v not forwarding after dynamic join", parent3)
	}
	// End-to-end: a packet reaches the new member.
	tn.net.Collector.DataSent(2)
	tn.net.Nodes[0].Slots[0].Proto.Originate()
	tn.sim.Run(tn.sim.Now() + 0.5)
	if _, ever := tn.net.Collector.LastDelivery(3); !ever {
		t.Error("dynamically joined member received nothing")
	}
}

func TestPartitionHealing(t *testing.T) {
	// Kill both relays: the member partitions away and must detach (cost
	// CMax); self-stabilization has nothing to repair with. This checks
	// the detached state is reached cleanly (no loops, no panic).
	tn := buildStatic(t, diamond(), TxLink, []int{3}, 2, 1)
	tn.runRounds(8)
	tn.net.Kill(1)
	tn.net.Kill(2)
	tn.runRounds(8)
	if _, ok := tn.protos[3].TreeParent(); ok {
		t.Error("partitioned member still claims a parent after TTL expiry")
	}
	if tn.protos[3].Cost() != CMax {
		t.Errorf("partitioned member cost = %v, want CMax", tn.protos[3].Cost())
	}
}
