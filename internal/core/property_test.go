package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/energy"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// physicalTreeEnergy evaluates a tree under the common physical yardstick:
// each node with downstream members transmits at the range of its farthest
// downstream child; everyone inside that range pays reception energy.
func physicalTreeEnergy(tn *testNet, tree topology.Tree, members []int) float64 {
	em := energy.Default()
	bytes := packet.DataPayload + packet.IPHeaderBytes + packet.MACHeaderBytes
	n := len(tree.Parent)
	downstream := make([]bool, n)
	for _, m := range members {
		for v, hops := m, 0; v != tree.Root && hops <= n; hops++ {
			downstream[v] = true
			p := tree.Parent[v]
			if p < 0 {
				break
			}
			v = p
		}
	}
	total := 0.0
	for u := 0; u < n; u++ {
		r := 0.0
		for v, p := range tree.Parent {
			if p == u && downstream[v] {
				if d := tn.pos[u].Dist(tn.pos[v]); d > r {
					r = d
				}
			}
		}
		if r == 0 {
			continue
		}
		total += em.TxEnergy(bytes, r)
		for w := 0; w < n; w++ {
			if w != u && tn.pos[u].Dist(tn.pos[w]) <= r {
				total += em.RxEnergy(bytes, r)
			}
		}
	}
	return total
}

// TestPropertySpanningTree: on any connected static topology, every
// variant stabilizes to a valid spanning tree within 2N rounds.
func TestPropertySpanningTree(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 10 + r.Intn(20)
		pts := connectedRandomPositions(r, n, 550, 250)
		members := []int{1 + r.Intn(n-1), 1 + r.Intn(n-1)}
		for _, v := range []Variant{Hop, TxLink, EnergyAware} {
			tn := buildStatic(t, pts, v, members, 2, seed)
			tn.runRounds(2 * n)
			tree := tn.tree()
			all := make([]int, n)
			for i := range all {
				all[i] = i
			}
			if !tree.Valid() || !tree.Spans(all) {
				t.Logf("seed %d variant %v tree %v", seed, v, tree.Parent)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLoopsDissolveFast samples the tree every round. Simultaneous
// parent switches can close a transient cycle (each mover acting on the
// others' one-round-old paths), but the path-vector guard must dissolve it
// as soon as the fresher beacons circulate: no cycle may persist for three
// consecutive rounds. (The paper's bare hop-cap takes up to N rounds.)
func TestPropertyLoopsDissolveFast(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 10 + r.Intn(15)
		pts := connectedRandomPositions(t_rngAux(r), n, 550, 250)
		tn := buildStatic(t, pts, EnergyAware, []int{1, 2}, 2, seed)
		consecutive := 0
		for round := 0; round < n+10; round++ {
			tn.runRounds(1)
			tree := tn.tree()
			hasCycle := false
			for start := 0; start < n && !hasCycle; start++ {
				v, hops := start, 0
				for v != tree.Root && tree.Parent[v] >= 0 {
					v = tree.Parent[v]
					hops++
					if hops > n {
						hasCycle = true
						break
					}
				}
			}
			if hasCycle {
				consecutive++
				if consecutive >= 3 {
					t.Logf("seed %d: cycle persisted %d rounds (round %d): %v",
						seed, consecutive, round, tree.Parent)
					return false
				}
			} else {
				consecutive = 0
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func t_rngAux(r *xrand.RNG) *xrand.RNG { return r.Split("aux") }

// TestPropertyHopOptimal: the hop variant's stabilized depths equal BFS
// levels — it really is a shortest-path spanning tree.
func TestPropertyHopOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 10 + r.Intn(20)
		pts := connectedRandomPositions(r, n, 550, 250)
		tn := buildStatic(t, pts, Hop, []int{1}, 2, seed)
		tn.runRounds(n + 5)
		depths := tn.tree().Depths()
		levels := tn.graph.BFSLevels(0)
		for i := range depths {
			if depths[i] != levels[i] {
				t.Logf("seed %d: node %d depth %d vs BFS %d", seed, i, depths[i], levels[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEnergyBeatsHop is the paper's headline claim made
// statistical: across random static topologies, the SS-SPST-E tree's
// physical energy per data packet is lower than the plain SS-SPST tree's
// on aggregate, and never catastrophically worse on any single topology
// (the distributed greedy is not per-instance optimal, so strict
// per-topology dominance does not hold).
func TestPropertyEnergyBeatsHop(t *testing.T) {
	var sumHop, sumEA float64
	worstRatio := 0.0
	for seed := uint64(1); seed <= 20; seed++ {
		r := xrand.New(seed)
		n := 15 + r.Intn(20)
		pts := connectedRandomPositions(r, n, 600, 250)
		members := []int{1 + r.Intn(n-1), 1 + r.Intn(n-1), 1 + r.Intn(n-1)}
		hop := buildStatic(t, pts, Hop, members, 2, seed)
		ea := buildStatic(t, pts, EnergyAware, members, 2, seed)
		hop.runRounds(2 * n)
		ea.runRounds(2 * n)
		eHop := physicalTreeEnergy(hop, hop.tree(), members)
		eEA := physicalTreeEnergy(ea, ea.tree(), members)
		sumHop += eHop
		sumEA += eEA
		if eHop > 0 && eEA/eHop > worstRatio {
			worstRatio = eEA / eHop
		}
	}
	t.Logf("aggregate physical energy: hop %.4g J, E %.4g J (E/hop = %.3f; worst single topology %.2f)",
		sumHop, sumEA, sumEA/sumHop, worstRatio)
	if sumEA >= sumHop {
		t.Errorf("SS-SPST-E not cheaper on aggregate: %.4g vs %.4g J", sumEA, sumHop)
	}
	if worstRatio > 2.0 {
		t.Errorf("SS-SPST-E catastrophically worse on some topology: ratio %.2f", worstRatio)
	}
}

// TestPropertyCostsConsistent: after stabilization every non-root node's
// advertised hop is exactly its parent's plus one.
func TestPropertyCostsConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 10 + r.Intn(15)
		pts := connectedRandomPositions(r, n, 550, 250)
		tn := buildStatic(t, pts, TxLink, []int{1, 2}, 2, seed)
		tn.runRounds(2 * n)
		tree := tn.tree()
		for i := 1; i < n; i++ {
			p := tree.Parent[i]
			if p < 0 {
				continue
			}
			if tn.protos[i].HopCount() != tn.protos[p].HopCount()+1 {
				t.Logf("seed %d: node %d hop %d, parent %d hop %d",
					seed, i, tn.protos[i].HopCount(), p, tn.protos[p].HopCount())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
