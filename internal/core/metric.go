// Package core implements the paper's primary contribution: the
// self-stabilizing shortest-path spanning tree (SS-SPST) multicast
// protocol family with pluggable cost metrics, including the proposed
// energy-aware node-based metric with overhearing (discard) cost,
// SS-SPST-E.
//
// One Protocol instance runs per node. Nodes periodically broadcast
// beacons carrying their tree state; every node stabilizes locally from
// its neighbour table, so the tree converges top-down (root first, one
// level per beacon round) from any initial or faulty state — the
// self-stabilization property proved in the paper's §5.
package core

import (
	"math"
	"sort"

	"repro/internal/energy"
)

// Variant selects the cost metric that weights the tree; the paper's four
// protocol flavours.
type Variant int

const (
	// Hop is plain SS-SPST: minimize hop count from the root.
	Hop Variant = iota
	// TxLink is SS-SPST-T: minimize summed per-link transmission energy.
	TxLink
	// Farthest is SS-SPST-F: node-based metric — the cost of a node is
	// the energy to reach its costliest (farthest) child plus reception
	// energy at each tree child.
	Farthest
	// EnergyAware is SS-SPST-E, the paper's proposal: Farthest plus the
	// discard energy of every non-tree neighbour inside the node's
	// power-controlled transmission range.
	EnergyAware
	// MST is the self-stabilizing minimum-spanning-tree companion
	// protocol the paper cites (Gupta & Srimani, JPDC 2003, its ref
	// [14]): costs accumulate by maximum rather than sum, so the
	// stabilized tree minimizes the costliest link on every root path —
	// the minimax property whose optimal paths run along the MST.
	MST
)

var variantNames = [...]string{"SS-SPST", "SS-SPST-T", "SS-SPST-F", "SS-SPST-E", "SS-MST"}

// String implements fmt.Stringer using the paper's protocol names.
func (v Variant) String() string {
	if int(v) < len(variantNames) {
		return variantNames[v]
	}
	return "SS-SPST-?"
}

// Accumulate combines a parent's advertised cost with a join delta into
// the child's path cost: additive for the SPST family, maximum for the
// minimax MST variant.
func (v Variant) Accumulate(parentCost, delta float64) float64 {
	if v == MST {
		if parentCost > delta {
			return parentCost
		}
		return delta
	}
	return parentCost + delta
}

// NeedsNeighborDists reports whether beacons must carry the sender's
// neighbour-distance vector. Only SS-SPST-E needs it (to evaluate the
// discard term at prospective children), which is why the paper observes
// SS-SPST-E has slightly larger control overhead.
func (v Variant) NeedsNeighborDists() bool { return v == EnergyAware }

// Metric evaluates join costs for one variant. It is a pure function of
// the energy model plus per-call arguments, so tests exercise it directly.
type Metric struct {
	Variant Variant
	Model   energy.Model
	// DataBytes is the frame size the metric prices transmissions at (the
	// data frame size, since the tree exists to carry data).
	DataBytes int
	// HopPenaltyFrac regularizes SS-SPST-E's join cost with a small
	// per-hop charge (fraction of Erx). Without it, joins inside a
	// parent's existing coverage are exactly free and the tree grows
	// arbitrarily deep chains whose compounded per-hop loss erases the
	// energy win; a deeper tree is also the latency cost the paper
	// already concedes, so the regularizer only trims the pathological
	// tail. Zero disables.
	HopPenaltyFrac float64
}

// erx returns the constant reception energy for one data frame.
func (m Metric) erx() float64 { return m.Model.RxEnergy(m.DataBytes, 0) }

// etx returns the transmission energy for one data frame at range r.
// r <= 0 (no children, radio silent) costs zero.
func (m Metric) etx(r float64) float64 {
	if r <= 0 {
		return 0
	}
	return m.Model.TxEnergy(m.DataBytes, r)
}

// coverCount returns how many of the (sorted ascending) neighbour
// distances fall within range r.
func coverCount(sortedDists []float64, r float64) int {
	return sort.SearchFloat64s(sortedDists, r+1e-9)
}

// JoinDelta returns δ(u,v): the increase in node u's energy cost if v
// joins u as a child.
//
//   - d: distance from u to v
//   - uRange: u's current power-controlled range (max distance to its
//     present tree children; 0 if u has none)
//   - uChildren: u's current tree child count
//   - uNbrDists: u's neighbour distances, sorted ascending (used only by
//     EnergyAware; may be nil otherwise)
//
// Per variant:
//
//	Hop:         δ = 1
//	TxLink:      δ = Etx(d)                      (link metric, eq. 1)
//	Farthest:    δ = ΔEtx + Erx                  (node metric, eq. 2)
//	EnergyAware: δ = ΔEtx + ΔCover·Erx           (eqs. 2+3 combined, eq. 4)
//
// where ΔEtx = Etx(max(uRange,d)) − Etx(uRange) and ΔCover is the number
// of additional neighbours of u that fall inside the enlarged range —
// every one of them pays reception energy, whether it is a tree child
// (useful) or a bystander (discard). When d ≤ uRange the join is free
// under EnergyAware: the wireless multicast advantage.
func (m Metric) JoinDelta(d, uRange float64, uChildren int, uNbrDists []float64) float64 {
	if d > m.Model.MaxRange {
		return math.Inf(1)
	}
	switch m.Variant {
	case Hop:
		return 1
	case TxLink, MST:
		return m.etx(d)
	case Farthest:
		newRange := math.Max(uRange, d)
		return m.etx(newRange) - m.etx(uRange) + m.erx()
	case EnergyAware:
		newRange := math.Max(uRange, d)
		dEtx := m.etx(newRange) - m.etx(uRange)
		dCover := coverCount(uNbrDists, newRange) - coverCount(uNbrDists, uRange)
		if uRange <= 0 && dCover == 0 {
			// u's radio turns on for the first time; at minimum v itself
			// receives (v may not appear in u's advertised neighbour list
			// yet if the link is new).
			dCover = 1
		}
		return dEtx + (float64(dCover)+m.HopPenaltyFrac)*m.erx()
	default:
		panic("core: unknown variant")
	}
}

// NodeCost returns E(u): node u's own energy cost given its current
// forwarding range, child count and neighbour distances. The root
// advertises this as its tree cost c(root); for Hop and TxLink the root
// cost is zero (those metrics accumulate purely over links/hops).
func (m Metric) NodeCost(uRange float64, uChildren int, uNbrDists []float64) float64 {
	switch m.Variant {
	case Hop, TxLink, MST:
		return 0
	case Farthest:
		if uChildren == 0 {
			return 0
		}
		return m.etx(uRange) + float64(uChildren)*m.erx()
	case EnergyAware:
		if uChildren == 0 {
			return 0
		}
		return m.etx(uRange) + float64(coverCount(uNbrDists, uRange))*m.erx()
	default:
		panic("core: unknown variant")
	}
}

// DefaultHysteresis returns the parent-switch damping for the variant:
// the relative cost improvement required before abandoning the current
// parent. SS-SPST-F runs undamped — the paper attributes its poor packet
// delivery to exactly this "dynamic nature which causes unstability" —
// while the hop metric needs none (integer costs are naturally stable).
func (v Variant) DefaultHysteresis() float64 {
	switch v {
	case Hop:
		return 0
	case TxLink:
		return 0.05
	case Farthest:
		return 0
	case EnergyAware:
		return 0.1
	case MST:
		return 0.05
	default:
		return 0
	}
}
