package core

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

func TestMSTAccumulate(t *testing.T) {
	if got := MST.Accumulate(5, 3); got != 5 {
		t.Errorf("max accumulate = %v", got)
	}
	if got := MST.Accumulate(2, 7); got != 7 {
		t.Errorf("max accumulate = %v", got)
	}
	if got := TxLink.Accumulate(2, 7); got != 9 {
		t.Errorf("additive accumulate = %v", got)
	}
	if got := Hop.Accumulate(3, 1); got != 4 {
		t.Errorf("hop accumulate = %v", got)
	}
}

func TestMSTConvergesToSpanningTree(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		r := xrand.New(seed)
		pts := connectedRandomPositions(r, 25, 550, 250)
		tn := buildStatic(t, pts, MST, []int{3, 7}, 2, seed)
		tn.runRounds(2 * len(pts))
		tree := tn.tree()
		all := make([]int, len(pts))
		for i := range all {
			all[i] = i
		}
		if !tree.Valid() || !tree.Spans(all) {
			t.Fatalf("seed %d: SS-MST tree invalid/non-spanning: %v", seed, tree.Parent)
		}
		// Closure.
		before := StateVector(tn.protos)
		tn.runRounds(10)
		after := StateVector(tn.protos)
		for i := range before {
			if before[i] != after[i] {
				t.Errorf("seed %d: SS-MST moved after stabilization", seed)
				break
			}
		}
	}
}

// TestMSTMinimaxProperty: the stabilized SS-MST tree's root paths minimize
// the maximum link energy — compare each node's bottleneck against the
// graph-optimal minimax value (computed by a Dijkstra variant).
func TestMSTMinimaxProperty(t *testing.T) {
	r := xrand.New(9)
	pts := connectedRandomPositions(r, 25, 550, 250)
	tn := buildStatic(t, pts, MST, []int{3}, 2, 9)
	tn.runRounds(60)
	tree := tn.tree()

	em := tn.protos[0].metric
	// Graph-optimal minimax via modified Dijkstra (costs combine by max).
	n := len(pts)
	opt := make([]float64, n)
	done := make([]bool, n)
	for i := range opt {
		opt[i] = math.Inf(1)
	}
	opt[0] = 0
	for {
		v, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !done[i] && opt[i] < best {
				v, best = i, opt[i]
			}
		}
		if v == -1 {
			break
		}
		done[v] = true
		for _, u := range tn.graph.Neighbors(v) {
			w := math.Max(best, em.etx(tn.graph.Dist(v, u)))
			if w < opt[u] {
				opt[u] = w
			}
		}
	}

	// Tree bottleneck per node.
	for i := 1; i < n; i++ {
		bottleneck := 0.0
		v := i
		for v != 0 {
			p := tree.Parent[v]
			if p < 0 {
				t.Fatalf("node %d detached", i)
			}
			if w := em.etx(tn.pos[v].Dist(tn.pos[p])); w > bottleneck {
				bottleneck = w
			}
			v = p
		}
		// Allow slack for beacon-measured distances and greedy ties.
		if bottleneck > opt[i]*1.1+1e-12 {
			t.Errorf("node %d: tree bottleneck %.4g > optimal minimax %.4g", i, bottleneck, opt[i])
		}
	}
}

func TestMSTAvoidsLongLinks(t *testing.T) {
	// 0 —120m— 1 —120m— 2, with 0-2 (240 m) still within range: the hop
	// metric hangs 2 directly off the source; SS-MST must relay through 1
	// to keep the bottleneck link at 120 m.
	pts := []geom.Point{{X: 0}, {X: 120}, {X: 240}}
	hop := buildStatic(t, pts, Hop, []int{2}, 2, 1)
	mst := buildStatic(t, pts, MST, []int{2}, 2, 1)
	hop.runRounds(10)
	mst.runRounds(10)
	if p, _ := hop.protos[2].TreeParent(); p != 0 {
		t.Errorf("hop metric should take the direct link, parent = %v", p)
	}
	if p, _ := mst.protos[2].TreeParent(); p != 1 {
		t.Errorf("SS-MST should relay through 1, parent = %v", p)
	}
}
