package core

import (
	"testing"

	"repro/internal/xrand"
)

// TestConvergenceStatic verifies the paper's convergence lemma observable:
// on a static connected topology every variant reaches a valid spanning
// tree within a bounded number of beacon rounds. Hop, TxLink and
// EnergyAware must then satisfy strict closure (no further moves).
// Farthest — whose "dynamic nature causes unstability" per the paper's own
// results — is held to a weaker bar: the tree stays valid and spanning,
// and residual churn is bounded.
func TestConvergenceStatic(t *testing.T) {
	for _, variant := range []Variant{Hop, TxLink, Farthest, EnergyAware} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 5; seed++ {
				r := xrand.New(seed)
				pts := connectedRandomPositions(r, 30, 600, 250)
				tn := buildStatic(t, pts, variant, []int{3, 7, 11, 15, 19}, 2, seed)

				// Generous budget: 2N rounds (the node-based metrics'
				// randomized serial-daemon gating slows best-response).
				tn.runRounds(2 * len(pts))
				tree := tn.tree()
				if !tree.Valid() {
					t.Fatalf("seed %d: tree invalid after %d rounds: %+v", seed, 2*len(pts), tree.Parent)
				}
				all := make([]int, len(pts))
				for i := range all {
					all[i] = i
				}
				if !tree.Spans(all) {
					t.Fatalf("seed %d: tree does not span all nodes: %+v", seed, tree.Parent)
				}

				if variant == Farthest {
					// F never quiesces (undamped by design, matching the
					// paper's instability findings); require only that
					// the tree stays valid and spanning under churn,
					// with a generous runaway bound.
					changesBefore := totalChanges(tn.protos)
					tn.runRounds(10)
					churn := totalChanges(tn.protos) - changesBefore
					if churn > 15*len(pts) {
						t.Errorf("seed %d: F churn runaway: %d switches in 10 rounds", seed, churn)
					}
					tree = tn.tree()
					if !tree.Valid() || !tree.Spans(all) {
						t.Errorf("seed %d: F tree degraded under churn", seed)
					}
					continue
				}

				// Closure: a further window of rounds must not move the tree.
				before := StateVector(tn.protos)
				tn.runRounds(10)
				after := StateVector(tn.protos)
				for i := range before {
					if before[i] != after[i] {
						t.Errorf("seed %d: state moved after stabilization at slot %d: %d -> %d",
							seed, i, before[i], after[i])
						break
					}
				}
			}
		})
	}
}

func totalChanges(protos []*Protocol) int {
	n := 0
	for _, p := range protos {
		n += p.ParentChanges
	}
	return n
}

// TestConvergenceRoundsDiagnostic logs how many rounds each variant needs
// and the resulting tree shape; it fails only on gross pathologies (no
// spanning tree after N rounds is covered by TestConvergenceStatic).
func TestConvergenceRoundsDiagnostic(t *testing.T) {
	for _, variant := range []Variant{Hop, TxLink, Farthest, EnergyAware} {
		r := xrand.New(7)
		pts := connectedRandomPositions(r, 50, 750, 250)
		tn := buildStatic(t, pts, variant, []int{5, 10, 15, 20, 25}, 2, 7)
		stable := -1
		var prev []int64
		for round := 1; round <= 60; round++ {
			tn.runRounds(1)
			cur := StateVector(tn.protos)
			if prev != nil && equalVec(prev, cur) {
				if stable == -1 {
					stable = round
				}
			} else {
				stable = -1
			}
			prev = cur
		}
		tree := tn.tree()
		depths := tree.Depths()
		maxDepth, moves := 0, 0
		for _, d := range depths {
			if d > maxDepth {
				maxDepth = d
			}
		}
		for _, p := range tn.protos {
			moves += p.ParentChanges
		}
		t.Logf("%-10s stableSince=%d maxDepth=%d totalParentChanges=%d valid=%v",
			variant, stable, maxDepth, moves, tree.Valid())
	}
}

func equalVec(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
