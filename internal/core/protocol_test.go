package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// chain builds a 4-node line: 0 (source) — 1 — 2 — 3, 100 m apart, with
// node 3 the only member.
func chainNet(t *testing.T, variant Variant) *testNet {
	pts := []geom.Point{{X: 0}, {X: 100}, {X: 200}, {X: 300}}
	return buildStatic(t, pts, variant, []int{3}, 2, 1)
}

func TestChainStabilizes(t *testing.T) {
	for _, v := range []Variant{Hop, TxLink, Farthest, EnergyAware} {
		tn := chainNet(t, v)
		tn.runRounds(10)
		tree := tn.tree()
		if !tree.Valid() {
			t.Fatalf("%v: invalid tree %v", v, tree.Parent)
		}
		// Physical necessity: with range 250, node 3 must route via 1 or 2.
		d := tree.Depths()
		if d[3] < 2 {
			t.Errorf("%v: node 3 depth %d; cannot be reached in one hop", v, d[3])
		}
	}
}

func TestPruningFlags(t *testing.T) {
	tn := chainNet(t, Hop)
	tn.runRounds(10)
	// Member 3 and every node on its parent chain must carry the
	// downstream flag.
	v := 3
	for hops := 0; v != 0 && hops < 5; hops++ {
		if !tn.protos[v].Downstream() {
			t.Errorf("node %d on the member path not flagged downstream", v)
		}
		parent, ok := tn.protos[v].TreeParent()
		if !ok {
			t.Fatalf("node %d has no parent", v)
		}
		v = int(parent)
	}
	if !tn.protos[0].Downstream() {
		t.Error("source must be flagged downstream")
	}
}

func TestPrunedBranchSendsNothing(t *testing.T) {
	// A 4-node star: source 0 with children 1 (member) and 2-3 branch
	// with no members. The branch must prune: nodes 2 and 3 never
	// forward, and after stabilization 3's subtree flag is off.
	pts := []geom.Point{{X: 0}, {X: 100}, {X: 0, Y: 100}, {X: 0, Y: 200}}
	tn := buildStatic(t, pts, Hop, []int{1}, 2, 1)
	tn.runRounds(10)
	if tn.protos[1].Downstream() != true {
		t.Error("member must be downstream")
	}
	if tn.protos[3].Downstream() {
		t.Error("memberless leaf flagged downstream")
	}
	if r := tn.protos[3].forwardRange(); r != 0 {
		t.Errorf("pruned leaf has forward range %v", r)
	}
}

func TestNeighborExpiry(t *testing.T) {
	tn := chainNet(t, Hop)
	tn.runRounds(5)
	p1 := tn.protos[1]
	if p1.NeighborCount() == 0 {
		t.Fatal("no neighbours learned")
	}
	// Inject staleness: pretend a long silence by advancing the clock via
	// empty rounds with beaconing disabled is impractical here; instead
	// verify the TTL math directly.
	cfg := p1.Config()
	if cfg.NeighborTTL != 2.5*cfg.BeaconInterval {
		t.Errorf("default TTL = %v, want 2.5 intervals", cfg.NeighborTTL)
	}
}

func TestSourceState(t *testing.T) {
	tn := chainNet(t, EnergyAware)
	tn.runRounds(6)
	src := tn.protos[0]
	if src.HopCount() != 0 {
		t.Errorf("source hop = %d", src.HopCount())
	}
	if parent, ok := src.TreeParent(); !ok || parent != 0 {
		t.Errorf("source TreeParent = %v,%v", parent, ok)
	}
}

func TestTreeParentReporting(t *testing.T) {
	tn := chainNet(t, Hop)
	tn.runRounds(10)
	parent, ok := tn.protos[3].TreeParent()
	if !ok {
		t.Fatal("stabilized node reports no parent")
	}
	if parent != 2 && parent != 1 {
		t.Errorf("node 3 parent %v, want a chain predecessor", parent)
	}
}

func TestDataDeliveryOverChain(t *testing.T) {
	tn := chainNet(t, Hop)
	tn.runRounds(6) // stabilize first
	src := tn.net.Nodes[0]
	for i := 0; i < 20; i++ {
		tn.net.Collector.DataSent(1)
		src.Slots[0].Proto.Originate()
		tn.sim.Run(tn.sim.Now() + 0.1)
	}
	tn.runRounds(2)
	s := tn.net.Summarize()
	if s.PDR < 0.9 {
		t.Errorf("chain delivery PDR = %v", s.PDR)
	}
	if s.AvgDelayS <= 0 || s.AvgDelayS > 0.2 {
		t.Errorf("delay = %v", s.AvgDelayS)
	}
}

func TestOriginateWithoutChildrenIsSilent(t *testing.T) {
	// A source with no downstream children transmits nothing (service
	// unavailable until the tree forms).
	pts := []geom.Point{{X: 0}, {X: 100}}
	tn := buildStatic(t, pts, Hop, []int{1}, 2, 1)
	// No rounds run: no beacons exchanged yet.
	tn.net.Nodes[0].Slots[0].Proto.Originate()
	tn.sim.Run(0.5)
	if got := tn.net.Medium.Stats().DataBytes; got != 0 {
		t.Errorf("unformed tree still transmitted %d data bytes", got)
	}
}

func TestConfigNormalize(t *testing.T) {
	cfg := Config{Variant: EnergyAware}.Normalize(50)
	if cfg.BeaconInterval != 2 || cfg.MaxHops != 50 || cfg.RangeMargin != 1.15 {
		t.Errorf("defaults: %+v", cfg)
	}
	if cfg.Hysteresis != 0 {
		// Hysteresis zero means "variant default" is resolved by New, not
		// Normalize-with-zero (0 is a valid explicit value elsewhere).
		t.Logf("normalize keeps hysteresis %v", cfg.Hysteresis)
	}
	p := New(Config{Variant: EnergyAware}, 50)
	if p.Config().Hysteresis != EnergyAware.DefaultHysteresis() {
		t.Errorf("New did not apply variant hysteresis: %v", p.Config().Hysteresis)
	}
	if p.Config().SwitchProb != 0.5 {
		t.Errorf("SwitchProb default = %v", p.Config().SwitchProb)
	}
}

func TestBeaconBytes(t *testing.T) {
	base := beaconBytes(0, 0)
	if beaconBytes(10, 0) != base+10 {
		t.Error("per-neighbour beacon cost wrong")
	}
	if beaconBytes(0, 5) != base+5 {
		t.Error("per-hop path cost wrong")
	}
}

// TestBeaconSizeDifference verifies the paper's observation that
// SS-SPST-E pays more control bytes than SS-SPST on identical scenarios.
func TestBeaconSizeDifference(t *testing.T) {
	r := xrand.New(3)
	pts := connectedRandomPositions(r, 20, 500, 250)
	hop := buildStatic(t, pts, Hop, []int{5}, 2, 3)
	e := buildStatic(t, pts, EnergyAware, []int{5}, 2, 3)
	hop.runRounds(10)
	e.runRounds(10)
	hb := hop.net.Medium.Stats().ControlBytes
	eb := e.net.Medium.Stats().ControlBytes
	if eb <= hb {
		t.Errorf("SS-SPST-E control bytes (%d) not above SS-SPST (%d)", eb, hb)
	}
}

func TestLoopGuardHopCapMode(t *testing.T) {
	// Hop-cap mode must also converge on a static topology (it only
	// reacts slower to transient loops).
	r := xrand.New(4)
	pts := connectedRandomPositions(r, 20, 500, 250)
	n := len(pts)
	tnCfg := Config{Variant: Hop, BeaconInterval: 2, LoopGuard: LoopGuardHopCap}
	tn := buildStaticWithConfig(t, pts, tnCfg, []int{3, 7}, 4)
	tn.runRounds(2 * n)
	tree := tn.tree()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	if !tree.Valid() || !tree.Spans(all) {
		t.Errorf("hop-cap mode did not build a spanning tree: %v", tree.Parent)
	}
}

func TestSnapshot(t *testing.T) {
	tn := chainNet(t, Hop)
	tn.runRounds(8)
	s := tn.protos[2].Snapshot()
	if !s.HasParent || s.Hop < 1 {
		t.Errorf("snapshot %+v", s)
	}
}

func TestStateVector(t *testing.T) {
	tn := chainNet(t, Hop)
	tn.runRounds(8)
	v := StateVector(tn.protos)
	if len(v) != 2*len(tn.protos) {
		t.Errorf("vector length %d", len(v))
	}
}

func TestBuildTreeDetached(t *testing.T) {
	protos := []*Protocol{New(Config{}, 3), New(Config{}, 3), New(Config{}, 3)}
	tree := BuildTree(protos, 0)
	if tree.Parent[1] != topology.Detached || tree.Parent[2] != topology.Detached {
		t.Errorf("unstarted protocols should be detached: %v", tree.Parent)
	}
}
