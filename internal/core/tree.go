package core

import (
	"repro/internal/packet"
	"repro/internal/topology"
)

// Snapshot is one node's externally visible tree state, used by tests,
// examples and the availability sampler.
type Snapshot struct {
	Parent     packet.NodeID
	HasParent  bool
	Cost       float64
	Hop        int
	Downstream bool
	Range      float64
}

// Snapshot returns the node's current state.
func (p *Protocol) Snapshot() Snapshot {
	return Snapshot{
		Parent:     p.parentOrBroadcast(),
		HasParent:  p.hasParent,
		Cost:       p.cost,
		Hop:        p.hop,
		Downstream: p.downstream,
		Range:      p.curRange,
	}
}

// BuildTree assembles the distributed parent pointers of a protocol fleet
// into a topology.Tree for oracle validation. protos[i] must be node i's
// instance; root is the source's index.
func BuildTree(protos []*Protocol, root int) topology.Tree {
	parent := make([]int, len(protos))
	for i, p := range protos {
		switch {
		case i == root:
			parent[i] = -1
		case p.hasParent:
			parent[i] = int(p.parent)
		default:
			parent[i] = topology.Detached
		}
	}
	return topology.Tree{Root: root, Parent: parent}
}

// TotalTreeEnergy sums the per-node metric cost of the current tree: each
// node's NodeCost given its downstream children — the global objective the
// paper's convergence lemma argues decreases every round.
func TotalTreeEnergy(protos []*Protocol) float64 {
	total := 0.0
	for _, p := range protos {
		cs := p.deriveChildren()
		total += p.metric.NodeCost(cs.maxDist, cs.count, p.appendNbrDists(nil))
	}
	return total
}

// StateVector packs every node's (parent, hop) into a comparable slice;
// two equal vectors mean the system took no stabilizing move between the
// snapshots — the closure property's observable.
func StateVector(protos []*Protocol) []int64 {
	v := make([]int64, 0, 2*len(protos))
	for _, p := range protos {
		par := int64(-1)
		if p.hasParent {
			par = int64(p.parent)
		}
		v = append(v, par, int64(p.hop))
	}
	return v
}
