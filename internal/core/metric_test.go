package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/energy"
)

func testMetric(v Variant) Metric {
	return Metric{Variant: v, Model: energy.Default(), DataBytes: 566}
}

func TestHopDelta(t *testing.T) {
	m := testMetric(Hop)
	if d := m.JoinDelta(50, 0, 0, nil); d != 1 {
		t.Errorf("hop delta = %v", d)
	}
	if d := m.JoinDelta(240, 200, 5, nil); d != 1 {
		t.Errorf("hop delta must ignore geometry: %v", d)
	}
}

func TestTxLinkDelta(t *testing.T) {
	m := testMetric(TxLink)
	want := m.Model.TxEnergy(566, 120)
	if d := m.JoinDelta(120, 0, 0, nil); math.Abs(d-want) > 1e-15 {
		t.Errorf("T delta = %v, want %v", d, want)
	}
	// Link metric is range-independent: the paper's point that it misses
	// the wireless multicast advantage.
	if m.JoinDelta(120, 200, 3, nil) != m.JoinDelta(120, 0, 0, nil) {
		t.Error("T delta must not depend on the parent's existing range")
	}
}

func TestFarthestDelta(t *testing.T) {
	m := testMetric(Farthest)
	erx := m.Model.RxEnergy(566, 0)
	// Join inside the parent's existing range: only the new reception.
	if d := m.JoinDelta(100, 150, 2, nil); math.Abs(d-erx) > 1e-15 {
		t.Errorf("in-range F delta = %v, want Erx=%v", d, erx)
	}
	// Join beyond it: range extension plus reception.
	want := m.Model.TxEnergy(566, 200) - m.Model.TxEnergy(566, 150) + erx
	if d := m.JoinDelta(200, 150, 2, nil); math.Abs(d-want) > 1e-15 {
		t.Errorf("extending F delta = %v, want %v", d, want)
	}
}

func TestEnergyAwareDelta(t *testing.T) {
	m := testMetric(EnergyAware)
	erx := m.Model.RxEnergy(566, 0)
	nbrs := []float64{30, 90, 140, 210}
	// Extending range 100→150 newly covers the neighbour at 140 — plus
	// the joining child itself (at 150).
	d := m.JoinDelta(150, 100, 1, nbrs)
	dEtx := m.Model.TxEnergy(566, 150) - m.Model.TxEnergy(566, 100)
	want := dEtx + 2*erx // 140-neighbour + 150-child... child at 150 not in nbr list
	// The child at 150 is not in the advertised list, so only the 140
	// bystander is counted; recompute precisely via coverCount.
	dCover := coverCount(nbrs, 150) - coverCount(nbrs, 100)
	want = dEtx + float64(dCover)*erx
	if math.Abs(d-want) > 1e-15 {
		t.Errorf("E delta = %v, want %v", d, want)
	}
	// Fully inside the existing range and coverage: free ride.
	if d := m.JoinDelta(80, 100, 1, nbrs); d != 0 {
		t.Errorf("in-coverage E join should be free, got %v", d)
	}
}

func TestEnergyAwareDeltaHopPenalty(t *testing.T) {
	m := testMetric(EnergyAware)
	m.HopPenaltyFrac = 0.5
	erx := m.Model.RxEnergy(566, 0)
	free := testMetric(EnergyAware).JoinDelta(80, 100, 1, []float64{30, 90})
	d := m.JoinDelta(80, 100, 1, []float64{30, 90})
	if math.Abs(d-(free+0.5*erx)) > 1e-15 {
		t.Errorf("penalized delta = %v, want base %v + %v", d, free, 0.5*erx)
	}
}

func TestEnergyAwareFirstChild(t *testing.T) {
	m := testMetric(EnergyAware)
	erx := m.Model.RxEnergy(566, 0)
	// Parent with no children and no advertised neighbours: turning the
	// radio on must charge at least the child's reception.
	d := m.JoinDelta(100, 0, 0, nil)
	want := m.Model.TxEnergy(566, 100) + erx
	if math.Abs(d-want) > 1e-15 {
		t.Errorf("first-child delta = %v, want %v", d, want)
	}
}

func TestUnreachableDelta(t *testing.T) {
	for _, v := range []Variant{Hop, TxLink, Farthest, EnergyAware} {
		m := testMetric(v)
		if d := m.JoinDelta(m.Model.MaxRange+1, 0, 0, nil); !math.IsInf(d, 1) {
			t.Errorf("%v: out-of-range join delta = %v, want +Inf", v, d)
		}
	}
}

func TestNodeCost(t *testing.T) {
	erx := testMetric(Farthest).Model.RxEnergy(566, 0)
	for _, v := range []Variant{Hop, TxLink} {
		if c := testMetric(v).NodeCost(150, 3, nil); c != 0 {
			t.Errorf("%v root cost = %v, want 0", v, c)
		}
	}
	f := testMetric(Farthest)
	want := f.Model.TxEnergy(566, 150) + 3*erx
	if c := f.NodeCost(150, 3, nil); math.Abs(c-want) > 1e-15 {
		t.Errorf("F node cost = %v, want %v", c, want)
	}
	e := testMetric(EnergyAware)
	nbrs := []float64{50, 100, 200}
	want = e.Model.TxEnergy(566, 150) + 2*erx // covers neighbours at 50 and 100
	if c := e.NodeCost(150, 1, nbrs); math.Abs(c-want) > 1e-15 {
		t.Errorf("E node cost = %v, want %v", c, want)
	}
	// Leaf nodes (no children) cost nothing under the node metrics.
	if testMetric(Farthest).NodeCost(0, 0, nil) != 0 || e.NodeCost(0, 0, nbrs) != 0 {
		t.Error("leaf node cost must be zero")
	}
}

func TestCoverCount(t *testing.T) {
	ds := []float64{10, 20, 30, 40}
	cases := []struct {
		r    float64
		want int
	}{{5, 0}, {10, 1}, {25, 2}, {40, 4}, {100, 4}}
	for _, c := range cases {
		if got := coverCount(ds, c.r); got != c.want {
			t.Errorf("coverCount(%v) = %d, want %d", c.r, got, c.want)
		}
	}
	if coverCount(nil, 50) != 0 {
		t.Error("empty list should cover nothing")
	}
}

func TestDeltaNonNegativeQuick(t *testing.T) {
	// Join deltas are never negative for any variant: adding a child can
	// only add energy (Lemma 1 depends on this).
	f := func(d, uRange float64, children int, nbrSeed uint64) bool {
		d = 1 + math.Mod(math.Abs(d), 249)
		uRange = math.Mod(math.Abs(uRange), 250)
		if children < 0 {
			children = -children
		}
		children %= 10
		nbrs := []float64{30, 60, 90, 120, 150, 180, 210, 240}[:nbrSeed%9]
		for _, v := range []Variant{Hop, TxLink, Farthest, EnergyAware} {
			if testMetric(v).JoinDelta(d, uRange, children, nbrs) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestDeltaMonotonicInDistanceQuick(t *testing.T) {
	// For fixed parent state, a farther child never costs less (strict
	// for T beyond numeric noise; non-strict for the node metrics).
	f := func(a, b, uRange float64) bool {
		a = 1 + math.Mod(math.Abs(a), 249)
		b = 1 + math.Mod(math.Abs(b), 249)
		if a > b {
			a, b = b, a
		}
		uRange = math.Mod(math.Abs(uRange), 250)
		nbrs := []float64{40, 80, 120, 160, 200, 240}
		for _, v := range []Variant{TxLink, Farthest, EnergyAware} {
			m := testMetric(v)
			if m.JoinDelta(b, uRange, 1, nbrs) < m.JoinDelta(a, uRange, 1, nbrs)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{
		Hop: "SS-SPST", TxLink: "SS-SPST-T", Farthest: "SS-SPST-F", EnergyAware: "SS-SPST-E",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
}

func TestNeedsNeighborDists(t *testing.T) {
	if Hop.NeedsNeighborDists() || TxLink.NeedsNeighborDists() || Farthest.NeedsNeighborDists() {
		t.Error("only SS-SPST-E carries neighbour distances")
	}
	if !EnergyAware.NeedsNeighborDists() {
		t.Error("SS-SPST-E must carry neighbour distances")
	}
}
