package core

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/xrand"
)

// TestDebugOscillation traces parent changes round by round on a static
// network to diagnose convergence failures. Skipped unless -v with focus;
// it never fails.
func TestDebugOscillation(t *testing.T) {
	r := xrand.New(3)
	pts := connectedRandomPositions(r, 30, 600, 250)
	tn := buildStatic(t, pts, EnergyAware, []int{3, 7, 11, 15, 19}, 2, 3)
	for i, p := range tn.protos {
		i := i
		p.TraceSwitch = func(from, to packet.NodeID, cc, cd, bc, bd float64) {
			t.Logf("  t=%.0f n%d: %v->%v curCand=%.4g curDelta=%.4g bestCand=%.4g bestDelta=%.4g",
				tn.sim.Now(), i, from, to, cc*1e3, cd*1e3, bc*1e3, bd*1e3)
		}
	}
	prevParents := make([]int64, len(pts))
	for round := 1; round <= 40; round++ {
		tn.runRounds(1)
		changes := ""
		for i, p := range tn.protos {
			par := int64(-1)
			if p.hasParent {
				par = int64(p.parent)
			}
			if par != prevParents[i] && round > 1 {
				changes += " " + itoa(i) + ":" + itoa(int(prevParents[i])) + "->" + itoa(int(par))
			}
			prevParents[i] = par
		}
		if changes != "" {
			t.Logf("round %2d:%s", round, changes)
		}
	}
}

func itoa(v int) string {
	if v < 0 {
		return "-"
	}
	s := ""
	if v == 0 {
		return "0"
	}
	for v > 0 {
		s = string(rune('0'+v%10)) + s
		v /= 10
	}
	return s
}
