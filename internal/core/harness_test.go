package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/medium"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// testNet is a fully assembled static-topology network running one SS-SPST
// variant, for convergence and closure tests.
type testNet struct {
	sim    *sim.Simulator
	net    *netsim.Network
	protos []*Protocol
	pos    []geom.Point
	graph  *topology.Graph
	cfg    Config
}

// buildStatic assembles a static network at the given positions. members
// lists receiver indices; node 0 is the source.
func buildStatic(t testing.TB, positions []geom.Point, variant Variant, members []int, beacon float64, seed uint64) *testNet {
	t.Helper()
	return buildStaticWithConfig(t, positions, Config{Variant: variant, BeaconInterval: beacon}, members, seed)
}

// buildStaticWithConfig is buildStatic with full protocol-config control.
func buildStaticWithConfig(t testing.TB, positions []geom.Point, cfg Config, members []int, seed uint64) *testNet {
	t.Helper()
	n := len(positions)
	s := sim.New(seed)
	tracker := mobility.NewTracker(n, mobility.Static{Points: positions})
	mcfg := medium.DefaultConfig()
	mcfg.LossProb = 0 // deterministic links for convergence proofs
	mem := make([]packet.NodeID, len(members))
	for i, m := range members {
		mem[i] = packet.NodeID(m)
	}
	net := netsim.New(s, tracker, netsim.Config{
		N: n, Source: 0, Members: mem,
		Medium: mcfg, PayloadBytes: packet.DataPayload,
	})
	protos := make([]*Protocol, n)
	for i := 0; i < n; i++ {
		protos[i] = New(cfg, n)
		net.SetProtocol(packet.NodeID(i), protos[i])
	}
	net.Start()
	return &testNet{
		sim: s, net: net, protos: protos, pos: positions,
		graph: topology.NewGraph(positions, mcfg.Energy.MaxRange),
		cfg:   protos[0].Config(),
	}
}

// connectedRandomPositions draws n uniform points in a side×side square,
// rejecting topologies that are not connected at the given radio range.
func connectedRandomPositions(r *xrand.RNG, n int, side, radioRange float64) []geom.Point {
	for tries := 0; tries < 200; tries++ {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: r.Range(0, side), Y: r.Range(0, side)}
		}
		if topology.NewGraph(pts, radioRange).Connected() {
			return pts
		}
	}
	panic("could not draw a connected topology; lower side or raise range")
}

// runRounds advances the simulation by k beacon intervals.
func (tn *testNet) runRounds(k int) {
	tn.sim.Run(tn.sim.Now() + float64(k)*tn.cfg.BeaconInterval)
}

// tree returns the current distributed tree.
func (tn *testNet) tree() topology.Tree { return BuildTree(tn.protos, 0) }
