package core

import (
	"math"
	"sort"

	"repro/internal/medium"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// CMax is the "detached" cost: strictly greater than any achievable tree
// cost, per the paper's convergence argument (a node not on the tree costs
// CMax; every stabilization step can only lower the global sum).
const CMax = 1e15

// LoopGuard selects the routing-loop countermeasure.
type LoopGuard int

const (
	// LoopGuardPathVector (default) carries the root path in beacons and
	// refuses parents whose path runs through the choosing node. Loops
	// are suppressed within one round. An extension beyond the paper.
	LoopGuardPathVector LoopGuard = iota
	// LoopGuardHopCap is the paper's Lemma-3 mechanism alone: loops
	// inflate hop counts round by round until they hit MaxHops and the
	// loop dissolves — up to N rounds of outage, which is a large part
	// of why the unstable SS-SPST-F delivers so poorly in the paper.
	LoopGuardHopCap
)

// Config parameterizes one SS-SPST protocol instance. Zero fields are
// filled with defaults by Normalize.
type Config struct {
	// Variant selects the cost metric (Hop/TxLink/Farthest/EnergyAware).
	Variant Variant
	// BeaconInterval is the paper's round length; 2 s in most experiments.
	BeaconInterval float64
	// BeaconJitter is the relative timer jitter avoiding phase-locked
	// beacons (and hence systematic collisions).
	BeaconJitter float64
	// NeighborTTL is how long a neighbour entry stays fresh without a
	// beacon; beyond it the link is treated as a fault (disconnection).
	NeighborTTL float64
	// MaxHops is the count-to-infinity bound: nodes whose advertised hop
	// count reaches it are ineligible as parents. The paper fixes it to
	// the network size N.
	MaxHops int
	// RangeMargin scales the power-controlled forwarding range above the
	// last measured costliest-child distance, absorbing movement between
	// beacons.
	RangeMargin float64
	// RangeMarginAbs adds a fixed headroom (metres) on top of
	// RangeMargin; it is what keeps short hops in deep energy-optimal
	// trees from escaping coverage between beacons.
	RangeMarginAbs float64
	// ForwardJitterMax is the maximum random delay before re-forwarding a
	// data packet, decorrelating sibling transmissions.
	ForwardJitterMax float64
	// Hysteresis is the relative cost improvement required to abandon the
	// current parent; negative means "use the variant default".
	Hysteresis float64
	// SwitchProb gates voluntary parent switches under the node-based
	// metrics (serial-daemon emulation; see stabilize). 0 → default 0.5.
	SwitchProb float64
	// HopPenaltyFrac regularizes SS-SPST-E's otherwise-free in-coverage
	// joins (fraction of Erx per hop; see Metric.HopPenaltyFrac).
	// 0 → default 0.3; negative → disabled.
	HopPenaltyFrac float64
	// MakeBeforeBreak keeps forwarding data from the previous parent for
	// one beacon interval after a switch, bridging the round the new
	// parent needs to learn about us. This is an extension beyond the
	// paper (whose protocols suffer a full re-stabilization outage per
	// switch); it is off by default so the reproduction matches the
	// paper's per-switch delivery cost, and benchmarked as an ablation.
	MakeBeforeBreak bool
	// LoopGuard selects the loop countermeasure; the library defaults to
	// the fast path-vector guard, while the paper-reproduction scenarios
	// use the paper's own hop-cap (see internal/scenario).
	LoopGuard LoopGuard
	// DataBytes is the data frame size the metric prices.
	DataBytes int
	// JoinRetry enables the bounded retry/backoff for detached members: a
	// node that ends a beacon round without a parent schedules up to
	// JoinRetryMax extra rounds at exponentially backed-off delays, so a
	// join window lost to a fault burst costs a retry delay instead of
	// waiting out full beacon intervals while the burst recurs. Off by
	// default — the scenario layer enables it only for fault-injected
	// runs, keeping fault-free runs bit-identical with earlier builds.
	JoinRetry bool
	// JoinRetryBase is the first retry delay; 0 → BeaconInterval/4.
	JoinRetryBase float64
	// JoinRetryMax bounds retries per detachment episode; 0 → 4.
	JoinRetryMax int
}

// Normalize fills zero fields with defaults for an n-node network and
// returns the result.
func (c Config) Normalize(n int) Config {
	if c.BeaconInterval == 0 {
		c.BeaconInterval = 2
	}
	if c.BeaconJitter == 0 {
		c.BeaconJitter = 0.15
	}
	if c.NeighborTTL == 0 {
		c.NeighborTTL = 2.5 * c.BeaconInterval
	}
	if c.MaxHops == 0 {
		c.MaxHops = n
	}
	if c.RangeMargin == 0 {
		c.RangeMargin = 1.15
	}
	if c.RangeMarginAbs == 0 {
		c.RangeMarginAbs = 10
	}
	if c.ForwardJitterMax == 0 {
		c.ForwardJitterMax = 6e-3
	}
	if c.Hysteresis < 0 {
		c.Hysteresis = c.Variant.DefaultHysteresis()
	}
	if c.SwitchProb == 0 {
		c.SwitchProb = 0.5
	}
	switch {
	case c.HopPenaltyFrac == 0:
		c.HopPenaltyFrac = 1
	case c.HopPenaltyFrac < 0:
		c.HopPenaltyFrac = 0
	}
	if c.DataBytes == 0 {
		c.DataBytes = packet.DataPayload + packet.IPHeaderBytes + packet.MACHeaderBytes
	}
	if c.JoinRetryBase == 0 {
		c.JoinRetryBase = c.BeaconInterval / 4
	}
	if c.JoinRetryMax == 0 {
		c.JoinRetryMax = 4
	}
	return c
}

// Neighbor is one row of a node's neighbour table, refreshed by beacons.
type Neighbor struct {
	// used marks the row live; the table stores rows by value (indexed
	// by node id) and reuses slots instead of allocating per neighbour.
	used bool
	// lix is the row's position in the live-id list (swap-removed on
	// expiry).
	lix        int32
	ID         packet.NodeID
	Last       float64 // time of last beacon
	Dist       float64 // measured link distance at last beacon
	Cost       float64
	Hop        int
	Parent     packet.NodeID
	Root       bool
	Member     bool
	Downstream bool
	Range      float64
	Range2     float64
	Children   int
	NbrDists   []float64
	RootPath   []packet.NodeID
}

// pathContains reports whether the neighbour's advertised root path
// already includes id (adopting it would close a loop).
func (e *Neighbor) pathContains(id packet.NodeID) bool {
	for _, v := range e.RootPath {
		if v == id {
			return true
		}
	}
	return false
}

// Protocol is one node's SS-SPST instance. It implements netsim.Protocol
// and netsim.TreeStater.
type Protocol struct {
	cfg    Config
	metric Metric
	node   *netsim.Slot
	rng    *xrand.RNG

	cost       float64
	hop        int
	parent     packet.NodeID
	hasParent  bool
	downstream bool
	curRange   float64 // forwarding range before margin (costliest downstream child)
	curRange2  float64 // second-costliest downstream child distance
	rootPath   []packet.NodeID

	// Make-before-break: after a parent switch, data from the previous
	// parent is still forwarded until graceUntil, bridging the round it
	// takes the new parent to learn about us.
	prevParent packet.NodeID
	graceUntil float64
	// cooldownUntil rate-limits voluntary switches under the node-based
	// metrics, breaking symmetric switch races between siblings. The
	// cooldown doubles with each switch in quick succession
	// (switchStreak) so that cost-oscillation cascades — which the
	// paper's Lemma 1 assumes away — damp to quiescence; a quiet spell
	// resets the streak so mobility-driven improvements stay cheap.
	cooldownUntil float64
	switchStreak  int
	lastSwitch    float64

	// nbrs is the neighbour table, indexed by node id (the id space is
	// the network size, so a dense value slice beats a map: no hashing on
	// the per-beacon update path and deterministic iteration order).
	// nbrIDs lists the live rows so every scan is O(degree), not O(N) —
	// the difference between a node's neighbourhood and the whole
	// network once scenarios grow past a few hundred nodes.
	nbrs   []Neighbor
	nbrIDs []packet.NodeID
	// childCache memoizes deriveChildren between neighbour-table
	// mutations: forwarding consults the child set on every data frame,
	// while the table only changes on beacons and expiry. The cached
	// aggregate is order-independent, so memoization cannot change
	// behaviour.
	childCache   childState
	childCacheOK bool
	// seenApp dedupes application-level deliveries (members consume any
	// copy they hear — promiscuous multicast reception); seenFwd dedupes
	// tree forwarding (only copies from the parent propagate). SeqSets:
	// both are probed on every data reception, the hottest map lookups
	// in a run before they became bitsets.
	seenApp packet.SeqSet
	seenFwd packet.SeqSet
	seq     uint32

	// Frame pools. Beacon and data frames opt into packet.Owner
	// recycling: the medium hands a frame back once it has fully left
	// the air (transmission retired, last reception fired), after which
	// no receiver references it — handleBeacon copies the payload slices
	// it keeps. Forward actions are recycled as soon as they fire. The
	// pools survive Reset, so reused instances transmit without
	// allocating.
	bcnFree   []*beaconFrame
	datFree   []*dataFrame
	fwdFree   []*fwdAction
	ndScratch []float64

	ticker *sim.Ticker
	// startTimer is the desynchronized first-beacon timer; stored so Stop
	// can cancel a protocol crashed before its first round.
	startTimer *sim.Timer
	// retryTimer / retryCount drive the bounded join retry (Config.JoinRetry).
	retryTimer *sim.Timer
	retryCount int

	// ParentChanges counts parent switches, a stability diagnostic the
	// instability analysis of SS-SPST-F relies on.
	ParentChanges int

	// TraceSwitch, when non-nil, observes every voluntary parent switch
	// with the decision's numbers (debugging hook; nil in production).
	TraceSwitch func(from, to packet.NodeID, curCand, curDelta, bestCand, bestDelta float64)
}

// New creates a protocol instance with the given (possibly zero-default)
// config; n is the network size used for Normalize.
func New(cfg Config, n int) *Protocol {
	p := &Protocol{}
	p.Reset(cfg, n)
	return p
}

// Reset re-initializes the instance in place for a new run over an n-node
// network, exactly as New would, while keeping grown storage: neighbour
// rows (with their per-row slice capacity), the dedup maps' buckets and
// the frame pools all survive, so a reused instance reaches transmit
// steady state without allocating. The caller re-attaches it with Start.
func (p *Protocol) Reset(cfg Config, n int) {
	cfgN := cfg
	if cfgN.Hysteresis == 0 {
		cfgN.Hysteresis = -1 // zero value means "variant default"
	}
	p.cfg = cfgN.Normalize(n)
	p.metric = Metric{}
	p.node = nil
	p.rng = nil
	p.cost, p.hop = 0, 0
	p.parent, p.hasParent, p.downstream = 0, false, false
	p.curRange, p.curRange2 = 0, 0
	p.rootPath = p.rootPath[:0]
	p.prevParent, p.graceUntil = 0, 0
	p.cooldownUntil, p.switchStreak, p.lastSwitch = 0, 0, 0
	if cap(p.nbrs) < n {
		p.nbrs = make([]Neighbor, n)
	} else {
		p.nbrs = p.nbrs[:n]
		for i := range p.nbrs {
			p.nbrs[i] = Neighbor{}
		}
	}
	p.nbrIDs = p.nbrIDs[:0]
	p.childCache, p.childCacheOK = childState{}, false
	p.seenApp.Reset()
	p.seenFwd.Reset()
	p.seq = 0
	p.ticker = nil
	p.startTimer = nil
	p.retryTimer = nil
	p.retryCount = 0
	p.ParentChanges = 0
	p.TraceSwitch = nil
}

// Config returns the normalized configuration in force.
func (p *Protocol) Config() Config { return p.cfg }

// Start implements netsim.Protocol.
func (p *Protocol) Start(n *netsim.Slot) {
	p.node = n
	p.metric = Metric{
		Variant:        p.cfg.Variant,
		Model:          n.Net.Medium.Model(),
		DataBytes:      p.cfg.DataBytes,
		HopPenaltyFrac: p.cfg.HopPenaltyFrac,
	}
	p.rng = n.ProtoRNG("ssspst")
	p.detach()
	if n.Source {
		p.cost = 0
		p.hop = 0
		p.parent = n.ID
		p.hasParent = true
	}
	// Desynchronized first beacon inside the first interval, then periodic.
	first := p.rng.Range(0, p.cfg.BeaconInterval)
	p.startTimer = n.Sim().Schedule(first, func() {
		p.round()
		p.ticker = n.Sim().Every(p.cfg.BeaconInterval, p.cfg.BeaconJitter, p.round)
	})
}

// Stop implements netsim.Stopper: it cancels every pending timer so a
// crashed node's instance goes quiet. The instance must be Reset (and
// Started on a node) before it can run again.
func (p *Protocol) Stop() {
	p.startTimer.Cancel()
	p.retryTimer.Cancel()
	if p.ticker != nil {
		p.ticker.Stop()
	}
}

// round is one beacon interval's work: expire stale neighbours, run the
// local stabilization action, then advertise the new state.
func (p *Protocol) round() {
	p.expire()
	p.stabilize()
	p.sendBeacon()
	p.maybeRetry()
}

// maybeRetry schedules an extra round when this node ended the current
// one detached (Config.JoinRetry): a member whose join window was eaten
// by a loss burst re-evaluates after a jittered, exponentially backed-off
// delay instead of waiting out whole beacon intervals while the burst
// recurs. Retries are bounded per detachment episode and the budget
// refills once a parent is found, so a genuinely unreachable node settles
// back to the periodic cadence instead of beaconing itself to death.
func (p *Protocol) maybeRetry() {
	if !p.cfg.JoinRetry || p.node.Source {
		return
	}
	if p.hasParent {
		p.retryCount = 0
		return
	}
	if p.retryCount >= p.cfg.JoinRetryMax || p.retryTimer.Active() {
		return
	}
	p.retryCount++
	p.node.Net.Collector.JoinRetried()
	d := p.cfg.JoinRetryBase * float64(uint(1)<<uint(p.retryCount-1))
	d *= p.rng.Range(0.5, 1)
	p.retryTimer = p.node.Sim().Schedule(d, p.round)
}

// expire drops neighbour entries that have not beaconed within the TTL —
// the protocol's fault detection (node moved away or died).
func (p *Protocol) expire() {
	now := p.node.Now()
	for i := 0; i < len(p.nbrIDs); {
		e := &p.nbrs[p.nbrIDs[i]]
		if now-e.Last <= p.cfg.NeighborTTL {
			i++
			continue
		}
		if e.Parent == p.node.ID && e.Downstream {
			p.childCacheOK = false
		}
		p.dropNbr(e)
		// The swap-removed tail entry now sits at i; revisit it.
	}
}

// childState summarizes this node's current tree children (neighbours
// claiming it as parent, with downstream members).
type childState struct {
	count    int
	maxDist  float64 // costliest downstream child
	maxDist2 float64 // second costliest
	any      bool
}

// deriveChildren scans the neighbour table for nodes claiming this node
// as parent. The scan is memoized until the table next changes.
func (p *Protocol) deriveChildren() childState {
	if p.childCacheOK {
		return p.childCache
	}
	var cs childState
	for _, id := range p.nbrIDs {
		e := &p.nbrs[id]
		if e.Parent != p.node.ID || !e.Downstream {
			continue
		}
		cs.count++
		cs.any = true
		switch {
		case e.Dist > cs.maxDist:
			cs.maxDist2 = cs.maxDist
			cs.maxDist = e.Dist
		case e.Dist > cs.maxDist2:
			cs.maxDist2 = e.Dist
		}
	}
	p.childCache = cs
	p.childCacheOK = true
	return cs
}

// appendNbrDists appends this node's sorted neighbour distance vector to
// dst (usually a reused buffer) and returns the extended slice.
func (p *Protocol) appendNbrDists(dst []float64) []float64 {
	for _, id := range p.nbrIDs {
		dst = append(dst, p.nbrs[id].Dist)
	}
	sort.Float64s(dst)
	return dst
}

// detach resets to the disconnected state (cost CMax, hop capped).
func (p *Protocol) detach() {
	p.hasParent = false
	p.parent = packet.Broadcast
	p.cost = CMax
	p.hop = p.cfg.MaxHops
	p.rootPath = p.rootPath[:0]
}

// stabilize is the paper's guarded local action: the root pins its state;
// every other node joins the neighbour on the cheapest estimated
// energy-efficient path, provided that neighbour's hop count is below the
// count-to-infinity bound.
func (p *Protocol) stabilize() {
	cs := p.deriveChildren()
	p.curRange = cs.maxDist
	p.curRange2 = cs.maxDist2
	p.downstream = p.node.Member || p.node.Source || cs.any

	if p.node.Source {
		p.ndScratch = p.appendNbrDists(p.ndScratch[:0])
		p.cost = p.metric.NodeCost(p.curRange, cs.count, p.ndScratch)
		p.hop = 0
		p.parent = p.node.ID
		p.hasParent = true
		p.rootPath = []packet.NodeID{p.node.ID}
		return
	}

	const eps = 1e-12
	var best *Neighbor
	bestCand := math.Inf(1)
	bestDelta := math.Inf(1)
	curCand := math.Inf(1)
	curDelta := math.Inf(1)
	for _, id := range p.nbrIDs {
		e := &p.nbrs[id]
		// N1: only neighbours strictly below the hop cap are eligible —
		// the count-to-infinity guard (paper Lemma 3).
		if e.Hop+1 >= p.cfg.MaxHops {
			continue
		}
		// Never adopt a node that claims us as its parent: instant loop.
		if e.Parent == p.node.ID {
			continue
		}
		if p.cfg.LoopGuard == LoopGuardPathVector {
			// Path-vector loop suppression: refuse ancestors-through-us.
			if e.pathContains(p.node.ID) {
				continue
			}
			// A non-root neighbour with no root path is itself detached.
			if !e.Root && len(e.RootPath) == 0 {
				continue
			}
		}
		// SS-SPST-F prices the join against u's range *without us*: if we
		// are u's costliest child, u's advertised range is our own doing
		// and the honest baseline is its second-costliest child (paper
		// §5: "the energy cost difference experienced by u with and
		// without v as its child"). This is what makes F's costliest
		// children keep defecting — the paper's Example-3 dynamics and
		// the root of its reported instability.
		//
		// SS-SPST-E deliberately prices itself *in*: its coverage is
		// already paid for in the tree's energy (wireless multicast
		// advantage), so staying inside the parent's range is free and
		// the tree is stable — the stability gap between E and F the
		// paper measures.
		base, kids := e.Range, e.Children
		isMyParent := p.hasParent && e.ID == p.parent
		if p.cfg.Variant == Farthest && isMyParent && e.Dist >= e.Range-1.0 {
			base = e.Range2
			if kids > 0 {
				kids--
			}
		}
		delta := p.metric.JoinDelta(e.Dist, base, kids, e.NbrDists)
		cand := p.cfg.Variant.Accumulate(e.Cost, delta)
		// Under the node-based metrics the root advertises its NodeCost,
		// which already includes the transmission range and receptions of
		// its *current* children; a current child pricing "stay" must not
		// add δ again or the stay/rejoin asymmetry makes it oscillate.
		// (Hop/T/MST roots advertise zero, so the shortcut must not apply
		// — it would erase the whole cost gradient.)
		if isMyParent && e.Root &&
			(p.cfg.Variant == Farthest || p.cfg.Variant == EnergyAware) {
			cand = e.Cost
		}
		if math.IsInf(cand, 1) {
			continue
		}
		if isMyParent {
			curCand = cand
			curDelta = delta
		}
		// N2 selection with deterministic tie-breaks: cost, then hop,
		// then id.
		if cand < bestCand-eps ||
			(cand < bestCand+eps && best != nil &&
				(e.Hop < best.Hop || (e.Hop == best.Hop && e.ID < best.ID))) {
			best = e
			bestCand = cand
			bestDelta = delta
		}
	}

	if best == nil {
		p.detach()
		return
	}

	// Voluntary-switch damping. A node with a live parent keeps it
	// unless the alternative is a genuine improvement:
	//
	//   - hysteresis band on path cost (SS-SPST-F runs undamped,
	//     reproducing the instability the paper reports for it);
	//   - for the node-based metrics, the paper's Lemma-1 assumption made
	//     operational: switching must strictly reduce global tree energy,
	//     i.e. the cost added at the new parent must be below the cost
	//     removed from the old one (δ_new < δ_old);
	//   - a two-round cooldown between voluntary switches breaks
	//     symmetric races between siblings switching on the same stale
	//     beacon state.
	if !math.IsInf(curCand, 1) {
		keep := bestCand >= curCand*(1-p.cfg.Hysteresis)-eps
		switch p.cfg.Variant {
		case Farthest:
			// SS-SPST-F runs completely undamped: its honest marginal
			// pricing keeps re-evaluating as costliest children turn
			// over (the paper's Example-3 dynamics), so near-tie
			// candidates flip continuously — "its dynamic nature which
			// causes unstability", the behaviour behind F's poor packet
			// delivery in the paper's Figures 7–9.
		case EnergyAware:
			if p.node.Now() < p.cooldownUntil {
				keep = true
			}
			// Randomized move gating (serial-daemon emulation): a join's
			// cost depends on the parent's other children, so
			// simultaneous sibling moves invalidate each other's
			// estimates and the synchronous best-response can cycle.
			// Sequential improving moves strictly decrease total tree
			// energy (an exact potential), so letting each node move
			// only with probability SwitchProb per round de-synchronizes
			// the cascade and restores convergence.
			if !keep && !p.rng.Bool(p.cfg.SwitchProb) {
				keep = true
			}
		}
		if keep {
			best = p.nbr(p.parent)
			bestCand = curCand
		}
	}

	if !p.hasParent || p.parent != best.ID {
		p.ParentChanges++
		if p.TraceSwitch != nil && p.hasParent {
			p.TraceSwitch(p.parent, best.ID, curCand, curDelta, bestCand, bestDelta)
		}
		if p.hasParent {
			now := p.node.Now()
			if p.cfg.MakeBeforeBreak {
				p.prevParent = p.parent
				p.graceUntil = now + p.cfg.BeaconInterval
			}
			if p.cfg.Variant == EnergyAware && !math.IsInf(curCand, 1) {
				if now-p.lastSwitch > 8*p.cfg.BeaconInterval {
					p.switchStreak = 0
				}
				shift := p.switchStreak
				if shift > 5 {
					shift = 5
				}
				p.cooldownUntil = now + float64(uint(2)<<uint(shift))*p.cfg.BeaconInterval
				p.switchStreak++
				p.lastSwitch = now
			}
		}
	}
	p.parent = best.ID
	p.hasParent = true
	p.cost = bestCand
	p.hop = min(best.Hop+1, p.cfg.MaxHops)
	p.rootPath = append(append(p.rootPath[:0], best.RootPath...), p.node.ID)
}

// beaconFrame bundles one beacon's packet and payload in a single pooled
// allocation. It implements packet.Owner: the medium frees it once the
// frame has fully left the air, after which the struct is safe to
// overwrite — receivers keep only the payload's NbrDists/RootPath slices,
// which are allocated fresh per beacon exactly so that neighbour rows can
// alias them independently of the frame's life.
type beaconFrame struct {
	p   *Protocol
	pkt packet.Packet
	bp  BeaconPayload
}

// FreePacket implements packet.Owner.
func (f *beaconFrame) FreePacket(*packet.Packet) {
	f.p.bcnFree = append(f.p.bcnFree, f)
}

// takeBeaconFrame returns a recycled beacon frame, or a fresh one.
func (p *Protocol) takeBeaconFrame() *beaconFrame {
	if n := len(p.bcnFree); n > 0 {
		f := p.bcnFree[n-1]
		p.bcnFree[n-1] = nil
		p.bcnFree = p.bcnFree[:n-1]
		return f
	}
	return &beaconFrame{p: p}
}

// sendBeacon broadcasts this node's state at full power (beacons double as
// neighbour discovery, so they must reach everything in radio range).
func (p *Protocol) sendBeacon() {
	f := p.takeBeaconFrame()
	var nbrD []float64
	if p.cfg.Variant.NeedsNeighborDists() {
		nbrD = p.appendNbrDists(make([]float64, 0, len(p.nbrIDs)))
	}
	// Copy the root path: the payload outlives this round (frames are
	// in flight while the local slice keeps mutating) and receiving rows
	// alias it beyond that. Under the paper's hop-cap guard beacons
	// carry no path (and are cheaper).
	var path []packet.NodeID
	if p.cfg.LoopGuard == LoopGuardPathVector {
		path = make([]packet.NodeID, len(p.rootPath))
		copy(path, p.rootPath)
	}
	f.bp = BeaconPayload{
		Cost:       p.cost,
		Hop:        p.hop,
		Parent:     p.parentOrBroadcast(),
		Root:       p.node.Source,
		Member:     p.node.Member,
		Downstream: p.downstream,
		Range:      p.curRange,
		Range2:     p.curRange2,
		Children:   p.childCount(),
		NbrDists:   nbrD,
		RootPath:   path,
	}
	f.pkt = packet.Packet{
		Kind:    packet.KindBeacon,
		From:    p.node.ID,
		To:      packet.Broadcast,
		Src:     p.node.ID,
		Bytes:   beaconBytes(len(nbrD), len(path)),
		Payload: &f.bp,
		Owner:   f,
	}
	p.node.Broadcast(&f.pkt, p.metric.Model.MaxRange)
}

func (p *Protocol) parentOrBroadcast() packet.NodeID {
	if p.hasParent {
		return p.parent
	}
	return packet.Broadcast
}

func (p *Protocol) childCount() int { return p.deriveChildren().count }

// Receive implements netsim.Protocol.
func (p *Protocol) Receive(pkt *packet.Packet, info medium.RxInfo) {
	switch pkt.Kind {
	case packet.KindBeacon:
		p.handleBeacon(pkt, info)
	case packet.KindData:
		p.handleData(pkt, info)
	default:
		// Frames from other protocol families (mixed runs in tests).
		p.node.DiscardRx(info)
	}
}

func (p *Protocol) handleBeacon(pkt *packet.Packet, info medium.RxInfo) {
	bp := pkt.Payload.(*BeaconPayload)
	if int(pkt.From) >= len(p.nbrs) {
		// Mixed-protocol tests can deliver frames from ids beyond the
		// configured network size; grow to fit.
		grown := make([]Neighbor, int(pkt.From)+1)
		copy(grown, p.nbrs)
		p.nbrs = grown
	}
	e := &p.nbrs[pkt.From]
	ok := e.used
	if !ok {
		e.used = true
		e.ID = pkt.From
		e.lix = int32(len(p.nbrIDs))
		p.nbrIDs = append(p.nbrIDs, pkt.From)
	}
	// Only beacons that touch a child relationship (the sender was or
	// becomes a downstream child of this node) can change the child
	// aggregate; the overwhelming majority of beacons are from
	// non-children and leave the cache valid.
	if (ok && e.Parent == p.node.ID && e.Downstream) ||
		(bp.Parent == p.node.ID && bp.Downstream) {
		p.childCacheOK = false
	}
	e.Last = info.At
	e.Dist = info.Dist
	e.Cost = bp.Cost
	e.Hop = bp.Hop
	e.Parent = bp.Parent
	e.Root = bp.Root
	e.Member = bp.Member
	e.Downstream = bp.Downstream
	e.Range = bp.Range
	e.Range2 = bp.Range2
	e.Children = bp.Children
	// Aliasing is safe: the slices are allocated fresh for every beacon
	// (they are the only per-beacon allocations left) precisely so rows
	// can share them; only the pooled packet+payload struct is recycled,
	// and the row never references that.
	e.NbrDists = bp.NbrDists
	e.RootPath = bp.RootPath
}

func (p *Protocol) handleData(pkt *packet.Packet, info medium.RxInfo) {
	if p.node.Source {
		p.node.DiscardRx(info) // echo of our own stream via a child
		return
	}
	consumed := false

	// Members consume the first copy they hear, whoever transmitted it —
	// promiscuous multicast reception, as a real group-subscribed radio
	// behaves.
	if p.node.Member {
		if !p.seenApp.TestAndSet(pkt.Src, pkt.Seq) {
			p.node.ConsumeData(pkt, info.At)
			consumed = true
		}
	}

	// Forwarding stays tree-restricted: only the first copy arriving from
	// the current parent (or, briefly after a switch, the previous
	// parent — make-before-break) propagates downstream.
	fromTree := p.hasParent && info.From == p.parent
	if !fromTree && info.From == p.prevParent && info.At < p.graceUntil {
		fromTree = true
	}
	if fromTree {
		if !p.seenFwd.TestAndSet(pkt.Src, pkt.Seq) {
			p.forward(pkt)
			consumed = true
		}
	}

	if !consumed {
		// Pure overhearing: the discard energy SS-SPST-E's metric
		// minimizes.
		p.node.DiscardRx(info)
	}
}

// dataFrame is a pooled data packet — an origination or a forwarded copy.
// It implements packet.Owner; the medium frees it once the frame has
// fully left the air, and no receiver retains data packets (members
// consume fields, forwarders copy into their own frames).
type dataFrame struct {
	p   *Protocol
	pkt packet.Packet
}

// FreePacket implements packet.Owner.
func (f *dataFrame) FreePacket(*packet.Packet) {
	f.p.datFree = append(f.p.datFree, f)
}

// takeDataFrame returns a recycled data frame, or a fresh one.
func (p *Protocol) takeDataFrame() *dataFrame {
	if n := len(p.datFree); n > 0 {
		f := p.datFree[n-1]
		p.datFree[n-1] = nil
		p.datFree = p.datFree[:n-1]
		return f
	}
	return &dataFrame{p: p}
}

// fwdAction is a pooled forward-jitter callback; it recycles itself when
// it fires.
type fwdAction struct {
	p   *Protocol
	pkt *packet.Packet
}

// Fire implements sim.Action: re-check the child set at fire time
// (children may have expired during the jitter) and transmit.
func (a *fwdAction) Fire() {
	p, pkt := a.p, a.pkt
	a.p, a.pkt = nil, nil
	p.fwdFree = append(p.fwdFree, a)
	if r2 := p.forwardRange(); r2 > 0 {
		p.node.Broadcast(pkt, r2)
		return
	}
	// Never transmitted: the medium will not free the frame, so recycle
	// it directly.
	if o := pkt.Owner; o != nil {
		o.FreePacket(pkt)
	}
}

// takeFwdAction returns a recycled forward action, or a fresh one.
func (p *Protocol) takeFwdAction() *fwdAction {
	if n := len(p.fwdFree); n > 0 {
		a := p.fwdFree[n-1]
		p.fwdFree[n-1] = nil
		p.fwdFree = p.fwdFree[:n-1]
		return a
	}
	return &fwdAction{}
}

// forward re-broadcasts a data packet to this node's downstream children
// (power-controlled to the costliest of them), after a small jitter that
// decorrelates sibling transmissions. Pruned subtrees (no downstream
// members) forward nothing.
func (p *Protocol) forward(pkt *packet.Packet) {
	r := p.forwardRange()
	if r <= 0 {
		return
	}
	f := p.takeDataFrame()
	f.pkt = *pkt
	f.pkt.Owner = f
	f.pkt.From = p.node.ID
	f.pkt.Hops++
	a := p.takeFwdAction()
	a.p, a.pkt = p, &f.pkt
	delay := p.rng.Range(0, p.cfg.ForwardJitterMax)
	p.node.Sim().AfterAction(delay, a)
}

// forwardRange returns the power-controlled transmission range needed to
// reach every downstream child, with the mobility margin applied; 0 when
// the subtree is pruned.
func (p *Protocol) forwardRange() float64 {
	cs := p.deriveChildren()
	if !cs.any {
		return 0
	}
	r := cs.maxDist*p.cfg.RangeMargin + p.cfg.RangeMarginAbs
	if max := p.metric.Model.MaxRange; r > max {
		r = max
	}
	return r
}

// Originate implements netsim.Protocol: the multicast source injects one
// data packet into the tree.
func (p *Protocol) Originate() {
	p.seq++
	r := p.forwardRange()
	if r <= 0 {
		return // no downstream children yet: service unavailable
	}
	f := p.takeDataFrame()
	f.pkt = packet.MakeData(p.node.ID, p.seq, p.node.Now())
	f.pkt.Owner = f
	p.node.Broadcast(&f.pkt, r)
}

// TreeParent implements netsim.TreeStater.
func (p *Protocol) TreeParent() (packet.NodeID, bool) {
	if p.node != nil && p.node.Source {
		return p.node.ID, true
	}
	return p.parent, p.hasParent
}

// Cost returns the node's current tree cost c(v).
func (p *Protocol) Cost() float64 { return p.cost }

// HopCount returns the node's current hop count h(v).
func (p *Protocol) HopCount() int { return p.hop }

// Downstream reports the pruning flag (subtree contains a member).
func (p *Protocol) Downstream() bool { return p.downstream }

// NeighborCount returns the current neighbour-table size.
func (p *Protocol) NeighborCount() int { return len(p.nbrIDs) }

// dropNbr removes e from the table and the live-id list (swap-remove).
func (p *Protocol) dropNbr(e *Neighbor) {
	last := len(p.nbrIDs) - 1
	moved := p.nbrIDs[last]
	p.nbrIDs[e.lix] = moved
	p.nbrs[moved].lix = e.lix
	p.nbrIDs = p.nbrIDs[:last]
	*e = Neighbor{}
}

// nbr returns the table entry for id, nil when absent or out of range.
func (p *Protocol) nbr(id packet.NodeID) *Neighbor {
	if int(id) >= len(p.nbrs) || int(id) < 0 || !p.nbrs[id].used {
		return nil
	}
	return &p.nbrs[id]
}

func dataKey(src packet.NodeID, seq uint32) uint64 {
	return uint64(uint32(src))<<32 | uint64(seq)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
