package runerr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestMark: a marked error keeps its message, matches its kind under
// errors.Is, and still unwraps to its cause.
func TestMark(t *testing.T) {
	cause := errors.New("underlying cause")
	err := Mark(ErrBudget, fmt.Errorf("scenario: boom: %w", cause))
	if err.Error() != "scenario: boom: underlying cause" { //detlint:allow message preservation through Mark is the property under test
		t.Fatalf("message altered: %q", err.Error())
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatal("marked error does not match its kind")
	}
	if !errors.Is(err, cause) {
		t.Fatal("marked error lost its cause chain")
	}
	if errors.Is(err, ErrStall) {
		t.Fatal("marked error matches a foreign kind")
	}
	if Mark(ErrBudget, nil) != nil {
		t.Fatal("Mark(kind, nil) != nil")
	}
}

// TestMarkSurvivesWrapping: classification survives further %w wrapping,
// the property the engine's "deterministic: identical failure" suffix
// relies on.
func TestMarkSurvivesWrapping(t *testing.T) {
	err := fmt.Errorf("%w (deterministic: identical failure on retry, 2 attempts)",
		Mark(ErrStall, errors.New("scenario: run stalled")))
	if !errors.Is(err, ErrStall) {
		t.Fatal("wrapped marked error lost its kind")
	}
	if Kind(err) != "stall" {
		t.Fatalf("Kind = %q, want stall", Kind(err))
	}
}

// TestPanicDigestMasksAddresses is the satellite regression test: two
// runs panicking identically but with different heap addresses and
// goroutine IDs must classify as the same failure under the digest
// comparison — the flakiness latent in the old first-line scheme, where
// an address in the panic value flipped the deterministic verdict.
func TestPanicDigestMasksAddresses(t *testing.T) {
	a := NewPanic("deadbeef", 7,
		"runtime error: invalid memory address or nil pointer dereference [recovered from 0xc000123456]",
		"goroutine 17 [running]:\nrepro/internal/medium.(*Medium).send(0xc0000a2000, 0x5, 0xc00017e000)\n\t/root/repo/internal/medium/medium.go:700 +0x1a4\n")
	b := NewPanic("deadbeef", 7,
		"runtime error: invalid memory address or nil pointer dereference [recovered from 0xc000abcdef]",
		"goroutine 42 [running]:\nrepro/internal/medium.(*Medium).send(0xc000b40000, 0x5, 0xc000532000)\n\t/root/repo/internal/medium/medium.go:700 +0x1a4\n")
	if a.Digest != b.Digest {
		t.Fatalf("identical panics at different addresses digest differently:\n%s\n%s", a.Digest, b.Digest)
	}
	if !SameFailure(a, b) {
		t.Fatal("identical panics at different addresses not classified as the same failure")
	}

	// A genuinely different panic site must not collide.
	c := NewPanic("deadbeef", 7,
		"runtime error: index out of range [5] with length 3",
		"goroutine 17 [running]:\nrepro/internal/metrics.(*Collector).GroupSent(...)\n\t/root/repo/internal/metrics/metrics.go:100 +0x40\n")
	if a.Digest == c.Digest {
		t.Fatal("distinct panics share a digest")
	}
	if SameFailure(a, c) {
		t.Fatal("distinct panics classified as the same failure")
	}
}

// TestPanicErrorIdentity: the rendered message carries the replication
// identity (cfg fingerprint + seed) and matches ErrPanic.
func TestPanicErrorIdentity(t *testing.T) {
	p := NewPanic("cafebabe", 42, "boom", "goroutine 1 [running]:\nmain.main()\n")
	msg := p.Error()
	for _, want := range []string{"cfg cafebabe", "seed 42", "digest " + p.Digest, "boom"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("panic message missing %q: %s", want, msg)
		}
	}
	if !errors.Is(p, ErrPanic) {
		t.Fatal("PanicError does not match ErrPanic")
	}
	wrapped := fmt.Errorf("attempt context: %w", p)
	var got *PanicError
	if !errors.As(wrapped, &got) || got.Digest != p.Digest {
		t.Fatal("PanicError not recoverable through wrapping")
	}
}

// TestRetryable: setup and invariant kinds are the two non-retryable
// classes; every runtime failure kind stays retryable.
func TestRetryable(t *testing.T) {
	base := errors.New("x")
	for kind, want := range map[error]bool{
		ErrSetup:     false,
		ErrInvariant: false,
		ErrBudget:    true,
		ErrDeadline:  true,
		ErrStall:     true,
		ErrPanic:     true,
	} {
		if got := Retryable(Mark(kind, base)); got != want {
			t.Errorf("Retryable(%v) = %v, want %v", kind, got, want)
		}
	}
	if !Retryable(errors.New("untyped")) {
		t.Error("untyped errors must stay retryable")
	}
	var inv error = &InvariantError{Name: "energy-ledger", Detail: "gap 1J"}
	if Retryable(inv) {
		t.Error("InvariantError must not be retryable")
	}
}

// TestSameFailureDeadline: deadline failures never classify as
// deterministic — identical messages included — because wall-clock
// expiry depends on machine load.
func TestSameFailureDeadline(t *testing.T) {
	a := Mark(ErrDeadline, errors.New("scenario: run exceeded wall-clock deadline 0.5s"))
	b := Mark(ErrDeadline, errors.New("scenario: run exceeded wall-clock deadline 0.5s"))
	if SameFailure(a, b) {
		t.Fatal("two deadline failures classified as the same deterministic failure")
	}
	if SameFailure(a, nil) || SameFailure(nil, a) {
		t.Fatal("SameFailure with nil must be false")
	}
}

// TestSameFailureHeadFallback: untyped errors compare by first line.
func TestSameFailureHeadFallback(t *testing.T) {
	a := errors.New("scenario: boom\ndetail A")
	b := errors.New("scenario: boom\ndetail B")
	c := errors.New("scenario: other")
	if !SameFailure(a, b) {
		t.Fatal("same first line not classified as same failure")
	}
	if SameFailure(a, c) {
		t.Fatal("different first lines classified as same failure")
	}
}

func TestHead(t *testing.T) {
	if h := Head(errors.New("first line\nsecond line")); h != "first line" {
		t.Fatalf("Head = %q", h)
	}
	if h := Head(errors.New("only line")); h != "only line" {
		t.Fatalf("Head = %q", h)
	}
}

func TestKind(t *testing.T) {
	if Kind(nil) != "" {
		t.Fatal("Kind(nil) != \"\"")
	}
	if Kind(errors.New("plain")) != "error" {
		t.Fatal("untyped Kind != error")
	}
	if Kind(&InvariantError{Name: "n", Detail: "d"}) != "invariant" {
		t.Fatal("InvariantError Kind != invariant")
	}
	if Kind(NewPanic("fp", 1, "v", "s")) != "panic" {
		t.Fatal("PanicError Kind != panic")
	}
}

func TestNormalize(t *testing.T) {
	in := "goroutine 123 [running]:\nfunc(0xdeadBEEF, 0x12) +0x9f"
	want := "goroutine ? [running]:\nfunc(0x?, 0x?) +0x?"
	if got := Normalize(in); got != want {
		t.Fatalf("Normalize = %q, want %q", got, want)
	}
}
