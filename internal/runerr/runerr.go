// Package runerr is the typed error taxonomy of the execution layer.
//
// Every way a replication can fail — setup rejection, event-budget
// exhaustion, wall-clock deadline, sim-time stall, panic, invariant
// violation — maps to one sentinel here, so the sweep engine, the shard
// fabric and the CLIs classify failures with errors.Is instead of
// comparing error strings. Two classification questions drive retry
// policy, and both are answered structurally:
//
//   - Retryable: setup and invariant errors are pure functions of the
//     config (re-running cannot change the verdict), so they are never
//     retried. Everything else gets the configured retry budget.
//   - SameFailure: a failure that repeats identically on retry is
//     deterministic and stops further attempts. Panics compare by a
//     normalized stack digest — heap addresses and goroutine IDs are
//     masked first, so two identical panics at different addresses
//     cannot flip the verdict. Deadline failures never compare equal:
//     wall-clock time depends on machine load, not on the config.
package runerr

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"regexp"
	"strings"
)

// The sentinel kinds. Errors carrying a kind match it under errors.Is.
var (
	// ErrSetup marks configs rejected before the simulation started:
	// validation failures, trace mismatches, protocol attachment errors.
	// Deterministic by construction; never retried.
	ErrSetup = errors.New("setup rejected")
	// ErrBudget marks runs aborted by the event-count budget.
	ErrBudget = errors.New("event budget exceeded")
	// ErrDeadline marks runs aborted by the per-replication wall-clock
	// deadline. Load-dependent: retryable and never classified
	// deterministic.
	ErrDeadline = errors.New("wall-clock deadline exceeded")
	// ErrStall marks runs aborted by the sim-time stall detector
	// (events kept firing while the clock stopped advancing: livelock).
	ErrStall = errors.New("simulated clock stalled")
	// ErrPanic marks runs that panicked; the concrete error is a
	// *PanicError carrying the normalized digest.
	ErrPanic = errors.New("run panicked")
	// ErrInvariant marks runs whose end-of-run conservation checks
	// failed; the concrete error is an *InvariantError. A violation is a
	// bug in the simulator, not bad luck — never retried.
	ErrInvariant = errors.New("invariant violated")
	// ErrDeterministic is an orthogonal tag, not a kind: the engine adds
	// it when a retried failure repeated identically (SameFailure), so
	// callers and tests ask errors.Is(err, ErrDeterministic) instead of
	// grepping the message for the "deterministic:" marker. It never
	// appears in Kind/Sentinel labels — the underlying kind (budget,
	// panic, …) remains the persisted classification.
	ErrDeterministic = errors.New("deterministic failure")
)

// kindError tags an underlying error with a sentinel kind without
// altering its message: Error() stays the wrapped text, errors.Is
// additionally matches the kind.
type kindError struct {
	kind error
	err  error
}

func (e *kindError) Error() string        { return e.err.Error() }
func (e *kindError) Unwrap() error        { return e.err }
func (e *kindError) Is(target error) bool { return target == e.kind } //detlint:allow sentinel identity is this type's entire contract; errors.Is delegates here

// Mark tags err with the sentinel kind. The message is unchanged;
// errors.Is(Mark(kind, err), kind) is true, and wrapped causes of err
// remain reachable. Mark(kind, nil) returns nil.
func Mark(kind, err error) error {
	if err == nil {
		return nil
	}
	return &kindError{kind: kind, err: err}
}

// PanicError is a recovered run panic with enough identity for a sharded
// log line to name its exact replication, plus a normalized digest for
// deterministic-failure classification.
type PanicError struct {
	// Fingerprint is the config fingerprint of the panicked replication.
	Fingerprint string
	// Seed is its replication seed.
	Seed uint64
	// Value is the rendered panic value.
	Value string
	// Stack is the (truncated) goroutine stack at recovery.
	Stack string
	// Digest is Digest(Value, Stack): stable across address-space layout
	// and goroutine numbering.
	Digest string
}

// NewPanic builds a PanicError, computing the normalized digest.
func NewPanic(fingerprint string, seed uint64, value, stack string) *PanicError {
	return &PanicError{
		Fingerprint: fingerprint,
		Seed:        seed,
		Value:       value,
		Stack:       stack,
		Digest:      Digest(value, stack),
	}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("scenario: run panicked (cfg %s, seed %d, digest %s): %s\n%s",
		e.Fingerprint, e.Seed, e.Digest, e.Value, e.Stack)
}

func (e *PanicError) Is(target error) bool { return target == ErrPanic }

// InvariantError names the end-of-run conservation law that failed and
// what the two sides were.
type InvariantError struct {
	// Name identifies the violated law (e.g. "energy-ledger",
	// "rx-conservation", "pergroup-partition").
	Name string
	// Detail states the mismatch with both values.
	Detail string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("invariant %s violated: %s", e.Name, e.Detail)
}

func (e *InvariantError) Is(target error) bool { return target == ErrInvariant }

var (
	hexLiteral  = regexp.MustCompile(`0x[0-9a-fA-F]+`)
	goroutineID = regexp.MustCompile(`goroutine \d+`)
)

// Normalize masks the run-to-run noise in a panic rendering: hex
// literals (heap addresses, frame offsets) and goroutine numbers. What
// survives — function names, files, line numbers, the panic message —
// is exactly the part determined by the code path taken.
func Normalize(s string) string {
	s = hexLiteral.ReplaceAllString(s, "0x?")
	return goroutineID.ReplaceAllString(s, "goroutine ?")
}

// Digest condenses a panic value and stack into a short stable
// identifier: sha256 of the normalized rendering, first 8 bytes hex.
func Digest(value, stack string) string {
	h := sha256.Sum256([]byte(Normalize(value) + "\n" + Normalize(stack)))
	return hex.EncodeToString(h[:8])
}

// Retryable reports whether re-running could plausibly change the
// outcome. Setup rejections and invariant violations are pure functions
// of the config and build — retrying burns attempts to reach the same
// verdict — so they are the two non-retryable kinds.
func Retryable(err error) bool {
	return !errors.Is(err, ErrSetup) && !errors.Is(err, ErrInvariant)
}

// SameFailure reports whether two failures are the same for
// deterministic-failure classification. Panics compare by normalized
// digest; deadline failures never compare equal (wall-clock time is a
// property of the machine, not the config); everything else falls back
// to first-line equality of the message.
func SameFailure(a, b error) bool {
	if a == nil || b == nil {
		return false
	}
	if errors.Is(a, ErrDeadline) || errors.Is(b, ErrDeadline) {
		return false
	}
	var pa, pb *PanicError
	if errors.As(a, &pa) && errors.As(b, &pb) {
		return pa.Digest == pb.Digest
	}
	return Head(a) == Head(b)
}

// Head returns the first line of err's message: the structured failure
// comparison's fallback identity for untyped errors.
func Head(err error) string {
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		return msg[:i]
	}
	return msg
}

// Sentinel is Kind's inverse: the sentinel error for a kind label, or
// nil for "", "error" and unknown labels. Rehydrating a journaled
// failure re-marks it with Sentinel(kind) so errors.Is classification
// survives the round trip through a record's string fields.
func Sentinel(kind string) error {
	switch kind {
	case "setup":
		return ErrSetup
	case "invariant":
		return ErrInvariant
	case "panic":
		return ErrPanic
	case "budget":
		return ErrBudget
	case "stall":
		return ErrStall
	case "deadline":
		return ErrDeadline
	default:
		return nil
	}
}

// Kind returns a short stable label for err's taxonomy kind — used for
// failure summaries and the err_kind field of shard job records. Unknown
// errors report "error"; nil reports "".
func Kind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrSetup):
		return "setup"
	case errors.Is(err, ErrInvariant):
		return "invariant"
	case errors.Is(err, ErrPanic):
		return "panic"
	case errors.Is(err, ErrBudget):
		return "budget"
	case errors.Is(err, ErrStall):
		return "stall"
	case errors.Is(err, ErrDeadline):
		return "deadline"
	default:
		return "error"
	}
}
