package maodv

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/medium"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// rig builds a static MAODV network; node 0 is source/leader.
func rig(t *testing.T, pts []geom.Point, members []int) (*sim.Simulator, *netsim.Network, []*Protocol) {
	t.Helper()
	s := sim.New(3)
	tracker := mobility.NewTracker(len(pts), mobility.Static{Points: pts})
	mcfg := medium.DefaultConfig()
	mcfg.LossProb = 0
	mem := make([]packet.NodeID, len(members))
	for i, m := range members {
		mem[i] = packet.NodeID(m)
	}
	net := netsim.New(s, tracker, netsim.Config{
		N: len(pts), Source: 0, Members: mem,
		Medium: mcfg, PayloadBytes: packet.DataPayload,
	})
	protos := make([]*Protocol, len(pts))
	for i := range pts {
		protos[i] = New(DefaultConfig())
		net.SetProtocol(packet.NodeID(i), protos[i])
	}
	net.Start()
	return s, net, protos
}

func chain() []geom.Point {
	return []geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}}
}

func TestGradientEstablished(t *testing.T) {
	s, _, protos := rig(t, chain(), []int{3})
	s.Run(6) // at least one GRPH flood
	for i := 1; i < 4; i++ {
		if !protos[i].haveGrad {
			t.Errorf("node %d has no gradient after GRPH flood", i)
		}
	}
	if protos[1].gradUp != 0 {
		t.Errorf("node 1 gradient upstream = %v, want leader", protos[1].gradUp)
	}
	if protos[2].gradHops >= protos[3].gradHops {
		t.Errorf("gradient hops not increasing along the chain: %d then %d",
			protos[2].gradHops, protos[3].gradHops)
	}
}

func TestMemberJoinsAndGrafts(t *testing.T) {
	s, _, protos := rig(t, chain(), []int{3})
	s.Run(15)
	if !protos[3].OnTree() {
		t.Fatal("member never joined the tree")
	}
	// The graft must have recruited the intermediate routers.
	if !protos[1].OnTree() || !protos[2].OnTree() {
		t.Error("intermediate nodes not grafted as routers")
	}
}

func TestDataFlowsDownTree(t *testing.T) {
	s, net, _ := rig(t, chain(), []int{3})
	s.Run(15) // join completes
	for i := 0; i < 30; i++ {
		net.Collector.DataSent(1)
		net.Nodes[0].Slots[0].Proto.Originate()
		s.Run(s.Now() + 0.0625)
	}
	s.Run(s.Now() + 1)
	sum := net.Summarize()
	if sum.PDR < 0.9 {
		t.Errorf("PDR over established tree = %v", sum.PDR)
	}
}

func TestNonMemberBranchPrunes(t *testing.T) {
	// Member 3 leaves the group... not supported dynamically; instead
	// verify a router with no downstream member expires after BranchTTL.
	pts := []geom.Point{{X: 0}, {X: 200}, {X: 400}}
	s, _, protos := rig(t, pts, nil) // no members at all
	s.Run(40)
	if protos[1].OnTree() || protos[2].OnTree() {
		t.Error("routers on tree without any member grafts")
	}
}

func TestTreeParent(t *testing.T) {
	s, _, protos := rig(t, chain(), []int{3})
	s.Run(15)
	if p, ok := protos[0].TreeParent(); !ok || p != 0 {
		t.Errorf("leader TreeParent = %v,%v", p, ok)
	}
	if p, ok := protos[3].TreeParent(); !ok || p != 2 {
		t.Errorf("member TreeParent = %v,%v (want upstream 2)", p, ok)
	}
}

func TestControlBytesCounted(t *testing.T) {
	s, net, _ := rig(t, chain(), []int{3})
	s.Run(15)
	if net.Collector.ControlBytes == 0 {
		t.Error("no control bytes recorded despite GRPH floods and joins")
	}
}

func TestRepairAfterBreak(t *testing.T) {
	// A mobile middle node walks away, severing the branch; the member
	// must rejoin via the surviving path within a few GRPH periods.
	pts := []geom.Point{{X: 0}, {X: 200, Y: 10}, {X: 200, Y: -10}, {X: 400}}
	s := sim.New(5)
	// Node 1 moves straight out of the field at t=20 (model by a custom
	// static-then-jump: easiest is two trackers — instead park node 1 far
	// away from the start and keep 2 as the only relay, then kill 2's
	// forwarding by... simpler: build with both relays, run, then verify
	// the member survives on at least one path).
	tracker := mobility.NewTracker(len(pts), mobility.Static{Points: pts})
	mcfg := medium.DefaultConfig()
	mcfg.LossProb = 0
	net := netsim.New(s, tracker, netsim.Config{
		N: len(pts), Source: 0, Members: []packet.NodeID{3},
		Medium: mcfg, PayloadBytes: packet.DataPayload,
	})
	protos := make([]*Protocol, len(pts))
	for i := range pts {
		protos[i] = New(DefaultConfig())
		net.SetProtocol(packet.NodeID(i), protos[i])
	}
	net.Start()
	s.Run(15)
	if !protos[3].OnTree() {
		t.Fatal("member did not join")
	}
	up, _ := protos[3].TreeParent()
	// Simulate upstream failure: force the member's upstream off-tree and
	// silence it by clearing its own tree state.
	protos[up].onTree = false
	protos[up].haveGrad = false
	s.Run(40)
	if !protos[3].OnTree() {
		t.Error("member did not repair its branch after upstream loss")
	}
}

// TestGRPHDedup checks the Group Hello flood dedup: a second copy of the
// same (src, seq) hello must not refresh the gradient or be re-flooded.
// (seenCtl sees only Group Hellos — joins are addressed hop-by-hop and
// never deduped — so the set's identity is (src, seq) alone.)
func TestGRPHDedup(t *testing.T) {
	s, _, protos := rig(t, []geom.Point{{X: 0}, {X: 200}}, []int{1})
	p := protos[1]
	s.Run(0.01) // before any periodic traffic
	pkt := &packet.Packet{
		Kind: packet.KindGroupHello, From: 0, To: packet.Broadcast,
		Src: 0, Seq: 42, Bytes: grphBytes, Payload: &grphPayload{Seq: 42},
	}
	p.handleGRPH(pkt, medium.RxInfo{From: 0, At: s.Now()})
	if !p.haveGrad || p.gradSeq != 42 {
		t.Fatalf("first GRPH not adopted: haveGrad=%v seq=%d", p.haveGrad, p.gradSeq)
	}
	p.gradHops = 99 // sentinel: a duplicate must not overwrite this
	p.handleGRPH(pkt, medium.RxInfo{From: 0, At: s.Now()})
	if p.gradHops != 99 {
		t.Error("duplicate GRPH refreshed the gradient")
	}
}
