// Package maodv implements the Multicast operation of the Ad hoc
// On-demand Distance Vector protocol (Royer & Perkins, MobiCom'99) at the
// fidelity the paper's comparison requires: a shared multicast tree rooted
// at the group leader, on-demand joins over a flood-established gradient,
// periodic Group Hello floods, and downstream-initiated repair after link
// breaks.
//
// Simplifications versus the full RFC draft (documented for DESIGN.md):
// route discovery for unicast traffic is omitted (the evaluation has none),
// and joins travel hop-by-hop up the freshest Group-Hello gradient instead
// of an expanding-ring RREQ flood — behaviourally equivalent here because
// the source is the only traffic originator and the GRPH flood refreshes
// the gradient network-wide every period. MAODV is energy-oblivious: all
// transmissions go at full power (no power control), which is part of why
// the paper measures it above the SS-SPST family on energy per packet.
package maodv

import (
	"repro/internal/fwdpool"
	"repro/internal/medium"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Config parameterizes a MAODV instance.
type Config struct {
	// GroupHelloInterval is the leader's GRPH flood period.
	GroupHelloInterval float64
	// GradientTTL is how long a Group-Hello gradient entry stays usable.
	GradientTTL float64
	// UpstreamTimeout declares the tree link broken when nothing (data or
	// GRPH) has been heard from the upstream node for this long.
	UpstreamTimeout float64
	// BranchTTL expires a non-member router's tree state when no data has
	// flowed through it for this long (tree pruning).
	BranchTTL float64
	// JoinRetryInterval paces re-join attempts while off-tree.
	JoinRetryInterval float64
	// ForwardJitterMax decorrelates sibling forwards.
	ForwardJitterMax float64
}

// DefaultConfig mirrors common MAODV simulation settings of the era.
func DefaultConfig() Config {
	return Config{
		GroupHelloInterval: 5,
		GradientTTL:        12,
		UpstreamTimeout:    3,
		BranchTTL:          10,
		JoinRetryInterval:  2,
		ForwardJitterMax:   6e-3,
	}
}

// grphPayload is the Group Hello flood content.
type grphPayload struct {
	Seq  uint32 // group sequence number
	Hops int    // hops from the leader so far
}

// joinPayload is the hop-by-hop join activation (RREQ-join + MACT folded
// into one hop-wise message; see the package comment).
type joinPayload struct {
	Requester packet.NodeID
	NextHop   packet.NodeID // the gradient upstream this hop addresses
}

const (
	grphBytes = packet.MACHeaderBytes + packet.IPHeaderBytes + 16
	joinBytes = packet.MACHeaderBytes + packet.IPHeaderBytes + 24
)

// Protocol is one node's MAODV instance; it implements netsim.Protocol and
// netsim.TreeStater.
type Protocol struct {
	cfg  Config
	node *netsim.Slot
	rng  *xrand.RNG

	// Leader state (the multicast source doubles as group leader).
	grphSeq uint32

	// Gradient toward the leader from the freshest GRPH.
	gradUp   packet.NodeID
	gradHops int
	gradSeq  uint32
	gradAt   float64
	haveGrad bool

	// Tree state.
	onTree      bool
	upstream    packet.NodeID
	lastUpHeard float64
	lastDataFwd float64
	// lastGraft is the last time a downstream join passed through (or,
	// for members, the last time they grafted themselves). Router state
	// expires BranchTTL after it: branches persist only while some
	// downstream member keeps refreshing them.
	lastGraft float64
	// lastKeepAlive paces a member's periodic re-graft of its branch.
	lastKeepAlive float64

	// Dedup sets. Each sees a single originator (the leader/source)
	// numbering densely from zero — packet.SeqSet's bitset fast path —
	// where the old hash maps put several probes on every data reception.
	seenData packet.SeqSet // forwarding dedup
	seenApp  packet.SeqSet // member delivery dedup
	seenCtl  packet.SeqSet // Group Hello flood dedup
	seq      uint32

	// Frame pools (fwdpool): data forwards, GRPH floods and hop-by-hop
	// joins recycle through packet.Owner instead of allocating per frame.
	datPool  *fwdpool.Pool[struct{}]
	grphPool *fwdpool.Pool[grphPayload]
	joinPool *fwdpool.Pool[joinPayload]

	ticker *sim.Ticker
	// startTimer is the leader's desynchronized first-GRPH timer; stored
	// so Stop can cancel an instance crashed before its first flood.
	startTimer *sim.Timer
}

// New returns a MAODV instance.
func New(cfg Config) *Protocol {
	return &Protocol{cfg: cfg}
}

// Start implements netsim.Protocol.
func (p *Protocol) Start(n *netsim.Slot) {
	p.node = n
	p.rng = n.ProtoRNG("maodv")
	p.datPool = fwdpool.New[struct{}](n)
	p.grphPool = fwdpool.New[grphPayload](n)
	p.joinPool = fwdpool.New[joinPayload](n)
	if n.Source {
		p.onTree = true
		// Leader floods Group Hellos; desynchronized start.
		first := p.rng.Range(0.05, 0.5)
		p.startTimer = n.Sim().Schedule(first, func() {
			p.sendGRPH()
			p.ticker = n.Sim().Every(p.cfg.GroupHelloInterval, 0.1, p.sendGRPH)
		})
		return
	}
	// Members try to join whenever off-tree; routers just maintain state.
	p.ticker = n.Sim().Every(p.cfg.JoinRetryInterval, 0.25, p.maintain)
}

// Stop implements netsim.Stopper: it cancels the instance's timers so a
// crashed node goes quiet. Crashed nodes restart with a fresh instance.
func (p *Protocol) Stop() {
	p.startTimer.Cancel()
	if p.ticker != nil {
		p.ticker.Stop()
	}
}

func (p *Protocol) maxRange() float64 { return p.node.Net.Medium.Model().MaxRange }

// sendGRPH floods one Group Hello from the leader.
func (p *Protocol) sendGRPH() {
	p.grphSeq++
	f := p.grphPool.Take()
	f.Payload = grphPayload{Seq: p.grphSeq}
	f.Pkt = packet.Packet{
		Kind:    packet.KindGroupHello,
		From:    p.node.ID,
		To:      packet.Broadcast,
		Src:     p.node.ID,
		Seq:     p.grphSeq,
		Bytes:   grphBytes,
		Payload: &f.Payload,
		Owner:   f,
	}
	p.node.Broadcast(&f.Pkt, p.maxRange())
}

// maintain runs periodically on non-leader nodes: detect upstream
// breaks, expire idle branches, and (re-)join when a member is off-tree.
func (p *Protocol) maintain() {
	now := p.node.Now()
	if p.onTree {
		switch {
		case now-p.lastUpHeard > p.cfg.UpstreamTimeout:
			// Link break: leave the tree; a member will re-join below.
			p.onTree = false
		case !p.node.Member && now-p.lastGraft > p.cfg.BranchTTL:
			// No downstream member has refreshed this branch: prune.
			p.onTree = false
		}
	}
	if !p.node.Member {
		return
	}
	if !p.onTree {
		p.tryJoin()
		return
	}
	// On-tree member: periodic keep-alive re-graft so the router chain
	// above does not expire.
	if now-p.lastKeepAlive > p.cfg.BranchTTL/2 {
		p.lastKeepAlive = now
		if p.haveGrad && now-p.gradAt <= p.cfg.GradientTTL {
			p.sendJoin(p.node.ID, p.gradUp)
		}
	}
}

// tryJoin grafts optimistically: the member adopts its gradient upstream
// and sends the hop-by-hop join that recruits the router chain. If the
// graft silently fails upstream, the upstream timeout clears the state and
// the next maintain tick retries.
func (p *Protocol) tryJoin() {
	now := p.node.Now()
	if !p.haveGrad || now-p.gradAt > p.cfg.GradientTTL {
		return // wait for the next GRPH
	}
	p.onTree = true
	p.upstream = p.gradUp
	p.lastUpHeard = now
	p.lastGraft = now
	p.lastKeepAlive = now
	p.sendJoin(p.node.ID, p.gradUp)
}

func (p *Protocol) sendJoin(requester, nextHop packet.NodeID) {
	f := p.joinPool.Take()
	f.Payload = joinPayload{Requester: requester, NextHop: nextHop}
	f.Pkt = packet.Packet{
		Kind:    packet.KindRREQ,
		From:    p.node.ID,
		To:      nextHop,
		Src:     requester,
		Seq:     p.nextSeq(),
		Bytes:   joinBytes,
		Payload: &f.Payload,
		Owner:   f,
	}
	p.node.Broadcast(&f.Pkt, p.maxRange())
}

func (p *Protocol) nextSeq() uint32 { p.seq++; return p.seq }

// Receive implements netsim.Protocol.
func (p *Protocol) Receive(pkt *packet.Packet, info medium.RxInfo) {
	switch pkt.Kind {
	case packet.KindGroupHello:
		p.handleGRPH(pkt, info)
	case packet.KindRREQ:
		p.handleJoin(pkt, info)
	case packet.KindData:
		p.handleData(pkt, info)
	default:
		p.node.DiscardRx(info)
	}
}

func (p *Protocol) handleGRPH(pkt *packet.Packet, info medium.RxInfo) {
	if p.node.Source {
		p.node.DiscardRx(info)
		return
	}
	gp := pkt.Payload.(*grphPayload)
	if p.seenCtl.TestAndSet(pkt.Src, pkt.Seq) {
		p.node.DiscardRx(info)
		return
	}
	// Adopt the first copy's sender as the gradient upstream (fewest hops
	// with high probability) and rebroadcast.
	p.gradUp = info.From
	p.gradHops = gp.Hops + 1
	p.gradSeq = gp.Seq
	p.gradAt = info.At
	p.haveGrad = true
	if p.onTree && info.From == p.upstream {
		p.lastUpHeard = info.At
	}
	f := p.grphPool.Take()
	f.Pkt = *pkt
	f.Pkt.Owner = f
	f.Pkt.From = p.node.ID
	f.Pkt.Hops++
	f.Payload = grphPayload{Seq: gp.Seq, Hops: gp.Hops + 1}
	f.Pkt.Payload = &f.Payload
	delay := p.rng.Range(0, p.cfg.ForwardJitterMax)
	p.grphPool.SendAfter(delay, f, p.maxRange(), nil)
}

// handleJoin grafts a branch: the addressed next-hop becomes a tree router
// (adopting its own gradient upstream) and, if it is not yet on the tree,
// propagates the join one hop further toward the leader.
func (p *Protocol) handleJoin(pkt *packet.Packet, info medium.RxInfo) {
	jp := pkt.Payload.(*joinPayload)
	if jp.NextHop != p.node.ID {
		p.node.DiscardRx(info)
		return
	}
	now := p.node.Now()
	if p.onTree || p.node.Source {
		// Graft (or keep-alive) absorbed: the branch below us is active.
		p.lastGraft = now
		return
	}
	if !p.haveGrad || now-p.gradAt > p.cfg.GradientTTL {
		return // cannot extend the branch; the joiner will retry
	}
	p.onTree = true
	p.upstream = p.gradUp
	p.lastUpHeard = now
	p.lastDataFwd = now
	p.lastGraft = now
	p.sendJoin(jp.Requester, p.gradUp)
}

func (p *Protocol) handleData(pkt *packet.Packet, info medium.RxInfo) {
	if p.node.Source {
		p.node.DiscardRx(info)
		return
	}
	consumed := false

	// Members consume the first copy they hear regardless of tree state
	// (promiscuous multicast reception).
	if p.node.Member {
		if !p.seenApp.TestAndSet(pkt.Src, pkt.Seq) {
			p.node.ConsumeData(pkt, info.At)
			consumed = true
		}
	}

	if p.onTree {
		if info.From == p.upstream {
			p.lastUpHeard = info.At
		}
		// Forward along tree edges only: with a single source (the group
		// leader) downstream data always arrives from the upstream tree
		// neighbour. Copies overheard sideways are not re-forwarded —
		// MAODV is a tree, not a mesh.
		if info.From == p.upstream && !p.seenData.TestAndSet(pkt.Src, pkt.Seq) {
			p.lastDataFwd = info.At
			f := p.datPool.Take()
			f.Pkt = *pkt
			f.Pkt.Owner = f
			f.Pkt.From = p.node.ID
			f.Pkt.Hops++
			delay := p.rng.Range(0, p.cfg.ForwardJitterMax)
			p.datPool.SendAfter(delay, f, p.maxRange(), nil)
			consumed = true
		}
	}

	if !consumed {
		p.node.DiscardRx(info)
	}
}

// Originate implements netsim.Protocol (called on the source/leader).
func (p *Protocol) Originate() {
	p.seq++
	f := p.datPool.Take()
	f.Pkt = packet.MakeData(p.node.ID, p.seq, p.node.Now())
	f.Pkt.Owner = f
	p.node.Broadcast(&f.Pkt, p.maxRange())
}

// TreeParent implements netsim.TreeStater.
func (p *Protocol) TreeParent() (packet.NodeID, bool) {
	if p.node != nil && p.node.Source {
		return p.node.ID, true
	}
	if p.onTree {
		return p.upstream, true
	}
	return packet.Broadcast, false
}

// OnTree reports whether the node currently holds tree state.
func (p *Protocol) OnTree() bool { return p.onTree }
