package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/shard"
)

// TestPlanArtifactRoundTripByteIdentity is the tentpole guarantee in
// miniature: real engine results serialized through shard records (raw
// counters + JSON) and rehydrated must reduce to byte-identical tables.
// It also pins that a PlanSpec round-tripped through JSON (the artifact
// Meta path cmd/mergefigs takes) rebuilds the identical grid.
func TestPlanArtifactRoundTripByteIdentity(t *testing.T) {
	ps := PlanSpec{Figures: []int{10, 19}, Duration: 40, Seeds: 2, BaseSeed: 1}
	plan, err := ps.Plan()
	if err != nil {
		t.Fatal(err)
	}
	jobs := plan.Jobs()
	results := scenario.DefaultEngine().Sweep(jobs)

	format := func(tbls []Table) string {
		var b strings.Builder
		for _, tbl := range tbls {
			b.WriteString(tbl.Format())
		}
		return b.String()
	}
	base, err := plan.Tables(results)
	if err != nil {
		t.Fatal(err)
	}
	want := format(base)
	if want == "" {
		t.Fatal("empty tables from live run")
	}

	// Serialize every result as an artifact record, round-trip through
	// JSON, rehydrate against the grid.
	rt := make([]scenario.Result, len(results))
	for i, res := range results {
		rec := shard.RecordOf(i, res, false)
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		var rec2 shard.JobRecord
		if err := json.Unmarshal(b, &rec2); err != nil {
			t.Fatal(err)
		}
		if rec2.FP != jobs[i].Fingerprint() {
			t.Fatalf("job %d: fingerprint drifted through JSON", i)
		}
		rt[i] = rec2.Result(jobs[i])
	}

	// Meta path: rebuild the plan from the JSON-round-tripped spec, as
	// cmd/mergefigs does, and verify the grid is the same one.
	mb, err := json.Marshal(plan.Spec())
	if err != nil {
		t.Fatal(err)
	}
	var ps2 PlanSpec
	if err := json.Unmarshal(mb, &ps2); err != nil {
		t.Fatal(err)
	}
	plan2, err := ps2.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan2.GridFingerprint() != plan.GridFingerprint() {
		t.Fatal("PlanSpec JSON round-trip changed the grid fingerprint")
	}

	merged, err := plan2.Tables(rt)
	if err != nil {
		t.Fatal(err)
	}
	if got := format(merged); got != want {
		t.Fatalf("artifact round-trip changed the tables:\n--- live ---\n%s\n--- merged ---\n%s", want, got)
	}
}

// TestFailurePropagationToFigureRow chains a real engine failure into
// the figure reduction: the failed replication is excluded from its
// row's pool, the surviving-seed count lands on the point (NOK/NTotal),
// Format footnotes the partial coverage, and a row losing every seed
// plots nothing but leaves a table note.
func TestFailurePropagationToFigureRow(t *testing.T) {
	ps := PlanSpec{Figures: []int{7}, Duration: 40, Seeds: 2, BaseSeed: 1}
	plan, err := ps.Plan()
	if err != nil {
		t.Fatal(err)
	}
	jobs := plan.Jobs()

	// Synthetic but structurally-valid summaries for every replication —
	// built through metrics.Counters, the same rehydration the artifact
	// path uses.
	results := make([]scenario.Result, len(jobs))
	for i := range jobs {
		c := metrics.Counters{
			Sent: 100, Expected: 100, Delivered: 90 + i%5,
			DelaySumS: 4.2, UniquePayloadBytes: 51200, ControlBytes: 7000,
			UnavailSamples: 50, UnavailBroken: 3,
			TxJ: 1.5, RxJ: 2.5, Nodes: 50,
		}
		results[i] = scenario.Result{Config: jobs[i], Summary: c.Summary(), Attempts: 1}
	}

	// A genuine engine failure (watchdog abort) for row 0's second seed:
	// jobs 0,1 are the first row's two replications.
	failCfg := jobs[1]
	failCfg.EventBudget = 50
	if _, err := scenario.RunE(failCfg); err == nil {
		t.Fatal("tiny event budget did not fail the run")
	} else {
		results[1] = scenario.Result{Config: jobs[1], Err: err, Attempts: 1}
	}
	// Row 1 (jobs 2,3) loses every seed.
	results[2] = scenario.Result{Config: jobs[2], Err: results[1].Err, Attempts: 1}
	results[3] = scenario.Result{Config: jobs[3], Err: results[1].Err, Attempts: 1}

	tbls, err := plan.Tables(results)
	if err != nil {
		t.Fatal(err)
	}
	tbl := tbls[0]
	series := tbl.Series["SS-SPST-E"] // figure 7's first protocol, owner of rows 0 and 1
	if len(series) != len(velocities)-1 {
		t.Fatalf("series has %d points, want %d (the all-failed row plots nothing)",
			len(series), len(velocities)-1)
	}
	p0 := series[0]
	if p0.X != velocities[0] || p0.NOK != 1 || p0.NTotal != 2 {
		t.Fatalf("degraded point = %+v, want x=%g NOK=1 NTotal=2", p0, velocities[0])
	}
	for _, p := range series[1:] {
		if p.NOK != 2 || p.NTotal != 2 {
			t.Fatalf("healthy point carries wrong coverage: %+v", p)
		}
	}
	if len(tbl.Notes) != 1 || !strings.Contains(tbl.Notes[0], "all 2 replications failed") {
		t.Fatalf("all-failed row left no note: %q", tbl.Notes)
	}
	out := tbl.Format()
	if !strings.Contains(out, "partial: SS-SPST-E at x=1 pooled 1/2 seeds") {
		t.Fatalf("Format missing the partial-coverage footnote:\n%s", out)
	}
	if !strings.Contains(out, "note: ") {
		t.Fatalf("Format missing the all-failed note:\n%s", out)
	}
}
