// Package experiments regenerates every figure of the paper's evaluation
// (§6–7): the SS-SPST metric comparison (Figures 7–9), the beacon-interval
// study (Figures 10–11), and the cross-protocol comparison against MAODV
// and ODMRP (Figures 12–16), plus the worked example of Figures 1–6 and
// the ablations listed in DESIGN.md.
//
// Figures are declarative: each one describes its grid of sweep rows
// (protocol × x-axis templates) and how to read metrics out of a row's
// summaries. Generate flattens every requested figure into one batch for
// the scenario package's global sweep engine — all points × seeds in a
// single cost-ordered queue on one persistent worker pool, with the runs
// of each (mobility, seed) point sharing a recorded movement trace — and
// aggregates each point as its replications land, so no more than the
// in-flight rows' summaries are ever retained.
//
// Each FigureN function returns a Table whose series mirror the curves in
// the paper's plot; cmd/figures prints them, bench_test.go times them, and
// EXPERIMENTS.md records paper-vs-measured shapes.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

// Point is one (x, y) sample of a curve. CI, when non-zero, is the
// half-width of the 95% confidence interval on y across the seeds that
// were averaged into it. NOK/NTotal report the replication coverage
// behind the point: NOK seeds survived of NTotal scheduled. Under the
// bounded-retry policy a persistently failing replication is excluded
// rather than fabricated, so NOK < NTotal marks a degraded point.
type Point struct {
	X  float64
	Y  float64
	CI float64

	NOK    int
	NTotal int
}

// Table is one reproduced figure: named series over a common x-axis.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Series map[string][]Point
	// Order fixes the series printing order (paper legend order).
	Order []string
	// XTicks, when set, labels a categorical x-axis: XTicks[i] names the
	// point with X == i (the cross-mobility table uses model names).
	XTicks []string
	// Notes records degradations worth surfacing next to the data — rows
	// whose every replication failed plot no point and leave a note here.
	Notes []string
}

// picker extracts one plotted metric from a summary; ok reports whether
// the run actually observed it (its denominator is non-zero), so CI
// samples never ingest the zero placeholder of a run that has no such
// observation.
type picker func(metrics.Summary) (v float64, ok bool)

// reduce pools the per-seed summaries of one sweep row into its plotted
// value (via the bias-corrected metrics.Mean) and the CI95 half-width of
// the picked metric over the seeds that observed it.
func reduce(ss []metrics.Summary, pick picker) (y, ci float64) {
	var sample metrics.Sample
	for _, s := range ss {
		if v, ok := pick(s); ok {
			sample.Add(v)
		}
	}
	y, _ = pick(metrics.Mean(ss))
	return y, sample.CI95()
}

// Options trims experiment cost. The paper runs 1800 s simulations; tests
// and benchmarks use shorter horizons with fewer seeds — curve shapes are
// stable well before the full duration.
type Options struct {
	Duration float64 // simulated seconds per run
	Seeds    int     // runs averaged per point
	BaseSeed uint64
	// Progress, when set, is called after every completed run (serialized)
	// with the batch-wide completion count; cmd/figures and cmd/sweep hang
	// their progress meters on it.
	Progress func(done, total int)
}

// Full mirrors the paper's setup.
func Full() Options { return Options{Duration: 1800, Seeds: 5, BaseSeed: 1} }

// Quick is the CI-friendly setting used by tests and benchmarks.
func Quick() Options { return Options{Duration: 180, Seeds: 2, BaseSeed: 1} }

// row is one sweep row of a figure: a config template at one x position,
// replicated over the options' seeds, feeding one or more series through
// their pickers (the cross-mobility table reads four metrics out of the
// same runs).
type row struct {
	x    float64
	cfg  scenario.Config
	outs []rowOut
}

type rowOut struct {
	series string
	pick   picker
	// tbl indexes the spec's table the series belongs to; 0 for the
	// single-table figures. The lifetime figure 19 feeds one grid of runs
	// into two tables (timeline + per-protocol summary) without running
	// the grid twice.
	tbl int
	// timeline expands the run's dead-fraction timeline into one point
	// per lifetime bucket (x = bucket end time) instead of one picked
	// scalar at the row's x.
	timeline bool
}

// figSpec is one declared figure: its table skeletons plus the rows that
// feed them. Most figures own exactly one table.
type figSpec struct {
	tbls []Table
	rows []row
}

// velocities is the paper's mobility sweep (max speed, m/s).
var velocities = []float64{1, 4, 8, 12, 16, 20}

// groupSizes is the paper's multicast group sweep.
var groupSizes = []int{10, 20, 30, 40, 50}

// beaconIntervals is the paper's beacon sweep (seconds).
var beaconIntervals = []float64{1, 1.5, 2, 2.5, 3, 3.5, 4}

// ssFamily is the Figure 7–9 protocol set.
var ssFamily = []scenario.ProtocolKind{
	scenario.SSSPSTE, scenario.SSSPST, scenario.SSSPSTT, scenario.SSSPSTF,
}

// allFour is the Figure 12–16 protocol set.
var allFour = []scenario.ProtocolKind{
	scenario.MAODV, scenario.SSSPST, scenario.SSSPSTE, scenario.ODMRP,
}

func pdr(s metrics.Summary) (float64, bool)      { return s.PDR, s.Expected > 0 }
func unavail(s metrics.Summary) (float64, bool)  { return s.Unavailability, s.UnavailSamples > 0 }
func energyMJ(s metrics.Summary) (float64, bool) { return s.EnergyPerDeliveredJ * 1e3, s.Delivered > 0 }
func delayMS(s metrics.Summary) (float64, bool)  { return s.AvgDelayS * 1e3, s.Delivered > 0 }
func ctrl(s metrics.Summary) (float64, bool)     { return s.CtrlPerDataByte, s.UniquePayloadBytes > 0 }

// Lifetime pickers (figure 19): each landmark is observed only by runs
// that actually reached it, so CI samples skip the runs where the network
// outlived the horizon.
func firstDeathS(s metrics.Summary) (float64, bool) { return s.FirstDeathS, s.FirstDeaths > 0 }
func halfDeathS(s metrics.Summary) (float64, bool)  { return s.HalfDeathS, s.HalfDeaths > 0 }
func halfDeadKB(s metrics.Summary) (float64, bool) {
	return s.HalfDeadDeliveredB / 1e3, s.HalfDeaths > 0
}
func deadFracEnd(s metrics.Summary) (float64, bool) {
	return s.DeadFrac[metrics.LifetimeBuckets-1], s.Nodes > 0
}

// velocitySpec declares a figure sweeping the given protocols over the
// velocity axis.
func velocitySpec(o Options, protos []scenario.ProtocolKind, pick picker, title, ylabel string) *figSpec {
	spec := &figSpec{tbls: []Table{{
		Title: title, XLabel: "max velocity (m/s)", YLabel: ylabel,
		Series: map[string][]Point{},
	}}}
	for _, p := range protos {
		spec.tbls[0].Order = append(spec.tbls[0].Order, p.String())
		for _, v := range velocities {
			cfg := scenario.Default()
			cfg.Duration = o.Duration
			cfg.Protocol = p
			cfg.VMax = v
			cfg.GroupSize = 20
			spec.rows = append(spec.rows, row{
				x: v, cfg: cfg, outs: []rowOut{{series: p.String(), pick: pick}},
			})
		}
	}
	return spec
}

// groupSpec declares a figure sweeping the given protocols over the
// group-size axis at fixed vmax.
func groupSpec(o Options, protos []scenario.ProtocolKind, vmax float64, pick picker, title, ylabel string) *figSpec {
	spec := &figSpec{tbls: []Table{{
		Title: title, XLabel: "multicast group size", YLabel: ylabel,
		Series: map[string][]Point{},
	}}}
	for _, p := range protos {
		spec.tbls[0].Order = append(spec.tbls[0].Order, p.String())
		for _, g := range groupSizes {
			cfg := scenario.Default()
			cfg.Duration = o.Duration
			cfg.Protocol = p
			cfg.VMax = vmax
			cfg.GroupSize = g
			if g >= cfg.N {
				cfg.GroupSize = cfg.N - 1 // everyone but the source
			}
			spec.rows = append(spec.rows, row{
				x: float64(g), cfg: cfg, outs: []rowOut{{series: p.String(), pick: pick}},
			})
		}
	}
	return spec
}

// beaconSpec declares a figure sweeping SS-SPST and SS-SPST-E over the
// beacon-interval axis at 5 m/s, the Figure 10–11 setup.
func beaconSpec(o Options, pick picker, title, ylabel string) *figSpec {
	spec := &figSpec{tbls: []Table{{
		Title: title, XLabel: "beacon interval (s)", YLabel: ylabel,
		Series: map[string][]Point{},
	}}}
	for _, p := range []scenario.ProtocolKind{scenario.SSSPSTE, scenario.SSSPST} {
		spec.tbls[0].Order = append(spec.tbls[0].Order, p.String())
		for _, b := range beaconIntervals {
			cfg := scenario.Default()
			cfg.Duration = o.Duration
			cfg.Protocol = p
			cfg.VMax = 5
			cfg.GroupSize = 20
			cfg.BeaconInterval = b
			spec.rows = append(spec.rows, row{
				x: b, cfg: cfg, outs: []rowOut{{series: p.String(), pick: pick}},
			})
		}
	}
	return spec
}

// DefaultMobilityKinds is the cross-mobility comparison's model set: the
// paper's own random waypoint plus the three models this repository adds.
func DefaultMobilityKinds() []scenario.MobilityKind {
	return []scenario.MobilityKind{
		scenario.RandomWaypoint, scenario.GaussMarkov, scenario.RPGM, scenario.Manhattan,
	}
}

// crossMobilitySpec declares the extension table beyond the paper: the
// baseline scenario (SS-SPST-E, 50 nodes, 20 receivers, 5 m/s) re-run
// under each mobility model, reporting the headline metrics side by side.
// Group mobility (RPGM) keeps receivers spatially coherent and is expected
// to be the friendliest to tree maintenance; Manhattan's street constraint
// the harshest.
func crossMobilitySpec(o Options, kinds []scenario.MobilityKind) *figSpec {
	if len(kinds) == 0 {
		kinds = DefaultMobilityKinds()
	}
	spec := &figSpec{tbls: []Table{{
		Title:  "Extension: cross-mobility comparison (SS-SPST-E, paper baseline)",
		XLabel: "mobility model",
		YLabel: "metric value",
		Series: map[string][]Point{},
		Order:  []string{"PDR", "energy/pkt (mJ)", "unavailability", "delay (ms)"},
	}}}
	outs := []rowOut{
		{series: "PDR", pick: pdr}, {series: "energy/pkt (mJ)", pick: energyMJ},
		{series: "unavailability", pick: unavail}, {series: "delay (ms)", pick: delayMS},
	}
	for ki, k := range kinds {
		spec.tbls[0].XTicks = append(spec.tbls[0].XTicks, k.String())
		cfg := scenario.Default()
		cfg.Duration = o.Duration
		cfg.Protocol = scenario.SSSPSTE
		cfg.Mobility = k
		cfg.VMax = 5
		spec.rows = append(spec.rows, row{x: float64(ki), cfg: cfg, outs: outs})
	}
	return spec
}

// extensionMSTSpec declares the SS-MST extension experiment (the paper's
// ref [14]) alongside the SPST family over the velocity axis.
func extensionMSTSpec(o Options) *figSpec {
	return velocitySpec(o, []scenario.ProtocolKind{
		scenario.SSSPST, scenario.SSSPSTE, scenario.SSMST,
	}, energyMJ,
		"Extension: SS-MST vs SS-SPST/SS-SPST-E, energy per packet vs velocity",
		"energy (mJ)")
}

// churnIntervals is the figure 18 membership-churn sweep: seconds between
// member swaps, fastest churn first. The x-axis is the interval itself —
// shorter interval = higher churn rate.
var churnIntervals = []float64{2, 5, 10, 20, 40}

// churnSpec declares figure 18 — the membership-churn sweep this
// repository adds beyond the paper: all four protocols at the paper
// baseline (5 m/s, 20 receivers) with the group rotating one member every
// MemberChurnInterval seconds. The paper's unavailability metric exists
// precisely to price membership change; this figure finally sweeps it.
// PDR and control overhead are read for every protocol; unavailability
// only for the SS family, whose availability sampler defines it.
func churnSpec(o Options) *figSpec {
	spec := &figSpec{tbls: []Table{{
		Title:  "Figure 18: PDR / unavailability / control overhead vs membership churn",
		XLabel: "churn interval (s)",
		YLabel: "metric value (per series)",
		Series: map[string][]Point{},
	}}}
	t := &spec.tbls[0]
	type metricOut struct {
		label  string
		pick   picker
		ssOnly bool
	}
	outs := []metricOut{
		{"PDR", pdr, false},
		{"unavail", unavail, true},
		{"ctrl/B", ctrl, false},
	}
	for _, mo := range outs {
		for _, p := range allFour {
			if mo.ssOnly && !p.SelfStabilizing() {
				continue
			}
			t.Order = append(t.Order, p.String()+" "+mo.label)
		}
	}
	for _, p := range allFour {
		for _, ci := range churnIntervals {
			cfg := scenario.Default()
			cfg.Duration = o.Duration
			cfg.Protocol = p
			cfg.VMax = 5
			cfg.GroupSize = 20
			cfg.MemberChurnInterval = ci
			r := row{x: ci, cfg: cfg}
			for _, mo := range outs {
				if mo.ssOnly && !p.SelfStabilizing() {
					continue
				}
				r.outs = append(r.outs, rowOut{series: p.String() + " " + mo.label, pick: mo.pick})
			}
			spec.rows = append(spec.rows, r)
		}
	}
	return spec
}

// lifetimeBattery scales the figure 19 battery reserve to the run horizon
// so depletion lands mid-run at any duration: 20 J carries the baseline
// traffic load for roughly 600 s, the calibration the lifetime example
// established.
func lifetimeBattery(o Options) float64 { return 20 * o.Duration / 600 }

// lifetimeSpec declares figure 19 — the network-lifetime study the paper
// motivates SS-SPST-E with (its refs [7][28]) but never measures: every
// node starts with the same finite battery and the four protocols are
// compared on how long the network stays useful. One grid of runs feeds
// two tables: (a) the dead-node fraction over time, one curve per
// protocol, from the collector's fixed-bucket death timeline; (b) the
// per-protocol lifetime summary — first-node-death time, half-dead time,
// payload delivered until half the network died, residual dead fraction
// and PDR.
func lifetimeSpec(o Options) *figSpec {
	spec := &figSpec{tbls: []Table{
		{
			Title:  "Figure 19a: dead-node fraction over time (finite batteries)",
			XLabel: "time (s)",
			YLabel: "fraction of nodes dead",
			Series: map[string][]Point{},
		},
		{
			Title:  "Figure 19b: network-lifetime summary (finite batteries)",
			XLabel: "protocol",
			YLabel: "metric value (per series)",
			Series: map[string][]Point{},
			Order: []string{
				"first death (s)", "half-dead (s)", "payload kB @ half-dead",
				"dead fraction @ end", "PDR",
			},
		},
	}}
	battery := lifetimeBattery(o)
	for pi, p := range allFour {
		spec.tbls[0].Order = append(spec.tbls[0].Order, p.String())
		spec.tbls[1].XTicks = append(spec.tbls[1].XTicks, p.String())
		cfg := scenario.Default()
		cfg.Duration = o.Duration
		cfg.Protocol = p
		cfg.VMax = 2
		cfg.GroupSize = 20
		cfg.Battery = battery
		spec.rows = append(spec.rows, row{
			x: float64(pi), cfg: cfg, outs: []rowOut{
				{series: p.String(), tbl: 0, timeline: true},
				{series: "first death (s)", tbl: 1, pick: firstDeathS},
				{series: "half-dead (s)", tbl: 1, pick: halfDeathS},
				{series: "payload kB @ half-dead", tbl: 1, pick: halfDeadKB},
				{series: "dead fraction @ end", tbl: 1, pick: deadFracEnd},
				{series: "PDR", tbl: 1, pick: pdr},
			},
		})
	}
	return spec
}

// groupCounts is the figure 21 concurrent-group sweep: the number of
// independent multicast groups multiplexed over each node's single radio.
// K=1 is the paper's workload; the axis doubles up to 16 topics.
var groupCounts = []int{1, 2, 4, 8, 16}

// multiGroupSpec declares figure 21 — the many-group pub/sub workload this
// repository adds beyond the paper: all four protocols at the paper
// baseline (5 m/s, 20 receivers in the primary group) with K concurrent
// groups sharing every node's radio, battery and mobility. Per-topic
// popularity is Zipf-skewed (s=1), so group 0 keeps the paper's exact
// member count and source rate while later topics shrink; the summary
// metrics pool all topics. PDR and control overhead are read for every
// protocol; unavailability only for the SS family, whose availability
// sampler defines it — with K instances it prices tree re-stabilization
// under cross-topic radio contention.
func multiGroupSpec(o Options) *figSpec {
	spec := &figSpec{tbls: []Table{{
		Title:  "Figure 21: PDR / unavailability / control overhead vs concurrent group count",
		XLabel: "concurrent groups (K)",
		YLabel: "metric value (per series)",
		Series: map[string][]Point{},
	}}}
	t := &spec.tbls[0]
	type metricOut struct {
		label  string
		pick   picker
		ssOnly bool
	}
	outs := []metricOut{
		{"PDR", pdr, false},
		{"unavail", unavail, true},
		{"ctrl/B", ctrl, false},
	}
	for _, mo := range outs {
		for _, p := range allFour {
			if mo.ssOnly && !p.SelfStabilizing() {
				continue
			}
			t.Order = append(t.Order, p.String()+" "+mo.label)
		}
	}
	for _, p := range allFour {
		for _, k := range groupCounts {
			cfg := scenario.Default()
			cfg.Duration = o.Duration
			cfg.Protocol = p
			cfg.VMax = 5
			cfg.GroupSize = 20
			cfg.Groups = k
			r := row{x: float64(k), cfg: cfg}
			for _, mo := range outs {
				if mo.ssOnly && !p.SelfStabilizing() {
					continue
				}
				r.outs = append(r.outs, rowOut{series: p.String() + " " + mo.label, pick: mo.pick})
			}
			spec.rows = append(spec.rows, r)
		}
	}
	return spec
}

// burstLengths is the figure 20a loss-burstiness sweep: the Gilbert-Elliott
// mean burst length in packets (1/PBadGood), longest burst last. The mean
// loss rate is held roughly constant while the burst structure changes —
// the axis isolates burstiness, not raw loss.
var burstLengths = []float64{1, 2, 4, 8, 16}

// crashMTBFFracs is the figure 20b crash-rate sweep: mean time between
// crashes as a fraction of the run horizon, gentlest first. MTTR is fixed
// at Duration/12 so the expected down-fraction rises with the crash rate.
var crashMTBFFracs = []float64{2, 1, 0.5, 0.25}

// faultSpec declares figure 20 — the fault-injection robustness study this
// repository adds beyond the paper: all four protocols at the paper
// baseline (5 m/s, 20 receivers) under (a) Gilbert-Elliott bursty channel
// loss of increasing burst length and (b) crash/reboot node faults of
// increasing rate. One spec, two tables, separate grids. PDR and control
// overhead are read for every protocol; unavailability only for the SS
// family, whose availability sampler defines it — under faults it prices
// how long the tree takes to re-stabilize after each loss burst or reboot.
func faultSpec(o Options) *figSpec {
	spec := &figSpec{tbls: []Table{
		{
			Title:  "Figure 20a: PDR / unavailability / control overhead vs loss burst length (Gilbert-Elliott)",
			XLabel: "mean loss burst length (packets)",
			YLabel: "metric value (per series)",
			Series: map[string][]Point{},
		},
		{
			Title:  "Figure 20b: PDR / unavailability / control overhead vs crash rate (MTBF as fraction of run)",
			XLabel: "crash MTBF / duration",
			YLabel: "metric value (per series)",
			Series: map[string][]Point{},
		},
	}}
	type metricOut struct {
		label  string
		pick   picker
		ssOnly bool
	}
	outs := []metricOut{
		{"PDR", pdr, false},
		{"unavail", unavail, true},
		{"ctrl/B", ctrl, false},
	}
	for ti := range spec.tbls {
		for _, mo := range outs {
			for _, p := range allFour {
				if mo.ssOnly && !p.SelfStabilizing() {
					continue
				}
				spec.tbls[ti].Order = append(spec.tbls[ti].Order, p.String()+" "+mo.label)
			}
		}
	}
	base := func(p scenario.ProtocolKind) scenario.Config {
		cfg := scenario.Default()
		cfg.Duration = o.Duration
		cfg.Protocol = p
		cfg.VMax = 5
		cfg.GroupSize = 20
		return cfg
	}
	addOuts := func(r *row, p scenario.ProtocolKind, tbl int) {
		for _, mo := range outs {
			if mo.ssOnly && !p.SelfStabilizing() {
				continue
			}
			r.outs = append(r.outs, rowOut{series: p.String() + " " + mo.label, pick: mo.pick, tbl: tbl})
		}
	}
	for _, p := range allFour {
		for _, L := range burstLengths {
			cfg := base(p)
			cfg.Faults.Loss.PGoodBad = 0.05
			cfg.Faults.Loss.PBadGood = 1 / L
			cfg.Faults.Loss.LossBad = 0.8
			r := row{x: L, cfg: cfg}
			addOuts(&r, p, 0)
			spec.rows = append(spec.rows, r)
		}
		for _, frac := range crashMTBFFracs {
			cfg := base(p)
			cfg.Faults.CrashMTBF = frac * o.Duration
			cfg.Faults.CrashMTTR = o.Duration / 12
			r := row{x: frac, cfg: cfg}
			addOuts(&r, p, 1)
			spec.rows = append(spec.rows, r)
		}
	}
	return spec
}

// spec builds the declared figure n (7–20); kinds parameterizes the
// cross-mobility table 17 and is ignored elsewhere.
func spec(n int, o Options, kinds []scenario.MobilityKind) (*figSpec, error) {
	switch n {
	case 7:
		return velocitySpec(o, ssFamily, pdr,
			"Figure 7: PDR vs velocity (SS-SPST family)", "packet delivery ratio"), nil
	case 8:
		return velocitySpec(o, ssFamily, unavail,
			"Figure 8: Unavailability ratio vs velocity (SS-SPST family)", "unavailability ratio"), nil
	case 9:
		return velocitySpec(o, ssFamily, energyMJ,
			"Figure 9: Energy per packet vs velocity (SS-SPST family)", "energy (mJ)"), nil
	case 10:
		return beaconSpec(o, pdr,
			"Figure 10: PDR vs beacon interval", "packet delivery ratio"), nil
	case 11:
		return beaconSpec(o, energyMJ,
			"Figure 11: Energy per packet vs beacon interval", "energy (mJ)"), nil
	case 12:
		return groupSpec(o, allFour, 1, pdr,
			"Figure 12: PDR vs multicast group size", "packet delivery ratio"), nil
	case 13:
		return groupSpec(o, allFour, 1, ctrl,
			"Figure 13: Control bytes per data byte delivered vs group size", "control bytes / data byte"), nil
	case 14:
		return velocitySpec(o, allFour, pdr,
			"Figure 14: PDR vs velocity (protocol comparison)", "packet delivery ratio"), nil
	case 15:
		return groupSpec(o, allFour, 1, delayMS,
			"Figure 15: Average delay vs multicast group size", "delay (ms)"), nil
	case 16:
		return velocitySpec(o, allFour, energyMJ,
			"Figure 16: Energy per packet vs velocity (protocol comparison)", "energy (mJ)"), nil
	case 17:
		return crossMobilitySpec(o, kinds), nil
	case 18:
		return churnSpec(o), nil
	case 19:
		return lifetimeSpec(o), nil
	case 20:
		return faultSpec(o), nil
	case 21:
		return multiGroupSpec(o), nil
	default:
		return nil, fmt.Errorf("experiments: unknown figure %d (valid: 7-21)", n)
	}
}

// AllFigures lists the generatable figure numbers in paper order
// (7–16 reproduce the paper; 17 is the cross-mobility extension, 18 the
// membership-churn sweep, 19 the network-lifetime study, 20 the
// fault-injection robustness study, 21 the concurrent-group sweep — note
// 19 and 20 each yield two tables).
func AllFigures() []int { return []int{7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21} }

// Generate regenerates the requested figures as ONE globally scheduled
// batch: every (figure, row, seed) run goes into the shared engine's
// cost-ordered queue together, so the longest runs start first regardless
// of which figure owns them, worker arenas stay hot across figure
// boundaries, and the runs of each (mobility, seed) point share one
// recorded movement trace even when different figures request the same
// point. kinds parameterizes the cross-mobility table 17 (nil → default
// set). Tables return in request order; a figure owning several tables
// (the lifetime figure 19 emits a timeline and a summary) contributes
// them consecutively.
func Generate(o Options, figs []int, kinds []scenario.MobilityKind) ([]Table, error) {
	specs := make([]*figSpec, len(figs))
	for i, n := range figs {
		sp, err := spec(n, o, kinds)
		if err != nil {
			return nil, err
		}
		specs[i] = sp
	}
	return generateSpecs(o, specs)
}

// generateSpecs runs declared figures through the shared engine and
// reduces the results offline — the same flatten + reduceSpecs pair the
// sharded Plan path uses, so live runs, resumed runs and merged shard
// artifacts all format byte-identically.
func generateSpecs(o Options, specs []*figSpec) ([]Table, error) {
	cfgs, keys := flatten(o, specs)
	results := make([]scenario.Result, len(cfgs))
	done := 0
	scenario.DefaultEngine().SweepFunc(cfgs, func(i int, res scenario.Result) {
		results[i] = res
		done++
		if o.Progress != nil {
			o.Progress(done, len(cfgs))
		}
	})
	return reduceSpecs(o, specs, keys, results), nil
}

// timelinePoints expands one row's seed summaries into the dead-fraction
// curve: one point per lifetime bucket, x at the bucket's end time, y the
// pooled dead fraction and CI the per-seed spread at that bucket.
func timelinePoints(ss []metrics.Summary, duration float64) []Point {
	pooled := metrics.Mean(ss)
	pts := make([]Point, metrics.LifetimeBuckets)
	for k := range pts {
		var sample metrics.Sample
		for _, s := range ss {
			sample.Add(s.DeadFrac[k])
		}
		pts[k] = Point{
			X:  duration * float64(k+1) / metrics.LifetimeBuckets,
			Y:  pooled.DeadFrac[k],
			CI: sample.CI95(),
		}
	}
	return pts
}

// generate1 is the single-figure convenience used by the FigureN API.
func generate1(o Options, n int, kinds []scenario.MobilityKind) Table {
	tbls, err := Generate(o, []int{n}, kinds)
	if err != nil {
		panic(err) // unreachable: n is a package-internal constant
	}
	return tbls[0]
}

// Figure7 reproduces "Packet Delivery Ratio vs. Velocity" for the SS-SPST
// metric family.
func Figure7(o Options) Table { return generate1(o, 7, nil) }

// Figure8 reproduces "Unavailability Ratio vs. Velocity".
func Figure8(o Options) Table { return generate1(o, 8, nil) }

// Figure9 reproduces "Energy Consumption per Packet Delivered vs.
// Velocity" for the metric family.
func Figure9(o Options) Table { return generate1(o, 9, nil) }

// Figure10 reproduces "PDR vs. Beacon Interval" (SS-SPST vs SS-SPST-E,
// 5 m/s).
func Figure10(o Options) Table { return generate1(o, 10, nil) }

// Figure11 reproduces "Energy Consumption per Packet Delivered vs. Beacon
// Interval".
func Figure11(o Options) Table { return generate1(o, 11, nil) }

// Figure12 reproduces "PDR vs. Multicast Group Size" for the four-protocol
// comparison at 1 m/s.
func Figure12(o Options) Table { return generate1(o, 12, nil) }

// Figure13 reproduces "Control Byte Overhead vs. Multicast Group Size".
func Figure13(o Options) Table { return generate1(o, 13, nil) }

// Figure14 reproduces "PDR vs. Velocity" for the four-protocol comparison
// (group size 20).
func Figure14(o Options) Table { return generate1(o, 14, nil) }

// Figure15 reproduces "Average Delay per Node vs. Multicast Group Size".
func Figure15(o Options) Table { return generate1(o, 15, nil) }

// Figure16 reproduces "Energy Consumed per Packet Delivered vs. Velocity"
// for the four-protocol comparison.
func Figure16(o Options) Table { return generate1(o, 16, nil) }

// ExtensionMST is an extension experiment beyond the paper: the SS-MST
// minimax variant (the paper's ref [14]) alongside the SPST family over
// the velocity axis, on the Figure 7/9 axes.
func ExtensionMST(o Options) Table {
	specs := []*figSpec{extensionMSTSpec(o)}
	tbls, err := generateSpecs(o, specs)
	if err != nil {
		panic(err)
	}
	return tbls[0]
}

// CrossMobility regenerates table 17 with an explicit model set.
func CrossMobility(o Options, kinds []scenario.MobilityKind) Table {
	return generate1(o, 17, kinds)
}

// Figure18 generates the membership-churn sweep: PDR, unavailability (SS
// family) and control overhead for all four protocols as the group
// rotates one member every MemberChurnInterval seconds.
func Figure18(o Options) Table { return generate1(o, 18, nil) }

// Figure19 generates the network-lifetime study under finite batteries
// and returns its two tables: the dead-node fraction timeline (one curve
// per protocol) and the per-protocol lifetime summary (first death,
// half-dead time, payload delivered until half-dead, residual dead
// fraction, PDR).
func Figure19(o Options) []Table {
	tbls, err := Generate(o, []int{19}, nil)
	if err != nil {
		panic(err) // unreachable: 19 is a package-internal constant
	}
	return tbls
}

// Figure20 generates the fault-injection robustness study and returns its
// two tables: PDR / unavailability / control overhead versus the
// Gilbert-Elliott loss burst length (20a) and versus the crash/reboot rate
// (20b), for all four protocols.
func Figure20(o Options) []Table {
	tbls, err := Generate(o, []int{20}, nil)
	if err != nil {
		panic(err) // unreachable: 20 is a package-internal constant
	}
	return tbls
}

// Figure21 generates the concurrent-group sweep: PDR, unavailability (SS
// family) and control overhead for all four protocols as K independent
// Zipf-popular multicast groups share each node's radio.
func Figure21(o Options) Table { return generate1(o, 21, nil) }

// All returns every reproduced paper figure in paper order, generated as
// one batch.
func All(o Options) []Table {
	tbls, err := Generate(o, []int{7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, nil)
	if err != nil {
		panic(err)
	}
	return tbls
}

// Format renders the table as aligned text, one row per x value. Points
// carrying a confidence interval render as "mean ±ci"; categorical
// tables (XTicks set) label rows by tick name instead of the numeric x.
func (t Table) Format() string {
	var b strings.Builder
	names := t.seriesNames()
	colw := 12
	for _, n := range names {
		if len(n)+2 > colw {
			colw = len(n) + 2
		}
		for _, pt := range t.Series[n] {
			if pt.CI > 0 && colw < 22 {
				colw = 22
			}
		}
	}
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-24s", t.XLabel)
	for _, n := range names {
		fmt.Fprintf(&b, "%*s", colw, n)
	}
	b.WriteByte('\n')
	if len(names) == 0 {
		return b.String()
	}
	for i, pt := range t.Series[names[0]] {
		if i < len(t.XTicks) {
			fmt.Fprintf(&b, "%-24s", t.XTicks[i])
		} else {
			fmt.Fprintf(&b, "%-24.3g", pt.X)
		}
		for _, n := range names {
			cell := "-"
			if i < len(t.Series[n]) {
				p := t.Series[n][i]
				cell = fmt.Sprintf("%.4g", p.Y)
				if p.CI > 0 {
					cell += fmt.Sprintf(" ±%.2g", p.CI)
				}
			}
			fmt.Fprintf(&b, "%*s", colw, cell)
		}
		b.WriteByte('\n')
	}
	// Degradation footer: points pooled from fewer seeds than scheduled
	// (persistent replication failures) and rows that plotted nothing.
	// Fully-covered tables print exactly as before.
	for _, n := range names {
		for _, p := range t.Series[n] {
			if p.NTotal > 0 && p.NOK < p.NTotal {
				fmt.Fprintf(&b, "  partial: %s at x=%g pooled %d/%d seeds\n", n, p.X, p.NOK, p.NTotal)
			}
		}
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", note)
	}
	return b.String()
}

// seriesNames returns the legend order (declared order first, then any
// extras alphabetically).
func (t Table) seriesNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, n := range t.Order {
		if _, ok := t.Series[n]; ok && !seen[n] {
			names = append(names, n)
			seen[n] = true
		}
	}
	var rest []string
	for n := range t.Series {
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(names, rest...)
}

func sortPoints(ps []Point) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].X < ps[j].X })
}
