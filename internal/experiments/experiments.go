// Package experiments regenerates every figure of the paper's evaluation
// (§6–7): the SS-SPST metric comparison (Figures 7–9), the beacon-interval
// study (Figures 10–11), and the cross-protocol comparison against MAODV
// and ODMRP (Figures 12–16), plus the worked example of Figures 1–6 and
// the ablations listed in DESIGN.md.
//
// Each FigureN function returns a Table whose series mirror the curves in
// the paper's plot; cmd/figures prints them, bench_test.go times them, and
// EXPERIMENTS.md records paper-vs-measured shapes.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

// Point is one (x, y) sample of a curve. CI, when non-zero, is the
// half-width of the 95% confidence interval on y across the seeds that
// were averaged into it.
type Point struct {
	X  float64
	Y  float64
	CI float64
}

// Table is one reproduced figure: named series over a common x-axis.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Series map[string][]Point
	// Order fixes the series printing order (paper legend order).
	Order []string
	// XTicks, when set, labels a categorical x-axis: XTicks[i] names the
	// point with X == i (the cross-mobility table uses model names).
	XTicks []string
}

// picker extracts one plotted metric from a summary; ok reports whether
// the run actually observed it (its denominator is non-zero), so CI
// samples never ingest the zero placeholder of a run that has no such
// observation.
type picker func(metrics.Summary) (v float64, ok bool)

// reduce pools the per-seed summaries of one sweep point into its
// plotted value (via the bias-corrected metrics.Mean) and the CI95
// half-width of the picked metric over the seeds that observed it.
func reduce(ss []metrics.Summary, pick picker) (y, ci float64) {
	var sample metrics.Sample
	for _, s := range ss {
		if v, ok := pick(s); ok {
			sample.Add(v)
		}
	}
	y, _ = pick(metrics.Mean(ss))
	return y, sample.CI95()
}

// Options trims experiment cost. The paper runs 1800 s simulations; tests
// and benchmarks use shorter horizons with fewer seeds — curve shapes are
// stable well before the full duration.
type Options struct {
	Duration float64 // simulated seconds per run
	Seeds    int     // runs averaged per point
	BaseSeed uint64
}

// Full mirrors the paper's setup.
func Full() Options { return Options{Duration: 1800, Seeds: 5, BaseSeed: 1} }

// Quick is the CI-friendly setting used by tests and benchmarks.
func Quick() Options { return Options{Duration: 180, Seeds: 2, BaseSeed: 1} }

func (o Options) apply(cfg *scenario.Config) {
	cfg.Duration = o.Duration
	cfg.Seed = o.BaseSeed
}

// velocities is the paper's mobility sweep (max speed, m/s).
var velocities = []float64{1, 4, 8, 12, 16, 20}

// groupSizes is the paper's multicast group sweep.
var groupSizes = []int{10, 20, 30, 40, 50}

// beaconIntervals is the paper's beacon sweep (seconds).
var beaconIntervals = []float64{1, 1.5, 2, 2.5, 3, 3.5, 4}

// ssFamily is the Figure 7–9 protocol set.
var ssFamily = []scenario.ProtocolKind{
	scenario.SSSPSTE, scenario.SSSPST, scenario.SSSPSTT, scenario.SSSPSTF,
}

// allFour is the Figure 12–16 protocol set.
var allFour = []scenario.ProtocolKind{
	scenario.MAODV, scenario.SSSPST, scenario.SSSPSTE, scenario.ODMRP,
}

// sweepVelocity runs the given protocols over the velocity axis and maps
// each run summary through pick.
func sweepVelocity(o Options, protos []scenario.ProtocolKind, pick picker) Table {
	tbl := Table{XLabel: "max velocity (m/s)", Series: map[string][]Point{}}
	var cfgs []scenario.Config
	var keys []struct {
		name string
		v    float64
	}
	for _, p := range protos {
		tbl.Order = append(tbl.Order, p.String())
		for _, v := range velocities {
			for s := 0; s < o.Seeds; s++ {
				cfg := scenario.Default()
				o.apply(&cfg)
				cfg.Protocol = p
				cfg.VMax = v
				cfg.GroupSize = 20
				cfg.Seed = o.BaseSeed + uint64(s)*1000003
				cfgs = append(cfgs, cfg)
				keys = append(keys, struct {
					name string
					v    float64
				}{p.String(), v})
			}
		}
	}
	results := scenario.Sweep(cfgs)
	acc := map[string]map[float64][]metrics.Summary{}
	for i, r := range results {
		k := keys[i]
		if acc[k.name] == nil {
			acc[k.name] = map[float64][]metrics.Summary{}
		}
		acc[k.name][k.v] = append(acc[k.name][k.v], r.Summary)
	}
	for name, byV := range acc {
		for _, v := range velocities {
			y, ci := reduce(byV[v], pick)
			tbl.Series[name] = append(tbl.Series[name], Point{X: v, Y: y, CI: ci})
		}
		sortPoints(tbl.Series[name])
	}
	return tbl
}

// sweepGroup runs the given protocols over the group-size axis.
func sweepGroup(o Options, protos []scenario.ProtocolKind, vmax float64, pick picker) Table {
	tbl := Table{XLabel: "multicast group size", Series: map[string][]Point{}}
	var cfgs []scenario.Config
	var keys []struct {
		name string
		g    int
	}
	for _, p := range protos {
		tbl.Order = append(tbl.Order, p.String())
		for _, g := range groupSizes {
			for s := 0; s < o.Seeds; s++ {
				cfg := scenario.Default()
				o.apply(&cfg)
				cfg.Protocol = p
				cfg.VMax = vmax
				cfg.GroupSize = g
				if g >= cfg.N {
					cfg.GroupSize = cfg.N - 1 // everyone but the source
				}
				cfg.Seed = o.BaseSeed + uint64(s)*1000003
				cfgs = append(cfgs, cfg)
				keys = append(keys, struct {
					name string
					g    int
				}{p.String(), g})
			}
		}
	}
	results := scenario.Sweep(cfgs)
	acc := map[string]map[int][]metrics.Summary{}
	for i, r := range results {
		k := keys[i]
		if acc[k.name] == nil {
			acc[k.name] = map[int][]metrics.Summary{}
		}
		acc[k.name][k.g] = append(acc[k.name][k.g], r.Summary)
	}
	for name, byG := range acc {
		for _, g := range groupSizes {
			y, ci := reduce(byG[g], pick)
			tbl.Series[name] = append(tbl.Series[name], Point{X: float64(g), Y: y, CI: ci})
		}
		sortPoints(tbl.Series[name])
	}
	return tbl
}

// sweepBeacon runs SS-SPST and SS-SPST-E over the beacon-interval axis at
// 5 m/s, the Figure 10–11 setup.
func sweepBeacon(o Options, pick picker) Table {
	tbl := Table{XLabel: "beacon interval (s)", Series: map[string][]Point{}}
	protos := []scenario.ProtocolKind{scenario.SSSPSTE, scenario.SSSPST}
	var cfgs []scenario.Config
	var keys []struct {
		name string
		b    float64
	}
	for _, p := range protos {
		tbl.Order = append(tbl.Order, p.String())
		for _, b := range beaconIntervals {
			for s := 0; s < o.Seeds; s++ {
				cfg := scenario.Default()
				o.apply(&cfg)
				cfg.Protocol = p
				cfg.VMax = 5
				cfg.GroupSize = 20
				cfg.BeaconInterval = b
				cfg.Seed = o.BaseSeed + uint64(s)*1000003
				cfgs = append(cfgs, cfg)
				keys = append(keys, struct {
					name string
					b    float64
				}{p.String(), b})
			}
		}
	}
	results := scenario.Sweep(cfgs)
	acc := map[string]map[float64][]metrics.Summary{}
	for i, r := range results {
		k := keys[i]
		if acc[k.name] == nil {
			acc[k.name] = map[float64][]metrics.Summary{}
		}
		acc[k.name][k.b] = append(acc[k.name][k.b], r.Summary)
	}
	for name, byB := range acc {
		for _, b := range beaconIntervals {
			y, ci := reduce(byB[b], pick)
			tbl.Series[name] = append(tbl.Series[name], Point{X: b, Y: y, CI: ci})
		}
		sortPoints(tbl.Series[name])
	}
	return tbl
}

func pdr(s metrics.Summary) (float64, bool)      { return s.PDR, s.Expected > 0 }
func unavail(s metrics.Summary) (float64, bool)  { return s.Unavailability, s.UnavailSamples > 0 }
func energyMJ(s metrics.Summary) (float64, bool) { return s.EnergyPerDeliveredJ * 1e3, s.Delivered > 0 }
func delayMS(s metrics.Summary) (float64, bool)  { return s.AvgDelayS * 1e3, s.Delivered > 0 }
func ctrl(s metrics.Summary) (float64, bool)     { return s.CtrlPerDataByte, s.UniquePayloadBytes > 0 }

// Figure7 reproduces "Packet Delivery Ratio vs. Velocity" for the SS-SPST
// metric family.
func Figure7(o Options) Table {
	t := sweepVelocity(o, ssFamily, pdr)
	t.Title, t.YLabel = "Figure 7: PDR vs velocity (SS-SPST family)", "packet delivery ratio"
	return t
}

// Figure8 reproduces "Unavailability Ratio vs. Velocity".
func Figure8(o Options) Table {
	t := sweepVelocity(o, ssFamily, unavail)
	t.Title, t.YLabel = "Figure 8: Unavailability ratio vs velocity (SS-SPST family)", "unavailability ratio"
	return t
}

// Figure9 reproduces "Energy Consumption per Packet Delivered vs.
// Velocity" for the metric family.
func Figure9(o Options) Table {
	t := sweepVelocity(o, ssFamily, energyMJ)
	t.Title, t.YLabel = "Figure 9: Energy per packet vs velocity (SS-SPST family)", "energy (mJ)"
	return t
}

// Figure10 reproduces "PDR vs. Beacon Interval" (SS-SPST vs SS-SPST-E,
// 5 m/s).
func Figure10(o Options) Table {
	t := sweepBeacon(o, pdr)
	t.Title, t.YLabel = "Figure 10: PDR vs beacon interval", "packet delivery ratio"
	return t
}

// Figure11 reproduces "Energy Consumption per Packet Delivered vs. Beacon
// Interval".
func Figure11(o Options) Table {
	t := sweepBeacon(o, energyMJ)
	t.Title, t.YLabel = "Figure 11: Energy per packet vs beacon interval", "energy (mJ)"
	return t
}

// Figure12 reproduces "PDR vs. Multicast Group Size" for the four-protocol
// comparison at 1 m/s.
func Figure12(o Options) Table {
	t := sweepGroup(o, allFour, 1, pdr)
	t.Title, t.YLabel = "Figure 12: PDR vs multicast group size", "packet delivery ratio"
	return t
}

// Figure13 reproduces "Control Byte Overhead vs. Multicast Group Size".
func Figure13(o Options) Table {
	t := sweepGroup(o, allFour, 1, ctrl)
	t.Title, t.YLabel = "Figure 13: Control bytes per data byte delivered vs group size", "control bytes / data byte"
	return t
}

// Figure14 reproduces "PDR vs. Velocity" for the four-protocol comparison
// (group size 20).
func Figure14(o Options) Table {
	t := sweepVelocity(o, allFour, pdr)
	t.Title, t.YLabel = "Figure 14: PDR vs velocity (protocol comparison)", "packet delivery ratio"
	return t
}

// Figure15 reproduces "Average Delay per Node vs. Multicast Group Size".
func Figure15(o Options) Table {
	t := sweepGroup(o, allFour, 1, delayMS)
	t.Title, t.YLabel = "Figure 15: Average delay vs multicast group size", "delay (ms)"
	return t
}

// Figure16 reproduces "Energy Consumed per Packet Delivered vs. Velocity"
// for the four-protocol comparison.
func Figure16(o Options) Table {
	t := sweepVelocity(o, allFour, energyMJ)
	t.Title, t.YLabel = "Figure 16: Energy per packet vs velocity (protocol comparison)", "energy (mJ)"
	return t
}

// ExtensionMST is an extension experiment beyond the paper: the SS-MST
// minimax variant (the paper's ref [14]) alongside the SPST family over
// the velocity axis, on the Figure 7/9 axes.
func ExtensionMST(o Options) Table {
	t := sweepVelocity(o, []scenario.ProtocolKind{
		scenario.SSSPST, scenario.SSSPSTE, scenario.SSMST,
	}, energyMJ)
	t.Title = "Extension: SS-MST vs SS-SPST/SS-SPST-E, energy per packet vs velocity"
	t.YLabel = "energy (mJ)"
	return t
}

// DefaultMobilityKinds is the cross-mobility comparison's model set: the
// paper's own random waypoint plus the three models this repository adds.
func DefaultMobilityKinds() []scenario.MobilityKind {
	return []scenario.MobilityKind{
		scenario.RandomWaypoint, scenario.GaussMarkov, scenario.RPGM, scenario.Manhattan,
	}
}

// CrossMobility is the extension table beyond the paper: the baseline
// scenario (SS-SPST-E, 50 nodes, 20 receivers, 5 m/s) re-run under each
// mobility model, reporting the headline metrics side by side. Group
// mobility (RPGM) keeps receivers spatially coherent and is expected to
// be the friendliest to tree maintenance; Manhattan's street constraint
// the harshest.
func CrossMobility(o Options, kinds []scenario.MobilityKind) Table {
	if len(kinds) == 0 {
		kinds = DefaultMobilityKinds()
	}
	tbl := Table{
		Title:  "Extension: cross-mobility comparison (SS-SPST-E, paper baseline)",
		XLabel: "mobility model",
		YLabel: "metric value",
		Series: map[string][]Point{},
		Order:  []string{"PDR", "energy/pkt (mJ)", "unavailability", "delay (ms)"},
	}
	var cfgs []scenario.Config
	var keys []int // index into kinds
	for ki, k := range kinds {
		tbl.XTicks = append(tbl.XTicks, k.String())
		for s := 0; s < o.Seeds; s++ {
			cfg := scenario.Default()
			o.apply(&cfg)
			cfg.Protocol = scenario.SSSPSTE
			cfg.Mobility = k
			cfg.VMax = 5
			cfg.Seed = o.BaseSeed + uint64(s)*1000003
			cfgs = append(cfgs, cfg)
			keys = append(keys, ki)
		}
	}
	results := scenario.Sweep(cfgs)
	byKind := make([][]metrics.Summary, len(kinds))
	for i, r := range results {
		byKind[keys[i]] = append(byKind[keys[i]], r.Summary)
	}
	picks := map[string]picker{
		"PDR": pdr, "energy/pkt (mJ)": energyMJ, "unavailability": unavail, "delay (ms)": delayMS,
	}
	for name, pick := range picks {
		for ki := range kinds {
			y, ci := reduce(byKind[ki], pick)
			tbl.Series[name] = append(tbl.Series[name], Point{X: float64(ki), Y: y, CI: ci})
		}
		sortPoints(tbl.Series[name])
	}
	return tbl
}

// All returns every figure in paper order.
func All(o Options) []Table {
	return []Table{
		Figure7(o), Figure8(o), Figure9(o), Figure10(o), Figure11(o),
		Figure12(o), Figure13(o), Figure14(o), Figure15(o), Figure16(o),
	}
}

// Format renders the table as aligned text, one row per x value. Points
// carrying a confidence interval render as "mean ±ci"; categorical
// tables (XTicks set) label rows by tick name instead of the numeric x.
func (t Table) Format() string {
	var b strings.Builder
	names := t.seriesNames()
	colw := 12
	for _, n := range names {
		for _, pt := range t.Series[n] {
			if pt.CI > 0 {
				colw = 22
			}
		}
	}
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-24s", t.XLabel)
	for _, n := range names {
		fmt.Fprintf(&b, "%*s", colw, n)
	}
	b.WriteByte('\n')
	if len(names) == 0 {
		return b.String()
	}
	for i, pt := range t.Series[names[0]] {
		if i < len(t.XTicks) {
			fmt.Fprintf(&b, "%-24s", t.XTicks[i])
		} else {
			fmt.Fprintf(&b, "%-24.3g", pt.X)
		}
		for _, n := range names {
			cell := "-"
			if i < len(t.Series[n]) {
				p := t.Series[n][i]
				cell = fmt.Sprintf("%.4g", p.Y)
				if p.CI > 0 {
					cell += fmt.Sprintf(" ±%.2g", p.CI)
				}
			}
			fmt.Fprintf(&b, "%*s", colw, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// seriesNames returns the legend order (declared order first, then any
// extras alphabetically).
func (t Table) seriesNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, n := range t.Order {
		if _, ok := t.Series[n]; ok && !seen[n] {
			names = append(names, n)
			seen[n] = true
		}
	}
	var rest []string
	for n := range t.Series {
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(names, rest...)
}

func sortPoints(ps []Point) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].X < ps[j].X })
}
