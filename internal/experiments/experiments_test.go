package experiments

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

// tiny is an ultra-short option set for structural tests; shape assertions
// use slightly longer runs below.
func tiny() Options { return Options{Duration: 40, Seeds: 1, BaseSeed: 1} }

func TestFigureStructure(t *testing.T) {
	type gen struct {
		name   string
		f      func(Options) Table
		series int
		points int
	}
	gens := []gen{
		{"fig7", Figure7, 4, 6},
		{"fig8", Figure8, 4, 6},
		{"fig9", Figure9, 4, 6},
		{"fig10", Figure10, 2, 7},
		{"fig11", Figure11, 2, 7},
		{"fig12", Figure12, 4, 5},
		{"fig13", Figure13, 4, 5},
		{"fig14", Figure14, 4, 6},
		{"fig15", Figure15, 4, 5},
		{"fig16", Figure16, 4, 6},
	}
	for _, g := range gens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			tbl := g.f(tiny())
			if len(tbl.Series) != g.series {
				t.Fatalf("%s: %d series, want %d", g.name, len(tbl.Series), g.series)
			}
			for name, pts := range tbl.Series {
				if len(pts) != g.points {
					t.Errorf("%s series %q: %d points, want %d", g.name, name, len(pts), g.points)
				}
				for i := 1; i < len(pts); i++ {
					if pts[i].X <= pts[i-1].X {
						t.Errorf("%s series %q: x not increasing at %d", g.name, name, i)
					}
				}
			}
			if tbl.Title == "" || tbl.XLabel == "" || tbl.YLabel == "" {
				t.Error("missing labels")
			}
		})
	}
}

// TestCrossMobilityStructure: one point per mobility model, the headline
// metric series, labelled ticks, and CIs populated once there are two or
// more seeds.
func TestCrossMobilityStructure(t *testing.T) {
	o := tiny()
	o.Seeds = 2
	tbl := CrossMobility(o, nil)
	if len(tbl.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(tbl.Series))
	}
	kinds := DefaultMobilityKinds()
	if len(tbl.XTicks) != len(kinds) {
		t.Fatalf("ticks = %v, want one per model", tbl.XTicks)
	}
	for name, pts := range tbl.Series {
		if len(pts) != len(kinds) {
			t.Errorf("series %q: %d points, want %d", name, len(pts), len(kinds))
		}
	}
	anyCI := false
	for _, pts := range tbl.Series {
		for _, p := range pts {
			if p.CI > 0 {
				anyCI = true
			}
		}
	}
	if !anyCI {
		t.Error("no point carries a CI95 with 2 seeds")
	}
	out := tbl.Format()
	for _, k := range kinds {
		if !strings.Contains(out, k.String()) {
			t.Errorf("formatted table missing model %v:\n%s", k, out)
		}
	}
	if !strings.Contains(out, "±") {
		t.Errorf("formatted table missing CI marker:\n%s", out)
	}
	pdrPts := tbl.Series["PDR"]
	for _, p := range pdrPts {
		if p.Y < 0 || p.Y > 1 {
			t.Errorf("PDR out of range: %+v", p)
		}
	}
}

// TestChurnFigureStructure: figure 18 sweeps the churn-interval axis for
// all four protocols — PDR and control overhead everywhere, unavailability
// for the SS family only (the availability sampler defines it).
func TestChurnFigureStructure(t *testing.T) {
	tbl := Figure18(tiny())
	// 4 protocols × (PDR, ctrl) + 2 SS protocols × unavail.
	if len(tbl.Series) != 10 {
		t.Fatalf("series = %d, want 10: %v", len(tbl.Series), tbl.Order)
	}
	for name, pts := range tbl.Series {
		if len(pts) != len(churnIntervals) {
			t.Errorf("series %q: %d points, want %d", name, len(pts), len(churnIntervals))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X {
				t.Errorf("series %q: x not increasing at %d", name, i)
			}
		}
	}
	for _, banned := range []string{"MAODV unavail", "ODMRP unavail"} {
		if _, ok := tbl.Series[banned]; ok {
			t.Errorf("series %q exists: unavailability is undefined outside the SS family", banned)
		}
	}
	for _, name := range []string{"SS-SPST unavail", "SS-SPST-E unavail", "MAODV PDR", "ODMRP ctrl/B"} {
		if _, ok := tbl.Series[name]; !ok {
			t.Errorf("missing series %q", name)
		}
	}
}

// TestLifetimeFigureStructure: figure 19 returns two tables from one run
// grid — the dead-fraction timeline (monotone nondecreasing curves over
// the fixed buckets) and the per-protocol lifetime summary. The tiny
// battery guarantees deaths well inside the horizon, so the landmark
// metrics must be populated.
func TestLifetimeFigureStructure(t *testing.T) {
	tbls := Figure19(tiny())
	if len(tbls) != 2 {
		t.Fatalf("figure 19 yields %d tables, want 2", len(tbls))
	}
	timeline, summary := tbls[0], tbls[1]

	if len(timeline.Series) != len(allFour) {
		t.Fatalf("timeline series = %d, want %d", len(timeline.Series), len(allFour))
	}
	anyDeath := false
	for name, pts := range timeline.Series {
		if len(pts) != metrics.LifetimeBuckets {
			t.Fatalf("timeline %q: %d points, want %d", name, len(pts), metrics.LifetimeBuckets)
		}
		for i, p := range pts {
			if p.Y < 0 || p.Y > 1 {
				t.Errorf("timeline %q: dead fraction %v out of range", name, p.Y)
			}
			if i > 0 && p.Y < pts[i-1].Y {
				t.Errorf("timeline %q: dead fraction decreased at bucket %d", name, i)
			}
			if p.Y > 0 {
				anyDeath = true
			}
		}
	}
	if !anyDeath {
		t.Error("no protocol recorded any death: lifetime battery not depleting")
	}

	if len(summary.XTicks) != len(allFour) {
		t.Fatalf("summary ticks = %v, want one per protocol", summary.XTicks)
	}
	for _, name := range summary.Order {
		pts, ok := summary.Series[name]
		if !ok {
			t.Fatalf("missing summary series %q", name)
		}
		if len(pts) != len(allFour) {
			t.Errorf("summary %q: %d points, want %d", name, len(pts), len(allFour))
		}
	}
	for _, p := range summary.Series["first death (s)"] {
		if p.Y <= 0 {
			t.Errorf("first-death time %v not positive: death landmark missing", p.Y)
		}
	}
}

func TestExtensionMSTStructure(t *testing.T) {
	tbl := ExtensionMST(tiny())
	if len(tbl.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(tbl.Series))
	}
	if _, ok := tbl.Series["SS-MST"]; !ok {
		t.Error("missing SS-MST series")
	}
}

func TestFormat(t *testing.T) {
	tbl := Table{
		Title:  "T",
		XLabel: "x",
		YLabel: "y",
		Order:  []string{"B", "A"},
		Series: map[string][]Point{
			"A": {{X: 1, Y: 2}, {X: 2, Y: 3}},
			"B": {{X: 1, Y: 5}, {X: 2, Y: 6}},
		},
	}
	out := tbl.Format()
	if !strings.Contains(out, "T") || !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Errorf("format output missing pieces:\n%s", out)
	}
	// Declared order: B before A.
	if strings.Index(out, "B") > strings.Index(out, "A") {
		t.Error("series order not honoured")
	}
}

// TestShapeVelocityDegradesPDR: the single most robust qualitative shape —
// PDR at high mobility is worse than at low mobility for the SS family.
func TestShapeVelocityDegradesPDR(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test needs longer runs")
	}
	lo := scenario.Default()
	lo.Protocol = scenario.SSSPST
	lo.VMax = 1
	lo.Duration = 200
	hi := lo
	hi.VMax = 20
	rs := scenario.Sweep([]scenario.Config{lo, hi})
	if rs[1].Summary.PDR >= rs[0].Summary.PDR {
		t.Errorf("PDR did not degrade with mobility: %.3f @1m/s vs %.3f @20m/s",
			rs[0].Summary.PDR, rs[1].Summary.PDR)
	}
}

// TestShapeEnergyOrdering: SS-SPST-E beats plain SS-SPST on energy per
// delivered packet (the headline), at moderate mobility.
func TestShapeEnergyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test needs longer runs")
	}
	base := scenario.Default()
	base.VMax = 2
	base.Duration = 240
	var sums [2]metrics.Summary
	for i, p := range []scenario.ProtocolKind{scenario.SSSPST, scenario.SSSPSTE} {
		cfg := base
		cfg.Protocol = p
		sums[i] = scenario.RunSeeds(cfg, 2)
	}
	if sums[1].EnergyPerDeliveredJ >= sums[0].EnergyPerDeliveredJ {
		t.Errorf("SS-SPST-E (%.3g J) not cheaper than SS-SPST (%.3g J)",
			sums[1].EnergyPerDeliveredJ, sums[0].EnergyPerDeliveredJ)
	}
	if sums[1].TotalEnergyJ >= sums[0].TotalEnergyJ {
		t.Errorf("SS-SPST-E raw energy (%.3g J) not below SS-SPST (%.3g J)",
			sums[1].TotalEnergyJ, sums[0].TotalEnergyJ)
	}
}

// TestShapeGroupScalability: SS-SPST's PDR stays roughly flat from small
// to large groups (the §7.3 claim).
func TestShapeGroupScalability(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test needs longer runs")
	}
	small := scenario.Default()
	small.Protocol = scenario.SSSPST
	small.VMax = 1
	small.GroupSize = 10
	small.Duration = 200
	large := small
	large.GroupSize = 45
	rs := scenario.Sweep([]scenario.Config{small, large})
	if rs[1].Summary.PDR < rs[0].Summary.PDR*0.85 {
		t.Errorf("PDR collapsed with group size: %.3f → %.3f",
			rs[0].Summary.PDR, rs[1].Summary.PDR)
	}
}
