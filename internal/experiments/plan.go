package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/shard"
)

// PlanSpec is the serializable identity of a figure batch: everything
// that determines the flattened job grid and its reduction, and nothing
// else. It is the Meta document embedded in shard artifacts, so a merge
// process can rebuild the exact plan the shards ran from and verify the
// grid fingerprint before pooling any record.
type PlanSpec struct {
	Figures  []int    `json:"figures"`
	Mobility []string `json:"mobility,omitempty"` // table 17's model set; empty = default
	Duration float64  `json:"duration"`
	Seeds    int      `json:"seeds"`
	BaseSeed uint64   `json:"base_seed"`
}

// runKey locates one replication in its figure's reduction: which spec,
// which sweep row of it, which seed slot.
type runKey struct{ fig, row, seed int }

// Plan is a fully-resolved figure batch: the declared figures, their
// flattened (row × seed) job grid in a fixed order, and the reduction
// from per-job results back to tables. The grid order, every config in
// it, and the reduction are pure functions of the PlanSpec — that is
// what makes sharding safe: k processes each build the same Plan, run
// disjoint index sets, and any one of them (or cmd/mergefigs) can pool
// the union into byte-identical output.
type Plan struct {
	spec  PlanSpec
	o     Options
	kinds []scenario.MobilityKind
	cfgs  []scenario.Config
	keys  []runKey
}

// Plan resolves the spec into its job grid. It fails on unknown figure
// numbers or mobility model names.
func (ps PlanSpec) Plan() (*Plan, error) {
	o := Options{Duration: ps.Duration, Seeds: ps.Seeds, BaseSeed: ps.BaseSeed}
	if o.Seeds < 1 {
		return nil, fmt.Errorf("experiments: plan needs seeds >= 1, got %d", o.Seeds)
	}
	var kinds []scenario.MobilityKind
	for _, name := range ps.Mobility {
		k, err := scenario.ParseMobility(name)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	p := &Plan{spec: ps, o: o, kinds: kinds}
	specs, err := p.buildSpecs()
	if err != nil {
		return nil, err
	}
	p.cfgs, p.keys = flatten(o, specs)
	return p, nil
}

// flatten expands declared figures into the ordered (row × seed) job
// grid, remembering each job's reduction slot. Grid order is the
// declaration order — a pure function of (Options, figure set), which
// every sharding process must agree on.
func flatten(o Options, specs []*figSpec) ([]scenario.Config, []runKey) {
	var cfgs []scenario.Config
	var keys []runKey
	for fi, sp := range specs {
		for ri, r := range sp.rows {
			for s := 0; s < o.Seeds; s++ {
				cfg := r.cfg
				cfg.Seed = scenario.ReplicationSeed(o.BaseSeed, s)
				cfgs = append(cfgs, cfg)
				keys = append(keys, runKey{fi, ri, s})
			}
		}
	}
	return cfgs, keys
}

// buildSpecs re-declares the plan's figures. Specs hold the mutable
// reduction state (table series), so they are rebuilt for every Tables
// call rather than cached — declaration is deterministic and cheap.
func (p *Plan) buildSpecs() ([]*figSpec, error) {
	specs := make([]*figSpec, len(p.spec.Figures))
	for i, n := range p.spec.Figures {
		sp, err := spec(n, p.o, p.kinds)
		if err != nil {
			return nil, err
		}
		specs[i] = sp
	}
	return specs, nil
}

// Spec returns the serializable identity the plan was built from.
func (p *Plan) Spec() PlanSpec { return p.spec }

// NumJobs returns the size of the flattened job grid.
func (p *Plan) NumJobs() int { return len(p.cfgs) }

// Jobs returns the grid's configs in grid order. The slice is shared;
// callers must not mutate it.
func (p *Plan) Jobs() []scenario.Config { return p.cfgs }

// Costs returns each job's expected cost (the engine's N·Duration LPT
// metric), indexed like Jobs. shard.Partition balances shards on it.
func (p *Plan) Costs() []float64 {
	costs := make([]float64, len(p.cfgs))
	for i, cfg := range p.cfgs {
		costs[i] = float64(cfg.N) * cfg.Duration
	}
	return costs
}

// GridFingerprint digests the plan's identity and every job config; it
// is what artifacts and journals produced from this plan carry, and what
// merge/resume verify before trusting any record.
func (p *Plan) GridFingerprint() string {
	return shard.GridFingerprint("figures", p.spec, p.cfgs)
}

// Tables reduces one result per grid job (indexed like Jobs) into the
// plan's figure tables — the same pooling, CI and ordering as a live
// Generate run, so a sharded-and-merged batch formats byte-identically
// to a single-process one. Failed replications are excluded from their
// row's pool: the point reports the surviving seed count via NOK/NTotal,
// and a row with no survivor contributes a table note instead of a
// fabricated zero point.
func (p *Plan) Tables(results []scenario.Result) ([]Table, error) {
	if len(results) != len(p.cfgs) {
		return nil, fmt.Errorf("experiments: plan has %d jobs, got %d results", len(p.cfgs), len(results))
	}
	specs, err := p.buildSpecs()
	if err != nil {
		return nil, err
	}
	return reduceSpecs(p.o, specs, p.keys, results), nil
}

// reduceSpecs pools per-job results back into figure tables: per-row
// seed pools (seed-indexed, so completion and shard order cannot perturb
// the reduction) through the bias-corrected metrics.Mean and CI95. It is
// the single reduction path behind both live generation and shard
// merging. Failed replications are excluded from their row's pool —
// the point carries the surviving count in NOK/NTotal; a row with no
// survivor plots nothing and leaves a Table note instead.
func reduceSpecs(o Options, specs []*figSpec, keys []runKey, results []scenario.Result) []Table {
	type rowBuf struct {
		sums []metrics.Summary
		ok   []bool
	}
	bufs := make([][]rowBuf, len(specs))
	for fi, sp := range specs {
		bufs[fi] = make([]rowBuf, len(sp.rows))
		for ri := range bufs[fi] {
			bufs[fi][ri] = rowBuf{sums: make([]metrics.Summary, o.Seeds), ok: make([]bool, o.Seeds)}
		}
	}
	for i, res := range results {
		k := keys[i]
		if res.Err != nil {
			continue
		}
		bufs[k.fig][k.row].sums[k.seed] = res.Summary
		bufs[k.fig][k.row].ok[k.seed] = true
	}

	for fi, sp := range specs {
		for ri := range sp.rows {
			r := &sp.rows[ri]
			b := &bufs[fi][ri]
			var good []metrics.Summary
			for si, ok := range b.ok {
				if ok {
					good = append(good, b.sums[si])
				}
			}
			nok := len(good)
			if nok == 0 {
				noted := map[int]bool{}
				for _, out := range r.outs {
					if noted[out.tbl] {
						continue
					}
					noted[out.tbl] = true
					sp.tbls[out.tbl].Notes = append(sp.tbls[out.tbl].Notes,
						fmt.Sprintf("row x=%g (%s): all %d replications failed; no point plotted",
							r.x, r.cfg.Protocol, o.Seeds))
				}
				continue
			}
			for _, out := range r.outs {
				t := &sp.tbls[out.tbl]
				if out.timeline {
					pts := timelinePoints(good, r.cfg.Duration)
					for pi := range pts {
						pts[pi].NOK, pts[pi].NTotal = nok, o.Seeds
					}
					t.Series[out.series] = append(t.Series[out.series], pts...)
					continue
				}
				y, ci := reduce(good, out.pick)
				t.Series[out.series] = append(t.Series[out.series],
					Point{X: r.x, Y: y, CI: ci, NOK: nok, NTotal: o.Seeds})
			}
		}
	}

	var tables []Table
	for _, sp := range specs {
		for ti := range sp.tbls {
			for name := range sp.tbls[ti].Series {
				sortPoints(sp.tbls[ti].Series[name])
			}
			tables = append(tables, sp.tbls[ti])
		}
	}
	return tables
}
