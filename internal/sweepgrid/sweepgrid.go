// Package sweepgrid builds cmd/sweep's parameter grid and writes its CSV
// outputs. It exists as a library (rather than living inside the command)
// so that a sharded sweep and cmd/mergefigs agree, by construction, on
// the exact job grid and row format: the Axes value is the serializable
// identity embedded in shard artifacts, Build is a pure function of it,
// and WriteCSV renders merged shard results byte-identically to a
// single-process run.
package sweepgrid

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

// ProtoByName maps the CLI protocol names to their kinds.
var ProtoByName = map[string]scenario.ProtocolKind{
	"ss-spst":   scenario.SSSPST,
	"ss-spst-t": scenario.SSSPSTT,
	"ss-spst-f": scenario.SSSPSTF,
	"ss-spst-e": scenario.SSSPSTE,
	"ss-mst":    scenario.SSMST,
	"maodv":     scenario.MAODV,
	"odmrp":     scenario.ODMRP,
	"flood":     scenario.Flood,
}

// Axes is the full identity of one sweep invocation: every flag that
// shapes the job grid or the CSV, verbatim. It is the Meta document a
// sweep shard artifact carries; a merge process rebuilds the grid from
// it and verifies the grid fingerprint before pooling any record.
type Axes struct {
	Protos      string  `json:"protos"`
	VMaxs       string  `json:"vmax"`
	GroupSizes  string  `json:"groupsize"`
	GroupCounts string  `json:"groups"`
	Beacons     string  `json:"beacons"`
	Churns      string  `json:"churn"`
	Batteries   string  `json:"battery"`
	Losses      string  `json:"loss"`
	CrashMTBFs  string  `json:"crash_mtbf"`
	CrashMTTR   float64 `json:"crash_mttr"`
	Mobilities  string  `json:"mobility"`
	Seeds       int     `json:"seeds"`
	Duration    float64 `json:"duration"`
	Raw         bool    `json:"raw"`
}

// Point is one grid cell; its seeds vary only the RNG.
type Point struct {
	Mobility  scenario.MobilityKind
	Proto     scenario.ProtocolKind
	VMax      float64
	Group     int
	Groups    int // concurrent multicast groups (topics); 1 = paper workload
	Beacon    float64
	Churn     float64 // membership-churn interval (s); 0 = no churn
	Battery   float64 // joules per node; 0 = unlimited
	Loss      float64 // GE mean loss burst length (packets); 0 = no injected loss
	CrashMTBF float64 // mean time between crashes (s); 0 = no crashes
}

// FaultsFor translates the CLI fault axes into a faults config: loss is
// the Gilbert-Elliott mean burst length (figure 20a calibration), mtbf the
// crash process mean (mttr 0 defaults to MTBF/10 in the model).
func FaultsFor(loss, mtbf, mttr float64) (f faults.Config) {
	if loss > 0 {
		f.Loss = faults.GEConfig{PGoodBad: 0.05, PBadGood: 1 / loss, LossBad: 0.8}
	}
	if mtbf > 0 {
		f.CrashMTBF = mtbf
		f.CrashMTTR = mttr
	}
	return f
}

// Build expands the axes into the grid's points and its flattened job
// list — Seeds consecutive configs per point, in point order. It is a
// pure function of Axes: every process sharding the same axes computes
// the same grid.
func Build(a Axes) (points []Point, cfgs []scenario.Config, err error) {
	if a.Seeds < 1 {
		return nil, nil, fmt.Errorf("sweep: seeds must be >= 1, got %d", a.Seeds)
	}
	var kinds []scenario.MobilityKind
	for _, name := range SplitList(a.Mobilities) {
		k, err := scenario.ParseMobility(name)
		if err != nil {
			return nil, nil, err
		}
		kinds = append(kinds, k)
	}
	vmaxs, err := ParseFloats(a.VMaxs)
	if err != nil {
		return nil, nil, err
	}
	groupSizes, err := ParseInts(a.GroupSizes)
	if err != nil {
		return nil, nil, err
	}
	groupCounts, err := ParseInts(a.GroupCounts)
	if err != nil {
		return nil, nil, err
	}
	beacons, err := ParseFloats(a.Beacons)
	if err != nil {
		return nil, nil, err
	}
	churns, err := ParseFloats(a.Churns)
	if err != nil {
		return nil, nil, err
	}
	batteries, err := ParseFloats(a.Batteries)
	if err != nil {
		return nil, nil, err
	}
	losses, err := ParseFloats(a.Losses)
	if err != nil {
		return nil, nil, err
	}
	mtbfs, err := ParseFloats(a.CrashMTBFs)
	if err != nil {
		return nil, nil, err
	}
	for _, m := range kinds {
		for _, pName := range SplitList(a.Protos) {
			kind, ok := ProtoByName[pName]
			if !ok {
				return nil, nil, fmt.Errorf("sweep: unknown protocol %q", pName)
			}
			for _, v := range vmaxs {
				for _, g := range groupSizes {
					for _, k := range groupCounts {
						for _, b := range beacons {
							for _, ch := range churns {
								for _, bat := range batteries {
									for _, loss := range losses {
										for _, mtbf := range mtbfs {
											points = append(points, Point{m, kind, v, g, k, b, ch, bat, loss, mtbf})
											for s := 0; s < a.Seeds; s++ {
												cfg := scenario.Default()
												cfg.Mobility = m
												cfg.Protocol = kind
												cfg.VMax = v
												cfg.GroupSize = g
												cfg.Groups = k
												cfg.BeaconInterval = b
												cfg.MemberChurnInterval = ch
												cfg.Battery = bat
												cfg.Faults = FaultsFor(loss, mtbf, a.CrashMTTR)
												cfg.Duration = a.Duration
												cfg.Seed = scenario.ReplicationSeed(1, s)
												if err := cfg.Validate(); err != nil {
													return nil, nil, fmt.Errorf("sweep: %w", err)
												}
												cfgs = append(cfgs, cfg)
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return points, cfgs, nil
}

// WriteCSV renders the grid's results in the format the axes request
// (raw one-row-per-seed, or aggregated mean ± CI95 per point). results
// must parallel the cfgs Build returned.
func WriteCSV(out io.Writer, a Axes, points []Point, results []scenario.Result) error {
	w := csv.NewWriter(out)
	if a.Raw {
		writeRaw(w, results)
	} else {
		writeAggregated(w, points, results, a.Seeds)
	}
	w.Flush()
	return w.Error()
}

// WriteCompletedCSV renders only the points whose every replication has
// landed (done[i] reporting per-job completion) — the partial flush the
// signal handlers use so an interrupted sweep still emits every finished
// row. It returns the number of points written.
func WriteCompletedCSV(out io.Writer, a Axes, points []Point, results []scenario.Result, done []bool) (int, error) {
	var keep []Point
	var kept []scenario.Result
	complete := 0
	for i, p := range points {
		all := true
		for s := 0; s < a.Seeds; s++ {
			if !done[i*a.Seeds+s] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		complete++
		keep = append(keep, p)
		kept = append(kept, results[i*a.Seeds:(i+1)*a.Seeds]...)
	}
	return complete, WriteCSV(out, a, keep, kept)
}

// cfgBurst recovers the -loss axis value (GE mean burst length) from a
// run's config; 0 when no loss was injected.
func cfgBurst(c scenario.Config) float64 {
	if c.Faults.Loss.PBadGood > 0 {
		return 1 / c.Faults.Loss.PBadGood
	}
	return 0
}

// cfgGroups recovers the -groups axis value (concurrent topic count) from
// a run's config; the zero value means the single paper group.
func cfgGroups(c scenario.Config) int {
	if c.Groups > 1 {
		return c.Groups
	}
	return 1
}

// writeRaw emits the legacy one-row-per-seed format. A failed replication
// (isolated panic, watchdog abort) keeps its identifying columns, sets
// failed=1 and zeroes every metric — consumers filter on the flag.
func writeRaw(w *csv.Writer, results []scenario.Result) {
	w.Write([]string{
		"mobility", "protocol", "vmax", "group", "groups", "beacon", "churn", "battery",
		"loss", "crash_mtbf", "seed",
		"pdr", "energy_per_pkt_mJ", "delay_ms", "ctrl_per_data_byte",
		"unavailability", "total_energy_J", "tx_J", "rx_J", "discard_J",
		"dead_nodes", "first_death_s", "half_death_s", "retries", "failed",
	})
	for _, r := range results {
		s := r.Summary
		c := r.Config
		failed := "0"
		if r.Err != nil {
			failed = "1"
		}
		w.Write([]string{
			c.Mobility.String(), c.Protocol.String(),
			Ftoa(c.VMax), strconv.Itoa(c.GroupSize), strconv.Itoa(cfgGroups(c)),
			Ftoa(c.BeaconInterval),
			Ftoa(c.MemberChurnInterval), Ftoa(c.Battery),
			Ftoa(cfgBurst(c)), Ftoa(c.Faults.CrashMTBF),
			strconv.FormatUint(c.Seed, 10),
			Ftoa(s.PDR), Ftoa(s.EnergyPerDeliveredJ * 1e3), Ftoa(s.AvgDelayS * 1e3),
			Ftoa(s.CtrlPerDataByte), Ftoa(s.Unavailability),
			Ftoa(s.TotalEnergyJ), Ftoa(s.TxJ), Ftoa(s.RxJ), Ftoa(s.DiscardJ),
			strconv.Itoa(s.DeadNodes), Ftoa(s.FirstDeathS), Ftoa(s.HalfDeathS),
			strconv.Itoa(s.Faults.JoinRetries), failed,
		})
	}
}

// writeAggregated reduces each point's seeds to mean ± CI95 columns. The
// mean is the pooled (denominator-weighted) metrics.Mean; the CI is the
// Student-t 95% half-width of the per-seed values. Failed replications
// join no pool: n_seeds still reports the attempted count, failed_runs how
// many were excluded. Multi-topic points (groups > 1) emit the pooled row
// (topic "all") followed by one row per topic, pooled from that topic's
// per-seed summaries; node-lifecycle columns stay zero on per-topic rows
// because battery death and crash retries are radio-level, not per-topic.
func writeAggregated(w *csv.Writer, points []Point, results []scenario.Result, seeds int) {
	w.Write([]string{
		"mobility", "protocol", "vmax", "group", "groups", "topic",
		"beacon", "churn", "battery",
		"loss", "crash_mtbf", "seeds",
		"pdr", "pdr_ci95",
		"energy_per_pkt_mJ", "energy_per_pkt_ci95",
		"delay_ms", "delay_ci95",
		"ctrl_per_data_byte", "ctrl_ci95",
		"unavailability", "unavailability_ci95",
		"total_energy_J", "total_energy_ci95",
		"dead_nodes", "dead_nodes_ci95",
		"first_death_s", "first_death_ci95",
		"retries", "failed_runs",
	})
	row := func(p Point, topic string, sums []metrics.Summary, agg *metrics.Aggregate) {
		pooled := metrics.Mean(sums)
		nOK := len(sums)
		deadPerRun := 0.0
		if nOK > 0 {
			deadPerRun = float64(pooled.DeadNodes) / float64(nOK)
		}
		k := p.Groups
		if k < 1 {
			k = 1
		}
		w.Write([]string{
			p.Mobility.String(), p.Proto.String(),
			Ftoa(p.VMax), strconv.Itoa(p.Group), strconv.Itoa(k), topic,
			Ftoa(p.Beacon),
			Ftoa(p.Churn), Ftoa(p.Battery),
			Ftoa(p.Loss), Ftoa(p.CrashMTBF), strconv.Itoa(seeds),
			Ftoa(pooled.PDR), Ftoa(agg.PDR.CI95()),
			Ftoa(pooled.EnergyPerDeliveredJ * 1e3), Ftoa(agg.EnergyPerPkt.CI95() * 1e3),
			Ftoa(pooled.AvgDelayS * 1e3), Ftoa(agg.DelayS.CI95() * 1e3),
			Ftoa(pooled.CtrlPerDataByte), Ftoa(agg.CtrlPerByte.CI95()),
			Ftoa(pooled.Unavailability), Ftoa(agg.Unavailability.CI95()),
			Ftoa(pooled.TotalEnergyJ), Ftoa(agg.TotalEnergyJ.CI95()),
			Ftoa(deadPerRun), Ftoa(agg.DeadNodes.CI95()),
			Ftoa(pooled.FirstDeathS), Ftoa(agg.FirstDeathS.CI95()),
			strconv.Itoa(pooled.Faults.JoinRetries), strconv.Itoa(agg.Failed),
		})
	}
	for i, p := range points {
		var agg metrics.Aggregate
		var sums []metrics.Summary
		for s := 0; s < seeds; s++ {
			r := results[i*seeds+s]
			if r.Err != nil {
				agg.AddFailed()
				continue
			}
			sums = append(sums, r.Summary)
			agg.AddSummary(r.Summary)
		}
		row(p, "all", sums, &agg)
		if p.Groups <= 1 {
			continue
		}
		for g := 0; g < p.Groups; g++ {
			var tagg metrics.Aggregate
			var tsums []metrics.Summary
			for s := 0; s < seeds; s++ {
				r := results[i*seeds+s]
				if r.Err != nil || g >= len(r.PerGroup) {
					tagg.AddFailed()
					continue
				}
				tsums = append(tsums, r.PerGroup[g])
				tagg.AddSummary(r.PerGroup[g])
			}
			row(p, strconv.Itoa(g), tsums, &tagg)
		}
	}
}

// SplitList splits a comma-separated flag value, trimming and lowering.
func SplitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.ToLower(p))
		}
	}
	return out
}

// ParseFloats parses a comma-separated list of numbers.
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range SplitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad number %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseInts parses a comma-separated list of integers (float syntax
// accepted, truncated).
func ParseInts(s string) ([]int, error) {
	fs, err := ParseFloats(s)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, v := range fs {
		out = append(out, int(v))
	}
	return out, nil
}

// Ftoa renders a float the way every sweep CSV column does.
func Ftoa(f float64) string { return strconv.FormatFloat(f, 'g', 6, 64) }
