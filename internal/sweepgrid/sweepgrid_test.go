package sweepgrid

import (
	"bytes"
	"encoding/csv"
	"errors"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

func tinyAxes() Axes {
	return Axes{
		Protos: "ss-spst", VMaxs: "1", GroupSizes: "20", GroupCounts: "1",
		Beacons: "2", Churns: "0", Batteries: "0", Losses: "0", CrashMTBFs: "0",
		Mobilities: "rwp", Seeds: 2, Duration: 40,
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := tinyAxes()
	a.VMaxs = "1,5"
	a.Protos = "ss-spst,odmrp"
	p1, c1, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	p2, c2, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != 4 || len(c1) != 8 {
		t.Fatalf("grid size %d points / %d cfgs, want 4 / 8", len(p1), len(c1))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("point %d differs between builds", i)
		}
	}
	for i := range c1 {
		if c1[i].Fingerprint() != c2[i].Fingerprint() {
			t.Fatalf("config %d differs between builds", i)
		}
	}
	if _, _, err := Build(Axes{Protos: "nope", VMaxs: "1", GroupSizes: "20", GroupCounts: "1",
		Beacons: "2", Churns: "0", Batteries: "0", Losses: "0", CrashMTBFs: "0",
		Mobilities: "rwp", Seeds: 1, Duration: 40}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

// TestFailedRunsColumn pins the Aggregate propagation: a failed
// replication joins no metric pool but is counted in failed_runs, and in
// raw mode sets the failed flag on its own row.
func TestFailedRunsColumn(t *testing.T) {
	a := tinyAxes()
	points, cfgs, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	ok := metrics.Counters{
		Sent: 100, Expected: 100, Delivered: 90,
		DelaySumS: 4, UniquePayloadBytes: 51200, ControlBytes: 7000,
		UnavailSamples: 50, UnavailBroken: 2, TxJ: 1, RxJ: 2, Nodes: 50,
	}.Summary()
	results := []scenario.Result{
		{Config: cfgs[0], Summary: ok},
		{Config: cfgs[1], Err: errors.New("scenario: run panicked")},
	}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, a, points, results); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("aggregated CSV has %d rows, want header + 1", len(rows))
	}
	header, row := rows[0], rows[1]
	col := func(name string) string {
		for i, h := range header {
			if h == name {
				return row[i]
			}
		}
		t.Fatalf("no column %q", name)
		return ""
	}
	if col("failed_runs") != "1" {
		t.Fatalf("failed_runs = %q, want 1", col("failed_runs"))
	}
	if col("seeds") != "2" {
		t.Fatalf("seeds = %q, want 2 (attempted count, not survivors)", col("seeds"))
	}
	if col("pdr") != Ftoa(0.9) {
		t.Fatalf("pdr = %q, want %s (failed seed excluded from the pool)", col("pdr"), Ftoa(0.9))
	}

	a.Raw = true
	buf.Reset()
	if err := WriteCSV(&buf, a, points, results); err != nil {
		t.Fatal(err)
	}
	rows, err = csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("raw CSV has %d rows, want header + 2", len(rows))
	}
	failedCol := len(rows[0]) - 1
	if rows[0][failedCol] != "failed" {
		t.Fatalf("last raw column is %q, want failed", rows[0][failedCol])
	}
	if rows[1][failedCol] != "0" || rows[2][failedCol] != "1" {
		t.Fatalf("failed flags = %q, %q, want 0, 1", rows[1][failedCol], rows[2][failedCol])
	}
}

// TestWriteCompletedCSV: the signal-handler flush emits exactly the
// points whose every replication landed.
func TestWriteCompletedCSV(t *testing.T) {
	a := tinyAxes()
	a.VMaxs = "1,5"
	points, cfgs, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	ok := metrics.Counters{Sent: 10, Expected: 10, Delivered: 9, UniquePayloadBytes: 100, TxJ: 1}.Summary()
	results := make([]scenario.Result, len(cfgs))
	done := make([]bool, len(cfgs))
	for i := range cfgs {
		results[i] = scenario.Result{Config: cfgs[i], Summary: ok}
	}
	// Point 0 fully done; point 1 missing its second seed.
	done[0], done[1], done[2] = true, true, true

	var buf bytes.Buffer
	n, err := WriteCompletedCSV(&buf, a, points, results, done)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("flushed %d points, want 1", n)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Fatalf("flushed CSV has %d lines, want header + 1", lines)
	}
}
