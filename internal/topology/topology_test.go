package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// line returns n nodes spaced `gap` apart on the x-axis.
func line(n int, gap float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * gap}
	}
	return pts
}

func TestAdjacency(t *testing.T) {
	g := NewGraph(line(3, 100), 150)
	if !g.Adjacent(0, 1) || !g.Adjacent(1, 2) {
		t.Error("neighbours at 100 m should be adjacent at range 150")
	}
	if g.Adjacent(0, 2) {
		t.Error("nodes 200 m apart adjacent at range 150")
	}
	if len(g.Neighbors(1)) != 2 {
		t.Errorf("middle node has %d neighbours", len(g.Neighbors(1)))
	}
}

func TestConnected(t *testing.T) {
	if !NewGraph(line(5, 100), 150).Connected() {
		t.Error("chain should be connected")
	}
	pts := append(line(3, 100), geom.Point{X: 10000})
	if NewGraph(pts, 150).Connected() {
		t.Error("distant node should disconnect the graph")
	}
}

func TestComponent(t *testing.T) {
	pts := append(line(3, 100), geom.Point{X: 10000}, geom.Point{X: 10100})
	g := NewGraph(pts, 150)
	if got := len(g.Component(0)); got != 3 {
		t.Errorf("component of 0 has %d nodes", got)
	}
	if got := len(g.Component(3)); got != 2 {
		t.Errorf("component of 3 has %d nodes", got)
	}
}

func TestBFSLevels(t *testing.T) {
	g := NewGraph(line(5, 100), 150)
	lvl := g.BFSLevels(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if lvl[i] != want {
			t.Errorf("level[%d] = %d, want %d", i, lvl[i], want)
		}
	}
	pts := append(line(3, 100), geom.Point{X: 10000})
	lvl = NewGraph(pts, 150).BFSLevels(0)
	if lvl[3] != -1 {
		t.Error("unreachable node should get level -1")
	}
}

func TestDiameter(t *testing.T) {
	if d := NewGraph(line(5, 100), 150).Diameter(); d != 4 {
		t.Errorf("chain diameter = %d, want 4", d)
	}
	if d := NewGraph(line(3, 100), 500).Diameter(); d != 1 {
		t.Errorf("clique diameter = %d, want 1", d)
	}
}

func TestDijkstraUnitWeightsMatchBFS(t *testing.T) {
	r := xrand.New(5)
	for trial := 0; trial < 20; trial++ {
		pts := make([]geom.Point, 25)
		for i := range pts {
			pts[i] = geom.Point{X: r.Range(0, 500), Y: r.Range(0, 500)}
		}
		g := NewGraph(pts, 200)
		dist, _ := g.Dijkstra(0, func(i, j int) float64 { return 1 })
		lvl := g.BFSLevels(0)
		for i := range pts {
			if lvl[i] == -1 {
				if !isInf(dist[i]) {
					t.Fatalf("node %d unreachable by BFS but Dijkstra found %v", i, dist[i])
				}
				continue
			}
			if int(dist[i]) != lvl[i] {
				t.Fatalf("node %d: Dijkstra %v vs BFS %d", i, dist[i], lvl[i])
			}
		}
	}
}

func TestDijkstraPredecessors(t *testing.T) {
	g := NewGraph(line(4, 100), 150)
	dist, prev := g.Dijkstra(0, g.Dist)
	if dist[3] != 300 {
		t.Errorf("dist[3] = %v", dist[3])
	}
	// Walk predecessors back to the root.
	for v, hops := 3, 0; v != 0; hops++ {
		v = prev[v]
		if v < 0 || hops > 4 {
			t.Fatal("predecessor chain broken")
		}
	}
}

func isInf(f float64) bool { return f > 1e308 }

func TestTreeValid(t *testing.T) {
	tr := Tree{Root: 0, Parent: []int{-1, 0, 0, 1}}
	if !tr.Valid() {
		t.Error("valid tree rejected")
	}
	loop := Tree{Root: 0, Parent: []int{-1, 2, 1, 0}}
	if loop.Valid() {
		t.Error("tree with 1<->2 loop accepted")
	}
	badRoot := Tree{Root: 0, Parent: []int{0, 0}}
	if badRoot.Valid() {
		t.Error("root with a parent accepted")
	}
	detached := Tree{Root: 0, Parent: []int{-1, Detached, 0}}
	if !detached.Valid() {
		t.Error("detached nodes should not invalidate the tree")
	}
}

func TestTreeSpans(t *testing.T) {
	tr := Tree{Root: 0, Parent: []int{-1, 0, Detached}}
	if tr.Spans([]int{0, 1, 2}) {
		t.Error("Spans should fail with node 2 detached")
	}
	if !tr.Spans([]int{0, 1}) {
		t.Error("Spans over attached subset failed")
	}
}

func TestTreeDepths(t *testing.T) {
	tr := Tree{Root: 0, Parent: []int{-1, 0, 1, 1, Detached}}
	d := tr.Depths()
	for i, want := range []int{0, 1, 2, 2, -1} {
		if d[i] != want {
			t.Errorf("depth[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestTreeChildren(t *testing.T) {
	tr := Tree{Root: 0, Parent: []int{-1, 0, 0, 1}}
	ch := tr.Children()
	if len(ch[0]) != 2 || len(ch[1]) != 1 || len(ch[3]) != 0 {
		t.Errorf("children %v", ch)
	}
}

// TestGraphSymmetryQuick: adjacency must be symmetric and self-free for
// arbitrary point sets.
func TestGraphSymmetryQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 5 + r.Intn(20)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: r.Range(0, 400), Y: r.Range(0, 400)}
		}
		g := NewGraph(pts, 150)
		for i := 0; i < n; i++ {
			for _, j := range g.Neighbors(i) {
				if j == i {
					return false
				}
				found := false
				for _, k := range g.Neighbors(j) {
					if k == i {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestBFSTreeIsValidTreeQuick: the BFS predecessor structure always forms
// a valid spanning tree of the root's component.
func TestBFSTreeIsValidTreeQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 5 + r.Intn(25)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: r.Range(0, 500), Y: r.Range(0, 500)}
		}
		g := NewGraph(pts, 180)
		_, prev := g.Dijkstra(0, func(i, j int) float64 { return 1 })
		parent := make([]int, n)
		for i := range parent {
			switch {
			case i == 0:
				parent[i] = -1
			case prev[i] == -1:
				parent[i] = Detached
			default:
				parent[i] = prev[i]
			}
		}
		return Tree{Root: 0, Parent: parent}.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestGridAdjacencyMatchesPairwiseScan checks that the grid-built
// adjacency is identical — content and order — to the O(N²) scan, at
// populations on both sides of the gridMinNodes cutover.
func TestGridAdjacencyMatchesPairwiseScan(t *testing.T) {
	rng := xrand.New(5)
	for trial := 0; trial < 40; trial++ {
		n := gridMinNodes + rng.Intn(150)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Range(0, 750), Y: rng.Range(0, 750)}
		}
		radioRange := rng.Range(50, 300)

		got := NewGraph(pts, radioRange) // n >= gridMinNodes → grid path
		want := &Graph{Pos: pts, Range: radioRange, adj: make([][]int, n)}
		r2 := radioRange * radioRange
		for i := range pts {
			for j := i + 1; j < n; j++ {
				if pts[i].Dist2(pts[j]) <= r2 {
					want.adj[i] = append(want.adj[i], j)
					want.adj[j] = append(want.adj[j], i)
				}
			}
		}
		for i := 0; i < n; i++ {
			a, b := got.Neighbors(i), want.adj[i]
			if len(a) != len(b) {
				t.Fatalf("trial %d node %d: %d neighbors, want %d", trial, i, len(a), len(b))
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("trial %d node %d: adjacency %v, want %v", trial, i, a, b)
				}
			}
		}
	}
}
