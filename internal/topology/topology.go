// Package topology provides connectivity-graph snapshots and the graph
// oracles (BFS levels, Dijkstra, spanning-tree validation) used by property
// tests and by the availability sampler. Protocols never use these oracles;
// they see only beacons. Tests use them to check that distributed protocol
// state agrees with ground truth.
package topology

import (
	"math"

	"repro/internal/geom"
	"repro/internal/spatial"
)

// Graph is an undirected connectivity snapshot: node i and j are adjacent
// when their distance is at most Range.
type Graph struct {
	Pos   []geom.Point
	Range float64
	adj   [][]int
}

// gridMinNodes is the population below which the O(N²) scan beats the
// index's setup cost.
const gridMinNodes = 24

// NewGraph builds the snapshot for the given positions and radio range.
// Adjacency comes from a uniform spatial grid (O(N·k) instead of O(N²));
// the output — including the ascending order of every adjacency list — is
// identical to the pairwise scan, which small inputs still use.
func NewGraph(pos []geom.Point, radioRange float64) *Graph {
	g := &Graph{Pos: pos, Range: radioRange, adj: make([][]int, len(pos))}
	if len(pos) >= gridMinNodes && radioRange > 0 {
		g.buildGridAdj()
		return g
	}
	r2 := radioRange * radioRange
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			if pos[i].Dist2(pos[j]) <= r2 {
				g.adj[i] = append(g.adj[i], j)
				g.adj[j] = append(g.adj[j], i)
			}
		}
	}
	return g
}

// buildGridAdj fills adj from a one-shot spatial index over Pos. Positions
// are a static snapshot, so candidate sets are exact (no drift slack) and
// only the j > i half of each disk is materialized, mirroring the scan.
func (g *Graph) buildGridAdj() {
	grid := spatial.NewGrid(geom.BoundingBox(g.Pos), g.Range, len(g.Pos))
	grid.Rebuild(0, g.Pos)
	var buf []int32
	for i := range g.Pos {
		buf = grid.AppendInDisk(buf[:0], g.Pos[i], g.Range)
		for _, j32 := range buf {
			if j := int(j32); j > i {
				g.adj[i] = append(g.adj[i], j)
				g.adj[j] = append(g.adj[j], i)
			}
		}
	}
}

// N returns the node count.
func (g *Graph) N() int { return len(g.Pos) }

// Neighbors returns the adjacency list of node i (shared slice; callers
// must not mutate).
func (g *Graph) Neighbors(i int) []int { return g.adj[i] }

// Adjacent reports whether i and j are within range.
func (g *Graph) Adjacent(i, j int) bool {
	return g.Pos[i].Dist2(g.Pos[j]) <= g.Range*g.Range
}

// Dist returns the Euclidean distance between nodes i and j.
func (g *Graph) Dist(i, j int) float64 { return g.Pos[i].Dist(g.Pos[j]) }

// Connected reports whether the whole graph is a single component.
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return true
	}
	return len(g.Component(0)) == g.N()
}

// Component returns the set of nodes reachable from start (including it).
func (g *Graph) Component(start int) []int {
	seen := make([]bool, g.N())
	queue := []int{start}
	seen[start] = true
	var out []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		for _, u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return out
}

// BFSLevels returns each node's hop distance from root; unreachable nodes
// get -1.
func (g *Graph) BFSLevels(root int) []int {
	lvl := make([]int, g.N())
	for i := range lvl {
		lvl[i] = -1
	}
	lvl[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[v] {
			if lvl[u] == -1 {
				lvl[u] = lvl[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return lvl
}

// Diameter returns the maximum finite BFS eccentricity over all sources.
// Exponential-free O(N·E); fine at simulator scales.
func (g *Graph) Diameter() int {
	d := 0
	for i := 0; i < g.N(); i++ {
		for _, l := range g.BFSLevels(i) {
			if l > d {
				d = l
			}
		}
	}
	return d
}

// Dijkstra returns the minimum cost from root to every node under the
// provided edge weight function, and the predecessor array. Unreachable
// nodes get +Inf cost and predecessor -1.
func (g *Graph) Dijkstra(root int, weight func(i, j int) float64) (dist []float64, prev []int) {
	n := g.N()
	dist = make([]float64, n)
	prev = make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[root] = 0
	for {
		// Linear-scan extract-min: n ≤ a few hundred in all uses.
		v, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				v, best = i, dist[i]
			}
		}
		if v == -1 {
			return dist, prev
		}
		done[v] = true
		for _, u := range g.adj[v] {
			if w := best + weight(v, u); w < dist[u] {
				dist[u] = w
				prev[u] = v
			}
		}
	}
}

// Tree is a rooted tree over node indices, expressed as a parent array
// (parent[root] == -1, parent[i] == -2 for detached nodes).
type Tree struct {
	Root   int
	Parent []int
}

// Detached marks a node with no parent that is not the root.
const Detached = -2

// Valid reports whether the parent array forms a single tree rooted at
// Root spanning every non-detached node: no cycles, every chain ends at
// Root within n hops.
func (t Tree) Valid() bool {
	n := len(t.Parent)
	if t.Root < 0 || t.Root >= n || t.Parent[t.Root] != -1 {
		return false
	}
	for i := 0; i < n; i++ {
		if t.Parent[i] == Detached || i == t.Root {
			continue
		}
		v, hops := i, 0
		for v != t.Root {
			v = t.Parent[v]
			hops++
			if v < 0 || v >= n || hops > n {
				return false
			}
		}
	}
	return true
}

// Spans reports whether every node in `nodes` is attached (reaches Root).
func (t Tree) Spans(nodes []int) bool {
	if !t.Valid() {
		return false
	}
	for _, i := range nodes {
		if i != t.Root && t.Parent[i] == Detached {
			return false
		}
	}
	return true
}

// Depths returns each attached node's hop count to the root; detached
// nodes get -1.
func (t Tree) Depths() []int {
	n := len(t.Parent)
	d := make([]int, n)
	for i := range d {
		d[i] = -1
	}
	d[t.Root] = 0
	var walk func(i int) int
	walk = func(i int) int {
		if d[i] >= 0 {
			return d[i]
		}
		p := t.Parent[i]
		if p < 0 {
			return -1
		}
		pd := walk(p)
		if pd < 0 {
			return -1
		}
		d[i] = pd + 1
		return d[i]
	}
	for i := 0; i < n; i++ {
		if t.Parent[i] != Detached {
			walk(i)
		}
	}
	return d
}

// Children inverts the parent array.
func (t Tree) Children() [][]int {
	ch := make([][]int, len(t.Parent))
	for i, p := range t.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], i)
		}
	}
	return ch
}
