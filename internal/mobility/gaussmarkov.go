package mobility

import (
	"math"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// GaussMarkov is the temporally correlated mobility model of Liang and
// Haas: speed and heading evolve as first-order autoregressive processes,
//
//	s' = α·s + (1-α)·s̄ + √(1-α²)·σs·w
//	θ' = α·θ + (1-α)·θ̄ + √(1-α²)·σθ·w
//
// so consecutive legs are smooth (no sharp waypoint turns) and, unlike
// random waypoint with Vmin = 0, the long-run mean speed is pinned at s̄
// — there is no velocity-decay artifact to fix.
//
// The continuous process is discretized into fixed-duration legs of Step
// seconds. A leg's state is fully recoverable from its geometry (speed
// from Leg.Speed, heading from the From→To direction), so the model needs
// no per-node mutable state and slots into the lazy Model/Leg interface:
// Next derives its randomness from a stream salted by the current leg,
// exactly like RandomWaypoint.
//
// Near the area border the mean heading θ̄ is steered towards the interior
// (the standard edge treatment), and destinations are clamped to the
// area, so positions never leave it.
type GaussMarkov struct {
	Area  geom.Rect
	Alpha float64 // memory ∈ [0,1); 0 = memoryless, →1 = straight lines
	Step  float64 // leg duration, seconds

	MeanSpeed float64 // s̄, m/s
	SpeedStd  float64 // σs, m/s
	MaxSpeed  float64 // hard cap (spatial-index slack bound)
	minSpeed  float64 // hard floor > 0: keeps legs non-degenerate

	rng *xrand.RNG
}

// headingStd is σθ in radians; the classic parameterization.
const gmHeadingStd = math.Pi / 4

// NewGaussMarkov builds the model. Speed is pinned to
// [minSpeed, maxSpeed] with mean (minSpeed+maxSpeed)/2 and std
// (maxSpeed-minSpeed)/4, so the model is sweepable on the same VMin/VMax
// axis as the waypoint models. It panics on minSpeed <= 0 (degenerate
// legs), maxSpeed < minSpeed, alpha outside [0,1), or step <= 0.
func NewGaussMarkov(area geom.Rect, minSpeed, maxSpeed, alpha, step float64, rng *xrand.RNG) *GaussMarkov {
	if minSpeed <= 0 {
		panic("mobility: GaussMarkov requires MinSpeed > 0")
	}
	if maxSpeed < minSpeed {
		panic("mobility: MaxSpeed < MinSpeed")
	}
	if alpha < 0 || alpha >= 1 {
		panic("mobility: GaussMarkov alpha must be in [0,1)")
	}
	if step <= 0 {
		panic("mobility: GaussMarkov step must be > 0")
	}
	return &GaussMarkov{
		Area:      area,
		Alpha:     alpha,
		Step:      step,
		MeanSpeed: (minSpeed + maxSpeed) / 2,
		SpeedStd:  (maxSpeed - minSpeed) / 4,
		MaxSpeed:  maxSpeed,
		minSpeed:  minSpeed,
		rng:       rng,
	}
}

// Init implements Model: a uniform position, uniform heading and a speed
// drawn around the mean.
func (m *GaussMarkov) Init(i int) Leg {
	r := m.rng.SplitIndex(i)
	from := geom.Point{
		X: r.Range(m.Area.Min.X, m.Area.Max.X),
		Y: r.Range(m.Area.Min.Y, m.Area.Max.Y),
	}
	theta := r.Range(0, 2*math.Pi)
	speed := m.clampSpeed(m.MeanSpeed + m.SpeedStd*r.Norm())
	return m.leg(from, speed, theta, 0)
}

// Next implements Model: one autoregressive update of (speed, heading).
func (m *GaussMarkov) Next(i int, cur Leg, now float64) Leg {
	r := m.rng.SplitIndex(i).Split(legKey(cur))
	speed := cur.Speed
	theta := math.Atan2(cur.To.Y-cur.From.Y, cur.To.X-cur.From.X)
	noise := math.Sqrt(1 - m.Alpha*m.Alpha)
	speed = m.clampSpeed(m.Alpha*speed + (1-m.Alpha)*m.MeanSpeed + noise*m.SpeedStd*r.Norm())
	// Blend headings along the shortest angular arc: atan2 hands back
	// values in (-π, π], and mixing e.g. θ = -3.0 with θ̄ = +π raw would
	// steer through the long way round instead of the 0.28 rad between
	// them.
	mean := m.meanHeading(cur.To, theta)
	for mean-theta > math.Pi {
		mean -= 2 * math.Pi
	}
	for mean-theta < -math.Pi {
		mean += 2 * math.Pi
	}
	theta = m.Alpha*theta + (1-m.Alpha)*mean + noise*gmHeadingStd*r.Norm()
	return m.leg(cur.To, speed, theta, now)
}

// clampSpeed pins a sampled speed into the legal band.
func (m *GaussMarkov) clampSpeed(s float64) float64 {
	return math.Min(math.Max(s, m.minSpeed), m.MaxSpeed)
}

// meanHeading is θ̄ at position p: the current heading in the interior,
// steered towards the area center within a margin of the border so nodes
// drift back inside instead of sliding along the walls.
func (m *GaussMarkov) meanHeading(p geom.Point, theta float64) float64 {
	margin := math.Min(m.Area.Width(), m.Area.Height()) * 0.1
	dx, dy := 0.0, 0.0
	if p.X < m.Area.Min.X+margin {
		dx = 1
	} else if p.X > m.Area.Max.X-margin {
		dx = -1
	}
	if p.Y < m.Area.Min.Y+margin {
		dy = 1
	} else if p.Y > m.Area.Max.Y-margin {
		dy = -1
	}
	if dx == 0 && dy == 0 {
		return theta
	}
	return math.Atan2(dy, dx)
}

// leg builds the Step-long leg from `from` along heading theta, clamped to
// the area. A clamp that collapses the leg (from exactly in a corner,
// heading out) is re-aimed at the area center so legs are never
// degenerate and the tracker always advances.
func (m *GaussMarkov) leg(from geom.Point, speed, theta, start float64) Leg {
	d := speed * m.Step
	to := m.Area.Clamp(geom.Point{X: from.X + d*math.Cos(theta), Y: from.Y + d*math.Sin(theta)})
	if from.Dist(to) < 1e-9 {
		u := m.Area.Center().Sub(from).Unit()
		to = m.Area.Clamp(from.Add(u.Scale(d)))
	}
	return Leg{From: from, To: to, Speed: speed, Start: start}
}
