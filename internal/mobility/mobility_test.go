package mobility

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/xrand"
)

func area() geom.Rect { return geom.Square(750) }

func TestStatic(t *testing.T) {
	pts := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	tr := NewTracker(2, Static{Points: pts})
	for _, tm := range []float64{0, 100, 1e6} {
		if got := tr.Position(0, tm); got != pts[0] {
			t.Errorf("static node moved to %v at t=%v", got, tm)
		}
		if got := tr.Position(1, tm); got != pts[1] {
			t.Errorf("static node moved to %v at t=%v", got, tm)
		}
	}
}

func TestRWPRequiresPositiveVmin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Vmin = 0 must panic (Yoon/Liu/Noble fix)")
		}
	}()
	NewRandomWaypoint(area(), 0, 5, 0, xrand.New(1))
}

func TestRWPRequiresVmaxGeVmin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Vmax < Vmin must panic")
		}
	}()
	NewRandomWaypoint(area(), 5, 1, 0, xrand.New(1))
}

func TestRWPStaysInArea(t *testing.T) {
	m := NewRandomWaypoint(area(), 1, 20, 2, xrand.New(42))
	tr := NewTracker(20, m)
	for i := 0; i < 20; i++ {
		for tm := 0.0; tm < 2000; tm += 17.3 {
			p := tr.Position(i, tm)
			if !area().Contains(p) {
				t.Fatalf("node %d at %v left the area: %v", i, tm, p)
			}
		}
	}
}

func TestRWPActuallyMoves(t *testing.T) {
	m := NewRandomWaypoint(area(), 1, 5, 0, xrand.New(7))
	tr := NewTracker(5, m)
	for i := 0; i < 5; i++ {
		p0 := tr.Position(i, 0)
		p1 := tr.Position(i, 60)
		if p0.Dist(p1) == 0 {
			t.Errorf("node %d did not move in 60 s", i)
		}
	}
}

func TestRWPSpeedBounds(t *testing.T) {
	// Sampled instantaneous speeds must never exceed Vmax (and moving
	// legs never fall below Vmin) — the velocity-decay fix's observable.
	vmin, vmax := 2.0, 8.0
	m := NewRandomWaypoint(area(), vmin, vmax, 0, xrand.New(3))
	tr := NewTracker(10, m)
	const dt = 0.05
	for i := 0; i < 10; i++ {
		for tm := 0.0; tm < 500; tm += 5 {
			a := tr.Position(i, tm)
			b := tr.Position(i, tm+dt)
			speed := a.Dist(b) / dt
			if speed > vmax*1.01 {
				t.Fatalf("node %d speed %v exceeds vmax %v", i, speed, vmax)
			}
		}
	}
}

func TestRWPNoVelocityDecay(t *testing.T) {
	// Average network speed over a long horizon must remain near the
	// analytic steady state, not decay towards zero. With speeds uniform
	// in [vmin, vmax] (and no pause), the long-run mean speed is the
	// harmonic-weighted value (vmax-vmin)/ln(vmax/vmin).
	vmin, vmax := 1.0, 19.0
	m := NewRandomWaypoint(area(), vmin, vmax, 0, xrand.New(11))
	tr := NewTracker(30, m)
	const dt = 1.0
	late := 0.0
	n := 0
	for i := 0; i < 30; i++ {
		for tm := 5000.0; tm < 6000; tm += 50 {
			a := tr.Position(i, tm)
			b := tr.Position(i, tm+dt)
			late += a.Dist(b) / dt
			n++
		}
	}
	meanLate := late / float64(n)
	if meanLate < vmin {
		t.Errorf("late mean speed %v decayed below vmin %v", meanLate, vmin)
	}
}

func TestRWPDeterministic(t *testing.T) {
	mk := func() geom.Point {
		m := NewRandomWaypoint(area(), 1, 5, 1, xrand.New(99))
		tr := NewTracker(3, m)
		return tr.Position(2, 777.7)
	}
	if mk() != mk() {
		t.Error("RWP not deterministic for a fixed seed")
	}
}

func TestRandomDirectionStaysInArea(t *testing.T) {
	m := NewRandomDirection(area(), 1, 10, 1, xrand.New(5))
	tr := NewTracker(10, m)
	for i := 0; i < 10; i++ {
		for tm := 0.0; tm < 1000; tm += 13.7 {
			p := tr.Position(i, tm)
			if !area().Contains(p) {
				t.Fatalf("random-direction node %d left the area at %v: %v", i, tm, p)
			}
		}
	}
}

func TestRandomDirectionRequiresPositiveVmin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Vmin = 0 must panic")
		}
	}()
	NewRandomDirection(area(), 0, 5, 0, xrand.New(1))
}

func TestLegPosition(t *testing.T) {
	l := Leg{From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 100, Y: 0}, Speed: 10, Start: 5}
	if got := l.Position(5); got != l.From {
		t.Errorf("at start: %v", got)
	}
	if got := l.Position(10); got != (geom.Point{X: 50, Y: 0}) {
		t.Errorf("mid-leg: %v", got)
	}
	if got := l.Position(15); got != l.To {
		t.Errorf("at arrival: %v", got)
	}
	if got := l.Position(100); got != l.To {
		t.Errorf("after arrival: %v", got)
	}
	if got := l.Position(0); got != l.From {
		t.Errorf("before start: %v", got)
	}
}

func TestLegEnd(t *testing.T) {
	l := Leg{From: geom.Point{}, To: geom.Point{X: 30}, Speed: 10, Start: 0, Pause: 2}
	if l.End() != 5 {
		t.Errorf("End = %v, want 5 (3 s travel + 2 s pause)", l.End())
	}
	still := Leg{From: geom.Point{X: 1}, To: geom.Point{X: 1}, Speed: 0}
	if still.End() < 1e300 {
		t.Errorf("stationary leg should never end, End = %v", still.End())
	}
}

func TestBorderHit(t *testing.T) {
	r := geom.Square(100)
	p := geom.Point{X: 50, Y: 50}
	hit, ok := borderHit(r, p, geom.Vec{DX: 1, DY: 0})
	if !ok || hit != (geom.Point{X: 100, Y: 50}) {
		t.Errorf("east ray hit %v ok=%v", hit, ok)
	}
	hit, ok = borderHit(r, p, geom.Vec{DX: 0, DY: -1})
	if !ok || hit != (geom.Point{X: 50, Y: 0}) {
		t.Errorf("south ray hit %v ok=%v", hit, ok)
	}
	if _, ok := borderHit(r, geom.Point{X: 200, Y: 50}, geom.Vec{DX: 1}); ok {
		t.Error("ray from outside should fail")
	}
}

func TestBorderHitAlwaysOnBorderQuick(t *testing.T) {
	r := geom.Square(100)
	f := func(px, py, ang float64) bool {
		p := geom.Point{X: 50 + 40*clamp01(px), Y: 50 + 40*clamp01(py)}
		dir := geom.Vec{DX: cos(ang), DY: sin(ang)}
		hit, ok := borderHit(r, p, dir)
		if !ok {
			return true
		}
		const tol = 1e-6
		near := func(v, b float64) bool { return v > b-tol && v < b+tol }
		onBorder := near(hit.X, 0) || near(hit.X, 100) || near(hit.Y, 0) || near(hit.Y, 100)
		return r.Contains(hit) && onBorder
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func clamp01(v float64) float64 {
	if v != v {
		return 0
	}
	for v > 1 || v < -1 {
		v /= 2
	}
	return v
}

// TestPositionMemoPure checks that the per-(node, time) memo never changes
// what Position returns: two trackers over the same model, one queried
// with repeats (hitting the memo) and one queried once per instant, must
// agree at every sampled time.
func TestPositionMemoPure(t *testing.T) {
	mk := func() *Tracker {
		return NewTracker(8, NewRandomWaypoint(area(), 1, 15, 1, xrand.New(42).Split("m")))
	}
	memoed, fresh := mk(), mk()
	for _, tm := range []float64{0, 0.5, 3, 3, 3, 17.25, 17.25, 120, 1e4} {
		for i := 0; i < 8; i++ {
			a := memoed.Position(i, tm)
			b := memoed.Position(i, tm) // memo hit
			c := fresh.Position(i, tm)
			if a != b || a != c {
				t.Fatalf("node %d t=%v: memoed %v / repeat %v / fresh %v", i, tm, a, b, c)
			}
		}
	}
}

// TestPositionsAtCached checks the whole-population snapshot is stable and
// identical to per-node queries.
func TestPositionsAtCached(t *testing.T) {
	tr := NewTracker(5, NewRandomWaypoint(area(), 1, 10, 0, xrand.New(9).Split("m")))
	for _, tm := range []float64{0, 2.5, 2.5, 40} {
		snap := tr.PositionsAt(tm)
		again := tr.PositionsAt(tm)
		if &snap[0] != &again[0] {
			t.Fatal("PositionsAt did not reuse its cache at an identical instant")
		}
		for i := range snap {
			if snap[i] != tr.Position(i, tm) {
				t.Fatalf("snapshot disagrees with Position at node %d t=%v", i, tm)
			}
		}
	}
}
