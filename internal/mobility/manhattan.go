package mobility

import (
	"math"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// Manhattan is the street-grid mobility model of the ETSI/UMTS evaluation
// framework: nodes move only along the lines of a regular grid of
// "streets" with the given spacing, and at each intersection continue
// straight with probability 1/2 or turn left/right with probability 1/4
// each (invalid choices at the area border are re-distributed over the
// valid ones). Motion is constrained and locally correlated — two nodes
// on the same street stay mutually reachable far longer than under
// random waypoint — which stresses multicast trees very differently from
// the isotropic models.
//
// Every leg runs from one intersection to an adjacent one, so the whole
// walk is exact integer index arithmetic: headings are recovered from leg
// geometry without floating-point drift, legs always have length Spacing
// > 0, and the lazy Model/Leg interface needs no per-node state.
type Manhattan struct {
	Area     geom.Rect
	MinSpeed float64
	MaxSpeed float64
	Pause    float64 // dwell at each intersection
	Spacing  float64 // street spacing, metres
	nx, ny   int     // intersections per axis (indices 0..nx-1, 0..ny-1)
	rng      *xrand.RNG
}

// NewManhattan builds the model. It panics on minSpeed <= 0,
// maxSpeed < minSpeed, or a spacing that does not fit at least a 2×2
// intersection grid into the area (there would be no streets to turn
// onto).
func NewManhattan(area geom.Rect, minSpeed, maxSpeed, pause, spacing float64, rng *xrand.RNG) *Manhattan {
	if minSpeed <= 0 {
		panic("mobility: Manhattan requires MinSpeed > 0")
	}
	if maxSpeed < minSpeed {
		panic("mobility: MaxSpeed < MinSpeed")
	}
	if spacing <= 0 {
		panic("mobility: Manhattan requires Spacing > 0")
	}
	nx := int(math.Floor(area.Width()/spacing)) + 1
	ny := int(math.Floor(area.Height()/spacing)) + 1
	if nx < 2 || ny < 2 {
		panic("mobility: Manhattan spacing too large for the area (need a 2x2 grid)")
	}
	return &Manhattan{
		Area: area, MinSpeed: minSpeed, MaxSpeed: maxSpeed,
		Pause: pause, Spacing: spacing, nx: nx, ny: ny, rng: rng,
	}
}

// point returns the intersection at grid indices (kx, ky). Computing it
// as min + k·spacing every time makes equal indices yield bit-equal
// coordinates, which legKey and heading recovery rely on.
func (m *Manhattan) point(kx, ky int) geom.Point {
	return geom.Point{
		X: m.Area.Min.X + float64(kx)*m.Spacing,
		Y: m.Area.Min.Y + float64(ky)*m.Spacing,
	}
}

// index recovers the grid indices of an intersection point.
func (m *Manhattan) index(p geom.Point) (int, int) {
	return int(math.Round((p.X - m.Area.Min.X) / m.Spacing)),
		int(math.Round((p.Y - m.Area.Min.Y) / m.Spacing))
}

func (m *Manhattan) valid(kx, ky int) bool {
	return kx >= 0 && kx < m.nx && ky >= 0 && ky < m.ny
}

// Init implements Model: a uniform intersection and a uniform valid
// heading out of it.
func (m *Manhattan) Init(i int) Leg {
	r := m.rng.SplitIndex(i)
	kx, ky := r.Intn(m.nx), r.Intn(m.ny)
	dirs := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	var opts [][2]int
	for _, d := range dirs {
		if m.valid(kx+d[0], ky+d[1]) {
			opts = append(opts, d)
		}
	}
	d := opts[r.Intn(len(opts))]
	return Leg{
		From:  m.point(kx, ky),
		To:    m.point(kx+d[0], ky+d[1]),
		Speed: r.Range(m.MinSpeed, m.MaxSpeed),
		Start: 0,
		Pause: m.Pause,
	}
}

// Next implements Model: the turn decision at the intersection cur.To.
func (m *Manhattan) Next(i int, cur Leg, now float64) Leg {
	r := m.rng.SplitIndex(i).Split(legKey(cur))
	fx, fy := m.index(cur.From)
	kx, ky := m.index(cur.To)
	dx, dy := kx-fx, ky-fy
	// Straight, left (90° CCW), right (90° CW) — the Manhattan turn set.
	straight := [2]int{dx, dy}
	left := [2]int{-dy, dx}
	right := [2]int{dy, -dx}
	choice := straight
	u := r.Float64()
	switch {
	case u < 0.5:
		// straight
	case u < 0.75:
		choice = left
	default:
		choice = right
	}
	if !m.valid(kx+choice[0], ky+choice[1]) {
		// Redistribute over the remaining valid options; on a >= 2x2 grid
		// at least one of straight/left/right is always valid (a node can
		// only arrive at a corner along an edge street).
		var opts [][2]int
		for _, d := range [][2]int{straight, left, right} {
			if m.valid(kx+d[0], ky+d[1]) {
				opts = append(opts, d)
			}
		}
		if len(opts) == 0 {
			opts = [][2]int{{-dx, -dy}} // dead end: reverse (unreachable on a legal grid)
		}
		choice = opts[r.Intn(len(opts))]
	}
	return Leg{
		From:  cur.To,
		To:    m.point(kx+choice[0], ky+choice[1]),
		Speed: r.Range(m.MinSpeed, m.MaxSpeed),
		Start: now,
		Pause: m.Pause,
	}
}
