package mobility

import "sync"

// Recorded is a shared, append-only, concurrency-safe trace of a model's
// per-node leg sequences. Several simulation runs of the same movement
// scenario (the 8 protocols at one sweep point) replay one Recorded
// instead of regenerating identical legs run by run.
//
// The trace exploits the discrete-event tracker's contract with Model:
// legs are consumed strictly in order per node, and Next is always called
// with now equal to the current leg's end, so node i's leg sequence is a
// pure function of the wrapped model — leg 0 is Init(i), leg k+1 is
// Next(i, leg k, leg k's end). Every model in this package additionally
// derives its randomness from streams keyed by (node, leg history), never
// from shared mutable draw order across nodes, so the sequence is also
// independent of which run (or goroutine) forces its extension first.
// Replayed legs are the recorded Leg values verbatim; positions are
// therefore bit-identical to driving the wrapped model directly
// (TestRecordedReplayEquivalence).
//
// Concurrency: extension happens under a write lock (one extender at a
// time — RPGM's group reference paths are shared mutable state across
// nodes), lookups under a read lock. A run replays through its own Replay
// cursor; Recorded itself holds no per-run state.
type Recorded struct {
	mu    sync.RWMutex
	model Model
	legs  [][]Leg
	// generated counts legs produced by the wrapped model; replays beyond
	// this count nothing. Read via TotalLegs for cache diagnostics.
	generated int
}

// NewRecorded wraps model for n nodes with an empty trace. The model must
// not be driven directly once wrapped: the trace owns its draw state.
func NewRecorded(n int, model Model) *Recorded {
	return &Recorded{model: model, legs: make([][]Leg, n)}
}

// N returns the node count the trace was built for.
func (t *Recorded) N() int { return len(t.legs) }

// TotalLegs returns how many legs the wrapped model has generated so far.
func (t *Recorded) TotalLegs() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.generated
}

// leg returns node i's k-th leg, extending the trace through the wrapped
// model if it is not recorded yet.
func (t *Recorded) leg(i, k int) Leg {
	t.mu.RLock()
	if legs := t.legs[i]; k < len(legs) {
		l := legs[k]
		t.mu.RUnlock()
		return l
	}
	t.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	for k >= len(t.legs[i]) {
		legs := t.legs[i]
		var l Leg
		if len(legs) == 0 {
			l = t.model.Init(i)
		} else {
			last := legs[len(legs)-1]
			l = t.model.Next(i, last, last.End())
		}
		t.legs[i] = append(legs, l)
		t.generated++
	}
	return t.legs[i][k]
}

// Replay returns a fresh per-run cursor over the trace. Each simulation
// run needs its own (the cursor tracks per-node progress); all cursors
// share the same recorded legs.
func (t *Recorded) Replay() *Replay {
	r := &Replay{}
	r.Reset(t)
	return r
}

// Replay is a Model that reads legs from a shared Recorded trace. It is
// single-goroutine like any Model; the underlying trace is not.
type Replay struct {
	trace *Recorded
	next  []int // next[i]: index of the leg following node i's current one
}

// Reset re-points the cursor at (possibly another) trace, reusing its
// storage — the arena idiom used by scenario.RunContext.
func (r *Replay) Reset(t *Recorded) {
	r.trace = t
	n := t.N()
	if cap(r.next) < n {
		r.next = make([]int, n)
	} else {
		r.next = r.next[:n]
		for i := range r.next {
			r.next[i] = 0
		}
	}
}

// Init implements Model.
func (r *Replay) Init(i int) Leg {
	r.next[i] = 1
	return r.trace.leg(i, 0)
}

// Next implements Model. The tracker advances legs strictly in order, so
// cur is always the cursor's current leg and the arguments are not
// consulted.
func (r *Replay) Next(i int, cur Leg, now float64) Leg {
	k := r.next[i]
	r.next[i] = k + 1
	return r.trace.leg(i, k)
}
