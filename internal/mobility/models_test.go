package mobility

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// mkModels builds one instance of every new model over the standard area,
// keyed by name, from a fresh seed.
func mkModels(seed uint64) map[string]Model {
	a := area()
	return map[string]Model{
		"gauss-markov": NewGaussMarkov(a, 1, 10, 0.75, 1, xrand.New(seed).Split("m")),
		"rpgm":         NewRPGM(a, 1, 10, 4, 100, xrand.New(seed).Split("m")),
		"manhattan":    NewManhattan(a, 1, 10, 0.5, 150, xrand.New(seed).Split("m")),
	}
}

// TestNewModelsStayInArea is the area-containment property test: no
// sampled position may ever leave the deployment rectangle.
func TestNewModelsStayInArea(t *testing.T) {
	for name, m := range mkModels(42) {
		t.Run(name, func(t *testing.T) {
			tr := NewTracker(16, m)
			for i := 0; i < 16; i++ {
				for tm := 0.0; tm < 1500; tm += 11.7 {
					p := tr.Position(i, tm)
					if !area().Contains(p) {
						t.Fatalf("node %d left the area at t=%v: %v", i, tm, p)
					}
				}
			}
		})
	}
}

// TestNewModelsDeterministic: two trackers over identically seeded models
// agree at every sampled (node, time).
func TestNewModelsDeterministic(t *testing.T) {
	for _, name := range []string{"gauss-markov", "rpgm", "manhattan"} {
		t.Run(name, func(t *testing.T) {
			a := NewTracker(8, mkModels(7)[name])
			b := NewTracker(8, mkModels(7)[name])
			for tm := 0.0; tm < 600; tm += 13.9 {
				for i := 0; i < 8; i++ {
					if pa, pb := a.Position(i, tm), b.Position(i, tm); pa != pb {
						t.Fatalf("node %d diverged at t=%v: %v vs %v", i, tm, pa, pb)
					}
				}
			}
		})
	}
}

// TestNewModelsQueryOrderIndependent: positions must not depend on the
// interleaving of queries across nodes (RPGM's shared reference paths are
// extended lazily; the trajectory must be the same whoever triggers the
// extension).
func TestNewModelsQueryOrderIndependent(t *testing.T) {
	for _, name := range []string{"gauss-markov", "rpgm", "manhattan"} {
		t.Run(name, func(t *testing.T) {
			// Tracker a: node 7 races far ahead before anyone else moves.
			a := NewTracker(8, mkModels(3)[name])
			a.Position(7, 500)
			// Tracker b: everyone advances in lockstep.
			b := NewTracker(8, mkModels(3)[name])
			for tm := 0.0; tm <= 500; tm += 25 {
				for i := 0; i < 8; i++ {
					b.Position(i, tm)
				}
			}
			for i := 0; i < 8; i++ {
				if pa, pb := a.Position(i, 500), b.Position(i, 500); pa != pb {
					t.Fatalf("node %d query-order dependent at t=500: %v vs %v", i, pa, pb)
				}
			}
		})
	}
}

// TestNewModelsMove: every model actually moves its nodes.
func TestNewModelsMove(t *testing.T) {
	for name, m := range mkModels(11) {
		t.Run(name, func(t *testing.T) {
			tr := NewTracker(6, m)
			moved := 0
			for i := 0; i < 6; i++ {
				if tr.Position(i, 0).Dist(tr.Position(i, 120)) > 1 {
					moved++
				}
			}
			if moved == 0 {
				t.Fatal("no node moved in 120 s")
			}
		})
	}
}

// TestNewModelsSpeedBound: no model may exceed its configured maximum
// speed — the spatial index sizes its drift slack from VMax, so this is a
// correctness invariant, not a style point.
func TestNewModelsSpeedBound(t *testing.T) {
	const vmax = 10.0
	for name, m := range mkModels(5) {
		t.Run(name, func(t *testing.T) {
			tr := NewTracker(8, m)
			const dt = 0.05
			for i := 0; i < 8; i++ {
				for tm := 0.0; tm < 300; tm += 7 {
					a := tr.Position(i, tm)
					b := tr.Position(i, tm+dt)
					if speed := a.Dist(b) / dt; speed > vmax*1.01 {
						t.Fatalf("node %d speed %v exceeds vmax %v at t=%v", i, speed, vmax, tm)
					}
				}
			}
		})
	}
}

// TestGaussMarkovCorrelation: with high alpha, headings change slowly —
// the displacement over consecutive short windows should mostly point the
// same way, unlike random waypoint right after a waypoint turn. A crude
// but robust check: the mean dot product of consecutive unit
// displacements is strongly positive.
func TestGaussMarkovCorrelation(t *testing.T) {
	m := NewGaussMarkov(area(), 1, 10, 0.9, 1, xrand.New(2).Split("m"))
	tr := NewTracker(10, m)
	dot, n := 0.0, 0
	for i := 0; i < 10; i++ {
		prev := geom.Vec{}
		for tm := 0.0; tm < 200; tm += 2 {
			d := tr.Position(i, tm+2).Sub(tr.Position(i, tm)).Unit()
			if prev != (geom.Vec{}) {
				dot += d.DX*prev.DX + d.DY*prev.DY
				n++
			}
			prev = d
		}
	}
	if mean := dot / float64(n); mean < 0.3 {
		t.Errorf("mean heading correlation %v; want strongly positive for alpha=0.9", mean)
	}
}

// TestRPGMCohesion: group members stay near their shared reference point,
// so the max pairwise spread inside a group is bounded by the disk
// diameter (plus chase lag), and far below the area diagonal.
func TestRPGMCohesion(t *testing.T) {
	const radius = 100.0
	m := NewRPGM(area(), 1, 10, 4, radius, xrand.New(9).Split("m"))
	tr := NewTracker(16, m) // groups of 4: {0,4,8,12}, {1,5,9,13}, ...
	for tm := 50.0; tm < 500; tm += 50 {
		for g := 0; g < 4; g++ {
			for a := g; a < 16; a += 4 {
				for b := a + 4; b < 16; b += 4 {
					d := tr.Position(a, tm).Dist(tr.Position(b, tm))
					if d > 4*radius {
						t.Fatalf("group %d members %d,%d spread %v at t=%v", g, a, b, d, tm)
					}
				}
			}
		}
	}
}

// TestManhattanOnStreets: every sampled position lies on a grid line (x
// or y within tolerance of a multiple of the spacing).
func TestManhattanOnStreets(t *testing.T) {
	const spacing = 150.0
	m := NewManhattan(area(), 1, 10, 0, spacing, xrand.New(4).Split("m"))
	tr := NewTracker(10, m)
	onLine := func(v float64) bool {
		k := v / spacing
		return k-float64(int(k+0.5)) < 1e-6 && k-float64(int(k+0.5)) > -1e-6
	}
	for i := 0; i < 10; i++ {
		for tm := 0.0; tm < 400; tm += 3.3 {
			p := tr.Position(i, tm)
			if !onLine(p.X) && !onLine(p.Y) {
				t.Fatalf("node %d off-street at t=%v: %v", i, tm, p)
			}
		}
	}
}

// TestManhattanRejectsOversizedSpacing: a spacing wider than the area
// cannot form a street grid.
func TestManhattanRejectsOversizedSpacing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("spacing > area side must panic")
		}
	}()
	NewManhattan(area(), 1, 10, 0, 10_000, xrand.New(1))
}

// TestBorderHitDegenerate: a node exactly on the boundary heading
// tangentially outward (corner) or straight out must not produce a
// zero-length hit.
func TestBorderHitDegenerate(t *testing.T) {
	r := geom.Square(100)
	cases := []struct {
		p   geom.Point
		dir geom.Vec
	}{
		{geom.Point{X: 100, Y: 50}, geom.Vec{DX: 1, DY: 0}},   // on east wall, heading out
		{geom.Point{X: 100, Y: 100}, geom.Vec{DX: 0, DY: 1}},  // corner, tangential out
		{geom.Point{X: 100, Y: 100}, geom.Vec{DX: 1, DY: 1}},  // corner, diagonal out
		{geom.Point{X: 0, Y: 0}, geom.Vec{DX: -1, DY: 0}},     // origin corner, heading out
		{geom.Point{X: 50, Y: 100}, geom.Vec{DX: 0, DY: 0.5}}, // north wall, heading out
	}
	for _, c := range cases {
		if hit, ok := borderHit(r, c.p, c.dir); ok && hit.Dist(c.p) < 1e-9 {
			t.Errorf("borderHit(%v, %v) returned a zero-length hit %v", c.p, c.dir, hit)
		}
	}
	// Tangential along the wall (not outward) is a legitimate non-zero leg.
	if hit, ok := borderHit(r, geom.Point{X: 100, Y: 50}, geom.Vec{DX: 0, DY: 1}); !ok || hit != (geom.Point{X: 100, Y: 100}) {
		t.Errorf("along-wall ray: hit=%v ok=%v", hit, ok)
	}
}

// TestRandomDirectionFromBorder: a walk started exactly in a corner still
// produces finite, in-area, non-degenerate legs.
func TestRandomDirectionFromBorder(t *testing.T) {
	m := NewRandomDirection(area(), 1, 10, 0, xrand.New(6))
	for _, from := range []geom.Point{
		{X: 0, Y: 0}, {X: 750, Y: 750}, {X: 750, Y: 0}, {X: 0, Y: 375},
	} {
		leg := m.leg(xrand.New(8), from, 0)
		if d := leg.From.Dist(leg.To); d <= 1e-9 {
			t.Errorf("degenerate leg from %v: length %v", from, d)
		}
		if !area().Contains(leg.To) {
			t.Errorf("leg from %v exits the area: %v", from, leg.To)
		}
		if leg.End() <= leg.Start {
			t.Errorf("leg from %v does not advance time: start=%v end=%v", from, leg.Start, leg.End())
		}
	}
}
