package mobility

import (
	"math"

	"repro/internal/geom"
)

func cos(x float64) float64 { return math.Cos(x) }
func sin(x float64) float64 { return math.Sin(x) }

// borderHit returns the point at which a ray from p in direction dir first
// exits rect. ok is false when dir is (numerically) zero, p is outside, or
// the ray exits immediately (p already sits on the border heading out) —
// the latter guard keeps callers from building zero-length legs, which
// would give the lazy tracker a leg that ends the instant it starts.
func borderHit(r geom.Rect, p geom.Point, dir geom.Vec) (geom.Point, bool) {
	if !r.Contains(p) {
		return geom.Point{}, false
	}
	best := math.Inf(1)
	// Parametric intersection with each of the four border lines.
	if dir.DX > 1e-12 {
		best = math.Min(best, (r.Max.X-p.X)/dir.DX)
	} else if dir.DX < -1e-12 {
		best = math.Min(best, (r.Min.X-p.X)/dir.DX)
	}
	if dir.DY > 1e-12 {
		best = math.Min(best, (r.Max.Y-p.Y)/dir.DY)
	} else if dir.DY < -1e-12 {
		best = math.Min(best, (r.Min.Y-p.Y)/dir.DY)
	}
	if math.IsInf(best, 1) || best < 1e-9 {
		return geom.Point{}, false
	}
	return r.Clamp(p.Add(dir.Scale(best))), true
}
