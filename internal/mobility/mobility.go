// Package mobility implements the node movement models used by the
// simulator: random waypoint (with the non-zero minimum speed fix of
// Yoon/Liu/Noble that the paper explicitly adopts), random direction,
// Gauss-Markov (temporally correlated velocity), reference-point group
// mobility (RPGM), the Manhattan street grid, and a static model for
// worked examples and unit tests.
//
// Models are evaluated lazily: a node stores its current movement leg
// (origin, destination, speed, start time) and Position(t) interpolates.
// The discrete-event simulator therefore never needs per-tick position
// updates; the medium samples positions only at transmission instants.
package mobility

import (
	"math"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// Model produces and advances per-node movement state.
type Model interface {
	// Init returns the initial leg for node i at time 0.
	Init(i int) Leg
	// Next returns the leg that follows cur for node i, starting at time
	// `now` (the instant cur completes, including any pause).
	Next(i int, cur Leg, now float64) Leg
}

// Leg is one segment of piecewise-linear motion: the node travels from
// From (at time Start) towards To at Speed m/s, then pauses for Pause
// seconds upon arrival.
type Leg struct {
	From  geom.Point
	To    geom.Point
	Speed float64 // m/s; 0 means stationary forever
	Start float64 // simulated seconds
	Pause float64 // dwell at To before the next leg
}

// arriveTime returns when the node reaches To (+Inf for stationary legs).
func (l Leg) arriveTime() float64 {
	if l.Speed <= 0 {
		return inf
	}
	return l.Start + l.From.Dist(l.To)/l.Speed
}

// End returns when the leg is fully over (arrival plus pause).
func (l Leg) End() float64 {
	a := l.arriveTime()
	if a == inf {
		return inf
	}
	return a + l.Pause
}

// Position returns the node's position at time t, clamped to the leg's
// temporal extent.
func (l Leg) Position(t float64) geom.Point {
	if l.Speed <= 0 || t <= l.Start {
		return l.From
	}
	arrive := l.arriveTime()
	if t >= arrive {
		return l.To
	}
	frac := (t - l.Start) * l.Speed / l.From.Dist(l.To)
	return l.From.Lerp(l.To, frac)
}

const inf = 1e308

// Tracker owns the movement state of every node and answers position
// queries at arbitrary (non-decreasing per node) times.
//
// Position queries are memoized per (node, time): the discrete-event
// simulator asks for the same node's position at the same event time many
// times per transmission (coverage, interference and half-duplex checks),
// and the memo turns all but the first into a comparison and a copy.
// Memoization is a pure cache — it never changes the returned positions.
type Tracker struct {
	model Model
	legs  []Leg
	// legLen caches each current leg's From→To distance: Leg.End and
	// Leg.Position both need it, and recomputing the hypotenuse on every
	// query dominates the position math.
	legLen []float64
	// legEnd caches each current leg's end instant (arrival + pause): the
	// advance loop tests it on every position query, and caching spares
	// the division in legEnd. Values are exactly what legEnd computes.
	legEnd []float64
	// Per-node memo of the last query. memoT starts as NaN, which never
	// compares equal, so the zero state is "empty".
	memoT []float64
	memoP []geom.Point
	// Whole-population snapshot cache backing PositionsAt.
	allT  float64
	allP  []geom.Point
	allOK bool
}

// NewTracker initializes n nodes under the given model.
func NewTracker(n int, m Model) *Tracker {
	t := &Tracker{}
	t.Reset(n, m)
	return t
}

// Reset re-initializes the tracker for n nodes under a new model, reusing
// its slices when their capacity allows. A reset tracker is
// indistinguishable from a fresh one.
func (t *Tracker) Reset(n int, m Model) {
	t.model = m
	if cap(t.legs) < n {
		t.legs = make([]Leg, n)
		t.legLen = make([]float64, n)
		t.legEnd = make([]float64, n)
		t.memoT = make([]float64, n)
		t.memoP = make([]geom.Point, n)
		t.allP = make([]geom.Point, n)
	} else {
		t.legs = t.legs[:n]
		t.legLen = t.legLen[:n]
		t.legEnd = t.legEnd[:n]
		t.memoT = t.memoT[:n]
		t.memoP = t.memoP[:n]
		t.allP = t.allP[:n]
	}
	for i := range t.legs {
		t.legs[i] = m.Init(i)
		t.legLen[i] = t.legs[i].From.Dist(t.legs[i].To)
		t.legEnd[i] = legEnd(&t.legs[i], t.legLen[i])
		t.memoT[i] = math.NaN()
		t.memoP[i] = geom.Point{}
	}
	t.allT, t.allOK = 0, false
}

// N returns the number of tracked nodes.
func (t *Tracker) N() int { return len(t.legs) }

// Position returns node i's position at time `now`, advancing its legs as
// needed. Queries may go backwards in time only within the current leg.
func (t *Tracker) Position(i int, now float64) geom.Point {
	if t.memoT[i] == now {
		return t.memoP[i]
	}
	leg := &t.legs[i]
	d := t.legLen[i]
	for t.legEnd[i] <= now {
		*leg = t.model.Next(i, *leg, t.legEnd[i])
		d = leg.From.Dist(leg.To)
		t.legLen[i] = d
		t.legEnd[i] = legEnd(leg, d)
	}
	p := legPosition(leg, d, now)
	t.memoT[i] = now
	t.memoP[i] = p
	return p
}

// legEnd is Leg.End with the From→To distance precomputed; the arithmetic
// is identical, so positions match the uncached methods bit for bit.
func legEnd(l *Leg, d float64) float64 {
	if l.Speed <= 0 {
		return inf
	}
	return l.Start + d/l.Speed + l.Pause
}

// legPosition is Leg.Position with the distance precomputed.
func legPosition(l *Leg, d float64, t float64) geom.Point {
	if l.Speed <= 0 || t <= l.Start {
		return l.From
	}
	arrive := l.Start + d/l.Speed
	if t >= arrive {
		return l.To
	}
	frac := (t - l.Start) * l.Speed / d
	return l.From.Lerp(l.To, frac)
}

// Positions fills dst (len >= N) with every node's position at time now.
func (t *Tracker) Positions(now float64, dst []geom.Point) {
	for i := range t.legs {
		dst[i] = t.Position(i, now)
	}
}

// PositionsAt returns every node's position at time now as a slice owned
// by the tracker: valid until the next PositionsAt call, and cached so
// repeated calls at the same instant (the spatial index refreshing, then
// the medium sampling) cost nothing. Callers must not retain or mutate it.
func (t *Tracker) PositionsAt(now float64) []geom.Point {
	if t.allOK && t.allT == now {
		return t.allP
	}
	t.Positions(now, t.allP)
	t.allT = now
	t.allOK = true
	return t.allP
}

// Static places nodes at fixed points forever. Useful for the paper's
// worked example topology and for convergence property tests.
type Static struct {
	Points []geom.Point
}

// Init implements Model.
func (s Static) Init(i int) Leg {
	return Leg{From: s.Points[i], To: s.Points[i], Speed: 0}
}

// Next implements Model. Static legs never end, so Next is unreachable in
// practice but returns the same leg for safety.
func (s Static) Next(i int, cur Leg, now float64) Leg { return cur }

// RandomWaypoint is the classic model: pick a uniform destination in Area,
// travel at a uniform speed in [MinSpeed, MaxSpeed], pause, repeat.
//
// MinSpeed must be strictly positive: Yoon, Liu and Noble ("Random Waypoint
// Considered Harmful", INFOCOM'03) showed that Vmin = 0 makes average speed
// decay towards zero over long runs, invalidating mobility sweeps. The
// paper states its settings conform to that fix; NewRandomWaypoint
// enforces it.
type RandomWaypoint struct {
	Area     geom.Rect
	MinSpeed float64
	MaxSpeed float64
	Pause    float64
	rng      *xrand.RNG
}

// NewRandomWaypoint builds the model. It panics if minSpeed <= 0 or
// maxSpeed < minSpeed, enforcing the velocity-decay fix.
func NewRandomWaypoint(area geom.Rect, minSpeed, maxSpeed, pause float64, rng *xrand.RNG) *RandomWaypoint {
	if minSpeed <= 0 {
		panic("mobility: RandomWaypoint requires MinSpeed > 0 (Yoon/Liu/Noble fix)")
	}
	if maxSpeed < minSpeed {
		panic("mobility: MaxSpeed < MinSpeed")
	}
	return &RandomWaypoint{Area: area, MinSpeed: minSpeed, MaxSpeed: maxSpeed, Pause: pause, rng: rng}
}

func (m *RandomWaypoint) nodeRNG(i int) *xrand.RNG { return m.rng.SplitIndex(i) }

func (m *RandomWaypoint) randPoint(r *xrand.RNG) geom.Point {
	return geom.Point{
		X: r.Range(m.Area.Min.X, m.Area.Max.X),
		Y: r.Range(m.Area.Min.Y, m.Area.Max.Y),
	}
}

// Init implements Model: node i starts at a uniform point already moving
// (no initial pause), which shortens the warm-up transient.
func (m *RandomWaypoint) Init(i int) Leg {
	r := m.nodeRNG(i)
	from := m.randPoint(r)
	to := m.randPoint(r)
	return Leg{
		From:  from,
		To:    to,
		Speed: r.Range(m.MinSpeed, m.MaxSpeed),
		Start: 0,
		Pause: m.Pause,
	}
}

// Next implements Model.
func (m *RandomWaypoint) Next(i int, cur Leg, now float64) Leg {
	r := m.nodeRNG(i)
	// Advance the per-node stream deterministically: derive from the leg
	// count encoded in `now` is fragile, so draw from a stream salted by
	// the current destination instead. Two draws per leg keeps the
	// sequence reproducible for identical histories.
	r = r.Split(legKey(cur))
	to := m.randPoint(r)
	return Leg{
		From:  cur.To,
		To:    to,
		Speed: r.Range(m.MinSpeed, m.MaxSpeed),
		Start: now,
		Pause: m.Pause,
	}
}

// RandomDirection is the ablation model: nodes pick a heading and travel
// until they hit the area border, pause, then pick a new inward heading.
// Unlike random waypoint it yields a uniform steady-state node density.
type RandomDirection struct {
	Area     geom.Rect
	MinSpeed float64
	MaxSpeed float64
	Pause    float64
	rng      *xrand.RNG
}

// NewRandomDirection builds the model with the same Vmin > 0 requirement as
// random waypoint.
func NewRandomDirection(area geom.Rect, minSpeed, maxSpeed, pause float64, rng *xrand.RNG) *RandomDirection {
	if minSpeed <= 0 {
		panic("mobility: RandomDirection requires MinSpeed > 0")
	}
	if maxSpeed < minSpeed {
		panic("mobility: MaxSpeed < MinSpeed")
	}
	return &RandomDirection{Area: area, MinSpeed: minSpeed, MaxSpeed: maxSpeed, Pause: pause, rng: rng}
}

// Init implements Model.
func (m *RandomDirection) Init(i int) Leg {
	r := m.rng.SplitIndex(i)
	from := geom.Point{
		X: r.Range(m.Area.Min.X, m.Area.Max.X),
		Y: r.Range(m.Area.Min.Y, m.Area.Max.Y),
	}
	return m.leg(r, from, 0)
}

// Next implements Model.
func (m *RandomDirection) Next(i int, cur Leg, now float64) Leg {
	r := m.rng.SplitIndex(i).Split(legKey(cur))
	return m.leg(r, cur.To, now)
}

// leg travels from `from` along a random heading to the border.
func (m *RandomDirection) leg(r *xrand.RNG, from geom.Point, start float64) Leg {
	// Sample headings until one makes measurable progress to a border.
	// A node on the border (or exactly in a corner) rejects the outward
	// and tangential-outward half of the headings, so a handful of draws
	// almost surely suffices; the bounded retry plus the head-for-center
	// fallback makes the "almost" unconditional.
	for tries := 0; tries < 64; tries++ {
		ang := r.Range(0, 2*3.141592653589793)
		dir := geom.Vec{DX: cos(ang), DY: sin(ang)}
		to, ok := borderHit(m.Area, from, dir)
		if ok && from.Dist(to) > 1e-9 {
			return Leg{From: from, To: to, Speed: r.Range(m.MinSpeed, m.MaxSpeed), Start: start, Pause: m.Pause}
		}
	}
	return Leg{From: from, To: m.Area.Center(), Speed: r.Range(m.MinSpeed, m.MaxSpeed), Start: start, Pause: m.Pause}
}

// legKey builds a stable string key from a leg's geometry for RNG stream
// derivation.
func legKey(l Leg) string {
	// Quantize to millimetres; enough to distinguish consecutive legs.
	q := func(f float64) int64 { return int64(f * 1000) }
	b := make([]byte, 0, 40)
	for _, v := range []int64{q(l.To.X), q(l.To.Y), q(l.Start * 1000)} {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(v>>s))
		}
	}
	return string(b)
}
