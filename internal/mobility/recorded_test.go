package mobility

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// testModels builds one instance of every stochastic model from the given
// seed. Each call returns fresh instances with identical draw state, so a
// direct run and a recorded run see the same model.
func testModels(seed uint64) map[string]func() Model {
	area := geom.Square(750)
	return map[string]func() Model{
		"rwp": func() Model {
			return NewRandomWaypoint(area, 1, 8, 2, xrand.New(seed).Split("mobility"))
		},
		"random-direction": func() Model {
			return NewRandomDirection(area, 1, 8, 2, xrand.New(seed).Split("mobility"))
		},
		"gauss-markov": func() Model {
			return NewGaussMarkov(area, 1, 8, 0.75, 1, xrand.New(seed).Split("mobility"))
		},
		"rpgm": func() Model {
			return NewRPGM(area, 1, 8, 4, 125, xrand.New(seed).Split("mobility"))
		},
		"manhattan": func() Model {
			return NewManhattan(area, 1, 8, 2, 150, xrand.New(seed).Split("mobility"))
		},
	}
}

// queryTimes is a mixed probe schedule: dense early samples (leg
// boundaries for every model) plus sparse late ones.
func queryTimes() []float64 {
	var ts []float64
	for t := 0.0; t < 60; t += 0.7 {
		ts = append(ts, t)
	}
	for t := 60.0; t < 600; t += 13.3 {
		ts = append(ts, t)
	}
	return ts
}

// TestRecordedReplayEquivalence pins the tentpole invariant: replaying a
// Recorded trace yields bit-identical positions to driving the wrapped
// model directly, for every mobility kind, across two independent replays
// of the same trace.
func TestRecordedReplayEquivalence(t *testing.T) {
	const n = 30
	for name, mk := range testModels(7) {
		t.Run(name, func(t *testing.T) {
			direct := NewTracker(n, mk())
			rec := NewRecorded(n, mk())
			replayA := NewTracker(n, rec.Replay())
			replayB := NewTracker(n, rec.Replay())
			for _, now := range queryTimes() {
				for i := 0; i < n; i++ {
					want := direct.Position(i, now)
					if got := replayA.Position(i, now); got != want {
						t.Fatalf("node %d at t=%g: replay %v != direct %v", i, now, got, want)
					}
					if got := replayB.Position(i, now); got != want {
						t.Fatalf("node %d at t=%g: second replay %v != direct %v", i, now, got, want)
					}
				}
			}
		})
	}
}

// TestRecordedExtensionOrderIndependent replays the same trace with
// staggered horizons: one cursor races ahead (forcing all extensions), a
// later cursor replays from the warm trace, and a third trace is extended
// cooperatively node-by-node in reverse order. All three match a direct
// run, proving extension order is unobservable.
func TestRecordedExtensionOrderIndependent(t *testing.T) {
	const n = 12
	for name, mk := range testModels(11) {
		t.Run(name, func(t *testing.T) {
			direct := NewTracker(n, mk())
			// Trace 1: extended by a single run racing to t=300.
			recA := NewRecorded(n, mk())
			hot := NewTracker(n, recA.Replay())
			for i := 0; i < n; i++ {
				hot.Position(i, 300)
			}
			cold := NewTracker(n, recA.Replay())
			// Trace 2: extended cooperatively, nodes probed in reverse.
			recB := NewRecorded(n, mk())
			rev := NewTracker(n, recB.Replay())
			for _, now := range []float64{5, 50, 170, 290} {
				for i := n - 1; i >= 0; i-- {
					rev.Position(i, now)
				}
			}
			revCheck := NewTracker(n, recB.Replay())
			for _, now := range []float64{3.1, 47.7, 166.6, 288.8} {
				for i := 0; i < n; i++ {
					want := direct.Position(i, now)
					if got := cold.Position(i, now); got != want {
						t.Fatalf("node %d at t=%g: warm-trace replay %v != direct %v", i, now, got, want)
					}
					if got := revCheck.Position(i, now); got != want {
						t.Fatalf("node %d at t=%g: reverse-extended replay %v != direct %v", i, now, got, want)
					}
				}
			}
		})
	}
}

// TestRecordedConcurrentReplay drives several goroutines, each with its
// own Tracker and Replay cursor, over one shared trace while it is still
// being extended. Run under -race this pins the locking discipline; the
// positions must match a direct run exactly.
func TestRecordedConcurrentReplay(t *testing.T) {
	const n, workers = 20, 8
	for name, mk := range testModels(23) {
		t.Run(name, func(t *testing.T) {
			direct := NewTracker(n, mk())
			var want [][]geom.Point
			times := queryTimes()
			for _, now := range times {
				row := make([]geom.Point, n)
				direct.Positions(now, row)
				want = append(want, append([]geom.Point(nil), row...))
			}
			rec := NewRecorded(n, mk())
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					tr := NewTracker(n, rec.Replay())
					for ti, now := range times {
						for i := 0; i < n; i++ {
							if got := tr.Position(i, now); got != want[ti][i] {
								errs <- fmt.Errorf("worker %d node %d t=%g: %v != %v", w, i, now, got, want[ti][i])
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}
