package mobility

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// RPGM is reference-point group mobility (Hong, Gerla, Pei, Chiang): nodes
// are partitioned into groups, each group's reference point roams the
// area on a random-waypoint path, and every member orbits its group's
// reference point within GroupRadius. Members of one group move together
// — the canonical stressor for multicast tree maintenance, since a whole
// subtree's worth of receivers drifts coherently instead of scattering.
//
// Lazy-leg realization: each group's reference path is an append-only
// sequence of waypoint legs generated on demand from the group's own RNG
// stream; member leg k re-targets "reference position at arrival time
// plus a fresh offset inside the group disk" and picks a speed that
// chases it, capped at MaxSpeed. The reference sequence is extended
// strictly in order and consumes its stream deterministically, so the
// whole model remains a pure function of the root seed regardless of the
// order in which node positions are queried.
type RPGM struct {
	Area     geom.Rect
	MinSpeed float64
	MaxSpeed float64
	// Groups is the number of groups; node i belongs to group i % Groups.
	Groups int
	// Radius bounds a member's offset from its reference point.
	Radius float64
	// Retarget is the member re-aim interval, seconds.
	Retarget float64

	rng  *xrand.RNG
	refs []*refPath
}

// NewRPGM builds the model. Reference points travel at up to 70% of
// maxSpeed so members (capped at maxSpeed) can both keep up and wander
// within the disk. Panics on minSpeed <= 0, maxSpeed < minSpeed,
// groups < 1, or radius <= 0.
func NewRPGM(area geom.Rect, minSpeed, maxSpeed float64, groups int, radius float64, rng *xrand.RNG) *RPGM {
	if minSpeed <= 0 {
		panic("mobility: RPGM requires MinSpeed > 0")
	}
	if maxSpeed < minSpeed {
		panic("mobility: MaxSpeed < MinSpeed")
	}
	if groups < 1 {
		panic("mobility: RPGM requires at least one group")
	}
	if radius <= 0 {
		panic("mobility: RPGM requires Radius > 0")
	}
	m := &RPGM{
		Area:     area,
		MinSpeed: minSpeed,
		MaxSpeed: maxSpeed,
		Groups:   groups,
		Radius:   radius,
		Retarget: math.Max(1, 2*radius/maxSpeed),
		rng:      rng,
	}
	refVMax := math.Max(minSpeed, 0.7*maxSpeed)
	for g := 0; g < groups; g++ {
		m.refs = append(m.refs, newRefPath(m.refArea(), minSpeed, refVMax, rng.Split("rpgm-ref").SplitIndex(g)))
	}
	return m
}

// refArea is the reference points' roaming rectangle: the deployment area
// inset by the group radius (when it fits), so member offsets rarely need
// clamping at the walls.
func (m *RPGM) refArea() geom.Rect {
	inset := m.Radius
	if 2*inset >= m.Area.Width() || 2*inset >= m.Area.Height() {
		inset = math.Min(m.Area.Width(), m.Area.Height()) / 4
	}
	return geom.Rect{
		Min: geom.Point{X: m.Area.Min.X + inset, Y: m.Area.Min.Y + inset},
		Max: geom.Point{X: m.Area.Max.X - inset, Y: m.Area.Max.Y - inset},
	}
}

// group returns node i's group index.
func (m *RPGM) group(i int) int { return i % m.Groups }

// offset draws a uniform point in the group disk.
func (m *RPGM) offset(r *xrand.RNG) geom.Vec {
	rad := m.Radius * math.Sqrt(r.Float64())
	ang := r.Range(0, 2*math.Pi)
	return geom.Vec{DX: rad * math.Cos(ang), DY: rad * math.Sin(ang)}
}

// Init implements Model: start at the group's t=0 reference position plus
// an offset, already chasing the next target.
func (m *RPGM) Init(i int) Leg {
	r := m.rng.SplitIndex(i)
	ref := m.refs[m.group(i)]
	from := m.Area.Clamp(ref.at(0).Add(m.offset(r)))
	return m.leg(r, i, from, 0)
}

// Next implements Model.
func (m *RPGM) Next(i int, cur Leg, now float64) Leg {
	r := m.rng.SplitIndex(i).Split(legKey(cur))
	return m.leg(r, i, cur.To, now)
}

// leg aims at the reference position one retarget interval ahead plus a
// fresh disk offset, at a speed that would arrive on time (capped to the
// model's speed band).
func (m *RPGM) leg(r *xrand.RNG, i int, from geom.Point, start float64) Leg {
	ref := m.refs[m.group(i)]
	target := m.Area.Clamp(ref.at(start + m.Retarget).Add(m.offset(r)))
	dist := from.Dist(target)
	if dist < 1e-9 {
		// Degenerate aim (offset cancelled the drift): dwell briefly
		// instead of emitting a zero-length moving leg. Speed > 0 with
		// Pause > 0 gives the leg a finite End, so the tracker advances.
		return Leg{From: from, To: from, Speed: m.MinSpeed, Start: start, Pause: 0.5}
	}
	speed := math.Min(math.Max(dist/m.Retarget, m.MinSpeed), m.MaxSpeed)
	return Leg{From: from, To: target, Speed: speed, Start: start}
}

// refPath is one group's reference-point trajectory: random-waypoint legs
// generated append-only from a private stream and queried at arbitrary
// times via binary search.
type refPath struct {
	area geom.Rect
	vmin float64
	vmax float64
	rng  *xrand.RNG
	legs []Leg
	ends []float64 // ends[k] = legs[k].End(), strictly increasing
}

func newRefPath(area geom.Rect, vmin, vmax float64, rng *xrand.RNG) *refPath {
	p := &refPath{area: area, vmin: vmin, vmax: vmax, rng: rng}
	from := p.randPoint()
	p.push(p.mkLeg(from, 0))
	return p
}

func (p *refPath) randPoint() geom.Point {
	return geom.Point{
		X: p.rng.Range(p.area.Min.X, p.area.Max.X),
		Y: p.rng.Range(p.area.Min.Y, p.area.Max.Y),
	}
}

// mkLeg draws the next waypoint leg from `from` starting at `start`.
// Destinations repeat-draw until they are a measurable distance away so
// every leg has positive duration and the path always advances.
func (p *refPath) mkLeg(from geom.Point, start float64) Leg {
	to := p.randPoint()
	for from.Dist(to) < 1e-6 {
		to = p.randPoint()
	}
	return Leg{From: from, To: to, Speed: p.rng.Range(p.vmin, p.vmax), Start: start}
}

func (p *refPath) push(l Leg) {
	p.legs = append(p.legs, l)
	p.ends = append(p.ends, l.End())
}

// at returns the reference position at time t, extending the path as
// needed. Extension order is strictly chronological, so the stream draws
// — and therefore the whole trajectory — do not depend on who asks first.
func (p *refPath) at(t float64) geom.Point {
	for p.ends[len(p.ends)-1] <= t {
		last := p.legs[len(p.legs)-1]
		p.push(p.mkLeg(last.To, last.End()))
	}
	// The loop above guarantees ends[last] > t, so k is always in range.
	k := sort.SearchFloat64s(p.ends, t)
	return p.legs[k].Position(t)
}
