// Package geom provides the 2-D geometry primitives used by the MANET
// simulator: points, vectors, distances and the rectangular deployment
// area nodes move in.
package geom

import (
	"fmt"
	"math"
)

// Point is a position in the 2-D plane, in metres.
type Point struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Add returns p translated by the vector v.
func (p Point) Add(v Vec) Point { return Point{p.X + v.DX, p.Y + v.DY} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vec { return Vec{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison form in hot paths such as
// medium coverage checks.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
// t outside [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Vec is a displacement in the 2-D plane, in metres.
type Vec struct {
	DX, DY float64
}

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 { return math.Hypot(v.DX, v.DY) }

// Scale returns v scaled by k.
func (v Vec) Scale(k float64) Vec { return Vec{v.DX * k, v.DY * k} }

// Unit returns the unit vector in the direction of v. The zero vector is
// returned unchanged.
func (v Vec) Unit() Vec {
	l := v.Len()
	if l == 0 {
		return v
	}
	return Vec{v.DX / l, v.DY / l}
}

// Rect is an axis-aligned rectangle, typically the deployment area.
// Min is the lower-left corner and Max the upper-right corner.
type Rect struct {
	Min, Max Point
}

// Square returns a side×side rectangle anchored at the origin.
func Square(side float64) Rect {
	return Rect{Min: Point{0, 0}, Max: Point{side, side}}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies inside r (borders inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// Diagonal returns the length of the rectangle's diagonal, an upper bound
// on any distance between two points inside r.
func (r Rect) Diagonal() float64 { return r.Min.Dist(r.Max) }

// BoundingBox returns the axis-aligned bounding box of pts (a unit square
// for an empty slice, so downstream grids stay well-formed).
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		return Square(1)
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}
