package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-2, 0}, Point{2, 0}, 4},
		{Point{0, -3}, Point{0, 3}, 6},
	}
	for _, c := range cases {
		if got := c.a.Dist(c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Dist(c.a); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestDist2MatchesDistSquared(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.Abs(ax) > 1e6 || math.Abs(ay) > 1e6 || math.Abs(bx) > 1e6 || math.Abs(by) > 1e6 {
			return true // avoid overflow-scale inputs
		}
		a, b := Point{ax, ay}, Point{bx, by}
		d := a.Dist(b)
		return math.Abs(a.Dist2(b)-d*d) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	mid := a.Lerp(b, 0.5)
	if mid.X != 5 || mid.Y != 10 {
		t.Errorf("Lerp(0.5) = %v", mid)
	}
}

func TestVec(t *testing.T) {
	v := Vec{3, 4}
	if v.Len() != 5 {
		t.Errorf("Len = %v", v.Len())
	}
	u := v.Unit()
	if math.Abs(u.Len()-1) > 1e-12 {
		t.Errorf("Unit().Len() = %v", u.Len())
	}
	if z := (Vec{}).Unit(); z != (Vec{}) {
		t.Errorf("zero Unit = %v", z)
	}
	s := v.Scale(2)
	if s.DX != 6 || s.DY != 8 {
		t.Errorf("Scale = %v", s)
	}
}

func TestAddSub(t *testing.T) {
	p := Point{1, 2}
	q := p.Add(Vec{3, 4})
	if q != (Point{4, 6}) {
		t.Errorf("Add = %v", q)
	}
	d := q.Sub(p)
	if d != (Vec{3, 4}) {
		t.Errorf("Sub = %v", d)
	}
}

func TestRect(t *testing.T) {
	r := Square(100)
	if r.Width() != 100 || r.Height() != 100 {
		t.Errorf("Square dims: %v x %v", r.Width(), r.Height())
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{100, 100}) || !r.Contains(Point{50, 50}) {
		t.Error("Contains should include borders and interior")
	}
	if r.Contains(Point{-1, 50}) || r.Contains(Point{50, 101}) {
		t.Error("Contains should exclude outside points")
	}
	if got := r.Clamp(Point{-5, 120}); got != (Point{0, 100}) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Clamp(Point{42, 37}); got != (Point{42, 37}) {
		t.Errorf("Clamp of inside point moved: %v", got)
	}
	if math.Abs(r.Diagonal()-100*math.Sqrt2) > 1e-9 {
		t.Errorf("Diagonal = %v", r.Diagonal())
	}
}

func TestClampAlwaysInside(t *testing.T) {
	r := Rect{Min: Point{-10, 5}, Max: Point{30, 45}}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		return r.Contains(r.Clamp(Point{x, y}))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		for _, v := range []float64{ax, ay, bx, by, cx, cy} {
			if math.Abs(v) > 1e6 || math.IsNaN(v) {
				return true
			}
		}
		a, b, c := Point{ax, ay}, Point{bx, by}, Point{cx, cy}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
