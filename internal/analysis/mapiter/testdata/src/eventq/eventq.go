// Package eventq is a fixture stand-in for the real event queue: the
// analyzer keys on the receiver type's package name.
package eventq

type Queue struct{ n int }

func New() *Queue              { return &Queue{} }
func (q *Queue) Push(at float64) { q.n++ }
func (q *Queue) Len() int        { return q.n }
