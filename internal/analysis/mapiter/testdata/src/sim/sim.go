package sim

import (
	"sort"

	"eventq"
	"xrand"
)

// Schedule pushes events in map order: the archetypal determinism bug.
func Schedule(q *eventq.Queue, deadlines map[int]float64) {
	for _, at := range deadlines {
		q.Push(at) // want `event scheduling \(Queue\.Push\) inside map iteration`
	}
}

// Jitter draws RNG values in map order, consuming the stream in a
// run-dependent sequence.
func Jitter(r *xrand.RNG, nodes map[int]bool) float64 {
	var sum float64
	for range nodes {
		sum += r.Float64() // want `RNG draw \(RNG\.Float64\) inside map iteration`
	}
	return sum
}

// Collect appends in map order and returns without sorting.
func Collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration without a following sort`
	}
	return keys
}

// CollectSorted is the canonical clean idiom: collect, then sort.
func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum accumulates a commutative reduction: no ordered sink, clean.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Local keeps the appended slice inside the loop: its order never
// escapes an iteration, clean.
func Local(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var acc []int
		acc = append(acc, vs...)
		n += len(acc)
	}
	return n
}

// Allowed demonstrates the escape hatch on an argued-commutative sink.
func Allowed(q *eventq.Queue, deadlines map[int]float64) {
	for range deadlines {
		q.Len() //detlint:allow read-only length query, no ordering effect
	}
}

// SliceRange is not a map range: scheduling from it is fine.
func SliceRange(q *eventq.Queue, ats []float64) {
	for _, at := range ats {
		q.Push(at)
	}
}
