// Package xrand is a fixture stand-in for the seeded RNG package.
package xrand

type RNG struct{ s uint64 }

func New(seed uint64) *RNG { return &RNG{s: seed} }

func (r *RNG) Float64() float64 {
	r.s = r.s*6364136223846793005 + 1
	return float64(r.s>>11) / (1 << 53)
}
