// Package mapiter enforces the repro's second determinism law: Go map
// iteration order is deliberately randomized, so a `range` over a map
// must never feed an order-sensitive sink inside the simulation kernel.
//
// For every `for ... range m` where m is a map, in the non-test files of
// the packages in analysis.InSimScope, the loop body is scanned for:
//
//   - event scheduling: any method call on a type declared in
//     internal/eventq or internal/sim (Push, PushOwned, After, Every, …)
//     — the event queue's (time, seq) order is the simulation's spine;
//   - RNG draws: any method call on a type from internal/xrand — the
//     draw sequence is part of the result;
//   - collector writes: any method call on a type from internal/metrics;
//   - slice growth that escapes the loop: append assigned to a variable
//     declared outside the range statement, unless the enclosing
//     function later passes that variable to sort.* or slices.* after
//     the loop — the canonical collect-then-sort idiom stays clean.
//
// The analysis is local by design: a helper function that schedules from
// a map-ordered loop via an extra call level is beyond it (the byte-diff
// smokes remain the backstop there), but every direct violation — the
// kind a refactor most easily introduces — breaks the build at the line.
// //detlint:allow <reason> suppresses a finding whose order-insensitivity
// has been argued (e.g. accumulating a commutative sum).
package mapiter

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flag map iteration feeding order-sensitive sinks (scheduling, RNG, collectors, escaping appends) in the simulation kernel",
	Run:  run,
}

// sinkPackages maps the import-path suffix of a receiver type's package
// to the finding category.
var sinkPackages = map[string]string{
	"eventq":  "event scheduling",
	"sim":     "event scheduling",
	"xrand":   "RNG draw",
	"metrics": "collector write",
}

func run(pass *analysis.Pass) error {
	if !analysis.InSimScope(pass) {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc finds map ranges in one function body. body is also the
// scope searched for loop-salvaging sorts.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			// A closure is its own sort scope: a sort outside it cannot
			// order what the closure's caller observes mid-iteration.
			checkFunc(pass, fl.Body)
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pass, rs) {
			return true
		}
		checkRangeBody(pass, rs, body)
		return true
	})
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func checkRangeBody(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if cat, recv := sinkMethod(pass, call); cat != "" && !pass.Allowed(call.Pos()) {
			pass.Reportf(call.Pos(), "%s (%s) inside map iteration: map order is randomized, so this sequence differs between runs", cat, recv)
			return true
		}
		if obj := escapingAppend(pass, call, rs); obj != nil {
			if !sortedAfter(pass, fnBody, rs, obj) && !pass.Allowed(call.Pos()) {
				pass.Reportf(call.Pos(), "append to %s inside map iteration without a following sort: element order depends on randomized map order", obj.Name())
			}
		}
		return true
	})
}

// sinkMethod classifies a call as a method on a type from a sink
// package, returning the category and a receiver description.
func sinkMethod(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return "", ""
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	path := named.Obj().Pkg().Path()
	cat := sinkPackages[path[strings.LastIndexByte(path, '/')+1:]]
	if cat == "" {
		return "", ""
	}
	return cat, named.Obj().Name() + "." + sel.Sel.Name
}

// escapingAppend returns the variable a builtin append grows when that
// variable was declared outside the range statement.
func escapingAppend(pass *analysis.Pass, call *ast.CallExpr, rs *ast.RangeStmt) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	base, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[base]
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
		return nil // loop-local accumulator: ordering is the loop's own business
	}
	return obj
}

// sortedAfter reports whether fnBody contains, after the range
// statement, a call into sort or slices mentioning obj among its
// arguments.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentions(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentions(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	hit := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			hit = true
		}
		return !hit
	})
	return hit
}
