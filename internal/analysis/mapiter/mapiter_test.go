package mapiter

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestMapiter(t *testing.T) {
	analysistest.Run(t, "testdata/src", Analyzer, "sim")
}
