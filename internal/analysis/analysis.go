// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver surface, built entirely on the
// standard library's go/ast, go/types and go/importer.
//
// The repro module cannot vendor x/tools (the build environment is
// offline), but the determinism, RNG and error-discipline contracts of
// DESIGN §14–§16 want compile-time enforcement, not just byte-diff
// smokes. This package provides the three pieces a pass fleet needs:
//
//   - Analyzer / Pass / Diagnostic: the familiar x/tools shapes, so the
//     passes under internal/analysis/* read like ordinary go/analysis
//     code and could be ported to the real multichecker verbatim if the
//     dependency ever becomes available.
//   - Loader (load.go): a module-aware package loader that parses and
//     type-checks the repro tree (optionally including _test.go files)
//     with the stdlib source importer standing in for export data.
//   - The //detlint:allow directive (directive.go): the single escape
//     hatch every pass honors, requiring a written reason at the site.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer minus facts and requires —
// the repro fleet's passes are all independent single-package passes.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and the driver's
	// -only flag. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract statement printed by the
	// driver's help output.
	Doc string
	// Run executes the check on one package. It reports findings via
	// pass.Report and returns an error only for internal failures
	// (a broken invariant of the analyzer itself, never a finding).
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the parsed files of the package, comments included.
	Files []*ast.File
	// Pkg is the type-checked package; PkgPath its import path as the
	// loader resolved it (module-relative for repro packages).
	Pkg     *types.Package
	PkgPath string
	// TypesInfo has Types, Defs, Uses and Selections populated for
	// every file in Files.
	TypesInfo *types.Info
	// report receives diagnostics; set by the driver.
	report func(Diagnostic)
	// directives indexes //detlint:allow comments by file and line;
	// built lazily by Allowed.
	directives map[*token.File]map[int]bool
}

// Diagnostic is one finding at one position. Analyzer carries the
// reporting pass's name for driver output.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Allowed reports whether the line holding pos — or the line directly
// above it, for statements too long to share a line with their
// justification — carries a //detlint:allow directive with a non-empty
// reason. Every pass in the fleet consults this before reporting, so one
// grep-able directive grammar suppresses any analyzer:
//
//	s.deadline = time.Now().Add(d) //detlint:allow wall-clock watchdog, not simulation state
//
// A bare //detlint:allow with no reason does not suppress: the reason is
// the contract (the directive is an argued exception, not an off switch),
// and MalformedDirectives surfaces reasonless ones as findings.
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.directives == nil {
		p.directives = buildDirectiveIndex(p.Fset, p.Files)
	}
	tf := p.Fset.File(pos)
	if tf == nil {
		return false
	}
	lines := p.directives[tf]
	if lines == nil {
		return false
	}
	line := tf.Line(pos)
	return lines[line] || lines[line-1]
}

// sortDiagnostics orders findings by position for stable driver output.
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}

// RunAnalyzers applies each analyzer to pkg and returns the merged,
// position-sorted findings. Analyzer errors (internal failures, not
// findings) abort the run: a broken checker must not pass for a clean
// tree.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			PkgPath:   pkg.PkgPath,
			TypesInfo: pkg.Info,
			report: func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

// TypeIsError reports whether t is the built-in error interface.
func TypeIsError(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// ImplementsError reports whether t implements the error interface
// (directly or via pointer receiver when t is already a pointer).
func ImplementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface)
}
