package fingerprintfields

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestFingerprintFields(t *testing.T) {
	analysistest.Run(t, "testdata/src", Analyzer,
		"scenario_bad", "scenario_clean", "scenario_noread", "scenario_notable")
}
