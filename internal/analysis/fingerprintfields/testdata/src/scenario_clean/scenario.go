package scenario

import "fmt"

// Config is fully classified: no findings.
type Config struct {
	Seed        uint64
	N           int
	EventBudget uint64
}

var fingerprintFields = map[string]bool{
	"Seed":        true,
	"N":           true,
	"EventBudget": false,
}

func (cfg Config) Fingerprint() string {
	if !fingerprintFields["EventBudget"] {
		cfg.EventBudget = 0
	}
	return fmt.Sprintf("%#v", cfg)
}
