package scenario

import "fmt"

// Config has a field the table never classifies.
type Config struct {
	Seed        uint64
	N           int
	RateBps     float64 // want `Config field RateBps is not classified in fingerprintFields`
	EventBudget uint64
}

var fingerprintFields = map[string]bool{
	"Seed":        true,
	"N":           true,
	"EventBudget": false,
	"Gone":        true, // want `fingerprintFields entry "Gone" names no Config field`
}

func (cfg Config) Fingerprint() string {
	if !fingerprintFields["EventBudget"] {
		cfg.EventBudget = 0
	}
	return fmt.Sprintf("%#v", cfg)
}
