package scenario

import "fmt"

// Config without any classification table at all.
type Config struct { // want `scenario\.Config has no fingerprintFields classification table`
	Seed uint64
}

func (cfg Config) Fingerprint() string {
	return fmt.Sprintf("%#v", cfg)
}
