package scenario

import "fmt"

type Config struct {
	Seed uint64
}

var fingerprintFields = map[string]bool{
	"Seed": true,
}

// Fingerprint ignores the table: the classification would be dead text.
func (cfg Config) Fingerprint() string { // want `Fingerprint does not consult fingerprintFields`
	return fmt.Sprintf("%#v", cfg)
}
