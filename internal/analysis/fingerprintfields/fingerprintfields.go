// Package fingerprintfields enforces the resumability contract of the
// sharded sweep fabric (DESIGN §14, PR 9): scenario.Config's fingerprint
// must cover every result-determining field, and the only fields outside
// it are the explicitly listed execution-control knobs.
//
// The scenario package encodes the classification in one table,
// fingerprintFields (field name → fingerprinted?), which Fingerprint
// consults at runtime. This analyzer cross-checks the table against the
// Config struct at build time:
//
//   - a Config field absent from the table is reported at the field —
//     adding a field without deciding its class breaks the build;
//   - a table entry naming no Config field is reported at the entry —
//     the table cannot drift stale;
//   - a Fingerprint method that never reads the table is reported — the
//     table must be the digest's actual input, not documentation.
//
// TestConfigFieldsClassified in internal/scenario is the runtime
// complement (it also exercises digest behavior per class); this pass is
// the compile-time tripwire with a position.
package fingerprintfields

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "fingerprintfields",
	Doc:  "cross-check scenario.Config fields against the fingerprintFields classification table",
	Run:  run,
}

const tableName = "fingerprintFields"

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "scenario" {
		return nil
	}
	cfg := findStruct(pass, "Config")
	if cfg == nil {
		return nil // a package merely named scenario, not the scenario package
	}
	table := findTable(pass)
	if table == nil {
		pass.Reportf(cfg.Pos(), "scenario.Config has no %s classification table: every field must be declared fingerprinted or excluded", tableName)
		return nil
	}

	fields := make(map[string]bool)
	for _, f := range cfg.Fields.List {
		for _, name := range f.Names {
			fields[name.Name] = true
			if _, ok := table[name.Name]; !ok && !pass.Allowed(name.Pos()) {
				pass.Reportf(name.Pos(), "Config field %s is not classified in %s: add it as fingerprinted (true) or as an execution-control knob (false)", name.Name, tableName)
			}
		}
		if len(f.Names) == 0 {
			pass.Reportf(f.Pos(), "embedded Config field defeats per-field fingerprint classification: name it")
		}
	}
	for name, key := range table {
		if !fields[name] {
			pass.Reportf(key.Pos(), "%s entry %q names no Config field: remove the stale entry", tableName, name)
		}
	}
	checkFingerprintReadsTable(pass)
	return nil
}

// findStruct locates a top-level struct type declaration by name.
func findStruct(pass *analysis.Pass, name string) *ast.StructType {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// findTable locates the package-level fingerprintFields map literal and
// returns its string keys with their positions.
func findTable(pass *analysis.Pass) map[string]ast.Node {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != tableName || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					keys := make(map[string]ast.Node)
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						bl, ok := kv.Key.(*ast.BasicLit)
						if !ok {
							pass.Reportf(kv.Key.Pos(), "%s key must be a plain string literal so the analyzer can read it", tableName)
							continue
						}
						key, err := strconv.Unquote(bl.Value)
						if err != nil {
							continue
						}
						keys[key] = kv.Key
					}
					return keys
				}
			}
		}
	}
	return nil
}

// checkFingerprintReadsTable requires the Fingerprint method to actually
// reference the table.
func checkFingerprintReadsTable(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Fingerprint" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			reads := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || id.Name != tableName {
					return true
				}
				if obj, isVar := pass.TypesInfo.Uses[id].(*types.Var); isVar && obj.Parent() == obj.Pkg().Scope() {
					reads = true
				}
				return !reads
			})
			if !reads {
				pass.Reportf(fd.Pos(), "Fingerprint does not consult %s: the classification table must drive the digest, not describe it", tableName)
			}
			return
		}
	}
}
