// Package detrand enforces the repro's first determinism law: inside the
// simulation kernel, every source of randomness is a seeded xrand stream
// and every clock is the simulated clock.
//
// Three rules, applied to the non-test files of the packages in
// analysis.InSimScope:
//
//  1. Importing math/rand or math/rand/v2 is forbidden. Their global
//     generators are process-seeded; even the seeded forms invite state
//     shared across replications.
//  2. Referencing the wall clock — time.Now, time.Since, time.Until,
//     time.After, time.Tick, time.Sleep, time.NewTimer, time.NewTicker,
//     time.AfterFunc — is forbidden. Simulated time comes from
//     sim.Simulator; wall time in a result path breaks
//     workers-1-vs-8 bit-identity. (time.Duration and other pure types
//     remain fine.)
//  3. Writing a package-level variable anywhere but a top-level init
//     function is forbidden. Package-level mutable state outlives one
//     replication and couples runs that must be independent; the
//     engine's arenas exist precisely so no kernel package needs it.
//
// Test files are exempt: property tests legitimately use math/rand as a
// fixed-seeded input fuzzer, and the bit-identity suites would catch any
// nondeterminism a test harness could induce in results.
//
// The single escape is //detlint:allow <reason> on (or directly above)
// the offending line — e.g. the wall-deadline watchdog in
// internal/sim/sim.go, which reads time.Now by design and can only abort
// a run, never change what a successful run computes.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid math/rand, wall-clock reads, and package-level state writes in the simulation kernel",
	Run:  run,
}

// forbiddenImports are banned outright in kernel packages.
var forbiddenImports = map[string]string{
	"math/rand":    "process-global RNG; use a seeded xrand stream",
	"math/rand/v2": "process-global RNG; use a seeded xrand stream",
}

// wallClock lists the time package's wall-clock-reading functions.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "Sleep": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.InSimScope(pass) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		checkImports(pass, f)
		checkWallClock(pass, f)
		checkGlobalWrites(pass, f)
	}
	return nil
}

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

func checkImports(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if why, bad := forbiddenImports[path]; bad && !pass.Allowed(imp.Pos()) {
			pass.Reportf(imp.Pos(), "import of %s in simulation package %s: %s", path, pass.Pkg.Name(), why)
		}
	}
}

func checkWallClock(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
			return true
		}
		// Only package-level functions read the wall clock; methods on
		// time.Time / time.Duration (After, Sub, Seconds, …) are pure.
		if fn, ok := obj.(*types.Func); !ok || fn.Signature().Recv() != nil {
			return true
		}
		if wallClock[obj.Name()] && !pass.Allowed(sel.Pos()) {
			pass.Reportf(sel.Pos(), "wall-clock time.%s in simulation package %s: simulated time comes from sim.Simulator", obj.Name(), pass.Pkg.Name())
		}
		return true
	})
}

// checkGlobalWrites flags assignments and inc/dec statements whose
// target resolves to a package-level variable, unless they occur inside
// a top-level init function (one-time table construction is fine — the
// hazard is state mutated between or during replications).
func checkGlobalWrites(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Recv == nil && fd.Name.Name == "init" {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					reportGlobalTarget(pass, lhs, st.Pos())
				}
			case *ast.IncDecStmt:
				reportGlobalTarget(pass, st.X, st.Pos())
			}
			return true
		})
	}
}

// reportGlobalTarget resolves the root object a write lands on and
// reports it when that object is a package-level variable.
func reportGlobalTarget(pass *analysis.Pass, expr ast.Expr, at token.Pos) {
	obj := rootObject(pass, expr)
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return
	}
	if pass.Allowed(at) {
		return
	}
	pass.Reportf(at, "write to package-level variable %s outside init in simulation package %s: global mutable state couples replications", v.Name(), pass.Pkg.Name())
}

// rootObject unwraps an assignable expression (selectors, indexes,
// slices, parens, derefs) to the object its base identifier denotes.
// Package-qualified selectors resolve to the selected object itself.
func rootObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[e]
		case *ast.SelectorExpr:
			if id, ok := e.X.(*ast.Ident); ok {
				if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					return pass.TypesInfo.Uses[e.Sel]
				}
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
