// Package util is outside the simulation kernel: detrand does not apply.
package util

import (
	"math/rand"
	"time"
)

var hits int

func Sample() float64 {
	hits++
	_ = time.Now()
	return rand.Float64()
}
