package sim

import (
	"math/rand" // want `import of math/rand in simulation package sim`
	"time"
)

// counter is package-level state; writes outside init are findings.
var counter int

// table is built once in init: allowed.
var table map[string]int

func init() {
	table = map[string]int{"a": 1}
}

// Draw mixes every violation class.
func Draw() float64 {
	counter++ // want `write to package-level variable counter outside init`
	return rand.Float64()
}

func Stamp() int64 {
	t := time.Now() // want `wall-clock time\.Now in simulation package sim`
	return t.UnixNano()
}

func Elapsed(since time.Time) float64 {
	return time.Since(since).Seconds() // want `wall-clock time\.Since in simulation package sim`
}

// Reconfigure writes a package-level map entry from an ordinary
// function.
func Reconfigure(k string, v int) {
	table[k] = v // want `write to package-level variable table outside init`
}

// Durations are pure values: using the time package's types is fine.
func Horizon() time.Duration { return 3 * time.Second }
