package sim

import "time"

var deadline time.Time

// SetWallDeadline is the watchdog pattern: the directive (with its
// mandatory reason) suppresses both the wall-clock read and the
// package-level write on the same line.
func SetWallDeadline(d time.Duration) {
	deadline = time.Now().Add(d) //detlint:allow wall-clock watchdog, can only abort a run, never change results
}

// Above-line placement works too.
func Touch() {
	//detlint:allow fixture: directive on the preceding line
	deadline = time.Time{}
}
