package sim

import (
	"math/rand"
	"testing"
)

// Test files are exempt: math/rand here is a fixed-seeded input fuzzer,
// not a result path.
func TestFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if r.Float64() < 0 {
		t.Fatal("impossible")
	}
}
