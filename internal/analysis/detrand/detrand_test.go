package detrand

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata/src", Analyzer, "sim", "util")
}
