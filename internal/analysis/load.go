package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked unit of analysis.
type Package struct {
	// PkgPath is the import path the loader resolved (module-relative
	// for repro packages, the bare directory path for fixture trees).
	PkgPath string
	// Dir is the directory the files came from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages rooted at a directory tree.
//
// Imports resolve in three tiers: "unsafe" maps to types.Unsafe; paths
// inside the root (module paths under ModPath, or — when ModPath is
// empty, the fixture mode analysistest uses — any path whose directory
// exists under Root) are parsed and type-checked recursively; everything
// else goes to the standard library via the stdlib source importer, so
// no export data, network access or x/tools machinery is required.
//
// The import view of a package (memoized in plain) never includes its
// _test.go files: other packages must see exactly what the compiler
// would export. When Tests is set, Load additionally type-checks an
// augmented variant (package files + in-package test files) for analysis
// and a separate unit for any external _test package.
type Loader struct {
	Fset *token.FileSet
	// Root is the directory patterns resolve against.
	Root string
	// ModPath, when non-empty, is the module path Root's packages live
	// under: import path ModPath/x/y loads from Root/x/y.
	ModPath string
	// Tests selects whether Load also analyzes test files.
	Tests bool

	std     types.ImporterFrom
	plain   map[string]*types.Package
	loading map[string]bool
}

// NewLoader builds a loader rooted at dir. If dir (or a parent) holds a
// go.mod, its module path scopes local imports; otherwise the loader
// runs in fixture mode where any import whose directory exists under
// root resolves locally.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		Root:    abs,
		plain:   make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if modpath, modroot, ok := findModule(abs); ok {
		l.ModPath, l.Root = modpath, modroot
	}
	return l, nil
}

// NewFixtureLoader builds a loader in fixture mode: no module detection,
// Root taken literally, and any import path whose directory exists under
// Root resolving locally. analysistest uses this for testdata/src trees,
// which live inside the repro module but must not load through it.
func NewFixtureLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		Root:    abs,
		plain:   make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// findModule walks up from dir looking for go.mod and returns the
// declared module path and its directory.
func findModule(dir string) (string, string, bool) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), d, true
				}
			}
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", false
		}
		d = parent
	}
}

// localDir maps an import path to a directory under Root, or "" when the
// path is not local.
func (l *Loader) localDir(path string) string {
	if l.ModPath != "" {
		if path == l.ModPath {
			return l.Root
		}
		if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
			return filepath.Join(l.Root, filepath.FromSlash(rest))
		}
		return ""
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

// Import implements types.Importer over the three tiers.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.localDir(path); dir != "" {
		return l.importLocal(path, dir)
	}
	return l.std.ImportFrom(path, l.Root, 0)
}

// importLocal returns the memoized import view of a local package,
// type-checking its non-test files on first use.
func (l *Loader) importLocal(path, dir string) (*types.Package, error) {
	if pkg, ok := l.plain[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, _, _, err := listGoFiles(dir)
	if err != nil {
		return nil, err
	}
	files, err := l.parse(dir, names)
	if err != nil {
		return nil, err
	}
	pkg, _, err := l.check(path, files, nil)
	if err != nil {
		return nil, err
	}
	l.plain[path] = pkg
	return pkg, nil
}

// listGoFiles returns the build-constrained (goFiles, inPackageTest,
// externalTest) file names of dir, in sorted order.
func listGoFiles(dir string) ([]string, []string, []string, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			return nil, nil, nil, nil
		}
		return nil, nil, nil, err
	}
	if len(bp.CgoFiles) > 0 {
		return nil, nil, nil, fmt.Errorf("analysis: %s uses cgo, unsupported", dir)
	}
	sort.Strings(bp.GoFiles)
	sort.Strings(bp.TestGoFiles)
	sort.Strings(bp.XTestGoFiles)
	return bp.GoFiles, bp.TestGoFiles, bp.XTestGoFiles, nil
}

func (l *Loader) parse(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks files as package path, returning the package and the
// filled-in info. Hard type errors fail the load: an analysis over a
// half-checked package would under-report.
func (l *Loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, *types.Info, error) {
	if info == nil {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if firstErr != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// Load resolves patterns to analysis units. A pattern is either an
// import-path-ish directory pattern relative to Root ("./...", "./internal/sim",
// "internal/sim") or a plain fixture package path ("sim"). The trailing
// /... wildcard walks subdirectories, skipping testdata, vendor and
// hidden trees. With Tests set, each directory yields an augmented unit
// (package + in-package tests) and, when present, the external _test
// package as its own unit.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		units, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}

// expand turns patterns into an ordered, de-duplicated directory list.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		recursive := false
		if pat == "..." {
			pat, recursive = "", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		base := filepath.Join(l.Root, filepath.FromSlash(pat))
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// pkgPath maps a directory back to the import path used for loading.
func (l *Loader) pkgPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if l.ModPath != "" {
		if rel == "." {
			return l.ModPath, nil
		}
		return l.ModPath + "/" + rel, nil
	}
	return rel, nil
}

// loadDir builds the analysis units of one directory.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	path, err := l.pkgPath(dir)
	if err != nil {
		return nil, err
	}
	goNames, testNames, xtestNames, err := listGoFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(goNames) == 0 && (!l.Tests || len(testNames)+len(xtestNames) == 0) {
		return nil, nil
	}
	var units []*Package

	if len(goNames) > 0 || (l.Tests && len(testNames) > 0) {
		names := goNames
		if l.Tests {
			names = append(append([]string{}, goNames...), testNames...)
			sort.Strings(names)
		}
		files, err := l.parse(dir, names)
		if err != nil {
			return nil, err
		}
		pkg, info, err := l.check(path, files, nil)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{
			PkgPath: path, Dir: dir, Fset: l.Fset,
			Files: files, Types: pkg, Info: info,
		})
		// Memoize the plain (non-test) view for importers if absent, so
		// sibling loads reuse it. The augmented variant is never shared.
		if !l.Tests && l.plain[path] == nil {
			l.plain[path] = pkg
		}
	}

	if l.Tests && len(xtestNames) > 0 {
		files, err := l.parse(dir, xtestNames)
		if err != nil {
			return nil, err
		}
		xpath := path + "_test"
		pkg, info, err := l.check(xpath, files, nil)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{
			PkgPath: xpath, Dir: dir, Fset: l.Fset,
			Files: files, Types: pkg, Info: info,
		})
	}
	return units, nil
}
