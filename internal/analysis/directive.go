package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix is the directive grammar: //detlint:allow <reason>. The
// reason is mandatory — see Pass.Allowed.
const allowPrefix = "//detlint:allow"

// parseAllow splits a comment into (isDirective, reason). Directives
// follow the Go toolchain convention: no space between // and the tool
// name, so ordinary prose mentioning detlint does not suppress anything.
func parseAllow(text string) (bool, string) {
	if !strings.HasPrefix(text, allowPrefix) {
		return false, ""
	}
	rest := text[len(allowPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return false, "" // e.g. //detlint:allowance — not the directive
	}
	return true, strings.TrimSpace(rest)
}

// buildDirectiveIndex maps each file's lines to whether a well-formed
// (reason-carrying) allow directive appears there.
func buildDirectiveIndex(fset *token.FileSet, files []*ast.File) map[*token.File]map[int]bool {
	idx := make(map[*token.File]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ok, reason := parseAllow(c.Text)
				if !ok || reason == "" {
					continue
				}
				tf := fset.File(c.Pos())
				if tf == nil {
					continue
				}
				if idx[tf] == nil {
					idx[tf] = make(map[int]bool)
				}
				idx[tf][tf.Line(c.Pos())] = true
			}
		}
	}
	return idx
}

// DirectiveAnalyzer flags //detlint:allow directives that carry no
// reason. A reasonless directive is worse than a finding: it silences a
// checker while recording nothing reviewers can weigh, so the fleet
// treats it as a violation of the directive grammar itself.
var DirectiveAnalyzer = &Analyzer{
	Name: "detdirective",
	Doc:  "reject //detlint:allow directives that omit the mandatory reason",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					ok, reason := parseAllow(c.Text)
					if ok && reason == "" {
						pass.Reportf(c.Pos(), "detlint:allow directive without a reason; write //detlint:allow <why this site is exempt>")
					}
				}
			}
		}
		return nil
	},
}
