package errdiscipline

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestErrDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata/src", Analyzer, "scenario", "geom")
}
