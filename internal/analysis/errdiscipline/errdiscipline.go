// Package errdiscipline enforces the repro's failure-classification
// contract (DESIGN §15): everything that crosses the engine boundary
// classifies failures structurally — runerr sentinels under errors.Is —
// never by message text. Message text is for humans; the moment a string
// comparison decides retry policy or a test verdict, rewording an error
// silently changes behavior.
//
// Three rules, applied to the packages in analysis.InBoundaryScope,
// test files included (tests are where string-matching habits breed):
//
//  1. err.Error() must not feed a string comparison: ==/!= against a
//     string, or strings.Contains/HasPrefix/HasSuffix/EqualFold/Index/
//     Count. Use errors.Is with a runerr sentinel.
//  2. An error value must not be compared with == or != except against
//     nil or a package-level sentinel variable (errors.New at package
//     scope — runerr.ErrBudget, io.EOF, …). Comparing against a local,
//     field or parameter error defeats wrapping; use errors.Is.
//  3. fmt.Errorf must not format an error-typed argument (or an
//     err.Error() call) with any verb but %w: %v/%s flattens the chain
//     and severs errors.Is. Leaf messages with no error argument are
//     fine — sentinel tagging is runerr.Mark's job.
//
// //detlint:allow <reason> suppresses a finding; the canonical uses are
// the runerr package's own identity checks (it implements the sentinel
// machinery the rule steers everyone else toward) and tests whose
// explicit contract is message wording.
package errdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errdiscipline",
	Doc:  "forbid error-message string comparison, non-sentinel ==, and chain-severing fmt.Errorf across the engine boundary",
	Run:  run,
}

// stringMatchers are the strings-package predicates rule 1 covers.
var stringMatchers = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true, "Count": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.InBoundaryScope(pass) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, e)
			case *ast.CallExpr:
				checkStringMatcher(pass, e)
				checkErrorf(pass, e)
			}
			return true
		})
	}
	return nil
}

// isErrErrorCall reports whether e is a call of the Error method on an
// error-shaped receiver.
func isErrErrorCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	return analysis.ImplementsError(s.Recv())
}

func isErrorType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && analysis.TypeIsError(tv.Type)
}

func isNilLit(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// isSentinel reports whether e denotes a package-level variable — the
// shape of every sentinel error (errors.New at package scope), local and
// imported alike.
func isSentinel(pass *analysis.Pass, e ast.Expr) bool {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[x.Sel]
	default:
		return false
	}
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// checkComparison applies rules 1 (==/!= arm) and 2.
func checkComparison(pass *analysis.Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	// Rule 1: err.Error() compared against string text.
	if isErrErrorCall(pass, e.X) || isErrErrorCall(pass, e.Y) {
		if !pass.Allowed(e.Pos()) {
			pass.Reportf(e.Pos(), "comparing err.Error() text: classify failures with errors.Is and a runerr sentinel, not message wording")
		}
		return
	}
	// Rule 2: error identity comparison against a non-sentinel.
	if !isErrorType(pass, e.X) && !isErrorType(pass, e.Y) {
		return
	}
	if isNilLit(pass, e.X) || isNilLit(pass, e.Y) {
		return
	}
	if isSentinel(pass, e.X) || isSentinel(pass, e.Y) {
		return
	}
	if !pass.Allowed(e.Pos()) {
		pass.Reportf(e.Pos(), "error compared with %s against a non-sentinel value: wrapping breaks identity, use errors.Is", e.Op)
	}
}

// checkStringMatcher applies rule 1's strings.* arm.
func checkStringMatcher(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !stringMatchers[sel.Sel.Name] {
		return
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok || pn.Imported().Path() != "strings" {
		return
	}
	for _, arg := range call.Args {
		if isErrErrorCall(pass, arg) {
			if !pass.Allowed(call.Pos()) {
				pass.Reportf(call.Pos(), "strings.%s over err.Error(): classify failures with errors.Is and a runerr sentinel, not message wording", sel.Sel.Name)
			}
			return
		}
	}
}

// checkErrorf applies rule 3.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return // dynamic format: out of static reach
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return // explicit argument indexes: too hairy, skip
	}
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		errArg := isErrErrorCall(pass, arg)
		if !errArg {
			tv, ok := pass.TypesInfo.Types[ast.Unparen(arg)]
			errArg = ok && !tv.IsNil() && (analysis.TypeIsError(tv.Type) || isConcreteError(tv.Type))
		}
		if errArg && verbs[i] != 'w' && !pass.Allowed(call.Pos()) {
			pass.Reportf(call.Pos(), "fmt.Errorf formats an error with %%%c: use %%w so errors.Is still reaches the cause", verbs[i])
		}
	}
}

// isConcreteError reports whether t is a non-interface type implementing
// error (e.g. *runerr.PanicError) — flattening one with %v severs the
// chain exactly like flattening the interface.
func isConcreteError(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		return false // a string-based error carries no chain to sever
	}
	return analysis.ImplementsError(t)
}

// formatVerbs returns the verb letter consuming each successive
// argument. It understands flags, width, precision and * (which consumes
// an int argument, recorded as '*'); explicit indexes ([n]) return
// ok=false.
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		if i < len(format) && format[i] == '[' {
			return nil, false
		}
		for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9') || format[i] == '.') {
			if format[i] == '*' {
				verbs = append(verbs, '*')
			}
			i++
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
			i++
		}
	}
	return verbs, true
}
