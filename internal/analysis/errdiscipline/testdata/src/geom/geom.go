// Package geom is outside the engine boundary: errdiscipline does not
// apply, so even a string-matched error stays unreported here.
package geom

import "strings"

func Sloppy(err error) bool {
	return err != nil && strings.Contains(err.Error(), "overflow")
}
