package scenario

import (
	"errors"
	"fmt"
	"strings"
)

// ErrBudget is a package-level sentinel: == against it is tolerated
// (though errors.Is remains the steer).
var ErrBudget = errors.New("event budget exceeded")

type result struct{ err error }

// Classify mixes every comparison-shaped violation.
func Classify(err error, res result) int {
	if err.Error() == "event budget exceeded" { // want `comparing err\.Error\(\) text`
		return 1
	}
	if strings.Contains(err.Error(), "budget") { // want `strings\.Contains over err\.Error\(\)`
		return 2
	}
	if strings.HasPrefix(err.Error(), "scenario:") { // want `strings\.HasPrefix over err\.Error\(\)`
		return 3
	}
	if err == ErrBudget { // sentinel: clean
		return 4
	}
	if err == res.err { // want `error compared with == against a non-sentinel`
		return 5
	}
	if errors.Is(err, ErrBudget) { // the steered-to form: clean
		return 6
	}
	if err != nil { // nil checks: clean
		return 7
	}
	return 0
}

// Wrap flattens the chain with %v.
func Wrap(err error) error {
	return fmt.Errorf("run failed: %v", err) // want `fmt\.Errorf formats an error with %v`
}

// WrapText flattens it even harder through Error().
func WrapText(err error) error {
	return fmt.Errorf("run failed: %s", err.Error()) // want `fmt\.Errorf formats an error with %s`
}

// WrapOK preserves the chain.
func WrapOK(err error) error {
	return fmt.Errorf("run failed: %w", err)
}

// Leaf has no error argument: messages are born somewhere.
func Leaf(n int) error {
	return fmt.Errorf("bad replication count %d", n)
}

// Identity is the runerr-style implementor pattern: argued via directive.
type kindError struct{ kind error }

func (e *kindError) Error() string { return e.kind.Error() }
func (e *kindError) Is(target error) bool {
	return target == e.kind //detlint:allow sentinel identity is this type's entire contract
}
