// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, mirroring the x/tools
// package of the same name on the repro-local analysis framework.
//
// Fixtures live under <analyzer>/testdata/src/<pkg>/. A line expecting a
// diagnostic carries a comment of the form
//
//	code() // want "regexp"
//
// with one quoted (double- or back-quoted) regexp per expected
// diagnostic on that line. Every diagnostic must be wanted and every
// want must be matched: surplus on either side fails the test, which is
// what makes a comment-free fixture an executable negative case.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRx extracts the comment payload after the want marker.
var wantRx = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// Run loads each fixture package from dir (conventionally
// "testdata/src") with test files included, applies a, and compares
// diagnostics to want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader, err := analysis.NewFixtureLoader(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader.Tests = true
	for _, pkg := range pkgs {
		units, err := loader.Load(pkg)
		if err != nil {
			t.Fatalf("analysistest: loading %s: %v", pkg, err)
		}
		if len(units) == 0 {
			t.Fatalf("analysistest: fixture %s has no Go files", pkg)
		}
		for _, unit := range units {
			checkUnit(t, unit, a)
		}
	}
}

func checkUnit(t *testing.T, unit *analysis.Package, a *analysis.Analyzer) {
	t.Helper()
	diags, err := analysis.RunAnalyzers(unit, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	wants := collectWants(t, unit.Fset, unit.Files)
	for _, d := range diags {
		pos := unit.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		exps := wants[key]
		hit := false
		for _, e := range exps {
			if !e.matched && e.rx.MatchString(d.Message) {
				e.matched = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.rx)
			}
		}
	}
}

// collectWants indexes want expectations by file:line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, raw := range splitQuoted(m[1]) {
					rx, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go-quoted strings ("..." or `...`)
// separated by spaces.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return out // unterminated; ignore the tail
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return out
			}
			lit, s = unq, s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			lit, s = s[1:end+1], s[end+2:]
		default:
			return out
		}
		out = append(out, lit)
		s = strings.TrimSpace(s)
	}
	return out
}
