package analysis

import "strings"

// The pass fleet scopes by package, not by file: the determinism
// contract binds the simulation kernel, and the error-discipline
// contract binds everything that crosses the engine boundary. Scoping by
// final path element (with the _test suffix of external test packages
// stripped) keeps the same rules applicable to the real tree and to
// analysistest fixtures, whose packages are named after the tier they
// emulate.

// simPackages is the deterministic simulation kernel: every package
// whose execution must be a pure function of (config, seed). DESIGN §16.
var simPackages = map[string]bool{
	"sim": true, "scenario": true, "medium": true, "netsim": true,
	"faults": true, "mobility": true, "core": true, "flood": true,
	"odmrp": true, "maodv": true, "eventq": true, "packet": true,
	"traffic": true, "energy": true, "spatial": true, "topology": true,
	"geom": true, "fwdpool": true, "metrics": true, "xrand": true,
}

// boundaryPackages cross the engine boundary: they produce, classify or
// consume run failures and therefore owe errors.Is discipline over the
// runerr taxonomy. cmd binaries (package main) are always in scope.
var boundaryPackages = map[string]bool{
	"sim": true, "scenario": true, "shard": true, "fsio": true,
	"sweepgrid": true, "experiments": true, "runerr": true,
	"netsim": true, "medium": true, "metrics": true,
}

// scopeName reduces a pass to the name scoping keys on.
func scopeName(p *Pass) string {
	return strings.TrimSuffix(p.Pkg.Name(), "_test")
}

// InSimScope reports whether the pass's package belongs to the
// deterministic simulation kernel.
func InSimScope(p *Pass) bool { return simPackages[scopeName(p)] }

// InBoundaryScope reports whether the pass's package crosses the engine
// boundary (including any cmd/ main package).
func InBoundaryScope(p *Pass) bool {
	if boundaryPackages[scopeName(p)] {
		return true
	}
	return scopeName(p) == "main" || strings.Contains(p.PkgPath, "/cmd/")
}
