package scenario

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/mobility"
	"repro/internal/runerr"
)

// Engine is the sweep scheduler: one cost-ordered work queue over one
// persistent pool of workers whose RunContext arenas stay hot across
// batches, plus a shared mobility-trace cache. It replaces the
// pool-per-Sweep design, whose nested use (RunSeeds inside a sweep
// worker) multiplied goroutines by GOMAXPROCS and rebuilt every arena per
// figure.
//
// Scheduling is longest-expected-job-first with N·Duration as the cost
// estimate, which keeps the tail of a batch short (a small job never
// straggles behind the batch's one giant run), with submission order
// breaking ties so the runs sharing a mobility trace stay adjacent and
// the cache's live footprint stays small.
//
// Every Sweep call participates in its own batch: the submitting
// goroutine drains jobs alongside the background workers, so an engine
// with 1 worker runs entirely on the caller (zero goroutines), and a
// nested Sweep from inside a worker makes progress on its own batch
// instead of deadlocking or spawning a second pool. Results are
// independent of worker count and completion order — every job is a
// deterministic function of its Config, and trace extension is
// order-independent (mobility.Recorded) — pinned by
// TestSweepWorkersBitIdentical.
type Engine struct {
	workers int
	cache   *TraceCache

	mu      sync.Mutex
	cond    *sync.Cond // signals queued work to background workers
	queue   jobHeap
	seq     uint64
	rcs     []*RunContext // idle arenas for participating callers
	started bool
	closed  bool

	// Bounded retry (SetRetryPolicy): failed jobs re-run up to retries
	// times with capped exponential backoff, except when a repeat attempt
	// reproduces the identical failure — runs are deterministic functions
	// of their config, so an identical second failure marks the job
	// deterministically broken and further attempts are pointless.
	retries int
	backoff time.Duration
}

// job is one queued run.
type job struct {
	cfg    Config
	key    TraceKey
	hasKey bool
	cost   float64
	seq    uint64
	batch  *batch
	index  int
}

// batch tracks one Sweep call's jobs.
type batch struct {
	results   []Result
	fn        func(int, Result)
	fnMu      sync.Mutex
	remaining int
	done      *sync.Cond // on Engine.mu
}

// NewEngine returns an engine that runs up to workers jobs concurrently:
// workers-1 background goroutines plus the goroutine calling Sweep.
// Background workers start lazily at the first Sweep and live until
// Close; the package-level Default engine is never closed.
func NewEngine(workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	e := &Engine{workers: workers, cache: NewTraceCache()}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Workers returns the engine's concurrency (background workers + caller).
func (e *Engine) Workers() int { return e.workers }

// SetRetryPolicy configures bounded retry for failed jobs: a job whose
// run fails (isolated panic, watchdog abort, setup error) is re-run with
// the SAME config and ReplicationSeed up to retries more times, sleeping
// backoff·2^attempt (capped at 16·backoff) between attempts. A retry that
// reproduces the identical failure classifies the job as deterministic
// and stops immediately — retry exists for transient causes (memory
// pressure, a CI runner wobble), and a pure function of the seed that
// failed twice the same way will fail every time. The default policy is
// no retries. Result.Attempts records how many runs each job consumed.
func (e *Engine) SetRetryPolicy(retries int, backoff time.Duration) {
	if retries < 0 {
		retries = 0
	}
	e.mu.Lock()
	e.retries = retries
	e.backoff = backoff
	e.mu.Unlock()
}

// TraceStats returns the trace cache's cumulative replay hits and
// recording misses.
func (e *Engine) TraceStats() (hits, misses uint64) { return e.cache.Stats() }

// Close stops the background workers. Only transient engines (SweepN with
// a non-default worker count, tests) need closing; in-flight Sweep calls
// must have returned.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.cond.Broadcast()
}

// Sweep runs every configuration and returns results in input order.
func (e *Engine) Sweep(cfgs []Config) []Result {
	return e.sweep(cfgs, nil)
}

// SweepFunc is Sweep with a streaming hook: fn is called once per
// completed run (serialized, but in completion order, from whichever
// goroutine finished the run) with the config's index and its result.
// Aggregations that must be deterministic should buffer per group and
// reduce in index order once a group completes.
func (e *Engine) SweepFunc(cfgs []Config, fn func(i int, r Result)) []Result {
	return e.sweep(cfgs, fn)
}

func (e *Engine) sweep(cfgs []Config, fn func(int, Result)) []Result {
	if len(cfgs) == 0 {
		return nil
	}
	b := &batch{
		results:   make([]Result, len(cfgs)),
		fn:        fn,
		remaining: len(cfgs),
	}
	e.mu.Lock()
	b.done = sync.NewCond(&e.mu)
	if !e.started && e.workers > 1 {
		e.started = true
		for w := 0; w < e.workers-1; w++ {
			go e.workerLoop()
		}
	}
	for i := range cfgs {
		j := &job{cfg: cfgs[i], batch: b, index: i, seq: e.seq}
		e.seq++
		j.cost = float64(j.cfg.N) * j.cfg.Duration
		if key, ok := traceKeyOf(j.cfg); ok {
			j.key, j.hasKey = key, true
			e.cache.register(key)
		}
		e.queue.push(j)
	}
	e.mu.Unlock()
	e.cond.Broadcast()

	// Participate: drain jobs (any batch's — strict LPT order) until this
	// batch completes; when the queue is empty but workers still hold our
	// jobs, block on the batch condition.
	e.mu.Lock()
	rc := e.takeRCLocked()
	for b.remaining > 0 {
		j := e.queue.pop()
		if j == nil {
			b.done.Wait()
			continue
		}
		e.mu.Unlock()
		rc = e.runJob(rc, j)
		e.mu.Lock()
	}
	e.rcs = append(e.rcs, rc)
	e.mu.Unlock()
	return b.results
}

// workerLoop is one background worker: a persistent RunContext draining
// the queue for the engine's whole life.
func (e *Engine) workerLoop() {
	rc := NewRunContext()
	e.mu.Lock()
	for {
		j := e.queue.pop()
		if j == nil {
			if e.closed {
				e.mu.Unlock()
				return
			}
			e.cond.Wait()
			continue
		}
		e.mu.Unlock()
		rc = e.runJob(rc, j)
		e.mu.Lock()
	}
}

// runJob executes one job on rc and accounts its completion. Called
// without the engine lock.
//
// A panic anywhere in the run — trace construction, protocol code, the
// kernel — is isolated to this job: it becomes Result.Err (with the stack
// for diagnosis), the rest of the batch keeps running, and the possibly
// half-mutated arena is discarded for a fresh one, which runJob returns
// for the caller to keep using. Errors RunTracedE itself reports (bad
// config, watchdog) are not panics and leave the arena reusable.
func (e *Engine) runJob(rc *RunContext, j *job) *RunContext {
	e.mu.Lock()
	retries, backoff := e.retries, e.backoff
	e.mu.Unlock()
	var res Result
	var prevErr error
	for attempt := 0; ; attempt++ {
		var panicked bool
		res, panicked = e.tryRunJob(rc, j)
		if panicked {
			rc = NewRunContext()
		}
		res.Attempts = attempt + 1
		if res.Err == nil || attempt >= retries {
			break
		}
		// Setup rejections and invariant violations are pure functions of
		// the config and build: re-running cannot change the verdict, so
		// the retry budget is not spent on them.
		if !runerr.Retryable(res.Err) {
			break
		}
		// Deterministic-failure classification: a failure that repeats
		// identically on the same seed cannot be transient. Panics compare
		// by normalized stack digest (frame addresses and goroutine IDs
		// masked), deadline expiries never compare equal (wall-clock time
		// is machine load, not config), everything else by message head.
		if runerr.SameFailure(res.Err, prevErr) {
			res.Err = runerr.Mark(runerr.ErrDeterministic,
				fmt.Errorf("%w (deterministic: identical failure on retry, %d attempts)", res.Err, res.Attempts))
			break
		}
		prevErr = res.Err
		// Each attempt consumes one trace-cache registration (tryRunJob
		// releases on exit), so a retry needs its own.
		if j.hasKey {
			e.cache.register(j.key)
		}
		if backoff > 0 {
			d := backoff << uint(attempt)
			if max := backoff << 4; d > max {
				d = max
			}
			time.Sleep(d) //detlint:allow wall-clock retry backoff between attempts; re-run results are seed-determined regardless of when they start
		}
	}
	b := j.batch
	b.results[j.index] = res
	if b.fn != nil {
		b.fnMu.Lock()
		b.fn(j.index, res)
		b.fnMu.Unlock()
	}
	e.mu.Lock()
	b.remaining--
	if b.remaining == 0 {
		b.done.Broadcast()
	}
	e.mu.Unlock()
	return rc
}

// tryRunJob runs one job under a recover fence. The trace release is
// deferred because acquire itself can panic (it lazily builds the mobility
// model) and an unreleased registration would pin the cache entry forever.
func (e *Engine) tryRunJob(rc *RunContext, j *job) (res Result, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			// The message leads with the job's config fingerprint and seed
			// so a failure in a merged shard log is attributable to the
			// exact grid cell that hit it, and the stack is truncated to a
			// fixed cap — panic payloads otherwise carry unbounded stack
			// strings through Result.Err into journals and artifacts. The
			// typed PanicError additionally carries the normalized digest
			// the retry loop classifies determinism by.
			err := runerr.NewPanic(j.cfg.Fingerprint(), j.cfg.Seed,
				fmt.Sprintf("%v (%v, N=%d)", r, j.cfg.Protocol, j.cfg.N),
				truncateStack(debug.Stack()))
			res = Result{Config: j.cfg, Err: err}
		}
	}()
	var trace *mobility.Recorded
	if j.hasKey {
		defer e.cache.release(j.key)
		trace = e.cache.acquire(j.cfg, j.key)
	}
	res, _ = rc.RunTracedE(j.cfg, trace)
	return res, false
}

// maxPanicStackBytes caps the stack trace carried by a panic-isolated
// Result.Err: enough frames to diagnose, bounded so journals, artifacts
// and merged logs stay readable when a whole shard's jobs fail the same
// way.
const maxPanicStackBytes = 2048

// truncateStack bounds a debug.Stack dump to maxPanicStackBytes, cutting
// at a line boundary and marking the elision.
func truncateStack(stack []byte) string {
	if len(stack) <= maxPanicStackBytes {
		return string(stack)
	}
	cut := stack[:maxPanicStackBytes]
	if i := strings.LastIndexByte(string(cut), '\n'); i > 0 {
		cut = cut[:i]
	}
	return string(cut) + "\n... [stack truncated]"
}

// takeRCLocked pops an idle arena for a participating caller, or builds
// one; callers return it after their batch so arenas persist across
// sweeps.
func (e *Engine) takeRCLocked() *RunContext {
	if n := len(e.rcs); n > 0 {
		rc := e.rcs[n-1]
		e.rcs[n-1] = nil
		e.rcs = e.rcs[:n-1]
		return rc
	}
	return NewRunContext()
}

// jobHeap is a max-heap on (cost, -seq): longest expected job first,
// submission order among equals.
type jobHeap struct {
	jobs []*job
}

func (h *jobHeap) before(a, b *job) bool {
	if a.cost != b.cost {
		return a.cost > b.cost
	}
	return a.seq < b.seq
}

func (h *jobHeap) push(j *job) {
	h.jobs = append(h.jobs, j)
	i := len(h.jobs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(h.jobs[i], h.jobs[parent]) {
			break
		}
		h.jobs[i], h.jobs[parent] = h.jobs[parent], h.jobs[i]
		i = parent
	}
}

func (h *jobHeap) pop() *job {
	n := len(h.jobs)
	if n == 0 {
		return nil
	}
	top := h.jobs[0]
	n--
	h.jobs[0] = h.jobs[n]
	h.jobs[n] = nil
	h.jobs = h.jobs[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.before(h.jobs[c+1], h.jobs[c]) {
			c++
		}
		if !h.before(h.jobs[c], h.jobs[i]) {
			break
		}
		h.jobs[i], h.jobs[c] = h.jobs[c], h.jobs[i]
		i = c
	}
	return top
}

// Default engine: one process-wide scheduler sized to the machine.
var (
	defaultEngine     *Engine
	defaultEngineOnce sync.Once
)

// DefaultEngine returns the process-wide engine (GOMAXPROCS-wide unless
// ConfigureDefaultEngine overrode it), creating it on first use. Sweep,
// RunSeeds, the experiments package and the CLIs all share it, so arenas
// and traces stay warm across figures.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() {
		if defaultEngineWidth == 0 {
			//detlint:allow process-wide engine singleton under sync.Once; scheduler state, not simulation state
			defaultEngineWidth = runtime.GOMAXPROCS(0)
		}
		//detlint:allow process-wide engine singleton under sync.Once; scheduler state, not simulation state
		defaultEngine = NewEngine(defaultEngineWidth)
	})
	return defaultEngine
}

var defaultEngineWidth int

// ConfigureDefaultEngine sets the shared engine's width (the CLIs'
// -workers flag). It must run before anything touches DefaultEngine; a
// late call with a different width panics rather than silently running at
// the wrong parallelism.
func ConfigureDefaultEngine(workers int) {
	if workers < 1 {
		workers = 1
	}
	if defaultEngine != nil && defaultEngine.Workers() != workers {
		panic("scenario: ConfigureDefaultEngine after the engine started")
	}
	//detlint:allow pre-start width configuration of the process-wide engine; a late change panics above
	defaultEngineWidth = workers
	DefaultEngine()
}

// Sweep runs every configuration on the shared engine and returns results
// in input order.
func Sweep(cfgs []Config) []Result {
	return DefaultEngine().Sweep(cfgs)
}

// FigurePointConfigs is the benchmark workload shared by bench_test.go's
// BenchmarkFigureSweep* and cmd/benchsnap's FigureSweep entries: one full
// figure point — all 8 protocols × 4 replications of base — at the paper
// baseline (5 m/s, 20 receivers) under the given mobility model and
// horizon. Keeping the single definition here guarantees the two
// measurements of the same name time the same workload.
func FigurePointConfigs(mob MobilityKind, base uint64, duration float64) []Config {
	return FigurePointConfigsGroups(mob, base, duration, 1)
}

// FigurePointConfigsGroups is FigurePointConfigs with a concurrent-group
// count: the same 8 × 4 point with every run multiplexing K Zipf-popular
// groups over each node's radio. groups <= 1 is the single-group workload
// byte-for-byte (Config.Groups stays zero there, so the configs — and the
// engine's trace keys — match FigurePointConfigs exactly).
func FigurePointConfigsGroups(mob MobilityKind, base uint64, duration float64, groups int) []Config {
	protocols := []ProtocolKind{
		SSSPST, SSSPSTT, SSSPSTF, SSSPSTE, SSMST, MAODV, ODMRP, Flood,
	}
	var cfgs []Config
	for s := 0; s < 4; s++ {
		for _, p := range protocols {
			cfg := Default()
			cfg.Protocol = p
			cfg.Mobility = mob
			cfg.VMax = 5
			cfg.Duration = duration
			if groups > 1 {
				cfg.Groups = groups
			}
			cfg.Seed = ReplicationSeed(base, s)
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// SweepN is Sweep with an explicit concurrency. The default width routes
// to the shared engine; any other width runs on a transient engine with
// its own trace cache, closed before returning — results are bit-identical
// either way (TestSweepWorkersBitIdentical).
func SweepN(cfgs []Config, workers int) []Result {
	if workers < 1 {
		workers = 1
	}
	if d := DefaultEngine(); workers == d.Workers() {
		return d.Sweep(cfgs)
	}
	e := NewEngine(workers)
	defer e.Close()
	return e.Sweep(cfgs)
}
