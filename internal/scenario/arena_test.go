package scenario

import (
	"fmt"
	"testing"
)

// TestArenaReuseEquivalence drives one RunContext through a mixed
// sequence of scenarios — every protocol × every mobility model × two
// seeds — and asserts each run's summary and channel counters are
// bit-identical to a fresh-context run of the same config. Arena reuse
// (event-queue freelist, medium registries and frame pools, neighbour
// tables, dedup-map buckets, position memos) must be invisible to the
// simulation; this is the reuse analogue of TestGridEquivalence.
//
// The runs execute back to back on the same context on purpose: run k
// inherits whatever state run k-1 left behind, so any incomplete Reset —
// a stale map entry, a surviving queued event, a dirty neighbour row —
// shows up as a divergence here.
func TestArenaReuseEquivalence(t *testing.T) {
	protocols := []ProtocolKind{
		SSSPST, SSSPSTT, SSSPSTF, SSSPSTE, SSMST, MAODV, ODMRP, Flood,
	}
	seeds := []uint64{1, 77}

	rc := NewRunContext()
	for _, mob := range []MobilityKind{RandomWaypoint, GaussMarkov, RPGM, Manhattan} {
		for _, p := range protocols {
			for _, seed := range seeds {
				name := fmt.Sprintf("%s/%s/seed%d", mob, p, seed)
				cfg := Default()
				cfg.Protocol = p
				cfg.Mobility = mob
				cfg.Seed = seed
				cfg.Duration = 12
				cfg.VMax = 8

				reused := rc.Run(cfg)
				fresh := Run(cfg)

				if reused.Summary != fresh.Summary {
					t.Errorf("%s: summaries diverge:\n reused %+v\n fresh  %+v",
						name, reused.Summary, fresh.Summary)
				}
				if reused.Medium != fresh.Medium {
					t.Errorf("%s: medium stats diverge:\n reused %+v\n fresh  %+v",
						name, reused.Medium, fresh.Medium)
				}
			}
		}
	}
}

// TestArenaReuseAcrossShapes re-runs one context across configs that
// change the world's shape — node count, area (hence grid geometry),
// group size, churn — so every buffer-resizing path in the Reset chain is
// exercised, not just the same-shape replication fast path.
func TestArenaReuseAcrossShapes(t *testing.T) {
	shapes := []func(*Config){
		func(c *Config) { c.N = 50; c.AreaSide = 750 },
		func(c *Config) { c.N = 80; c.AreaSide = 900; c.GroupSize = 40 },
		func(c *Config) { c.N = 20; c.AreaSide = 400; c.GroupSize = 30 }, // clamped group
		func(c *Config) { c.N = 50; c.AreaSide = 750; c.MemberChurnInterval = 3 },
		func(c *Config) { c.N = 50; c.AreaSide = 750; c.Protocol = ODMRP },
		func(c *Config) { c.N = 60; c.AreaSide = 750; c.Mobility = Static },
		// Finite batteries + churn: the lifetime workload (figure 19) adds
		// death-tracker state (collector death times, landmark snapshots)
		// and dead-node filtering in the churn/sampler callbacks — all of
		// which must reset cleanly between runs.
		func(c *Config) { c.N = 40; c.AreaSide = 600; c.Battery = 0.2; c.MemberChurnInterval = 2 },
		func(c *Config) {
			c.N = 50
			c.AreaSide = 750
			c.Battery = 0.3
			c.MemberChurnInterval = 3
			c.Protocol = ODMRP
		},
		// Fault injection (figure 20): GE chains, crash schedules and the
		// partition cut add per-run medium state (chains, down flags) and
		// mid-run protocol restarts — reuse must reset all of it, including
		// the join-retry timers the faulty SS config arms.
		func(c *Config) { c.N = 40; c.AreaSide = 600; c.Faults = faultyConfig(c.Duration) },
		func(c *Config) {
			c.N = 50
			c.AreaSide = 750
			c.Protocol = ODMRP
			c.Faults = faultyConfig(c.Duration)
		},
		// A fault-free run right after faulty ones: fault state (chains,
		// down flags, retry counters) must not leak forward.
		func(c *Config) { c.N = 50; c.AreaSide = 750 },
		// Many-group workload (figure 21): K protocol instances per node add
		// per-node slot tables, per-group member sets/tallies and per-topic
		// churn — all cap-reused, all of which must resize cleanly when the
		// group count changes between runs.
		func(c *Config) { c.N = 50; c.AreaSide = 750; c.Groups = 4; c.MemberChurnInterval = 3 },
		func(c *Config) { c.N = 40; c.AreaSide = 600; c.Groups = 8; c.Protocol = ODMRP },
		func(c *Config) {
			c.N = 50
			c.AreaSide = 750
			c.Groups = 4
			c.Faults = faultyConfig(c.Duration)
		},
		// A single-group run right after multi-group ones: slot tables and
		// group tallies must shrink back with no cross-group leak-through.
		func(c *Config) { c.N = 50; c.AreaSide = 750 },
	}
	rc := NewRunContext()
	for i, shape := range shapes {
		cfg := Default()
		cfg.Duration = 10
		cfg.Seed = uint64(31 + i)
		shape(&cfg)

		reused := rc.Run(cfg)
		fresh := Run(cfg)

		if reused.Summary != fresh.Summary {
			t.Errorf("shape %d: summaries diverge:\n reused %+v\n fresh  %+v",
				i, reused.Summary, fresh.Summary)
		}
		if reused.Medium != fresh.Medium {
			t.Errorf("shape %d: medium stats diverge:\n reused %+v\n fresh  %+v",
				i, reused.Medium, fresh.Medium)
		}
		if len(reused.PerGroup) != len(fresh.PerGroup) {
			t.Errorf("shape %d: per-group summary counts diverge: reused %d, fresh %d",
				i, len(reused.PerGroup), len(fresh.PerGroup))
			continue
		}
		for g := range reused.PerGroup {
			if reused.PerGroup[g] != fresh.PerGroup[g] {
				t.Errorf("shape %d group %d: per-group summaries diverge:\n reused %+v\n fresh  %+v",
					i, g, reused.PerGroup[g], fresh.PerGroup[g])
			}
		}
		// Fired-traffic guard: a multi-group shape where some topic never
		// sends would cover nothing — every group's source must fire inside
		// even this short horizon.
		for g := range reused.PerGroup {
			if reused.PerGroup[g].Sent == 0 {
				t.Errorf("shape %d group %d: no data sent; multi-group path not exercised", i, g)
			}
		}
	}
}
