package scenario

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/runerr"
)

// faultyCfg is a short fault-injected scenario with every fault process
// active, used by the determinism tests.
func faultyCfg(p ProtocolKind) Config {
	cfg := Default()
	cfg.Protocol = p
	cfg.Duration = 8
	cfg.VMax = 8
	cfg.Seed = 5
	cfg.Faults = faultyConfig(cfg.Duration)
	return cfg
}

// TestFaultRunDeterministic pins the fault layer's reproducibility: the
// same seed yields identical fault trajectories (FaultStats) and identical
// run summaries, and the faults actually fire.
func TestFaultRunDeterministic(t *testing.T) {
	for _, p := range []ProtocolKind{SSSPSTE, ODMRP} {
		cfg := faultyCfg(p)
		a := Run(cfg)
		b := Run(cfg)
		if a.Summary != b.Summary {
			t.Errorf("%s: summaries diverge across identical runs:\n a %+v\n b %+v",
				p, a.Summary, b.Summary)
		}
		if a.Medium != b.Medium {
			t.Errorf("%s: medium stats diverge across identical runs", p)
		}
		f := a.Summary.Faults
		if f.Losses == 0 || f.Crashes == 0 || f.Recoveries == 0 || f.PartitionDrops == 0 {
			t.Errorf("%s: fault processes did not all fire: %+v", p, f)
		}
	}
}

// TestFaultFreeRunsUnperturbed pins the zero-draw invariant: a config with
// the zero faults.Config must produce exactly the same run as before the
// fault layer existed — enabling the subsystem costs fault-free runs
// nothing, not even an RNG draw. The check is indirect (no pre-fault
// golden values exist): a run with faults enabled and then the same seed
// without them must differ, while two fault-free runs must agree, and the
// fault-free run must report all-zero FaultStats.
func TestFaultFreeRunsUnperturbed(t *testing.T) {
	cfg := Default()
	cfg.Duration = 8
	cfg.VMax = 8
	clean := Run(cfg)
	if clean.Summary.Faults != (metrics.FaultStats{}) {
		t.Errorf("fault-free run reports fault stats: %+v", clean.Summary.Faults)
	}
	if again := Run(cfg); again.Summary != clean.Summary {
		t.Error("fault-free runs diverge across repetitions")
	}
	faulty := cfg
	faulty.Faults = faultyConfig(cfg.Duration)
	if r := Run(faulty); r.Summary == clean.Summary {
		t.Error("fault injection changed nothing; faults evidently not wired")
	}
}

// TestSweepPanicIsolation is the engine failure-handling contract: one
// deliberately panicking job (an unknown mobility kind panics inside the
// lazy trace build) fails alone with Result.Err carrying the diagnostic,
// every other job in the batch completes normally, and the aggregation
// convention reports the failure as n_failed rather than pooling zeros.
func TestSweepPanicIsolation(t *testing.T) {
	var cfgs []Config
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := Default()
		cfg.Duration = 5
		cfg.Seed = seed
		cfgs = append(cfgs, cfg)
	}
	bad := Default()
	bad.Duration = 5
	bad.Mobility = MobilityKind(99) // passes Validate, panics in buildMobility
	cfgs = append(cfgs, bad)

	for _, workers := range []int{1, 3} {
		results := SweepN(cfgs, workers)
		var agg metrics.Aggregate
		for i, r := range results {
			if i == len(cfgs)-1 {
				if r.Err == nil {
					t.Fatalf("workers=%d: panicking job returned no error", workers)
				}
				if !errors.Is(r.Err, runerr.ErrPanic) {
					t.Errorf("workers=%d: error not typed ErrPanic: %v", workers, r.Err)
				}
				if r.Summary != (metrics.Summary{}) {
					t.Errorf("workers=%d: failed result carries a summary", workers)
				}
				agg.AddFailed()
				continue
			}
			if r.Err != nil {
				t.Fatalf("workers=%d: healthy job %d failed: %v", workers, i, r.Err)
			}
			if r.Summary.Sent == 0 {
				t.Errorf("workers=%d: healthy job %d sent nothing", workers, i)
			}
			agg.AddSummary(r.Summary)
		}
		if agg.Failed != 1 || agg.PDR.N() != len(cfgs)-1 {
			t.Errorf("workers=%d: aggregate = %d failed / %d pooled, want 1 / %d",
				workers, agg.Failed, agg.PDR.N(), len(cfgs)-1)
		}
	}
}

// TestArenaSurvivesPanic: after a panic poisons a worker's arena, the
// engine must keep producing bit-identical results (the poisoned arena is
// discarded, not reused half-mutated).
func TestArenaSurvivesPanic(t *testing.T) {
	good := Default()
	good.Duration = 5
	want := Run(good)

	bad := Default()
	bad.Duration = 5
	bad.Mobility = MobilityKind(99)

	e := NewEngine(1) // everything on the caller: panic and retry share one arena slot
	defer e.Close()
	results := e.Sweep([]Config{bad, good, bad, good})
	for i, r := range results {
		if i%2 == 0 {
			if r.Err == nil {
				t.Fatalf("job %d: expected a panic-derived error", i)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if r.Summary != want.Summary {
			t.Errorf("job %d: post-panic result diverges from a clean run", i)
		}
	}
}

// TestEventBudgetWatchdog: a run given an absurdly small event budget must
// come back as a failed result naming the budget, not hang or panic; the
// default budget must never trip on a legitimate run.
func TestEventBudgetWatchdog(t *testing.T) {
	cfg := Default()
	cfg.Duration = 5
	cfg.EventBudget = 50
	res, err := RunE(cfg)
	if err == nil || res.Err == nil {
		t.Fatal("tiny event budget did not fail the run")
	}
	if !errors.Is(err, runerr.ErrBudget) {
		t.Errorf("watchdog error not typed ErrBudget: %v", err)
	}

	cfg.EventBudget = 0 // default: generous
	if _, err := RunE(cfg); err != nil {
		t.Errorf("default budget tripped on a legitimate run: %v", err)
	}
}

// TestRunEErrors covers the library-path error returns that used to be
// panics: broken config, unknown protocol, trace/config node mismatch —
// and that the panicking wrappers still panic for legacy callers.
func TestRunEErrors(t *testing.T) {
	cfg := Default()
	cfg.N = 1
	//detlint:allow the exact rejection wording is part of the CLI contract; the kind is asserted structurally below
	if _, err := RunE(cfg); !errors.Is(err, runerr.ErrSetup) || !strings.Contains(err.Error(), "at least 2 nodes") {
		t.Errorf("bad config error = %v", err)
	}

	cfg = Default()
	cfg.Duration = 5
	cfg.Protocol = ProtocolKind(99)
	//detlint:allow the exact rejection wording is part of the CLI contract; the kind is asserted structurally below
	if _, err := RunE(cfg); !errors.Is(err, runerr.ErrSetup) || !strings.Contains(err.Error(), "unknown protocol") {
		t.Errorf("unknown protocol error = %v", err)
	}

	cfg = Default()
	cfg.Duration = 5
	tr := mobility.NewRecorded(10, mobility.Static{Points: make([]geom.Point, 10)})
	if _, err := NewRunContext().RunTracedE(cfg, tr); !errors.Is(err, runerr.ErrSetup) ||
		!strings.Contains(err.Error(), "does not match config") { //detlint:allow the exact rejection wording is part of the CLI contract; the kind is asserted structurally too
		t.Errorf("trace mismatch error = %v", err)
	}

	defer func() {
		if recover() == nil {
			t.Error("Run on a broken config should still panic")
		}
	}()
	bad := Default()
	bad.N = 0
	Run(bad)
}

// TestValidateFaultParams: out-of-range fault parameters are rejected with
// the same zero-means-off convention as the churn/battery knobs.
func TestValidateFaultParams(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"loss prob above 1", func(c *Config) { c.Faults.Loss.LossBad = 1.5 }, "must be in [0, 1]"},
		{"negative loss prob", func(c *Config) { c.Faults.Loss.PGoodBad = -0.1 }, "must be in [0, 1]"},
		{"negative mtbf", func(c *Config) { c.Faults.CrashMTBF = -1 }, "CrashMTBF"},
		{"mttr without mtbf", func(c *Config) { c.Faults.CrashMTTR = 5 }, "without CrashMTBF"},
		{"partition past end", func(c *Config) {
			c.Faults.Partition = faults.Partition{StartS: 1, EndS: c.Duration + 100}
		}, "Partition window"},
		{"inverted partition", func(c *Config) {
			c.Faults.Partition = faults.Partition{StartS: 5, EndS: 2}
		}, "Partition window"},
	}
	for _, tc := range cases {
		cfg := Default()
		cfg.Duration = 60
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) { //detlint:allow Validate messages are the knob-rejection contract pinned since PR 2; this table is that contract's test
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestCrashRejoinLongRun: with crash/reboot faults on, an SS-SPST run must
// see crashed members come back and deliveries continue — PDR degraded but
// nonzero, recoveries recorded, and (with retry enabled by the fault
// config) the run's retry counter wired through to the summary.
func TestCrashRejoinLongRun(t *testing.T) {
	cfg := Default()
	cfg.Protocol = SSSPSTE
	cfg.Duration = 20
	cfg.Seed = 3
	cfg.Faults.CrashMTBF = 6
	cfg.Faults.CrashMTTR = 2
	res := Run(cfg)
	f := res.Summary.Faults
	if f.Crashes == 0 || f.Recoveries == 0 {
		t.Fatalf("crash process idle over 20 s at MTBF 6: %+v", f)
	}
	if res.Summary.PDR == 0 {
		t.Error("no deliveries at all under moderate crash faults")
	}
	if res.Summary.Delivered == 0 {
		t.Error("no member ever received data after crash/recovery cycles")
	}
}
