package scenario

import (
	"errors"
	"testing"

	"repro/internal/metrics"
	"repro/internal/runerr"
)

func TestCheckTierParse(t *testing.T) {
	for _, c := range []struct {
		in   string
		want CheckTier
	}{
		{"cheap", CheckCheap}, {"", CheckCheap}, {"full", CheckFull}, {"off", CheckOff},
	} {
		got, err := ParseCheckTier(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseCheckTier(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if c.in != "" && got.String() != c.in {
			t.Errorf("CheckTier(%v).String() = %q, want %q", got, got.String(), c.in)
		}
	}
	if _, err := ParseCheckTier("paranoid"); err == nil {
		t.Error("ParseCheckTier accepted an unknown tier")
	}
}

// TestPartitionCheckerTrips fabricates per-group summaries that fail to
// partition the pooled summary and verifies each law fires as a typed
// ErrInvariant.
func TestPartitionCheckerTrips(t *testing.T) {
	base := metrics.Summary{Sent: 10, Delivered: 8, DelaySumS: 1.5, TxJ: 2.0}
	groups := []metrics.Summary{
		{Sent: 6, Delivered: 5, DelaySumS: 1.0, TxJ: 1.5},
		{Sent: 4, Delivered: 3, DelaySumS: 0.5, TxJ: 0.5},
	}
	if err := checkPartition(base, groups); err != nil {
		t.Fatalf("exact partition rejected: %v", err)
	}

	for _, c := range []struct {
		name   string
		mutate func(sum *metrics.Summary, groups []metrics.Summary)
		want   string
	}{
		{"int drift", func(sum *metrics.Summary, _ []metrics.Summary) { sum.Delivered++ }, "pergroup-partition"},
		{"delay drift", func(_ *metrics.Summary, g []metrics.Summary) { g[0].DelaySumS += 0.1 }, "pergroup-partition"},
		{"energy drift", func(sum *metrics.Summary, _ []metrics.Summary) { sum.TxJ *= 2 }, "pergroup-energy"},
	} {
		sum := base
		g := append([]metrics.Summary(nil), groups...)
		c.mutate(&sum, g)
		err := checkPartition(sum, g)
		if err == nil {
			t.Fatalf("%s: violation passed the partition check", c.name)
		}
		if !errors.Is(err, runerr.ErrInvariant) {
			t.Fatalf("%s: violation not typed ErrInvariant: %v", c.name, err)
		}
		var inv *runerr.InvariantError
		if !errors.As(err, &inv) {
			t.Fatalf("%s: violation not a *runerr.InvariantError: %v", c.name, err)
		}
		if inv.Name != c.want {
			t.Fatalf("%s: violation names invariant %q, want %q", c.name, inv.Name, c.want)
		}
	}

	if err := checkPartition(base, nil); !errors.Is(err, runerr.ErrInvariant) {
		t.Fatalf("empty per-group slice not a typed violation: %v", err)
	}
}

// TestFullChecksPassAcrossScenarios runs the expensive tier over a spread
// of real configurations — every protocol family, faults, finite
// batteries, many groups with churn — and requires a clean verdict from
// each: the default-on checks must never false-positive, or the sweep
// fabric would discard healthy replications.
func TestFullChecksPassAcrossScenarios(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"sssp-st", func(c *Config) { c.Protocol = SSSPST }},
		{"sssp-ste", func(c *Config) { c.Protocol = SSSPSTE }},
		{"ss-mst", func(c *Config) { c.Protocol = SSMST }},
		{"maodv", func(c *Config) { c.Protocol = MAODV }},
		{"odmrp", func(c *Config) { c.Protocol = ODMRP }},
		{"flood", func(c *Config) { c.Protocol = Flood }},
		{"faulty", func(c *Config) {
			c.Protocol = SSSPSTE
			c.Faults = faultyConfig(c.Duration)
		}},
		{"battery", func(c *Config) {
			c.Protocol = ODMRP
			c.Battery = 0.5 // tight enough that nodes die mid-run
		}},
		{"groups-churn", func(c *Config) {
			c.Protocol = SSSPSTE
			c.Groups = 3
			c.MemberChurnInterval = 2
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			cfg := Default()
			cfg.Duration = 5
			cfg.Check = CheckFull
			v.mutate(&cfg)
			if _, err := RunE(cfg); err != nil {
				t.Fatalf("full-check run failed: %v", err)
			}
		})
	}
}
