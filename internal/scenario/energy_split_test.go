package scenario

import "testing"

// TestEnergySplitDiagnostic logs the tx/rx/discard energy decomposition
// per protocol — the quantity SS-SPST-E's metric is designed to shrink is
// the discard bucket.
func TestEnergySplitDiagnostic(t *testing.T) {
	for _, proto := range []ProtocolKind{SSSPST, SSSPSTT, SSSPSTF, SSSPSTE} {
		cfg := Default()
		cfg.Protocol = proto
		cfg.Duration = 120
		cfg.VMax = 2
		s := Run(cfg).Summary
		t.Logf("%-10s total=%6.1fJ tx=%6.1fJ rx=%6.1fJ discard=%6.1fJ PDR=%.3f e/pkt=%.2fmJ",
			proto, s.TotalEnergyJ, s.TxJ, s.RxJ, s.DiscardJ, s.PDR, s.EnergyPerDeliveredJ*1e3)
	}
}
