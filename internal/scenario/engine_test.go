package scenario

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/metrics"
)

// enginePointCfgs is one figure point's worth of work per mobility kind:
// all 8 protocols at a common (mobility, seed, N, area) point, so the 8
// runs of each kind share one mobility trace.
func enginePointCfgs(dur float64) []Config {
	protocols := []ProtocolKind{
		SSSPST, SSSPSTT, SSSPSTF, SSSPSTE, SSMST, MAODV, ODMRP, Flood,
	}
	var cfgs []Config
	for _, mob := range []MobilityKind{RandomWaypoint, GaussMarkov, RPGM, Manhattan} {
		for _, p := range protocols {
			cfg := Default()
			cfg.Protocol = p
			cfg.Mobility = mob
			cfg.Seed = 9
			cfg.VMax = 8
			cfg.Duration = dur
			cfgs = append(cfgs, cfg)
		}
	}
	// One finite-battery + churn point (the figure 18/19 workloads): the
	// death tracker and the dead-node filtering in the churn/sampler
	// callbacks must be as worker-count independent as everything else.
	for _, p := range []ProtocolKind{SSSPSTE, SSSPST, MAODV, ODMRP} {
		cfg := Default()
		cfg.Protocol = p
		cfg.Seed = 9
		cfg.VMax = 8
		cfg.Duration = dur
		cfg.Battery = 0.2 // deaths well inside even a short horizon
		cfg.MemberChurnInterval = 2
		cfgs = append(cfgs, cfg)
	}
	// One fault-injected point (the figure 20 workload): bursty loss,
	// crash/reboot faults and a partition window all at once, so every
	// fault stream's seed derivation and every mid-run protocol restart
	// must also be bit-identical across worker counts and arena histories.
	for _, p := range []ProtocolKind{SSSPSTE, SSSPST, MAODV, ODMRP} {
		cfg := Default()
		cfg.Protocol = p
		cfg.Seed = 9
		cfg.VMax = 8
		cfg.Duration = dur
		cfg.Faults = faultyConfig(dur)
		cfgs = append(cfgs, cfg)
	}
	// One multi-group point with per-topic churn (the figure 21 workload):
	// per-group member draws, Zipf-weighted source rates and the churn
	// stream's topic selection must be worker-count independent too, and a
	// trailing single-group run pins that multi-group arenas leave nothing
	// behind for the next config.
	for _, p := range []ProtocolKind{SSSPSTE, SSSPST, MAODV, ODMRP} {
		cfg := Default()
		cfg.Protocol = p
		cfg.Seed = 9
		cfg.VMax = 8
		cfg.Duration = dur
		cfg.Groups = 4
		cfg.MemberChurnInterval = 2
		cfgs = append(cfgs, cfg)
	}
	tail := Default()
	tail.Protocol = SSSPSTE
	tail.Seed = 9
	tail.VMax = 8
	tail.Duration = dur
	cfgs = append(cfgs, tail)
	return cfgs
}

// faultyConfig is the shared all-faults-on setting used by the bit-identity
// and arena-reuse tests: aggressive enough that every fault path fires
// inside a short horizon.
func faultyConfig(dur float64) faults.Config {
	return faults.Config{
		Loss:      faults.GEConfig{PGoodBad: 0.1, PBadGood: 0.3, LossBad: 0.8},
		CrashMTBF: dur / 2,
		CrashMTTR: dur / 8,
		Partition: faults.Partition{StartS: dur / 4, EndS: dur / 2},
	}
}

// TestSweepWorkersBitIdentical pins the engine's central invariant: the
// same batch swept serially (1 worker: no goroutines, no trace
// concurrency) and on a wide pool (8 workers: concurrent replay and
// cooperative trace extension) produces bit-identical results for all 8
// protocols across all 4 stochastic mobility kinds. Run under -race in CI
// this also exercises the trace cache's locking.
func TestSweepWorkersBitIdentical(t *testing.T) {
	cfgs := enginePointCfgs(8)
	serial := SweepN(cfgs, 1)
	wide := SweepN(cfgs, 8)
	deaths := 0
	var faultStats metrics.FaultStats
	for i := range cfgs {
		name := fmt.Sprintf("%s/%s", cfgs[i].Mobility, cfgs[i].Protocol)
		if serial[i].Summary != wide[i].Summary {
			t.Errorf("%s: summaries diverge across worker counts:\n 1: %+v\n 8: %+v",
				name, serial[i].Summary, wide[i].Summary)
		}
		if serial[i].Medium != wide[i].Medium {
			t.Errorf("%s: medium stats diverge across worker counts:\n 1: %+v\n 8: %+v",
				name, serial[i].Medium, wide[i].Medium)
		}
		if len(serial[i].PerGroup) != len(wide[i].PerGroup) {
			t.Errorf("%s: per-group summary counts diverge: 1: %d, 8: %d",
				name, len(serial[i].PerGroup), len(wide[i].PerGroup))
		} else {
			for g := range serial[i].PerGroup {
				if serial[i].PerGroup[g] != wide[i].PerGroup[g] {
					t.Errorf("%s group %d: per-group summaries diverge across worker counts:\n 1: %+v\n 8: %+v",
						name, g, serial[i].PerGroup[g], wide[i].PerGroup[g])
				}
			}
		}
		// The multi-group point must fire traffic on every topic, or its
		// bit-identity coverage of the per-group paths is illusory.
		if cfgs[i].Groups > 1 {
			for g := range serial[i].PerGroup {
				if serial[i].PerGroup[g].Sent == 0 {
					t.Errorf("%s group %d: no data sent; multi-group path not exercised", name, g)
				}
			}
		}
		if cfgs[i].Battery > 0 {
			deaths += serial[i].Summary.DeadNodes
		}
		if cfgs[i].Faults.Any() {
			s := serial[i].Summary.Faults
			faultStats.Losses += s.Losses
			faultStats.PartitionDrops += s.PartitionDrops
			faultStats.Crashes += s.Crashes
			faultStats.Recoveries += s.Recoveries
		}
	}
	// The battery+churn point must actually deplete nodes, or its
	// bit-identity coverage of the death tracker is illusory.
	if deaths == 0 {
		t.Error("finite-battery configs recorded no deaths; lifetime path not exercised")
	}
	// Likewise, the fault-injected point must actually lose packets, cut
	// the partition and crash nodes, or the fault paths' bit-identity
	// coverage is illusory.
	if faultStats.Losses == 0 || faultStats.PartitionDrops == 0 || faultStats.Crashes == 0 || faultStats.Recoveries == 0 {
		t.Errorf("fault-injected configs fired no faults (%+v); fault paths not exercised", faultStats)
	}
}

// TestTracedRunEquivalence pins RunTraced against Run directly, one
// protocol per mobility kind, without the engine in the way.
func TestTracedRunEquivalence(t *testing.T) {
	for _, mob := range []MobilityKind{RandomWaypoint, RandomDirection, GaussMarkov, RPGM, Manhattan} {
		cfg := Default()
		cfg.Mobility = mob
		cfg.Duration = 10
		cfg.VMax = 8
		plain := Run(cfg)

		cache := NewTraceCache()
		key, ok := traceKeyOf(cfg)
		if !ok {
			t.Fatalf("%s: expected a cacheable trace key", mob)
		}
		cache.register(key)
		trace := cache.acquire(cfg, key)
		traced := NewRunContext().RunTraced(cfg, trace)
		// A second traced run replays the now-warm trace.
		traced2 := NewRunContext().RunTraced(cfg, trace)
		cache.release(key)

		if plain.Summary != traced.Summary || plain.Medium != traced.Medium {
			t.Errorf("%s: traced run diverges from plain run", mob)
		}
		if plain.Summary != traced2.Summary || plain.Medium != traced2.Medium {
			t.Errorf("%s: warm replay diverges from plain run", mob)
		}
	}
}

// TestEngineTraceSharing checks the cache accounting: one figure point's 8
// protocol runs record movement once and replay it 7 times, and the entry
// is evicted when the last run finishes.
func TestEngineTraceSharing(t *testing.T) {
	e := NewEngine(2)
	defer e.Close()
	var cfgs []Config
	for _, p := range []ProtocolKind{SSSPST, SSSPSTT, SSSPSTF, SSSPSTE, SSMST, MAODV, ODMRP, Flood} {
		cfg := Default()
		cfg.Protocol = p
		cfg.Duration = 5
		cfgs = append(cfgs, cfg)
	}
	e.Sweep(cfgs)
	hits, misses := e.TraceStats()
	if misses != 1 || hits != 7 {
		t.Errorf("trace stats = %d hits, %d misses; want 7, 1", hits, misses)
	}
	if live := e.cache.Live(); live != 0 {
		t.Errorf("%d traces still cached after the batch drained", live)
	}
}

// TestNestedSweepNoOversubscription submits a sweep whose runs themselves
// call RunSeeds (the nested-pool pattern that previously spawned a fresh
// GOMAXPROCS pool per inner call). On the shared engine the inner sweeps
// drain on their callers; the test asserts completion and inner/outer
// result sanity rather than goroutine counts, which the race detector and
// the engine's caller-participation design cover.
func TestNestedSweepNoOversubscription(t *testing.T) {
	e := NewEngine(2)
	defer e.Close()
	outer := make([]Config, 3)
	for i := range outer {
		outer[i] = Default()
		outer[i].Duration = 4
		outer[i].Seed = uint64(i + 1)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.SweepFunc(outer, func(i int, r Result) {
			if r.Summary.Sent == 0 {
				t.Errorf("outer run %d sent nothing", i)
			}
		})
	}()
	<-done
	// An actual nested call through the same engine: a job that sweeps.
	inner := Default()
	inner.Duration = 4
	nested := e.Sweep([]Config{inner})
	if nested[0].Summary != Run(inner).Summary {
		t.Error("nested sweep result diverges from direct run")
	}
}

// TestReplicationSeedCollisionFree is the seed-derivation regression: the
// old additive stride (base + i·1000003) collided whenever two sweep
// points' bases differed by a multiple of the stride. The SplitMix64
// derivation must keep every (base, replication) pair distinct across
// adjacent bases, stride-multiple bases, and deep replication counts.
func TestReplicationSeedCollisionFree(t *testing.T) {
	seen := map[uint64]string{}
	check := func(base uint64, i int) {
		s := ReplicationSeed(base, i)
		id := fmt.Sprintf("base %d rep %d", base, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: %s and %s both derive %d", prev, id, s)
		}
		seen[s] = id
	}
	// Adjacent bases (figure points stepping Seed by 1), 32 reps each.
	for base := uint64(1); base <= 100; base++ {
		for i := 0; i < 32; i++ {
			check(base, i)
		}
	}
	// Bases on the old stride lattice — the exact pattern that used to
	// collide (base + 1000003's replication i-1 == base's replication i).
	for k := uint64(0); k < 50; k++ {
		for i := 0; i < 32; i++ {
			check(1000+k*1000003, i)
		}
	}
}

// TestReplicationSeedAnchored pins replication 0 to the base seed, the
// property that makes RunSeeds(cfg, 1) reproduce Run(cfg).
func TestReplicationSeedAnchored(t *testing.T) {
	for _, base := range []uint64{0, 1, 77, 1 << 40} {
		if ReplicationSeed(base, 0) != base {
			t.Errorf("ReplicationSeed(%d, 0) = %d", base, ReplicationSeed(base, 0))
		}
		if ReplicationSeed(base, 1) == base+1000003 {
			t.Errorf("replication 1 still on the additive stride")
		}
	}
}
