package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
)

// fingerprintFields classifies every Config field for the resumability
// contract (DESIGN §14, §16): true marks a result-determining field that
// participates in the fingerprint digest; false marks an
// execution-control knob — the watchdogs and the invariant tier — that
// can only decide whether a run fails, never what a successful run
// computes, and is therefore zeroed before hashing so journals and shard
// artifacts recorded under one watchdog setting stay resumable under
// another.
//
// Every field MUST appear here. Fingerprint panics on an unclassified
// field, TestConfigFieldsClassified fails on it, and the
// fingerprintfields analyzer (cmd/manetlint) breaks the build at the
// struct field itself — adding a Config field forces a conscious
// classification decision in the same commit.
var fingerprintFields = map[string]bool{
	"Seed":     true,
	"Protocol": true,

	// Topology.
	"N":        true,
	"AreaSide": true,

	// Mobility.
	"Mobility":      true,
	"VMin":          true,
	"VMax":          true,
	"Pause":         true,
	"Positions":     true,
	"GMAlpha":       true,
	"GMStep":        true,
	"GroupCount":    true,
	"GroupRadius":   true,
	"StreetSpacing": true,

	// Group layout and workload.
	"Groups":              true,
	"GroupSize":           true,
	"ZipfS":               true,
	"MemberChurnInterval": true,

	// Traffic, timers, channel, energy.
	"RateBps":        true,
	"PayloadBytes":   true,
	"BeaconInterval": true,
	"SSCore":         true,
	"Medium":         true,

	// Run control.
	"Duration":       true,
	"Warmup":         true,
	"SampleInterval": true,
	"Battery":        true,
	"Faults":         true,

	// Execution-control knobs: excluded from the digest.
	"EventBudget": false,
	"Deadline":    false,
	"StallEvents": false,
	"Check":       false,
}

// Fingerprint returns a short stable digest identifying the complete
// configuration, seed included: two configs share a fingerprint exactly
// when every result-determining field (protocol, topology, mobility
// parameters, group layout, traffic, timers, fault processes, run
// control, seed) is equal. Which fields count is the fingerprintFields
// table's single decision; the excluded execution-control knobs are
// zeroed out of the hashed copy here.
//
// The digest is the canonical Go value syntax of the struct hashed with
// SHA-256, truncated to 64 bits and hex-encoded. Config is a pure value
// type — every field is a scalar, a value struct, or a slice of value
// structs, never a pointer, map or function — so the %#v rendering is
// identical across processes and platforms, which is what lets shard
// artifacts and checkpoint journals written by one process be verified by
// another. Failed-run diagnostics embed the fingerprint so a panic in a
// merged log is attributable to the exact (config, seed) job that hit it.
func (cfg Config) Fingerprint() string {
	v := reflect.ValueOf(&cfg).Elem()
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		hashed, classified := fingerprintFields[t.Field(i).Name]
		if !classified {
			panic("scenario: Config field " + t.Field(i).Name +
				" is not classified in fingerprintFields (fingerprinted or excluded)")
		}
		if !hashed {
			v.Field(i).SetZero()
		}
	}
	h := sha256.Sum256([]byte(fmt.Sprintf("%#v", cfg)))
	return hex.EncodeToString(h[:8])
}
