package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Fingerprint returns a short stable digest identifying the complete
// configuration, seed included: two configs share a fingerprint exactly
// when every result-determining field (protocol, topology, mobility
// parameters, group layout, traffic, timers, fault processes, run
// control, seed) is equal.
//
// Execution-control knobs — the watchdogs (EventBudget, Deadline,
// StallEvents) and the invariant tier (Check) — are excluded: they can
// only decide whether a run fails, never what a successful run computes,
// so journals and shard artifacts recorded under one watchdog setting
// stay resumable under another.
//
// The digest is the canonical Go value syntax of the struct hashed with
// SHA-256, truncated to 64 bits and hex-encoded. Config is a pure value
// type — every field is a scalar, a value struct, or a slice of value
// structs, never a pointer, map or function — so the %#v rendering is
// identical across processes and platforms, which is what lets shard
// artifacts and checkpoint journals written by one process be verified by
// another. Failed-run diagnostics embed the fingerprint so a panic in a
// merged log is attributable to the exact (config, seed) job that hit it.
func (cfg Config) Fingerprint() string {
	cfg.EventBudget = 0
	cfg.Deadline = 0
	cfg.StallEvents = 0
	cfg.Check = 0
	h := sha256.Sum256([]byte(fmt.Sprintf("%#v", cfg)))
	return hex.EncodeToString(h[:8])
}
