package scenario

import (
	"math"
	"testing"
)

// TestGroupsZeroOneEquivalence pins the multiplexing refactor's ground
// rule: Groups unset (the zero value) and Groups=1 are the same workload,
// bit-identical in every observable — no extra RNG draws, no extra
// tickers, no per-group accounting drift.
func TestGroupsZeroOneEquivalence(t *testing.T) {
	for _, p := range []ProtocolKind{SSSPSTE, Flood, ODMRP, MAODV} {
		base := Default()
		base.Protocol = p
		base.Duration = 10
		base.MemberChurnInterval = 3

		one := base
		one.Groups = 1

		r0, r1 := Run(base), Run(one)
		if r0.Summary != r1.Summary {
			t.Errorf("%s: Groups=0 vs Groups=1 summaries diverge:\n 0: %+v\n 1: %+v",
				p, r0.Summary, r1.Summary)
		}
		if r0.Medium != r1.Medium {
			t.Errorf("%s: Groups=0 vs Groups=1 medium stats diverge", p)
		}
		if len(r0.PerGroup) != 1 || len(r1.PerGroup) != 1 {
			t.Fatalf("%s: per-group summary counts = %d, %d; want 1, 1",
				p, len(r0.PerGroup), len(r1.PerGroup))
		}
		if r0.PerGroup[0] != r1.PerGroup[0] {
			t.Errorf("%s: per-group summaries diverge between Groups=0 and Groups=1", p)
		}
	}
}

// TestMultiGroupConservation checks that the per-topic summaries of a
// multi-group run partition the pooled one: integer traffic counters sum
// exactly, energy partitions to float tolerance (the pooled accumulator
// adds the same spends in interleaved order), and the Zipf skew leaves
// topic 0 with the single-group workload's send count while later topics
// shrink monotonically in rate.
func TestMultiGroupConservation(t *testing.T) {
	const k = 4
	cfg := Default()
	cfg.Protocol = SSSPSTE
	cfg.Duration = 15
	cfg.Groups = k

	res := Run(cfg)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.PerGroup) != k {
		t.Fatalf("per-group summaries = %d, want %d", len(res.PerGroup), k)
	}

	var sent, expected, delivered int
	var txJ, rxJ, discardJ float64
	for g, s := range res.PerGroup {
		if s.Sent == 0 {
			t.Errorf("group %d sent no data", g)
		}
		if g > 0 && s.Sent > res.PerGroup[g-1].Sent {
			t.Errorf("group %d sent %d > group %d's %d; Zipf rate skew not monotone",
				g, s.Sent, g-1, res.PerGroup[g-1].Sent)
		}
		sent += s.Sent
		expected += s.Expected
		delivered += s.Delivered
		txJ += s.TxJ
		rxJ += s.RxJ
		discardJ += s.DiscardJ
	}
	sum := res.Summary
	if sent != sum.Sent || expected != sum.Expected || delivered != sum.Delivered {
		t.Errorf("traffic counters don't partition: groups sum (%d,%d,%d) vs pooled (%d,%d,%d)",
			sent, expected, delivered, sum.Sent, sum.Expected, sum.Delivered)
	}
	approx := func(name string, got, want float64) {
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("%s doesn't partition: groups sum %v vs pooled %v", name, got, want)
		}
	}
	approx("TxJ", txJ, sum.TxJ)
	approx("RxJ", rxJ, sum.RxJ)
	approx("DiscardJ", discardJ, sum.DiscardJ)

	// Topic 0 keeps the paper's exact workload: same send count as the
	// single-group run of the same config.
	single := cfg
	single.Groups = 1
	if s0 := Run(single); s0.Summary.Sent != res.PerGroup[0].Sent {
		t.Errorf("topic 0 sent %d, single-group run sent %d; primary topic's rate drifted",
			res.PerGroup[0].Sent, s0.Summary.Sent)
	}
}
