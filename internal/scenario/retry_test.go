package scenario

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/runerr"
)

// TestRetryDeterministicClassification: a job that fails identically on
// its retry is classified deterministic — the engine stops burning
// attempts on it and flags the classification in the error.
func TestRetryDeterministicClassification(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	e.SetRetryPolicy(3, 0)

	bad := Default()
	bad.Duration = 5
	bad.Mobility = MobilityKind(99) // passes Validate, panics in buildMobility

	res := e.Sweep([]Config{bad})[0]
	if res.Err == nil {
		t.Fatal("deterministically panicking config produced no error")
	}
	if res.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2 (first failure + one identical retry)", res.Attempts)
	}
	if !errors.Is(res.Err, runerr.ErrDeterministic) {
		t.Fatalf("error not classified deterministic: %v", res.Err)
	}
	msg := res.Err.Error()
	// Satellite: panic errors are prefixed with the config fingerprint and
	// seed so a sharded log line identifies its exact replication.
	if !strings.Contains(msg, "cfg "+bad.Fingerprint()) {
		t.Fatalf("error does not carry the config fingerprint %s: %s", bad.Fingerprint(), msg)
	}
}

// TestRetryDisabled: with retries = 0 a failed job is recorded after its
// single attempt.
func TestRetryDisabled(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	e.SetRetryPolicy(0, 0)

	bad := Default()
	bad.Duration = 5
	bad.Mobility = MobilityKind(99)

	res := e.Sweep([]Config{bad})[0]
	if res.Err == nil || res.Attempts != 1 {
		t.Fatalf("retries=0: Attempts = %d, err = %v, want 1 attempt with error", res.Attempts, res.Err)
	}
	if errors.Is(res.Err, runerr.ErrDeterministic) {
		t.Fatalf("single attempt wrongly classified: %v", res.Err)
	}
}

// TestSuccessAttempts: a clean run reports exactly one attempt even when
// retries are enabled.
func TestSuccessAttempts(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	e.SetRetryPolicy(3, 0)

	cfg := Default()
	cfg.Duration = 5

	res := e.Sweep([]Config{cfg})[0]
	if res.Err != nil || res.Attempts != 1 {
		t.Fatalf("clean run: Attempts = %d, err = %v, want 1 and nil", res.Attempts, res.Err)
	}
}

// TestTruncateStack pins the panic-stack cap: long stacks are cut at a
// line boundary and marked, short ones pass through untouched.
func TestTruncateStack(t *testing.T) {
	short := []byte("goroutine 1 [running]:\nmain.main()\n")
	if got := truncateStack(short); got != string(short) {
		t.Fatalf("short stack modified: %q", got)
	}
	long := bytes.Repeat([]byte("some/deep/frame.func1(0xc000)\n"), 1000)
	got := truncateStack(long)
	if len(got) > maxPanicStackBytes+len("\n... [stack truncated]") {
		t.Fatalf("truncated stack still %d bytes", len(got))
	}
	if !strings.HasSuffix(got, "... [stack truncated]") {
		t.Fatalf("truncation not marked: ...%q", got[len(got)-40:])
	}
	body := strings.TrimSuffix(got, "\n... [stack truncated]")
	if !strings.HasSuffix(body, ")") { // cut mid-line would end elsewhere
		t.Fatalf("stack not cut at a line boundary: ...%q", body[len(body)-20:])
	}
}

// TestRetryPanicTyped: an engine-recovered panic carries the ErrPanic
// kind through the deterministic-classification wrapping, so callers
// classify with errors.Is instead of message grepping.
func TestRetryPanicTyped(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	e.SetRetryPolicy(3, 0)

	bad := Default()
	bad.Duration = 5
	bad.Mobility = MobilityKind(99)

	res := e.Sweep([]Config{bad})[0]
	if !errors.Is(res.Err, runerr.ErrPanic) {
		t.Fatalf("recovered panic does not match runerr.ErrPanic: %v", res.Err)
	}
	var pe *runerr.PanicError
	if !errors.As(res.Err, &pe) {
		t.Fatalf("recovered panic is not a *runerr.PanicError: %v", res.Err)
	}
	if pe.Fingerprint != bad.Fingerprint() {
		t.Fatalf("PanicError fingerprint = %s, want %s", pe.Fingerprint, bad.Fingerprint())
	}
}

// TestSetupErrorNotRetried: a config rejected by Validate is a pure
// function of the config — the engine must not burn retry attempts on
// it, and the failure must carry the ErrSetup kind.
func TestSetupErrorNotRetried(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	e.SetRetryPolicy(3, 0)

	bad := Default()
	bad.Duration = -1 // rejected by Validate

	res := e.Sweep([]Config{bad})[0]
	if res.Err == nil {
		t.Fatal("invalid config produced no error")
	}
	if !errors.Is(res.Err, runerr.ErrSetup) {
		t.Fatalf("setup rejection does not match runerr.ErrSetup: %v", res.Err)
	}
	if res.Attempts != 1 {
		t.Fatalf("setup rejection retried: Attempts = %d, want 1", res.Attempts)
	}
	if errors.Is(res.Err, runerr.ErrDeterministic) {
		t.Fatalf("non-retried failure wrongly classified: %v", res.Err)
	}
}

// TestDeadlineRetriedNeverDeterministic: a wall-clock deadline expiry is
// load-dependent, so the engine retries it through the full budget and
// never classifies the repeats as deterministic.
func TestDeadlineRetriedNeverDeterministic(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	e.SetRetryPolicy(2, 0)

	cfg := Default()
	cfg.Duration = 5
	cfg.Deadline = 1e-9 // expires before the first stride check

	res := e.Sweep([]Config{cfg})[0]
	if !errors.Is(res.Err, runerr.ErrDeadline) {
		t.Fatalf("deadline expiry does not match runerr.ErrDeadline: %v", res.Err)
	}
	if res.Attempts != 3 {
		t.Fatalf("deadline expiry: Attempts = %d, want 3 (full retry budget)", res.Attempts)
	}
	if errors.Is(res.Err, runerr.ErrDeterministic) {
		t.Fatalf("deadline expiry wrongly classified deterministic: %v", res.Err)
	}
}

// TestEventBudgetExactBoundary finds the run's true event count E by
// binary search and pins the watchdog boundary end to end: budget E
// (the run ends exactly at its budget) passes, budget E-1 fails.
func TestEventBudgetExactBoundary(t *testing.T) {
	cfg := Default()
	cfg.Duration = 2

	passes := func(budget uint64) bool {
		cfg.EventBudget = budget
		_, err := RunE(cfg)
		if err != nil && !errors.Is(err, runerr.ErrBudget) {
			t.Fatalf("budget %d failed for the wrong reason: %v", budget, err)
		}
		return err == nil
	}

	hi := uint64(1 << 16)
	for !passes(hi) {
		hi *= 4
		if hi > 1<<34 {
			t.Fatal("no passing budget below 2^34")
		}
	}
	lo := uint64(1)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if passes(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	e := lo // the run's exact event count

	if !passes(e) {
		t.Fatalf("run ending exactly at budget %d failed", e)
	}
	if passes(e - 1) {
		t.Fatalf("budget %d (one below the run's %d events) did not trip the watchdog", e-1, e)
	}
}
