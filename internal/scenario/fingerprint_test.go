package scenario

import (
	"reflect"
	"testing"
)

// TestConfigFieldsClassified is the runtime complement of the
// fingerprintfields analyzer (DESIGN §16): every Config field must be
// consciously classified in fingerprintFields — fingerprinted or
// excluded — and the table must not go stale. A new field added without
// touching the table fails here (and at the analyzer, and at the first
// Fingerprint call).
func TestConfigFieldsClassified(t *testing.T) {
	typ := reflect.TypeOf(Config{})
	fields := make(map[string]bool, typ.NumField())
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		fields[name] = true
		if _, ok := fingerprintFields[name]; !ok {
			t.Errorf("Config field %s is not classified in fingerprintFields: decide whether it is result-determining (true) or an execution-control knob (false)", name)
		}
	}
	for name := range fingerprintFields {
		if !fields[name] {
			t.Errorf("fingerprintFields entry %q names no Config field: remove the stale entry", name)
		}
	}
}

// TestFingerprintHonorsClassification drives the classification through
// behavior: mutating an excluded field must leave the digest untouched
// (that is what makes journals resumable across watchdog settings),
// mutating a fingerprinted field must change it (that is what makes the
// digest an identity).
func TestFingerprintHonorsClassification(t *testing.T) {
	base := Default()
	baseFP := base.Fingerprint()
	typ := reflect.TypeOf(Config{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		hashed, ok := fingerprintFields[name]
		if !ok {
			continue // TestConfigFieldsClassified already flags it
		}
		cfg := base
		if !mutateField(reflect.ValueOf(&cfg).Elem().Field(i)) {
			t.Fatalf("cannot synthesize a non-default value for Config.%s; extend mutateField", name)
		}
		got := cfg.Fingerprint()
		if hashed && got == baseFP {
			t.Errorf("Config.%s is classified fingerprinted but mutating it left the digest at %s", name, baseFP)
		}
		if !hashed && got != baseFP {
			t.Errorf("Config.%s is classified excluded but mutating it moved the digest %s -> %s", name, baseFP, got)
		}
	}
}

// mutateField drives v away from its current value: numerics and bools
// flip directly, strings append, slices grow a zero element, and structs
// recurse into their first mutable field.
func mutateField(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 7)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 7)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 0.375)
	case reflect.String:
		v.SetString(v.String() + "x")
	case reflect.Slice:
		v.Set(reflect.Append(v, reflect.Zero(v.Type().Elem())))
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).CanSet() && mutateField(v.Field(i)) {
				return true
			}
		}
		return false
	default:
		return false
	}
	return true
}
