package scenario

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/medium"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// newModelKinds is the PR's mobility-suite addition.
var newModelKinds = []MobilityKind{GaussMarkov, RPGM, Manhattan}

// TestNewMobilityRepeatability is the hard determinism invariant at the
// scenario level: a run is a pure function of its Config, so two runs of
// an identical config must produce identical summaries — for every new
// model.
func TestNewMobilityRepeatability(t *testing.T) {
	for _, k := range newModelKinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			cfg := Default()
			cfg.Mobility = k
			cfg.N = 25
			cfg.GroupSize = 8
			cfg.Duration = 30
			cfg.VMax = 8
			a := Run(cfg)
			b := Run(cfg)
			if a.Summary != b.Summary {
				t.Errorf("same config, different summaries:\n  %+v\n  %+v", a.Summary, b.Summary)
			}
		})
	}
}

// TestNewMobilityRuns: every new model produces a live network (traffic
// flows, some of it arrives) under the baseline scenario.
func TestNewMobilityRuns(t *testing.T) {
	for _, k := range newModelKinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			cfg := Default()
			cfg.Mobility = k
			cfg.N = 30
			cfg.GroupSize = 10
			cfg.Duration = 40
			s := Run(cfg).Summary
			if s.Sent == 0 || s.Expected == 0 {
				t.Fatal("no traffic generated")
			}
			if s.Delivered == 0 {
				t.Errorf("nothing delivered under %v: %v", k, s)
			}
		})
	}
}

// TestGaussMarkovMemorylessEndpoint: GMAlpha = 0 is the meaningful
// memoryless end of the correlation axis, not "unset" — the 0.75 default
// lives in Default(), so an explicit 0 must run as written.
func TestGaussMarkovMemorylessEndpoint(t *testing.T) {
	cfg := Default()
	cfg.Mobility = GaussMarkov
	cfg.GMAlpha = 0
	cfg.N = 20
	cfg.GroupSize = 5
	cfg.Duration = 15
	if err := cfg.Validate(); err != nil {
		t.Fatalf("alpha=0 rejected: %v", err)
	}
	if s := Run(cfg).Summary; s.Sent == 0 {
		t.Error("no traffic under memoryless Gauss-Markov")
	}
}

// TestGroupSizeClamp is the regression test for the out-of-range panic:
// GroupSize > N-1 used to crash Run at perm[:cfg.GroupSize]; it must now
// clamp to "everyone but the source".
func TestGroupSizeClamp(t *testing.T) {
	cfg := Default()
	cfg.N = 10
	cfg.GroupSize = 25 // > N-1; used to panic
	cfg.Duration = 10
	s := Run(cfg).Summary
	if s.Sent == 0 {
		t.Fatal("no traffic")
	}
	if s.Expected != s.Sent*(cfg.N-1) {
		t.Errorf("clamped group: expected=%d sent=%d, want group size %d", s.Expected, s.Sent, cfg.N-1)
	}
}

// TestValidate covers the clear-error path for configs Run cannot clamp
// into shape.
func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"too few nodes", func(c *Config) { c.N = 1 }, "at least 2 nodes"},
		{"no area", func(c *Config) { c.AreaSide = 0 }, "AreaSide"},
		{"empty group", func(c *Config) { c.GroupSize = 0 }, "GroupSize"},
		{"zero vmin", func(c *Config) { c.VMin = 0 }, "VMin"},
		{"vmax below vmin", func(c *Config) { c.VMax = 0.5 }, "VMax"},
		{"no duration", func(c *Config) { c.Duration = 0 }, "Duration"},
		{"bad alpha", func(c *Config) { c.Mobility = GaussMarkov; c.GMAlpha = 1.2 }, "GMAlpha"},
		{"negative gm step", func(c *Config) { c.Mobility = GaussMarkov; c.GMStep = -1 }, "GMStep"},
		{"negative groups", func(c *Config) { c.Mobility = RPGM; c.GroupCount = -3 }, "GroupCount"},
		{"negative radius", func(c *Config) { c.Mobility = RPGM; c.GroupRadius = -5 }, "GroupRadius"},
		{"oversized spacing", func(c *Config) { c.Mobility = Manhattan; c.StreetSpacing = 2000 }, "StreetSpacing"},
	}
	for _, tc := range cases {
		cfg := Default()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) { //detlint:allow Validate messages name the offending knob by design; this table pins that naming contract
			t.Errorf("%s: Validate() = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	// Static scenarios have no speeds to validate.
	cfg := Default()
	cfg.Mobility = Static
	cfg.VMin, cfg.VMax = 0, 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("static config rejected: %v", err)
	}
}

// TestParseMobility exercises the registry names and aliases.
func TestParseMobility(t *testing.T) {
	for name, want := range map[string]MobilityKind{
		"rwp": RandomWaypoint, "random-waypoint": RandomWaypoint,
		"GAUSS-MARKOV": GaussMarkov, "gm": GaussMarkov,
		"rpgm": RPGM, "manhattan": Manhattan, "grid": Manhattan,
		"static": Static, "random-direction": RandomDirection,
	} {
		got, err := ParseMobility(name)
		if err != nil || got != want {
			t.Errorf("ParseMobility(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseMobility("levy-flight"); err == nil {
		t.Error("unknown model must error")
	}
	for _, k := range AllMobility() {
		if got, err := ParseMobility(k.String()); err != nil || got != k {
			t.Errorf("round-trip %v failed: %v, %v", k, got, err)
		}
	}
}

// TestAvailabilityJoinBaseline is the regression test for the churn
// sampler bias: a member that joins mid-run has no LastDelivery record,
// and the sampler used to count it broken from its very first window.
// With the join-time baseline, the silence before the join does not
// count, and the first post-join window only counts once a full interval
// has elapsed.
func TestAvailabilityJoinBaseline(t *testing.T) {
	s := sim.New(1)
	tracker := mobility.NewTracker(3, mobility.Static{Points: []geom.Point{{}, {X: 1}, {X: 2}}})
	net := netsim.New(s, tracker, netsim.Config{
		N: 3, Source: 0, Members: []packet.NodeID{1},
		Medium: medium.DefaultConfig(), PayloadBytes: 512,
		Area: geom.Square(10), StaticNodes: true,
	})
	attachAvailabilitySampler(net, 1)
	s.At(5.5, func() { net.SetMember(2, true) })
	s.Run(10)

	// Member 1 (initial, never served): sampled at t=1..10; broken once
	// now-0 > 1, i.e. at t=2..10 → 9 broken of 10.
	// Member 2 (joins at 5.5, never served): sampled at t=6..10; broken
	// once now-5.5 > 1, i.e. at t=7..10 → 4 broken of 5. The pre-fix
	// sampler would count t=6 broken too ("no record yet").
	sum := net.Summarize()
	if sum.UnavailSamples != 15 {
		t.Fatalf("UnavailSamples = %d, want 15", sum.UnavailSamples)
	}
	if sum.UnavailBroken != 13 {
		t.Errorf("UnavailBroken = %d, want 13 (join-time baseline)", sum.UnavailBroken)
	}
}

// TestMobilityKindString pins the registry names used by cmd flags.
func TestMobilityKindString(t *testing.T) {
	if GaussMarkov.String() != "gauss-markov" || RPGM.String() != "rpgm" ||
		Manhattan.String() != "manhattan" || RandomWaypoint.String() != "rwp" {
		t.Error("mobility names wrong")
	}
}
