// Package scenario assembles complete simulation runs from a declarative
// configuration — area, node count, mobility, group, protocol, traffic —
// executes them, and fans parameter sweeps out over a worker pool.
//
// A single run is strictly deterministic in its seed; sweeps are
// embarrassingly parallel across (point, seed) pairs, which is where the
// repository exploits multicore hardware.
package scenario

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/flood"
	"repro/internal/geom"
	"repro/internal/maodv"
	"repro/internal/medium"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/odmrp"
	"repro/internal/packet"
	"repro/internal/runerr"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// ProtocolKind names a runnable protocol.
type ProtocolKind int

// The runnable protocols.
const (
	SSSPST ProtocolKind = iota // hop metric
	SSSPSTT
	SSSPSTF
	SSSPSTE
	SSMST // minimax-link extension (paper ref [14])
	MAODV
	ODMRP
	Flood
)

var protoNames = [...]string{"SS-SPST", "SS-SPST-T", "SS-SPST-F", "SS-SPST-E", "SS-MST", "MAODV", "ODMRP", "FLOOD"}

// String implements fmt.Stringer with the paper's protocol names.
func (k ProtocolKind) String() string {
	if int(k) < len(protoNames) {
		return protoNames[k]
	}
	return fmt.Sprintf("Protocol(%d)", int(k))
}

// SelfStabilizing reports whether the protocol is in the SS-SPST family.
func (k ProtocolKind) SelfStabilizing() bool { return k <= SSMST }

// Variant returns the core metric variant for SS family kinds.
func (k ProtocolKind) Variant() core.Variant {
	switch k {
	case SSSPST:
		return core.Hop
	case SSSPSTT:
		return core.TxLink
	case SSSPSTF:
		return core.Farthest
	case SSSPSTE:
		return core.EnergyAware
	case SSMST:
		return core.MST
	default:
		panic("scenario: not an SS-SPST variant: " + k.String())
	}
}

// MobilityKind selects the movement model.
type MobilityKind int

// Supported mobility models.
const (
	RandomWaypoint MobilityKind = iota
	RandomDirection
	Static
	GaussMarkov
	RPGM
	Manhattan
)

var mobilityNames = [...]string{
	"rwp", "random-direction", "static", "gauss-markov", "rpgm", "manhattan",
}

// AllMobility lists every registered mobility model in declaration order.
func AllMobility() []MobilityKind {
	return []MobilityKind{RandomWaypoint, RandomDirection, Static, GaussMarkov, RPGM, Manhattan}
}

// String implements fmt.Stringer with the registry (flag) names.
func (k MobilityKind) String() string {
	if 0 <= int(k) && int(k) < len(mobilityNames) {
		return mobilityNames[k]
	}
	return fmt.Sprintf("Mobility(%d)", int(k))
}

// mobilityAliases maps every accepted spelling to its kind; the canonical
// names from mobilityNames are merged in by init.
var mobilityAliases = map[string]MobilityKind{
	"random-waypoint": RandomWaypoint,
	"waypoint":        RandomWaypoint,
	"rdir":            RandomDirection,
	"gm":              GaussMarkov,
	"gauss":           GaussMarkov,
	"group":           RPGM,
	"grid":            Manhattan,
}

func init() {
	for i, n := range mobilityNames {
		mobilityAliases[n] = MobilityKind(i)
	}
}

// ParseMobility resolves a model name (canonical or alias, case
// insensitive) to its kind.
func ParseMobility(name string) (MobilityKind, error) {
	k, ok := mobilityAliases[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return 0, fmt.Errorf("scenario: unknown mobility model %q (valid: %s)",
			name, strings.Join(mobilityNames[:], ", "))
	}
	return k, nil
}

// Config is one complete scenario. The zero value is not runnable; start
// from Default.
type Config struct {
	Seed     uint64
	Protocol ProtocolKind

	// Topology.
	N        int
	AreaSide float64

	// Mobility.
	Mobility  MobilityKind
	VMin      float64
	VMax      float64
	Pause     float64
	Positions []geom.Point // used by Static; nil → uniform random

	// Per-model mobility parameters; zero values select the documented
	// defaults so hand-built configs keep working — except GMAlpha, where
	// 0 is itself meaningful (memoryless Gauss-Markov) and the 0.75
	// default is set by Default() instead.
	//
	// GMAlpha is the Gauss-Markov memory α ∈ [0,1); GMStep its
	// discretization step in seconds (0 → 1).
	GMAlpha float64
	GMStep  float64
	// GroupCount and GroupRadius parameterize RPGM (0 → 4 groups, radius
	// AreaSide/6).
	GroupCount  int
	GroupRadius float64
	// StreetSpacing is the Manhattan grid pitch in metres (0 → AreaSide/5).
	StreetSpacing float64

	// Multicast group: the source plus GroupSize receivers.
	GroupSize int
	// Groups is the number of concurrent multicast groups (topics)
	// multiplexed over each node's radio; 0 or 1 runs the single-group
	// scenario unchanged. Group 0 is always the legacy group (source node
	// 0, GroupSize receivers, RateBps traffic); higher groups draw their
	// own source and members and scale their size and rate by the Zipf
	// popularity of their rank.
	Groups int
	// ZipfS is the popularity skew across groups: group g carries
	// unnormalized weight (g+1)^-ZipfS for its member-set size, source
	// rate, and churn share. 0 means uniform; Default sets 1.0. Ignored
	// with fewer than two groups.
	ZipfS float64
	// MemberChurnInterval, when > 0, swaps one random member for a random
	// non-member every interval: group size stays constant while the
	// membership set rotates, exercising the pruning machinery's dynamic
	// join/leave path. With multiple groups each tick first picks the
	// churning group by Zipf popularity, so hot topics also churn most.
	MemberChurnInterval float64

	// Traffic.
	RateBps      float64
	PayloadBytes int

	// Protocol timers.
	BeaconInterval float64

	// SSCore is the SS-SPST configuration template; Variant and
	// BeaconInterval are always overridden from this scenario config.
	// Default() sets the paper-faithful combination (hop-cap loop guard,
	// no make-before-break); the ablation experiments flip these to the
	// library's enhanced defaults.
	SSCore core.Config

	// Channel and energy.
	Medium medium.Config

	// Run control.
	Duration float64
	// Warmup delays metric collection start: ignored in this minimal
	// reproduction of the paper (which measures whole runs including the
	// stabilization transient), kept for ablations.
	Warmup float64
	// SampleInterval paces the availability sampler; 0 → beacon interval.
	SampleInterval float64
	// Battery joules per node; 0 means unlimited (negative rejected by
	// Validate). Finite reserves enable the network-lifetime metrics:
	// dead nodes, first/half-death times, and the dead-fraction timeline.
	Battery float64

	// Faults configures the deterministic fault processes (Gilbert-Elliott
	// bursty loss, crash/reboot node faults, partition windows). The zero
	// value injects nothing and draws nothing, so fault-free runs stay
	// bit-identical with earlier builds. Enabling any fault also switches
	// on the SS-SPST bounded join retry (graceful degradation under loss).
	Faults faults.Config

	// EventBudget bounds the number of simulator events one run may fire
	// before it is aborted as a failed result — the watchdog that turns a
	// runaway run into a diagnosable error instead of a hung sweep worker.
	// 0 derives a generous default from N and Duration (orders of
	// magnitude above any legitimate run).
	EventBudget uint64
	// Deadline, when > 0, bounds one replication's wall-clock execution
	// time in seconds. Unlike the event budget it catches runs that are
	// slow rather than busy; expiry surfaces as a runerr.ErrDeadline
	// failed replication, retryable (load-dependent) but never classified
	// deterministic.
	Deadline float64
	// StallEvents bounds the number of consecutive events fired at one
	// simulated instant before the run is aborted as livelocked
	// (runerr.ErrStall) — a zero-delay self-rescheduling cycle freezes
	// the clock and would otherwise burn the whole event budget. 0 means
	// DefaultStallEvents; legitimate same-instant cascades (protocol
	// floods reacting to one reception) stay far below it.
	StallEvents uint64
	// Check selects the end-of-run invariant tier; the zero value is
	// CheckCheap (always-on conservation laws). See CheckTier.
	Check CheckTier
}

// DefaultStallEvents is the stall detector's default streak limit: far
// above any legitimate same-instant event cascade (bounded by a few
// events per node per frame), far below the event budget.
const DefaultStallEvents = 1 << 20

// Default returns the paper's baseline scenario: 750 m × 750 m, 50 nodes,
// random waypoint at 1 m/s minimum, 20 receivers, 64 kb/s CBR of 512-byte
// packets, 2 s beacons, 1800 s (callers shorten Duration for tests).
func Default() Config {
	return Config{
		Seed:           1,
		Protocol:       SSSPSTE,
		N:              50,
		AreaSide:       750,
		Mobility:       RandomWaypoint,
		VMin:           1,
		VMax:           5,
		Pause:          2,
		GroupSize:      20,
		ZipfS:          1.0,
		GMAlpha:        0.75,
		RateBps:        64e3,
		PayloadBytes:   512,
		BeaconInterval: 2,
		// Paper-faithful switching cost (no make-before-break); the
		// path-vector loop guard is applied uniformly to all four
		// variants (see DESIGN.md — with the paper's bare hop-cap,
		// count-to-infinity outages dominate every energy metric's
		// delivery ratio and the comparison degenerates). The hop-cap
		// mode remains available as an ablation.
		SSCore: core.Config{
			LoopGuard:       core.LoopGuardPathVector,
			MakeBeforeBreak: false,
		},
		Medium:   medium.DefaultConfig(),
		Duration: 1800,
	}
}

// Result couples a run's summary with diagnostic channel statistics.
// A non-nil Err marks a failed replication (config error, runaway-run
// watchdog, or a panic isolated by the sweep engine); its Summary and
// Medium fields are zero and must not join metric pools.
type Result struct {
	Config  Config
	Summary metrics.Summary
	Medium  medium.Stats
	// PerGroup holds one summary per multicast group (len = effective
	// group count, ≥ 1): the group's traffic counters, service samples
	// and attributed energy spend. Node-lifecycle fields (death
	// landmarks, fault counters) live in Summary only. Empty on failed
	// runs.
	PerGroup []metrics.Summary
	// Attempts counts how many times the sweep engine ran this job under
	// its bounded-retry policy: 1 for a first-try success (0 in results
	// not produced by the engine), more when earlier attempts failed and
	// were retried.
	Attempts int
	Err      error
}

// Validate reports the first nonsensical setting in cfg, or nil. Run
// calls it and panics on a broken config with the validation message —
// far clearer than the index-out-of-range it would otherwise hit deep in
// group selection. GroupSize larger than N-1 is not an error: Run clamps
// it to "everyone but the source" (the paper's own densest setting).
func (cfg Config) Validate() error {
	if cfg.N < 2 {
		return fmt.Errorf("scenario: need at least 2 nodes (a source and a receiver), got N=%d", cfg.N)
	}
	if cfg.AreaSide <= 0 {
		return fmt.Errorf("scenario: AreaSide must be positive, got %v", cfg.AreaSide)
	}
	if cfg.GroupSize < 1 {
		return fmt.Errorf("scenario: GroupSize must be at least 1, got %d", cfg.GroupSize)
	}
	if cfg.Groups < 0 || cfg.Groups > 256 {
		return fmt.Errorf("scenario: Groups must be in [0, 256] (0 = single group; packet group ids are 8-bit), got %d", cfg.Groups)
	}
	if cfg.ZipfS < 0 {
		return fmt.Errorf("scenario: ZipfS must be >= 0 (0 = uniform popularity), got %v", cfg.ZipfS)
	}
	if cfg.Mobility != Static {
		if cfg.VMin <= 0 {
			return fmt.Errorf("scenario: VMin must be > 0 (Yoon/Liu/Noble fix), got %v", cfg.VMin)
		}
		if cfg.VMax < cfg.VMin {
			return fmt.Errorf("scenario: VMax %v < VMin %v", cfg.VMax, cfg.VMin)
		}
	}
	// Per-model parameters (zero always means "use the default").
	switch cfg.Mobility {
	case GaussMarkov:
		if cfg.GMAlpha < 0 || cfg.GMAlpha >= 1 {
			return fmt.Errorf("scenario: GMAlpha must be in [0,1), got %v", cfg.GMAlpha)
		}
		if cfg.GMStep < 0 {
			return fmt.Errorf("scenario: GMStep must be >= 0, got %v", cfg.GMStep)
		}
	case RPGM:
		if cfg.GroupCount < 0 {
			return fmt.Errorf("scenario: GroupCount must be >= 0, got %d", cfg.GroupCount)
		}
		if cfg.GroupRadius < 0 {
			return fmt.Errorf("scenario: GroupRadius must be >= 0, got %v", cfg.GroupRadius)
		}
	case Manhattan:
		if cfg.StreetSpacing < 0 || cfg.StreetSpacing > cfg.AreaSide {
			return fmt.Errorf("scenario: StreetSpacing must be in (0, AreaSide] (need a 2x2 street grid), got %v", cfg.StreetSpacing)
		}
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("scenario: Duration must be positive, got %v", cfg.Duration)
	}
	// Churn and lifetime knobs (both swept by figures 18–19): zero always
	// means "off"/"unlimited"; negatives are config typos, not settings.
	if cfg.MemberChurnInterval < 0 {
		return fmt.Errorf("scenario: MemberChurnInterval must be >= 0 (0 = no churn), got %v", cfg.MemberChurnInterval)
	}
	if cfg.Battery < 0 {
		return fmt.Errorf("scenario: Battery must be >= 0 joules (0 = unlimited), got %v", cfg.Battery)
	}
	if cfg.SampleInterval < 0 {
		return fmt.Errorf("scenario: SampleInterval must be >= 0 (0 = beacon interval), got %v", cfg.SampleInterval)
	}
	// Fault knobs follow the same convention: zero means "off", loss
	// probabilities live in [0,1], and partition windows must fit the run.
	if err := cfg.Faults.Validate(cfg.Duration); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if cfg.Deadline < 0 {
		return fmt.Errorf("scenario: Deadline must be >= 0 wall-clock seconds (0 = unlimited), got %v", cfg.Deadline)
	}
	if cfg.Check < CheckCheap || cfg.Check > CheckOff {
		return fmt.Errorf("scenario: invalid Check tier %d (want CheckCheap, CheckFull or CheckOff)", int(cfg.Check))
	}
	return nil
}

// buildMobility constructs cfg's movement model, filling in the
// documented per-model parameter defaults.
func buildMobility(cfg Config, area geom.Rect, root *xrand.RNG) mobility.Model {
	switch cfg.Mobility {
	case RandomWaypoint:
		return mobility.NewRandomWaypoint(area, cfg.VMin, cfg.VMax, cfg.Pause, root.Split("mobility"))
	case RandomDirection:
		return mobility.NewRandomDirection(area, cfg.VMin, cfg.VMax, cfg.Pause, root.Split("mobility"))
	case GaussMarkov:
		step := cfg.GMStep
		if step == 0 {
			step = 1
		}
		return mobility.NewGaussMarkov(area, cfg.VMin, cfg.VMax, cfg.GMAlpha, step, root.Split("mobility"))
	case RPGM:
		groups := cfg.GroupCount
		if groups == 0 {
			groups = 4
		}
		radius := cfg.GroupRadius
		if radius == 0 {
			radius = cfg.AreaSide / 6
		}
		return mobility.NewRPGM(area, cfg.VMin, cfg.VMax, groups, radius, root.Split("mobility"))
	case Manhattan:
		spacing := cfg.StreetSpacing
		if spacing == 0 {
			spacing = cfg.AreaSide / 5
		}
		return mobility.NewManhattan(area, cfg.VMin, cfg.VMax, cfg.Pause, spacing, root.Split("mobility"))
	case Static:
		pts := cfg.Positions
		if pts == nil {
			r := root.Split("static-pos")
			pts = make([]geom.Point, cfg.N)
			for i := range pts {
				pts[i] = geom.Point{X: r.Range(0, cfg.AreaSide), Y: r.Range(0, cfg.AreaSide)}
			}
		}
		return mobility.Static{Points: pts}
	default:
		panic("scenario: unknown mobility model")
	}
}

// RunContext is a reusable run arena — one per sweep worker. Its Run
// resets the simulator, mobility tracker, network and SS-SPST protocol
// instances in place instead of reallocating them, so replication k+1
// inherits replication k's grown storage: event-queue backing arrays and
// freelist, medium queues/registries/frame pools, neighbour tables,
// dedup-map buckets and position memos. Steady-state allocation across a
// sweep collapses to a small fixed per-run setup cost, taking the
// garbage collector off the sweep critical path.
//
// A RunContext is single-goroutine and its results are bit-identical to
// fresh-context runs (TestArenaReuseEquivalence).
type RunContext struct {
	sim     *sim.Simulator
	tracker *mobility.Tracker
	net     *netsim.Network
	// ssPool holds one reusable SS-SPST instance per protocol slot,
	// indexed group*N + node id; other protocol families allocate per run
	// (their instances are small).
	ssPool []*core.Protocol
	// replay is the reusable cursor for trace-driven runs (RunTraced).
	replay *mobility.Replay
	// groupCfg is the reusable per-run group table handed to netsim.
	groupCfg []netsim.GroupConfig
}

// NewRunContext returns an empty arena; the first Run populates it.
func NewRunContext() *RunContext { return &RunContext{} }

// Run executes one scenario to completion in a fresh arena. Callers
// running many scenarios on one goroutine should hold a RunContext and
// use its Run instead.
func Run(cfg Config) Result { return NewRunContext().Run(cfg) }

// RunE is Run with errors returned instead of panicking: a bad config, a
// mismatched trace or an unknown protocol comes back as (Result{Err: e},
// e). CLIs use it to print a message and exit 1 instead of a stack trace.
func RunE(cfg Config) (Result, error) { return NewRunContext().RunE(cfg) }

// Run executes one scenario to completion, reusing the arena.
func (rc *RunContext) Run(cfg Config) Result { return rc.RunTraced(cfg, nil) }

// RunE is the error-returning form of Run; see the package-level RunE.
func (rc *RunContext) RunE(cfg Config) (Result, error) { return rc.RunTracedE(cfg, nil) }

// RunTraced is Run over a shared mobility trace: instead of building
// cfg's movement model, the run replays trace through the arena's reusable
// cursor. The trace must have been recorded for exactly cfg's movement
// subset (TraceKey equality — the sweep engine guarantees it); results are
// bit-identical to Run because replayed legs are the recorded values
// verbatim and model construction draws nothing from the run's root RNG
// streams. A nil trace is plain Run.
//
// RunTraced panics on a broken config, preserving the historical contract;
// RunTracedE is the error-returning path underneath it.
func (rc *RunContext) RunTraced(cfg Config, trace *mobility.Recorded) Result {
	res, err := rc.RunTracedE(cfg, trace)
	if err != nil {
		panic(err.Error())
	}
	return res
}

// failed packages a setup or watchdog error as a failed Result.
func failed(cfg Config, err error) (Result, error) {
	return Result{Config: cfg, Err: err}, err
}

// RunTracedE is RunTraced with returned errors: configuration problems
// (Validate failures, trace/node-count mismatches, unknown protocols) and
// watchdog aborts produce (Result{Err: e}, e) instead of a panic, so a
// sweep degrades to a partial grid rather than dying. The arena stays
// reusable after any returned error.
func (rc *RunContext) RunTracedE(cfg Config, trace *mobility.Recorded) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return failed(cfg, runerr.Mark(runerr.ErrSetup, err))
	}
	// Clamp, don't fail: a sweep asking for more receivers than exist
	// means "everyone but the source".
	if cfg.GroupSize > cfg.N-1 {
		cfg.GroupSize = cfg.N - 1
	}

	if rc.sim == nil {
		rc.sim = sim.New(cfg.Seed)
	} else {
		rc.sim.Reset(cfg.Seed)
	}
	s := rc.sim
	root := xrand.New(cfg.Seed)

	area := geom.Square(cfg.AreaSide)
	var model mobility.Model
	if trace != nil {
		if trace.N() != cfg.N {
			return failed(cfg, runerr.Mark(runerr.ErrSetup,
				fmt.Errorf("scenario: trace node count %d does not match config N=%d", trace.N(), cfg.N)))
		}
		if rc.replay == nil {
			rc.replay = trace.Replay()
		} else {
			rc.replay.Reset(trace)
		}
		model = rc.replay
	} else {
		model = buildMobility(cfg, area, root)
	}
	if rc.tracker == nil {
		rc.tracker = mobility.NewTracker(cfg.N, model)
	} else {
		rc.tracker.Reset(cfg.N, model)
	}
	tracker := rc.tracker

	// Group selection. Group 0 is always the legacy group — source node
	// 0, receivers drawn uniformly from the rest on the historical
	// "group" stream — so single-group runs are bit-identical with
	// pre-multiplexing builds. Additional groups draw from their own
	// per-group streams forked off a separate label, so enabling them
	// consumes nothing from any legacy stream.
	k := cfg.Groups
	if k < 1 {
		k = 1
	}
	src := packet.NodeID(0)
	perm := root.Split("group").Perm(cfg.N - 1)
	members := make([]packet.NodeID, 0, cfg.GroupSize)
	for _, idx := range perm[:cfg.GroupSize] {
		members = append(members, packet.NodeID(idx+1))
	}
	rc.groupCfg = append(rc.groupCfg[:0], netsim.GroupConfig{Source: src, Members: members})
	var zipf *xrand.Zipf
	if k > 1 {
		zipf = xrand.NewZipf(k, cfg.ZipfS)
		multi := root.Split("groups.multi")
		for g := 1; g < k; g++ {
			gr := multi.SplitIndex(g)
			// Sources may collide across groups on purpose: one node
			// sourcing several topics is exactly the multiplexing the
			// refactor models.
			gsrc := packet.NodeID(gr.Intn(cfg.N))
			size := zipfGroupSize(cfg.GroupSize, zipf.Weight(g), cfg.N)
			gm := make([]packet.NodeID, 0, size)
			for _, idx := range gr.Perm(cfg.N - 1)[:size] {
				id := packet.NodeID(idx)
				if id >= gsrc {
					id++ // skip the group's source
				}
				gm = append(gm, id)
			}
			rc.groupCfg = append(rc.groupCfg, netsim.GroupConfig{Source: gsrc, Members: gm})
		}
	}

	vmax := cfg.VMax
	if cfg.Mobility == Static {
		vmax = 0
	}
	// Fault processes ride through the medium config: the Gilbert-Elliott
	// chains and the partition cut act at delivery time, where the physical
	// effects they model (burst fades, geometric obstacles) live.
	mcfg := cfg.Medium
	mcfg.GELoss = cfg.Faults.Loss
	mcfg.Partition = cfg.Faults.Partition
	mcfg.PartitionArea = cfg.AreaSide
	ncfg := netsim.Config{
		N:            cfg.N,
		Groups:       rc.groupCfg,
		Medium:       mcfg,
		Battery:      cfg.Battery,
		PayloadBytes: cfg.PayloadBytes,
		Area:         area,
		VMax:         vmax,
		StaticNodes:  cfg.Mobility == Static,
	}
	if rc.net == nil {
		rc.net = netsim.New(s, tracker, ncfg)
	} else {
		rc.net.Reset(s, tracker, ncfg)
	}
	net := rc.net

	if err := rc.attachProtocols(net, cfg); err != nil {
		return failed(cfg, runerr.Mark(runerr.ErrSetup, err))
	}
	net.Start()

	if cfg.Faults.CrashMTBF > 0 {
		rc.attachCrashFaults(net, cfg, root.Split("faults.crash"))
	}

	// One CBR source per group, attached to the group's source slot; a
	// group's rate scales with its Zipf popularity (group 0 keeps the
	// configured rate exactly — its weight is always 1).
	for g := 0; g < k; g++ {
		rate := cfg.RateBps
		if zipf != nil {
			rate = cfg.RateBps * zipf.Weight(g)
		}
		traffic.CBR{
			RateBps:      rate,
			PayloadBytes: cfg.PayloadBytes,
			Start:        0,
		}.Attach(net.Nodes[net.Groups[g].Source].Slots[g])
	}

	if cfg.Protocol.SelfStabilizing() {
		interval := cfg.SampleInterval
		if interval == 0 {
			interval = cfg.BeaconInterval
		}
		attachAvailabilitySampler(net, interval)
	}

	if cfg.MemberChurnInterval > 0 {
		attachMembershipChurn(net, cfg.MemberChurnInterval, root.Split("churn"), zipf)
	}

	// Watchdog: bound the event count so a runaway run (a feedback loop
	// that floods the queue, a timer that reschedules itself at zero delay)
	// becomes a failed result instead of a hung sweep worker. The default
	// is orders of magnitude above any legitimate run's event count.
	budget := cfg.EventBudget
	if budget == 0 {
		budget = 50000 * uint64(cfg.N) * uint64(cfg.Duration+1)
	}
	s.SetBudget(budget)
	// Companion watchdogs: the stall detector catches a frozen clock long
	// before the budget would, and the wall-clock deadline catches runs
	// that are slow rather than busy. Both default on (the stall limit) or
	// off (the deadline); neither consumes RNG draws or schedules events,
	// so enabling them cannot perturb results.
	stall := cfg.StallEvents
	if stall == 0 {
		stall = DefaultStallEvents
	}
	s.SetStallLimit(stall)
	if cfg.Deadline > 0 {
		s.SetWallDeadline(time.Duration(cfg.Deadline * float64(time.Second)))
	}

	s.Run(cfg.Duration)
	switch {
	case s.BudgetExceeded():
		return failed(cfg, runerr.Mark(runerr.ErrBudget,
			fmt.Errorf("scenario: run exceeded event budget %d before t=%v (seed %d, %v, N=%d) — runaway event loop",
				budget, cfg.Duration, cfg.Seed, cfg.Protocol, cfg.N)))
	case s.Stalled():
		return failed(cfg, runerr.Mark(runerr.ErrStall,
			fmt.Errorf("scenario: run stalled: %d consecutive events at t=%v without the clock advancing (seed %d, %v, N=%d) — livelock",
				stall, s.HaltedAt(), cfg.Seed, cfg.Protocol, cfg.N)))
	case s.DeadlineExceeded():
		return failed(cfg, runerr.Mark(runerr.ErrDeadline,
			fmt.Errorf("scenario: run exceeded wall-clock deadline %gs at t=%v of %v (seed %d, %v, N=%d)",
				cfg.Deadline, s.HaltedAt(), cfg.Duration, cfg.Seed, cfg.Protocol, cfg.N)))
	}
	res := Result{
		Config:   cfg,
		Summary:  net.Summarize(),
		Medium:   net.Medium.Stats(),
		PerGroup: net.Collector.SummarizeGroups(nil),
	}
	if cfg.Check != CheckOff {
		if err := checkInvariants(cfg, net, res.Summary, res.PerGroup); err != nil {
			return failed(cfg, err)
		}
	}
	return res, nil
}

// zipfGroupSize scales the configured group size by a group's Zipf weight,
// clamped to [1, n-1] (at least one receiver, at most everyone but the
// source).
func zipfGroupSize(base int, w float64, n int) int {
	size := int(float64(base)*w + 0.5)
	if size < 1 {
		size = 1
	}
	if size > n-1 {
		size = n - 1
	}
	return size
}

// protocolFor builds (or resets, for the pooled SS family) the protocol
// instance for slot i (= group*N + node id). Fault-injected scenarios
// enable the SS-SPST bounded join retry so a lost JOIN round degrades to
// a delayed join instead of an orphaned member.
func (rc *RunContext) protocolFor(cfg Config, i int) (netsim.Protocol, error) {
	switch cfg.Protocol {
	case SSSPST, SSSPSTT, SSSPSTF, SSSPSTE, SSMST:
		ccfg := cfg.SSCore
		ccfg.Variant = cfg.Protocol.Variant()
		ccfg.BeaconInterval = cfg.BeaconInterval
		if cfg.Faults.Any() {
			ccfg.JoinRetry = true
		}
		if p := rc.ssPool[i]; p != nil {
			p.Reset(ccfg, cfg.N)
			return p, nil
		}
		p := core.New(ccfg, cfg.N)
		rc.ssPool[i] = p
		return p, nil
	case MAODV:
		return maodv.New(maodv.DefaultConfig()), nil
	case ODMRP:
		return odmrp.New(odmrp.DefaultConfig()), nil
	case Flood:
		return flood.New(), nil
	default:
		return nil, fmt.Errorf("scenario: unknown protocol %v", cfg.Protocol)
	}
}

// attachProtocols instantiates cfg.Protocol on every slot of every node
// (one instance per group), reusing the arena's SS-SPST instances (reset
// in place) when the scenario runs the SS family.
func (rc *RunContext) attachProtocols(net *netsim.Network, cfg Config) error {
	k := net.GroupCount()
	if cfg.Protocol.SelfStabilizing() {
		for len(rc.ssPool) < k*cfg.N {
			rc.ssPool = append(rc.ssPool, nil)
		}
	}
	for g := 0; g < k; g++ {
		for i := 0; i < cfg.N; i++ {
			p, err := rc.protocolFor(cfg, g*cfg.N+i)
			if err != nil {
				return err
			}
			net.SetGroupProtocol(g, packet.NodeID(i), p)
		}
	}
	return nil
}

// attachCrashFaults precomputes each node's crash/reboot schedule from its
// own fault stream and installs the transitions as simulator events. The
// schedule is a pure function of the seed — runtime state never feeds back
// into fault timing — so fault trajectories are identical across worker
// counts and arena reuse; only the fire-time guards (battery-dead or
// already-down nodes can't crash; dead nodes can't recover) consult state.
// The source (node 0) is excluded: a crashed source would silence the
// traffic generator and every protocol equally, measuring nothing.
func (rc *RunContext) attachCrashFaults(net *netsim.Network, cfg Config, root *xrand.RNG) {
	for i := 1; i < cfg.N; i++ {
		events := cfg.Faults.CrashSchedule(root.SplitIndex(i), cfg.Duration)
		id := packet.NodeID(i)
		for _, ev := range events {
			if ev.Down {
				net.Sim.At(ev.At, func() { net.Crash(id) })
			} else {
				net.Sim.At(ev.At, func() {
					if net.Recover(id) {
						rc.restartProtocol(net, cfg, id)
					}
				})
			}
		}
	}
}

// restartProtocol re-runs the protocol join path on a freshly recovered
// node: the crash dropped all protocol state, so the node comes back as a
// newborn in every group it hosts a slot for — SS-SPST re-adopts a parent
// from the next beacon (with retry pressure if faults keep eating them),
// ODMRP/MAODV relearn routes from the next refresh flood. Every group's
// instance is reinstalled before any is started, mirroring the initial
// attach order.
func (rc *RunContext) restartProtocol(net *netsim.Network, cfg Config, id packet.NodeID) {
	for g := 0; g < net.GroupCount(); g++ {
		p, err := rc.protocolFor(cfg, g*cfg.N+int(id))
		if err != nil {
			return // unreachable: the initial attach validated cfg.Protocol
		}
		net.SetGroupProtocol(g, id, p)
	}
	net.StartNode(id)
}

// attachAvailabilitySampler probes, once per interval and per member,
// whether the multicast service reached that member during the preceding
// interval — the paper's unavailability ratio (Figure 8): the fraction of
// the multicast duration for which the service is effectively down while
// the protocol restabilizes. With CBR traffic far faster than the sample
// interval, a window with zero deliveries means the member's path was
// broken for essentially the whole window.
func attachAvailabilitySampler(net *netsim.Network, interval float64) {
	// One ticker serves every group (the ticker count feeds the
	// simulator's jitter-stream derivation, so multi-group runs must not
	// add tickers relative to single-group ones).
	net.Sim.Every(interval, 0, func() {
		now := net.Sim.Now()
		for g := range net.Groups {
			for _, m := range net.Groups[g].Members {
				// A battery-dead member is not a protocol outage: its radio is
				// permanently off, so no tree repair can ever reach it again.
				// Sampling it would conflate restabilization time (what the
				// unavailability ratio prices) with node death (what the
				// lifetime metrics — DeadNodes, FirstDeathS, the dead-fraction
				// timeline — report); lifetime runs would see unavailability
				// ratchet toward 1 as nodes die.
				if net.Nodes[m].Dead() {
					continue
				}
				// Baseline the outage clock at the member's join time: a node
				// that joined mid-window has a LastDelivery predating its
				// membership (or none at all), and counting that silence as an
				// outage would charge the protocol for time the member was not
				// even in the group.
				base := net.GroupJoinedAt(g, m)
				if last, ever := net.Collector.GroupLastDelivery(g, m); ever && last > base {
					base = last
				}
				net.Collector.GroupServiceSample(g, now-base > interval)
			}
		}
	})
}

// attachMembershipChurn swaps one member for one non-member every
// interval, keeping each group's size constant while rotating its
// membership. With several groups each tick first draws the churning
// group from the Zipf popularity (nil zipf = single-group run, no extra
// draw), so hot topics see proportionally more membership dynamics.
func attachMembershipChurn(net *netsim.Network, interval float64, r *xrand.RNG, zipf *xrand.Zipf) {
	// The non-member scratch is hoisted out of the tick: churn fires
	// hundreds of times per run and the candidate set is bounded by N,
	// so one buffer serves every tick without reallocating. One ticker
	// serves every group (see attachAvailabilitySampler).
	var outs []packet.NodeID
	net.Sim.Every(interval, 0.2, func() {
		g := 0
		if zipf != nil {
			g = zipf.Rank(r)
		}
		gs := &net.Groups[g]
		if len(gs.Members) == 0 {
			return
		}
		// Collect the group's non-members (excluding its source).
		// Battery-dead nodes are never candidates: swapping one in would
		// permanently wedge a group slot on a silent radio — the group
		// size invariant would hold on paper while the effective group
		// shrank for the rest of the run.
		outs = outs[:0]
		for _, n := range net.Nodes {
			// Crashed (down) nodes are skipped for the same reason as dead
			// ones; unlike death the exclusion is temporary — the node is a
			// candidate again after recovery.
			sl := n.Slots[g]
			if !sl.Member && !sl.Source && !n.Dead() && !net.IsDown(n.ID) {
				outs = append(outs, n.ID)
			}
		}
		if len(outs) == 0 {
			return
		}
		leave := gs.Members[r.Intn(len(gs.Members))]
		join := outs[r.Intn(len(outs))]
		net.SetGroupMember(g, leave, false)
		net.SetGroupMember(g, join, true)
	})
}

// ReplicationSeed derives the seed of replication i from a base seed via
// one SplitMix64 step: the golden-gamma increment followed by the full
// finalizer. The finalizer is a bijection, so two replications collide
// exactly when their pre-mix values base + γ·(i+1) do — i.e. when two base
// seeds differ by an exact multiple of γ ≈ 0.618·2⁶⁴. Because γ/2⁶⁴ is
// the golden ratio (whose continued fraction bounds how close k·γ can
// come to 0 mod 2⁶⁴), bases within ~10¹⁶ of each other can never collide
// for replication indices below a few thousand. The previous additive
// stride (base + i·1000003) collided whenever two sweep points' bases
// differed by a multiple of the stride — which nested seed derivations
// produced in practice.
// Replication 0 is the base seed itself, preserving two properties the
// suite relies on: RunSeeds(cfg, 1) reproduces Run(cfg) exactly, and
// sweep points sharing a base seed keep their common-random-numbers
// pairing for the first replication.
func ReplicationSeed(base uint64, i int) uint64 {
	if i == 0 {
		return base
	}
	const gamma = 0x9E3779B97F4A7C15
	z := base + gamma*uint64(i)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// RunSeeds runs cfg once per replication (seeds derived from cfg.Seed via
// ReplicationSeed) on the shared sweep engine and returns the pooled mean
// summary. Calls from inside a sweep worker drain their replications on
// the caller's own goroutine plus whatever engine workers are idle — no
// nested pool is ever spawned.
func RunSeeds(cfg Config, seeds int) metrics.Summary {
	cfgs := make([]Config, seeds)
	for i := range cfgs {
		cfgs[i] = cfg
		cfgs[i].Seed = ReplicationSeed(cfg.Seed, i)
	}
	results := Sweep(cfgs)
	// Failed replications (isolated panics, watchdog aborts) carry zero
	// summaries; pooling them would drag every mean toward zero. Skip them
	// — the pooled answer degrades to fewer replications.
	sums := make([]metrics.Summary, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		sums = append(sums, r.Summary)
	}
	return metrics.Mean(sums)
}
