package scenario

import (
	"fmt"
	"math"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/runerr"
)

// CheckTier selects how much end-of-run self-verification a replication
// performs. The zero value is CheckCheap: the cheap conservation laws
// are always on — they are O(N) against runs that fire millions of
// events, and a violation means the simulator is corrupting the very
// numbers the figures plot. Violations surface as ErrInvariant failed
// replications and are excluded from metric pools like any other
// failure; they are never retried (a conservation bug is a pure function
// of config and build).
type CheckTier int

const (
	// CheckCheap (the default) verifies the O(N) conservation laws:
	// energy ledger, reception conservation, cross-layer byte counters,
	// death counts, and the per-group partition of the pooled summary.
	CheckCheap CheckTier = iota
	// CheckFull adds the expensive recount pass: every group's delivered
	// tally recomputed from the dedup bitsets.
	CheckFull
	// CheckOff disables all end-of-run verification.
	CheckOff
)

// String implements fmt.Stringer (also the -check flag's vocabulary).
func (t CheckTier) String() string {
	switch t {
	case CheckCheap:
		return "cheap"
	case CheckFull:
		return "full"
	case CheckOff:
		return "off"
	default:
		return fmt.Sprintf("CheckTier(%d)", int(t))
	}
}

// ParseCheckTier parses the -check flag's vocabulary.
func ParseCheckTier(s string) (CheckTier, error) {
	switch s {
	case "cheap", "":
		return CheckCheap, nil
	case "full":
		return CheckFull, nil
	case "off":
		return CheckOff, nil
	default:
		return 0, fmt.Errorf("unknown check tier %q (want cheap, full or off)", s)
	}
}

// checkInvariants verifies a finished run at cfg.Check's tier: the
// netsim cross-layer conservation laws, then the partition law — the
// per-group summaries must partition the pooled summary exactly (ints)
// or to float tolerance (sums accumulated in different orders). Returns
// nil or an error wrapping *runerr.InvariantError.
func checkInvariants(cfg Config, net *netsim.Network, sum metrics.Summary, perGroup []metrics.Summary) error {
	if err := net.CheckConservation(cfg.Check == CheckFull); err != nil {
		return fmt.Errorf("scenario: %w (cfg %s, seed %d)", err, cfg.Fingerprint(), cfg.Seed)
	}
	if err := checkPartition(sum, perGroup); err != nil {
		return fmt.Errorf("scenario: %w (cfg %s, seed %d)", err, cfg.Fingerprint(), cfg.Seed)
	}
	return nil
}

// partitionRelTol tolerates the float rounding between a per-group sum
// and the pooled counter accumulated in a different order; see
// netsim.CheckConservation's discussion. Integer fields compare exactly.
const partitionRelTol = 1e-6

func partitionClose(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= partitionRelTol*(math.Abs(a)+math.Abs(b)+1)
}

// checkPartition verifies that the per-group summaries exactly partition
// the pooled run summary: every group-attributed counter summed across
// groups must reproduce the global tally. The integer laws are exact by
// construction (each collector event increments one group and the global
// at the same site); a mismatch means an event was attributed to a group
// but lost from the pool or vice versa.
func checkPartition(sum metrics.Summary, perGroup []metrics.Summary) error {
	if len(perGroup) == 0 {
		return &runerr.InvariantError{Name: "pergroup-partition", Detail: "run produced no per-group summaries"}
	}
	var g metrics.Summary
	var txJ, rxJ, discardJ float64
	for _, p := range perGroup {
		g.Sent += p.Sent
		g.Expected += p.Expected
		g.Delivered += p.Delivered
		g.Duplicates += p.Duplicates
		g.ControlBytes += p.ControlBytes
		g.DataTxBytes += p.DataTxBytes
		g.UniquePayloadBytes += p.UniquePayloadBytes
		g.UnavailSamples += p.UnavailSamples
		g.UnavailBroken += p.UnavailBroken
		g.DelaySumS += p.DelaySumS
		txJ += p.TxJ
		rxJ += p.RxJ
		discardJ += p.DiscardJ
	}
	type intLaw struct {
		name      string
		got, want int64
	}
	for _, law := range []intLaw{
		{"sent", int64(g.Sent), int64(sum.Sent)},
		{"expected", int64(g.Expected), int64(sum.Expected)},
		{"delivered", int64(g.Delivered), int64(sum.Delivered)},
		{"duplicates", int64(g.Duplicates), int64(sum.Duplicates)},
		{"control-bytes", g.ControlBytes, sum.ControlBytes},
		{"data-bytes", g.DataTxBytes, sum.DataTxBytes},
		{"payload-bytes", g.UniquePayloadBytes, sum.UniquePayloadBytes},
		{"unavail-samples", int64(g.UnavailSamples), int64(sum.UnavailSamples)},
		{"unavail-broken", int64(g.UnavailBroken), int64(sum.UnavailBroken)},
	} {
		if law.got != law.want {
			return &runerr.InvariantError{
				Name:   "pergroup-partition",
				Detail: fmt.Sprintf("%s: groups sum to %d, pooled summary says %d", law.name, law.got, law.want),
			}
		}
	}
	if !partitionClose(g.DelaySumS, sum.DelaySumS) {
		return &runerr.InvariantError{
			Name:   "pergroup-partition",
			Detail: fmt.Sprintf("delay-sum: groups sum to %.9g s, pooled summary says %.9g s", g.DelaySumS, sum.DelaySumS),
		}
	}
	// Attributed energy: every meter charge is mirrored into exactly one
	// group tally at the charging site, so the group sums reproduce the
	// meter totals up to summation order.
	if !partitionClose(txJ, sum.TxJ) || !partitionClose(rxJ, sum.RxJ) || !partitionClose(discardJ, sum.DiscardJ) {
		return &runerr.InvariantError{
			Name: "pergroup-energy",
			Detail: fmt.Sprintf("groups attribute tx/rx/discard %.9g/%.9g/%.9g J, meters hold %.9g/%.9g/%.9g J",
				txJ, rxJ, discardJ, sum.TxJ, sum.RxJ, sum.DiscardJ),
		}
	}
	return nil
}
