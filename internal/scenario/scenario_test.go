package scenario

import (
	"testing"
)

func TestDefaultMatchesPaper(t *testing.T) {
	cfg := Default()
	if cfg.N != 50 || cfg.AreaSide != 750 || cfg.GroupSize != 20 {
		t.Errorf("topology defaults: %+v", cfg)
	}
	if cfg.RateBps != 64e3 || cfg.PayloadBytes != 512 {
		t.Errorf("traffic defaults: %+v", cfg)
	}
	if cfg.BeaconInterval != 2 || cfg.Duration != 1800 {
		t.Errorf("timer defaults: %+v", cfg)
	}
	if cfg.VMin <= 0 {
		t.Error("paper requires non-zero minimum speed")
	}
}

func TestProtocolKindString(t *testing.T) {
	if SSSPSTE.String() != "SS-SPST-E" || ODMRP.String() != "ODMRP" {
		t.Error("protocol names wrong")
	}
}

func TestSelfStabilizing(t *testing.T) {
	for _, k := range []ProtocolKind{SSSPST, SSSPSTT, SSSPSTF, SSSPSTE} {
		if !k.SelfStabilizing() {
			t.Errorf("%v should be self-stabilizing", k)
		}
	}
	for _, k := range []ProtocolKind{MAODV, ODMRP, Flood} {
		if k.SelfStabilizing() {
			t.Errorf("%v should not be self-stabilizing", k)
		}
	}
}

func TestVariantMapping(t *testing.T) {
	if SSSPST.Variant().String() != "SS-SPST" || SSSPSTE.Variant().String() != "SS-SPST-E" {
		t.Error("variant mapping wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Variant() on MAODV should panic")
		}
	}()
	MAODV.Variant()
}

func TestSweepMatchesSequential(t *testing.T) {
	mk := func(v float64) Config {
		cfg := Default()
		cfg.Duration = 40
		cfg.VMax = v
		return cfg
	}
	cfgs := []Config{mk(1), mk(5), mk(10)}
	seq := make([]Result, len(cfgs))
	for i, c := range cfgs {
		seq[i] = Run(c)
	}
	par := SweepN(cfgs, 4)
	for i := range cfgs {
		if seq[i].Summary != par[i].Summary {
			t.Errorf("point %d: parallel result differs from sequential", i)
		}
	}
}

func TestRunSeedsAverages(t *testing.T) {
	cfg := Default()
	cfg.Duration = 40
	s2 := RunSeeds(cfg, 2)
	if s2.Sent == 0 {
		t.Error("no traffic in averaged runs")
	}
	s1 := RunSeeds(cfg, 1)
	one := Run(cfg).Summary
	if s1.PDR != one.PDR {
		t.Error("single-seed RunSeeds differs from Run")
	}
	_ = s2
}

func TestStaticMobilityScenario(t *testing.T) {
	cfg := Default()
	cfg.Mobility = Static
	cfg.Duration = 60
	cfg.Protocol = SSSPST
	s := Run(cfg).Summary
	// A static connected-ish topology should deliver very well once
	// stabilized and show near-zero late unavailability.
	if s.PDR < 0.5 {
		t.Errorf("static PDR = %v", s.PDR)
	}
}

func TestRandomDirectionScenario(t *testing.T) {
	cfg := Default()
	cfg.Mobility = RandomDirection
	cfg.Duration = 60
	cfg.Protocol = SSSPSTE
	s := Run(cfg).Summary
	if s.PDR <= 0.1 {
		t.Errorf("random-direction PDR = %v", s.PDR)
	}
}

func TestBatteryDepletion(t *testing.T) {
	cfg := Default()
	cfg.Duration = 120
	cfg.Battery = 2 // tiny: several nodes must die
	s := Run(cfg).Summary
	if s.DeadNodes == 0 {
		t.Error("no node died on a 2 J battery in 120 s")
	}
}

func TestGroupSizeBounds(t *testing.T) {
	cfg := Default()
	cfg.GroupSize = cfg.N - 1 // everyone but the source
	cfg.Duration = 30
	s := Run(cfg).Summary
	if s.Expected == 0 {
		t.Error("full-group scenario produced no expectations")
	}
}
