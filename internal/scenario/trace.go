package scenario

import (
	"sync"

	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/xrand"
)

// TraceKey is the movement-determining subset of Config: two configs with
// equal keys produce bit-identical node trajectories, whatever their
// protocol, traffic, timer or energy settings. It is the cache identity
// for shared mobility traces — the 8 protocol runs at one figure point
// differ only outside this key, so they replay one recorded movement
// history instead of regenerating it 8 times.
//
// Per-model parameters are normalized exactly as buildMobility resolves
// them (zero → documented default, parameters the model ignores → zero),
// so "default spelled explicitly" and "default spelled as zero" share a
// trace, and a leftover RPGM GroupCount does not split the Gauss-Markov
// cache.
type TraceKey struct {
	Mobility MobilityKind
	Seed     uint64
	N        int
	AreaSide float64
	Duration float64

	VMin, VMax, Pause float64

	GMAlpha, GMStep            float64
	GroupCount                 int
	GroupRadius, StreetSpacing float64
}

// traceKeyOf returns cfg's trace key. ok is false when the config's
// movement is not cacheable: Static placements (trivially cheap, and
// caller-supplied Positions have no value identity to key on).
func traceKeyOf(cfg Config) (k TraceKey, ok bool) {
	if cfg.Mobility == Static {
		return TraceKey{}, false
	}
	k = TraceKey{
		Mobility: cfg.Mobility,
		Seed:     cfg.Seed,
		N:        cfg.N,
		AreaSide: cfg.AreaSide,
		Duration: cfg.Duration,
		VMin:     cfg.VMin,
		VMax:     cfg.VMax,
	}
	switch cfg.Mobility {
	case RandomWaypoint, RandomDirection:
		k.Pause = cfg.Pause
	case GaussMarkov:
		k.GMAlpha = cfg.GMAlpha
		k.GMStep = cfg.GMStep
		if k.GMStep == 0 {
			k.GMStep = 1
		}
	case RPGM:
		k.GroupCount = cfg.GroupCount
		if k.GroupCount == 0 {
			k.GroupCount = 4
		}
		k.GroupRadius = cfg.GroupRadius
		if k.GroupRadius == 0 {
			k.GroupRadius = cfg.AreaSide / 6
		}
	case Manhattan:
		k.Pause = cfg.Pause
		k.StreetSpacing = cfg.StreetSpacing
		if k.StreetSpacing == 0 {
			k.StreetSpacing = cfg.AreaSide / 5
		}
	}
	return k, true
}

// TraceCache shares recorded mobility traces between the runs of a sweep.
// Entries are reference-counted by the scheduler: every job registers its
// key before running and releases it after, and an entry whose last
// registered job has finished is evicted — the cache's live size is
// bounded by the traces still in use, not by the sweep's total extent.
type TraceCache struct {
	mu      sync.Mutex
	entries map[TraceKey]*traceEntry
	hits    uint64
	misses  uint64
}

type traceEntry struct {
	trace   *mobility.Recorded
	pending int
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: map[TraceKey]*traceEntry{}}
}

// register declares one upcoming run for key, pinning its entry.
func (c *TraceCache) register(key TraceKey) {
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &traceEntry{}
		c.entries[key] = e
	}
	e.pending++
	c.mu.Unlock()
}

// acquire returns the shared trace for cfg (whose key must be registered),
// creating it on first use. The trace records lazily: the first run to
// need a leg generates it, later runs replay it.
func (c *TraceCache) acquire(cfg Config, key TraceKey) *mobility.Recorded {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e.trace == nil {
		root := xrand.New(cfg.Seed)
		e.trace = mobility.NewRecorded(cfg.N, buildMobility(cfg, geom.Square(cfg.AreaSide), root))
		c.misses++
	} else {
		c.hits++
	}
	return e.trace
}

// release undoes one register; the entry is evicted when its last
// registered run has finished.
func (c *TraceCache) release(key TraceKey) {
	c.mu.Lock()
	defer c.mu.Unlock() // deferred: a paired-release bug must not hold the lock forever
	e := c.entries[key]
	e.pending--
	if e.pending == 0 {
		delete(c.entries, key)
	}
}

// Stats returns the cumulative replay hits and recording misses.
func (c *TraceCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Live returns the number of traces currently held.
func (c *TraceCache) Live() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
