package scenario

import "testing"

// TestMembershipChurn runs the dynamic join/leave workload: the group
// rotates one member every few seconds while the size stays constant.
// The self-stabilizing tree must keep delivering to the current members.
func TestMembershipChurn(t *testing.T) {
	cfg := Default()
	cfg.Protocol = SSSPSTE
	cfg.Duration = 150
	cfg.VMax = 2
	cfg.MemberChurnInterval = 5
	s := Run(cfg).Summary
	if s.PDR < 0.4 {
		t.Errorf("PDR under membership churn = %v", s.PDR)
	}
	if s.Sent == 0 || s.Expected == 0 {
		t.Fatal("no traffic")
	}
	t.Logf("churn run: %v", s)
}

// TestChurnKeepsGroupSize verifies the swap invariant directly.
func TestChurnKeepsGroupSize(t *testing.T) {
	cfg := Default()
	cfg.Duration = 60
	cfg.MemberChurnInterval = 2
	cfg.GroupSize = 10
	// Run indirectly and check via expected counts: group size at each
	// send must equal 10, so Expected == Sent × 10 exactly.
	s := Run(cfg).Summary
	if s.Expected != s.Sent*10 {
		t.Errorf("group size drifted: expected=%d sent=%d", s.Expected, s.Sent)
	}
}
