package scenario

import (
	"testing"

	"repro/internal/flood"
	"repro/internal/geom"
	"repro/internal/medium"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// deadNodeRig builds a small static network with finite batteries and
// flood protocols, ready for churn/sampler attachment: node 0 is the
// source, nodes 1..members are the initial group.
func deadNodeRig(t *testing.T, n, members int) (*sim.Simulator, *netsim.Network) {
	t.Helper()
	s := sim.New(1)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * 50}
	}
	tracker := mobility.NewTracker(n, mobility.Static{Points: pts})
	mcfg := medium.DefaultConfig()
	mcfg.LossProb = 0
	var ms []packet.NodeID
	for i := 1; i <= members; i++ {
		ms = append(ms, packet.NodeID(i))
	}
	net := netsim.New(s, tracker, netsim.Config{
		N: n, Source: 0, Members: ms, Medium: mcfg,
		Battery: 100, PayloadBytes: 64, Area: geom.Square(float64(n) * 50),
		StaticNodes: true,
	})
	for i := 0; i < n; i++ {
		net.SetProtocol(packet.NodeID(i), flood.New())
	}
	net.Start()
	return s, net
}

// TestChurnSkipsDeadNodes is the regression test for the dead-node churn
// bug: attachMembershipChurn's candidate scan filtered on Member/Source
// but never on battery death, so a lifetime run could rotate a depleted
// node into the group and wedge that slot on a silent radio for the rest
// of the run. With every non-member but one dead, churn must only ever
// swap with the single live candidate.
func TestChurnSkipsDeadNodes(t *testing.T) {
	s, net := deadNodeRig(t, 6, 1) // source 0, member 1; non-members 2..5
	dead := []packet.NodeID{3, 4, 5}
	for _, id := range dead {
		net.Kill(id)
	}
	attachMembershipChurn(net, 1, xrand.New(7), nil)
	s.Run(30)

	for _, id := range dead {
		if net.IsMember(id) {
			t.Errorf("dead node %d was churned into the group", id)
		}
		if net.JoinedAt(id) != 0 {
			t.Errorf("dead node %d has a join timestamp %v", id, net.JoinedAt(id))
		}
	}
	// The group slot kept rotating between the two live candidates.
	if len(net.Groups[0].Members) != 1 {
		t.Fatalf("group size drifted: %v", net.Groups[0].Members)
	}
	if m := net.Groups[0].Members[0]; m != 1 && m != 2 {
		t.Errorf("member %d is not one of the live candidates", m)
	}
	if net.JoinedAt(2) == 0 {
		t.Error("live candidate 2 never joined across 30 churn ticks")
	}
}

// TestSamplerSkipsDeadMembers pins the availability-sampler fix: a member
// whose battery died is permanently unreachable — that is node death
// (DeadNodes, FirstDeathS), not protocol restabilization time, so the
// sampler must stop charging its outage windows to the unavailability
// ratio. With one of two members killed, the run takes exactly half the
// samples of the all-alive run instead of ratcheting unavailability
// toward 1.
func TestSamplerSkipsDeadMembers(t *testing.T) {
	samples := func(kill bool) (int, int) {
		s, net := deadNodeRig(t, 4, 2)
		if kill {
			net.Kill(2)
		}
		attachAvailabilitySampler(net, 1)
		s.Run(20)
		sum := net.Summarize()
		return sum.UnavailSamples, sum.DeadNodes
	}
	alive, deadCount := samples(false)
	if alive == 0 || deadCount != 0 {
		t.Fatalf("baseline run: samples=%d dead=%d", alive, deadCount)
	}
	killed, deadCount := samples(true)
	if deadCount != 1 {
		t.Fatalf("killed run counts %d dead nodes, want 1", deadCount)
	}
	// The old semantics sampled the dead member every tick: killed ==
	// alive, with the dead member's windows all broken. The new semantics
	// drop exactly the dead member's share.
	if killed != alive/2 {
		t.Errorf("UnavailSamples with a dead member = %d, want %d (half of %d)",
			killed, alive/2, alive)
	}
}

// TestLifetimeRunRecordsDeaths drives a full scenario with a battery small
// enough to deplete and checks the death tracker end to end: landmarks
// within the horizon, a monotone timeline consistent with DeadNodes, and
// agreement between the meter count and the timeline's final bucket.
func TestLifetimeRunRecordsDeaths(t *testing.T) {
	cfg := Default()
	cfg.Protocol = SSSPSTE
	cfg.Duration = 120
	cfg.VMax = 2
	cfg.Battery = 2
	s := Run(cfg).Summary
	if s.DeadNodes == 0 {
		t.Fatal("battery 2 J over 120 s depleted nothing; lifetime workload broken")
	}
	if s.FirstDeaths != 1 || s.FirstDeathS <= 0 || s.FirstDeathS > cfg.Duration {
		t.Errorf("first death landmark: n=%d t=%v", s.FirstDeaths, s.FirstDeathS)
	}
	if s.Nodes != cfg.N {
		t.Errorf("Nodes = %d, want %d", s.Nodes, cfg.N)
	}
	last := 0.0
	for k, f := range s.DeadFrac {
		if f < last {
			t.Errorf("dead fraction decreased at bucket %d: %v -> %v", k, last, f)
		}
		last = f
	}
	if want := float64(s.DeadNodes) / float64(s.Nodes); last != want {
		t.Errorf("final dead fraction %v != DeadNodes/Nodes %v", last, want)
	}
	if s.HalfDeaths == 1 {
		if s.HalfDeathS < s.FirstDeathS || s.HalfDeathS > cfg.Duration {
			t.Errorf("half-death landmark %v outside [%v, %v]", s.HalfDeathS, s.FirstDeathS, cfg.Duration)
		}
	}
}

// TestValidateChurnAndBattery pins the new Validate rules: negative churn
// intervals, batteries and sample intervals are config typos, not
// settings.
func TestValidateChurnAndBattery(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.MemberChurnInterval = -1 },
		func(c *Config) { c.Battery = -5 },
		func(c *Config) { c.SampleInterval = -0.5 },
	} {
		cfg := Default()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", cfg)
		}
	}
	cfg := Default()
	cfg.MemberChurnInterval = 5
	cfg.Battery = 10
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate rejected a churn+battery config: %v", err)
	}
}
