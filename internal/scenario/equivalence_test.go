package scenario

import (
	"fmt"
	"testing"
)

// TestGridEquivalence runs fixed-seed scenarios through the grid-backed
// medium and the retained brute-force path and asserts identical channel
// counters and run summaries. Determinism for a fixed seed is a documented
// invariant of the sim kernel; the spatial index must be invisible to it —
// bit-identical results, not approximately equal ones (see DESIGN.md §7).
func TestGridEquivalence(t *testing.T) {
	protocols := []ProtocolKind{
		SSSPST, SSSPSTT, SSSPSTF, SSSPSTE, SSMST, MAODV, ODMRP, Flood,
	}
	seeds := []uint64{1, 77}
	for _, p := range protocols {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", p, seed), func(t *testing.T) {
				t.Parallel()
				cfg := Default()
				cfg.Protocol = p
				cfg.Seed = seed
				cfg.Duration = 25
				cfg.VMax = 8 // brisk mobility: several epochs per run

				grid := Run(cfg)

				brute := cfg
				brute.Medium.Grid.Disable = true
				ref := Run(brute)

				if grid.Medium != ref.Medium {
					t.Errorf("medium stats diverge:\n grid  %+v\n brute %+v", grid.Medium, ref.Medium)
				}
				if grid.Summary != ref.Summary {
					t.Errorf("summaries diverge:\n grid  %+v\n brute %+v", grid.Summary, ref.Summary)
				}
			})
		}
	}
}

// TestGridEquivalenceStatic covers the build-once static-index mode and
// the membership-churn path, which exercises dynamic join/leave pruning.
func TestGridEquivalenceStatic(t *testing.T) {
	cfg := Default()
	cfg.Mobility = Static
	cfg.Protocol = SSSPSTE
	cfg.Duration = 25
	cfg.MemberChurnInterval = 5

	grid := Run(cfg)
	brute := cfg
	brute.Medium.Grid.Disable = true
	ref := Run(brute)

	if grid.Medium != ref.Medium {
		t.Errorf("medium stats diverge:\n grid  %+v\n brute %+v", grid.Medium, ref.Medium)
	}
	if grid.Summary != ref.Summary {
		t.Errorf("summaries diverge:\n grid  %+v\n brute %+v", grid.Summary, ref.Summary)
	}
}
