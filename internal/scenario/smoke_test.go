package scenario

import "testing"

// TestSmokeAllProtocols runs every protocol briefly and checks basic
// sanity: some packets delivered, energy accounted, no panics.
func TestSmokeAllProtocols(t *testing.T) {
	for _, proto := range []ProtocolKind{SSSPST, SSSPSTT, SSSPSTF, SSSPSTE, SSMST, MAODV, ODMRP, Flood} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Default()
			cfg.Protocol = proto
			cfg.Duration = 120
			cfg.VMax = 2
			res := Run(cfg)
			s := res.Summary
			t.Logf("%s: %v medium=%+v", proto, s, res.Medium)
			if s.Sent == 0 {
				t.Fatal("no packets sent")
			}
			if s.PDR <= 0.05 {
				t.Errorf("PDR suspiciously low: %v", s.PDR)
			}
			if s.PDR > 1 {
				t.Errorf("PDR above 1: %v", s.PDR)
			}
			if s.TotalEnergyJ <= 0 {
				t.Error("no energy accounted")
			}
			if s.AvgDelayS <= 0 || s.AvgDelayS > 1 {
				t.Errorf("implausible delay %v", s.AvgDelayS)
			}
		})
	}
}

// TestDeterminism verifies the bit-identical reproducibility contract.
func TestDeterminism(t *testing.T) {
	cfg := Default()
	cfg.Duration = 60
	a := Run(cfg).Summary
	b := Run(cfg).Summary
	if a != b {
		t.Fatalf("same seed produced different summaries:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 99
	c := Run(cfg).Summary
	if a == c {
		t.Error("different seeds produced identical summaries (suspicious)")
	}
}
