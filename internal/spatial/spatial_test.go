package spatial

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// bruteInDisk is the reference: ids of points within r of center, ascending.
func bruteInDisk(pts []geom.Point, center geom.Point, r float64) []int32 {
	var out []int32
	for i, p := range pts {
		if p.Dist2(center) <= r*r {
			out = append(out, int32(i))
		}
	}
	return out
}

func randPoints(rng *xrand.RNG, n int, area geom.Rect) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: rng.Range(area.Min.X, area.Max.X),
			Y: rng.Range(area.Min.Y, area.Max.Y),
		}
	}
	return pts
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDiskQueryMatchesBruteForce checks exactness on static snapshots over
// many random configurations, including radii larger than the area and
// centers outside the bounds.
func TestDiskQueryMatchesBruteForce(t *testing.T) {
	rng := xrand.New(7)
	area := geom.Square(750)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(120)
		pts := randPoints(rng, n, area)
		g := NewGrid(area, 125, n)
		g.Rebuild(0, pts)
		for q := 0; q < 20; q++ {
			center := geom.Point{X: rng.Range(-200, 950), Y: rng.Range(-200, 950)}
			r := rng.Range(0, 900)
			got := g.AppendInDisk(nil, center, r)
			want := bruteInDisk(pts, center, r)
			if !equalIDs(got, want) {
				t.Fatalf("trial %d query %d: got %v want %v (center %v r %g)",
					trial, q, got, want, center, r)
			}
		}
	}
}

// TestOutOfBoundsPointsClamped checks the superset guarantee for nodes far
// outside the configured bounds: clamping is monotone, so border cells
// catch them.
func TestOutOfBoundsPointsClamped(t *testing.T) {
	area := geom.Square(100)
	pts := []geom.Point{{X: -500, Y: -500}, {X: 50, Y: 50}, {X: 900, Y: 50}}
	g := NewGrid(area, 25, len(pts))
	g.Rebuild(0, pts)
	got := g.AppendInDisk(nil, geom.Point{X: -450, Y: -450}, 100)
	if !equalIDs(got, []int32{0}) {
		t.Fatalf("far-out-of-bounds node missed: got %v", got)
	}
	got = g.AppendInDisk(nil, geom.Point{X: 860, Y: 60}, 50)
	if !equalIDs(got, []int32{2}) {
		t.Fatalf("right-of-bounds node missed: got %v", got)
	}
}

// TestSlackExpansionCoversDrift simulates the epoch contract: nodes move
// after the snapshot, and a query expanded by the worst-case drift plus an
// exact filter over fresh positions must equal brute force over fresh
// positions.
func TestSlackExpansionCoversDrift(t *testing.T) {
	rng := xrand.New(11)
	area := geom.Square(750)
	const vmax, dt = 20.0, 6.0 // 120 m of drift
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(100)
		old := randPoints(rng, n, area)
		g := NewGrid(area, 250, n)
		g.Rebuild(0, old)
		// Every node drifts by at most vmax*dt in a random direction.
		cur := make([]geom.Point, n)
		for i, p := range old {
			d := rng.Range(0, vmax*dt)
			ang := rng.Range(0, 6.283185307179586)
			cur[i] = geom.Point{X: p.X + d*math.Cos(ang), Y: p.Y + d*math.Sin(ang)}
		}
		center := cur[rng.Intn(n)]
		r := rng.Range(10, 400)
		cand := g.AppendInDisk(nil, center, r+vmax*dt)
		var got []int32
		for _, id := range cand {
			if cur[id].Dist2(center) <= r*r {
				got = append(got, id)
			}
		}
		if want := bruteInDisk(cur, center, r); !equalIDs(got, want) {
			t.Fatalf("trial %d: slack-expanded query missed nodes: got %v want %v", trial, got, want)
		}
	}
}

// TestCellGeometryFixedAcrossRebuilds checks that rebuilding never changes
// cell indices — the medium caches per-cell transmission registries across
// epochs.
func TestCellGeometryFixedAcrossRebuilds(t *testing.T) {
	rng := xrand.New(3)
	area := geom.Square(500)
	g := NewGrid(area, 100, 10)
	p := geom.Point{X: 321, Y: 77}
	before := g.CellIndex(p)
	for i := 0; i < 5; i++ {
		g.Rebuild(float64(i), randPoints(rng, 10, area))
		if g.CellIndex(p) != before {
			t.Fatal("cell geometry changed across rebuilds")
		}
	}
	if g.CellSize() != 100 || g.NumCells() != 25 {
		t.Fatalf("geometry: cell %g cells %d", g.CellSize(), g.NumCells())
	}
}

// TestRefreshMatchesRebuild drives one grid with incremental Refresh and a
// reference grid with full Rebuild through the same random walk and checks
// every disk query agrees: incremental bucket maintenance must be
// indistinguishable from rebucketing everything.
func TestRefreshMatchesRebuild(t *testing.T) {
	rng := xrand.New(19)
	area := geom.Square(750)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(120)
		pts := randPoints(rng, n, area)
		inc := NewGrid(area, 93, n)
		ref := NewGrid(area, 93, n)
		inc.Refresh(0, pts) // unbuilt: must fall back to Rebuild
		ref.Rebuild(0, pts)
		for step := 1; step <= 20; step++ {
			// Random drift, including the occasional teleport so nodes
			// cross many cells (and leave the bounds) in one refresh.
			for i := range pts {
				if rng.Bool(0.05) {
					pts[i] = geom.Point{X: rng.Range(-300, 1050), Y: rng.Range(-300, 1050)}
					continue
				}
				pts[i].X += rng.Range(-40, 40)
				pts[i].Y += rng.Range(-40, 40)
			}
			inc.Refresh(float64(step), pts)
			ref.Rebuild(float64(step), pts)
			if inc.Epoch() != ref.Epoch() {
				t.Fatalf("epoch mismatch: %g vs %g", inc.Epoch(), ref.Epoch())
			}
			for q := 0; q < 10; q++ {
				center := geom.Point{X: rng.Range(-200, 950), Y: rng.Range(-200, 950)}
				r := rng.Range(0, 600)
				got := inc.AppendInDisk(nil, center, r)
				want := ref.AppendInDisk(nil, center, r)
				if !equalIDs(got, want) {
					t.Fatalf("trial %d step %d: incremental %v vs rebuild %v", trial, step, got, want)
				}
			}
		}
	}
}

// TestClearKeepsGeometry checks that a cleared grid reports unbuilt but
// reuses its geometry and storage for the next run.
func TestClearKeepsGeometry(t *testing.T) {
	rng := xrand.New(5)
	area := geom.Square(400)
	g := NewGrid(area, 80, 30)
	g.Rebuild(0, randPoints(rng, 30, area))
	if !g.Built() {
		t.Fatal("not built after Rebuild")
	}
	g.Clear()
	if g.Built() {
		t.Fatal("built after Clear")
	}
	if !g.Matches(area, 80, 30) {
		t.Fatal("Matches false for own construction inputs")
	}
	if g.Matches(area, 81, 30) || g.Matches(area, 80, 31) || g.Matches(geom.Square(401), 80, 30) {
		t.Fatal("Matches true for foreign construction inputs")
	}
	pts := randPoints(rng, 30, area)
	g.Refresh(3, pts)
	got := g.AppendInDisk(nil, pts[0], 120)
	want := bruteInDisk(pts, pts[0], 120)
	if !equalIDs(got, want) {
		t.Fatalf("after Clear+Refresh: got %v want %v", got, want)
	}
}

// TestCellCountCapped checks the guard against absurd cell counts.
func TestCellCountCapped(t *testing.T) {
	g := NewGrid(geom.Square(1e6), 1, 10)
	if g.NumCells() > maxCellsFactor*10+64 {
		t.Fatalf("cell count %d exceeds cap", g.NumCells())
	}
}
