// Package spatial implements the uniform-grid point index that turns the
// medium's O(N) coverage and interference scans into O(k) cell lookups.
//
// The grid buckets node positions into square cells of side ≈ the radio's
// maximum range. It holds a *snapshot* of positions taken at a refresh
// epoch; between refreshes nodes keep moving, so a disk query must expand
// its radius by the maximum distance any node can have travelled since the
// epoch (VMax·(now−epoch), supplied by the caller as part of the query
// radius). Candidates returned under that expanded radius are a guaranteed
// superset of the nodes currently inside the true radius; callers apply an
// exact distance filter against fresh positions, which makes grid-backed
// queries bit-identical to a brute-force scan. DESIGN.md §7 gives the full
// correctness argument.
//
// Cell geometry (bounds, cell size, column/row counts) is fixed at
// construction and never changes across refreshes, so cell indices may be
// cached by callers (the medium keeps per-cell registries of active
// transmissions keyed by this geometry). Out-of-bounds points are clamped
// onto the border cells; because clamping is monotone, the superset
// guarantee holds even for points outside the configured bounds.
package spatial

import (
	"math"
	"math/bits"

	"repro/internal/geom"
)

// Grid is a uniform spatial hash over a fixed rectangle. It is not safe
// for concurrent use; like the rest of the simulator it lives on a single
// goroutine.
type Grid struct {
	min     geom.Point
	cell    float64
	invCell float64
	cols    int
	rows    int

	// Epoch snapshot. Buckets are maintained incrementally across
	// refreshes (Refresh rebuckets only nodes whose cell changed), so
	// their internal order is arbitrary; queries emit results through the
	// sorted bitmap below, which makes bucket order unobservable.
	cells [][]int32    // node ids bucketed by cell
	pos   []geom.Point // positions at the epoch
	// nodeCell and nodeSlot track each node's current bucket and its
	// position inside it, making an incremental move O(1).
	nodeCell []int32
	nodeSlot []int32
	epoch    float64
	built    bool
	// Construction inputs, recorded for Matches.
	reqBounds geom.Rect
	reqCell   float64
	// mark is a scratch bitmap used to emit query results in ascending
	// id order without sorting (always zero between queries).
	mark []uint64
}

// maxCellsFactor bounds the cell count relative to the node count so a
// tiny cell size over a huge area cannot allocate an absurd grid: beyond
// ~4 cells per node the extra resolution buys nothing.
const maxCellsFactor = 4

// NewGrid builds an index over n nodes inside bounds with the requested
// cell side. A degenerate bounds or cell size collapses to a single cell
// (the index then degrades gracefully to a filtered linear scan).
func NewGrid(bounds geom.Rect, cell float64, n int) *Grid {
	reqBounds, reqCell := bounds, cell
	w, h := bounds.Width(), bounds.Height()
	if cell <= 0 || w <= 0 || h <= 0 {
		side := math.Max(w, h)
		if cell <= 0 || cell > side || side <= 0 {
			cell = math.Max(side, 1)
		}
	}
	// Cap the total cell count; enlarge cells to fit if necessary.
	maxCells := maxCellsFactor*n + 64
	for {
		cols := gridDim(w, cell)
		rows := gridDim(h, cell)
		if cols*rows <= maxCells {
			g := &Grid{
				min:      bounds.Min,
				cell:     cell,
				invCell:  1 / cell,
				cols:     cols,
				rows:     rows,
				pos:      make([]geom.Point, n),
				nodeCell: make([]int32, n),
				nodeSlot: make([]int32, n),
				mark:     make([]uint64, (n+63)/64),

				reqBounds: reqBounds,
				reqCell:   reqCell,
			}
			g.cells = make([][]int32, cols*rows)
			return g
		}
		cell *= 2
	}
}

// gridDim returns the cell count along one axis of extent w.
func gridDim(w, cell float64) int {
	d := int(math.Ceil(w / cell))
	if d < 1 {
		d = 1
	}
	return d
}

// CellSize returns the side length of one cell.
func (g *Grid) CellSize() float64 { return g.cell }

// NumCells returns the total number of cells (fixed for the grid's life).
func (g *Grid) NumCells() int { return g.cols * g.rows }

// Built reports whether Rebuild has been called at least once.
func (g *Grid) Built() bool { return g.built }

// Epoch returns the time of the last Rebuild.
func (g *Grid) Epoch() float64 { return g.epoch }

// Rebuild snapshots positions (len must equal the grid's node count) as
// the new epoch, rebucketing every node. Buckets are reused across
// rebuilds; no allocation happens in steady state.
func (g *Grid) Rebuild(now float64, positions []geom.Point) {
	copy(g.pos, positions)
	for i := range g.cells {
		g.cells[i] = g.cells[i][:0]
	}
	for i, p := range g.pos {
		c := g.CellIndex(p)
		g.nodeCell[i] = int32(c)
		g.nodeSlot[i] = int32(len(g.cells[c]))
		g.cells[c] = append(g.cells[c], int32(i))
	}
	g.epoch = now
	g.built = true
}

// Refresh advances the snapshot to the given positions, rebucketing only
// the nodes whose cell changed. Between consecutive epochs a node drifts
// at most a fraction of a cell (the caller's SlackFrac policy), so almost
// every node stays put and the refresh costs a position copy plus
// O(moved) bucket updates instead of a full rebucketing. The resulting
// snapshot is exactly what Rebuild would produce up to bucket order,
// which AppendInDisk's sorted emission makes unobservable.
func (g *Grid) Refresh(now float64, positions []geom.Point) {
	if !g.built {
		g.Rebuild(now, positions)
		return
	}
	for i, p := range positions {
		g.pos[i] = p
		c := int32(g.CellIndex(p))
		if c == g.nodeCell[i] {
			continue
		}
		g.moveNode(int32(i), c)
	}
	g.epoch = now
}

// moveNode rebuckets node id into cell c: O(1) swap-remove from the old
// bucket via the slot index, append to the new one.
func (g *Grid) moveNode(id, c int32) {
	old, slot := g.nodeCell[id], g.nodeSlot[id]
	bucket := g.cells[old]
	last := int32(len(bucket) - 1)
	if slot != last {
		moved := bucket[last]
		bucket[slot] = moved
		g.nodeSlot[moved] = slot
	}
	g.cells[old] = bucket[:last]
	g.nodeCell[id] = c
	g.nodeSlot[id] = int32(len(g.cells[c]))
	g.cells[c] = append(g.cells[c], id)
}

// Matches reports whether the grid was constructed from exactly these
// NewGrid inputs. The cell geometry is a deterministic function of them,
// so a match lets a run arena reuse the grid (and its grown bucket
// storage) across replications of the same deployment.
func (g *Grid) Matches(bounds geom.Rect, cell float64, n int) bool {
	return g.reqBounds == bounds && g.reqCell == cell && len(g.pos) == n
}

// Clear forgets the snapshot (built reports false afterwards) while
// keeping all storage, including grown buckets, for the next run.
func (g *Grid) Clear() {
	for i := range g.cells {
		g.cells[i] = g.cells[i][:0]
	}
	g.epoch = 0
	g.built = false
}

// cellXY returns p's clamped cell coordinates.
func (g *Grid) cellXY(p geom.Point) (ix, iy int) {
	ix = int((p.X - g.min.X) * g.invCell)
	if ix < 0 {
		ix = 0
	} else if ix >= g.cols {
		ix = g.cols - 1
	}
	iy = int((p.Y - g.min.Y) * g.invCell)
	if iy < 0 {
		iy = 0
	} else if iy >= g.rows {
		iy = g.rows - 1
	}
	return ix, iy
}

// CellIndex returns the flat cell index of the cell containing p (clamped
// onto the border for out-of-bounds points).
func (g *Grid) CellIndex(p geom.Point) int {
	ix, iy := g.cellXY(p)
	return iy*g.cols + ix
}

// CellXY returns p's clamped cell coordinates (callers overlaying coarser
// registries on the same geometry derive their indices from these).
func (g *Grid) CellXY(p geom.Point) (ix, iy int) { return g.cellXY(p) }

// Dims returns the grid's column and row counts.
func (g *Grid) Dims() (cols, rows int) { return g.cols, g.rows }

// CellRange returns the clamped inclusive cell-coordinate range covered by
// the axis-aligned bounding box of the disk (center, r).
func (g *Grid) CellRange(center geom.Point, r float64) (ix0, iy0, ix1, iy1 int) {
	ix0, iy0 = g.cellXY(geom.Point{X: center.X - r, Y: center.Y - r})
	ix1, iy1 = g.cellXY(geom.Point{X: center.X + r, Y: center.Y + r})
	return ix0, iy0, ix1, iy1
}

// Cell returns the flat index of cell (ix, iy).
func (g *Grid) Cell(ix, iy int) int { return iy*g.cols + ix }

// AppendInDisk appends to dst the ids of every node whose *epoch* position
// lies within r of center, sorted ascending, and returns the extended
// slice. Callers expand r by the worst-case drift since the epoch and then
// filter the candidates against fresh positions; the result is then
// exactly the set a brute-force scan over current positions would find.
//
// Ascending order matters: the medium schedules deliveries in candidate
// order, and event order at equal timestamps is part of the determinism
// contract. Matches are staged in a bitmap and emitted word by word, which
// yields sorted output in O(n/64 + k) instead of a comparison sort.
func (g *Grid) AppendInDisk(dst []int32, center geom.Point, r float64) []int32 {
	r2 := r * r
	ix0, iy0, ix1, iy1 := g.CellRange(center, r)
	// Broad queries (full-power broadcasts in small deployments) visit
	// most cells anyway; once the query box covers at least half the
	// grid, a direct scan of the epoch positions wins — it is already in
	// ascending id order and skips the bucket walk and bitmap staging —
	// so the index never costs more than the brute scan it replaced.
	if (ix1-ix0+1)*(iy1-iy0+1)*2 >= g.cols*g.rows {
		for id, p := range g.pos {
			if p.Dist2(center) <= r2 {
				dst = append(dst, int32(id))
			}
		}
		return dst
	}
	lo, hi := len(g.mark), -1
	for iy := iy0; iy <= iy1; iy++ {
		row := iy * g.cols
		for ix := ix0; ix <= ix1; ix++ {
			for _, id := range g.cells[row+ix] {
				if g.pos[id].Dist2(center) <= r2 {
					w := int(id) >> 6
					g.mark[w] |= 1 << (uint(id) & 63)
					if w < lo {
						lo = w
					}
					if w > hi {
						hi = w
					}
				}
			}
		}
	}
	for w := lo; w <= hi; w++ {
		word := g.mark[w]
		g.mark[w] = 0
		base := int32(w << 6)
		for word != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}
