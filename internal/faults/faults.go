// Package faults defines the deterministic fault processes injected into a
// simulation run: Gilbert-Elliott bursty channel loss, crash/reboot node
// faults, and scheduled network partitions.
//
// The package is a pure model layer — it holds configuration, validation,
// and the per-receiver/per-node stochastic state — while the wiring lives
// in internal/medium (loss, partition link suppression) and
// internal/scenario (crash scheduling, protocol rejoin). Every process is
// driven by streams split from the run's root seed, so fault-enabled runs
// are bit-identical across worker counts and arena reuse; when a process
// is disabled its stream is never created and zero extra draws occur,
// which keeps fault-free runs bit-identical with pre-fault builds.
package faults

import (
	"fmt"

	"repro/internal/xrand"
)

// GEConfig parameterizes a two-state Gilbert-Elliott loss channel. Each
// receiver owns an independent chain; on every reception the chain first
// takes one state transition and then draws a loss with the state's
// probability. The mean burst length in receptions is 1/PBadGood and the
// mean good-run length is 1/PGoodBad.
type GEConfig struct {
	// PGoodBad is the per-reception probability of moving good → bad.
	PGoodBad float64
	// PBadGood is the per-reception probability of moving bad → good.
	PBadGood float64
	// LossGood is the loss probability while in the good state.
	LossGood float64
	// LossBad is the loss probability while in the bad state.
	LossBad float64
}

// Enabled reports whether the channel can ever drop a packet.
func (g GEConfig) Enabled() bool {
	return g.LossBad > 0 || g.LossGood > 0
}

// Validate checks the four probabilities are in [0, 1].
func (g GEConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PGoodBad", g.PGoodBad},
		{"PBadGood", g.PBadGood},
		{"LossGood", g.LossGood},
		{"LossBad", g.LossBad},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: Loss.%s must be in [0, 1], got %v", p.name, p.v)
		}
	}
	return nil
}

// GEChain is one receiver's Gilbert-Elliott state: a private RNG stream
// (held by value so chains live flat in a slice) and the current channel
// state. The zero chain starts in the good state; Init must seed the
// stream before the first Drop.
type GEChain struct {
	rng xrand.RNG
	bad bool
}

// Init seeds the chain's stream and returns it to the good state.
func (c *GEChain) Init(rng *xrand.RNG) {
	c.rng = *rng
	c.bad = false
}

// Drop advances the chain one reception — state transition first, then a
// loss draw at the new state's probability — and reports whether the
// packet is lost. Exactly two uniforms are consumed per call, so the
// stream's trajectory depends only on the reception count, never on
// outcomes elsewhere.
func (c *GEChain) Drop(g GEConfig) bool {
	if c.bad {
		if c.rng.Bool(g.PBadGood) {
			c.bad = false
		}
	} else {
		if c.rng.Bool(g.PGoodBad) {
			c.bad = true
		}
	}
	p := g.LossGood
	if c.bad {
		p = g.LossBad
	}
	return c.rng.Bool(p)
}

// Bad reports whether the chain is currently in the bad (bursty) state.
func (c *GEChain) Bad() bool { return c.bad }

// Partition is a scheduled partition window: between StartS and EndS a
// vertical cut sweeps linearly from FromFrac·AreaSide to ToFrac·AreaSide,
// and every transmission whose sender and receiver sit on opposite sides
// of the cut is suppressed. A moving cut exercises re-convergence on both
// sides as nodes change partitions mid-window.
type Partition struct {
	// StartS and EndS bound the window in simulated seconds. The window
	// is active when StartS < EndS; the zero value disables it.
	StartS, EndS float64
	// FromFrac and ToFrac position the cut at window start and end, as
	// fractions of the area side. Zero values default to 1/3 and 2/3.
	FromFrac, ToFrac float64
}

// Enabled reports whether the partition window is non-empty.
func (p Partition) Enabled() bool { return p.EndS > p.StartS }

// Active reports whether the cut is live at time t.
func (p Partition) Active(t float64) bool {
	return p.Enabled() && t >= p.StartS && t < p.EndS
}

// CutX returns the cut's x coordinate at time t for the given area side.
func (p Partition) CutX(t, areaSide float64) float64 {
	from, to := p.FromFrac, p.ToFrac
	if from == 0 {
		from = 1.0 / 3
	}
	if to == 0 {
		to = 2.0 / 3
	}
	frac := (t - p.StartS) / (p.EndS - p.StartS)
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	return (from + (to-from)*frac) * areaSide
}

// Validate checks the window and cut positions against the run duration.
func (p Partition) Validate(duration float64) error {
	if !p.Enabled() {
		if p.StartS != 0 || p.EndS != 0 {
			return fmt.Errorf("faults: Partition window [%v, %v) is empty; use EndS > StartS or zero both", p.StartS, p.EndS)
		}
		return nil
	}
	if p.StartS < 0 || p.EndS > duration {
		return fmt.Errorf("faults: Partition window [%v, %v) must lie inside the run duration [0, %v)", p.StartS, p.EndS, duration)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"FromFrac", p.FromFrac}, {"ToFrac", p.ToFrac}} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("faults: Partition.%s must be in [0, 1] (fraction of the area side), got %v", f.name, f.v)
		}
	}
	return nil
}

// Config aggregates a run's fault processes. The zero value disables all
// of them, and a disabled Config injects nothing and draws nothing.
type Config struct {
	// Loss is the Gilbert-Elliott bursty channel applied per reception.
	Loss GEConfig
	// CrashMTBF is the mean up-time before a node crashes, in seconds;
	// 0 disables crash faults. The source node never crashes.
	CrashMTBF float64
	// CrashMTTR is the mean down-time before a crashed node reboots, in
	// seconds. Zero with CrashMTBF set defaults to CrashMTBF/10.
	CrashMTTR float64
	// Partition is the scheduled partition window.
	Partition Partition
}

// Any reports whether any fault process is enabled.
func (c Config) Any() bool {
	return c.Loss.Enabled() || c.CrashMTBF > 0 || c.Partition.Enabled()
}

// Validate checks every fault parameter, mirroring scenario.Config.Validate
// style: nil when the config is inert or well-formed.
func (c Config) Validate(duration float64) error {
	if err := c.Loss.Validate(); err != nil {
		return err
	}
	if c.CrashMTBF < 0 {
		return fmt.Errorf("faults: CrashMTBF must be >= 0 seconds (0 = no crashes), got %v", c.CrashMTBF)
	}
	if c.CrashMTTR < 0 {
		return fmt.Errorf("faults: CrashMTTR must be >= 0 seconds, got %v", c.CrashMTTR)
	}
	if c.CrashMTTR > 0 && c.CrashMTBF == 0 {
		return fmt.Errorf("faults: CrashMTTR set (%v) without CrashMTBF", c.CrashMTTR)
	}
	return c.Partition.Validate(duration)
}

// mttr resolves the effective mean time to repair.
func (c Config) mttr() float64 {
	if c.CrashMTTR > 0 {
		return c.CrashMTTR
	}
	return c.CrashMTBF / 10
}

// CrashEvent is one entry of a node's precomputed crash schedule.
type CrashEvent struct {
	At   float64
	Down bool // true = crash, false = reboot
}

// CrashSchedule draws one node's alternating crash/reboot times from rng:
// exponential up-times with mean CrashMTBF, exponential down-times with
// mean CrashMTTR, truncated at duration. Precomputing the whole schedule
// at setup keeps the process independent of anything that happens during
// the run, so the fault trajectory is a pure function of the seed.
func (c Config) CrashSchedule(rng *xrand.RNG, duration float64) []CrashEvent {
	if c.CrashMTBF <= 0 {
		return nil
	}
	var evs []CrashEvent
	t := 0.0
	for {
		t += rng.Exp(c.CrashMTBF)
		if t >= duration {
			return evs
		}
		evs = append(evs, CrashEvent{At: t, Down: true})
		t += rng.Exp(c.mttr())
		if t >= duration {
			return evs
		}
		evs = append(evs, CrashEvent{At: t, Down: false})
	}
}
