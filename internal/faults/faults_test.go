package faults

import (
	"testing"

	"repro/internal/xrand"
)

func TestGEChainDeterministic(t *testing.T) {
	g := GEConfig{PGoodBad: 0.1, PBadGood: 0.3, LossGood: 0.01, LossBad: 0.8}
	run := func() []bool {
		var c GEChain
		c.Init(xrand.New(42).Split("ge"))
		out := make([]bool, 1000)
		for i := range out {
			out[i] = c.Drop(g)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	losses := 0
	for _, d := range a {
		if d {
			losses++
		}
	}
	if losses == 0 || losses == len(a) {
		t.Fatalf("degenerate loss pattern: %d/%d", losses, len(a))
	}
}

func TestGEChainBursty(t *testing.T) {
	// With LossBad near 1 and LossGood 0, losses should cluster: the
	// number of loss runs must be far below the number of losses.
	g := GEConfig{PGoodBad: 0.05, PBadGood: 0.25, LossGood: 0, LossBad: 1}
	var c GEChain
	c.Init(xrand.New(7).Split("ge"))
	losses, runs := 0, 0
	prev := false
	for i := 0; i < 20000; i++ {
		d := c.Drop(g)
		if d {
			losses++
			if !prev {
				runs++
			}
		}
		prev = d
	}
	if losses == 0 {
		t.Fatal("no losses injected")
	}
	meanBurst := float64(losses) / float64(runs)
	// Mean burst length should approximate 1/PBadGood = 4.
	if meanBurst < 2.5 || meanBurst > 6 {
		t.Fatalf("mean burst length %.2f outside [2.5, 6]", meanBurst)
	}
}

func TestPartitionCut(t *testing.T) {
	p := Partition{StartS: 10, EndS: 20}
	if p.Active(5) || p.Active(20) || !p.Active(10) || !p.Active(15) {
		t.Fatal("window activity wrong")
	}
	// Defaults: 1/3 → 2/3 of the side.
	if got := p.CutX(10, 300); got != 100 {
		t.Fatalf("cut at start = %v, want 100", got)
	}
	if got := p.CutX(20, 300); got != 200 {
		t.Fatalf("cut at end = %v, want 200", got)
	}
	if got := p.CutX(15, 300); got != 150 {
		t.Fatalf("cut at midpoint = %v, want 150", got)
	}
}

func TestCrashScheduleDeterministicAndAlternating(t *testing.T) {
	cfg := Config{CrashMTBF: 30, CrashMTTR: 5}
	a := cfg.CrashSchedule(xrand.New(9).Split("crash"), 600)
	b := cfg.CrashSchedule(xrand.New(9).Split("crash"), 600)
	if len(a) == 0 {
		t.Fatal("expected some crash events over 600 s at MTBF 30")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	last := 0.0
	for i, ev := range a {
		if ev != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ev, b[i])
		}
		if ev.At <= last || ev.At >= 600 {
			t.Fatalf("event %d at %v out of order or horizon", i, ev.At)
		}
		if wantDown := i%2 == 0; ev.Down != wantDown {
			t.Fatalf("event %d Down=%v, want %v", i, ev.Down, wantDown)
		}
		last = ev.At
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"loss ok", Config{Loss: GEConfig{PGoodBad: 0.1, PBadGood: 0.5, LossBad: 0.9}}, true},
		{"loss prob high", Config{Loss: GEConfig{LossBad: 1.5}}, false},
		{"loss prob negative", Config{Loss: GEConfig{PGoodBad: -0.1}}, false},
		{"mtbf negative", Config{CrashMTBF: -1}, false},
		{"mttr negative", Config{CrashMTBF: 10, CrashMTTR: -2}, false},
		{"mttr without mtbf", Config{CrashMTTR: 5}, false},
		{"partition ok", Config{Partition: Partition{StartS: 10, EndS: 50}}, true},
		{"partition beyond duration", Config{Partition: Partition{StartS: 10, EndS: 700}}, false},
		{"partition negative start", Config{Partition: Partition{StartS: -1, EndS: 5}}, false},
		{"partition inverted", Config{Partition: Partition{StartS: 5, EndS: 5}}, false},
		{"partition frac", Config{Partition: Partition{StartS: 1, EndS: 2, FromFrac: 1.2}}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate(600)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected an error", c.name)
		}
	}
}

func TestAny(t *testing.T) {
	if (Config{}).Any() {
		t.Fatal("zero config reports Any")
	}
	if !(Config{CrashMTBF: 10}).Any() ||
		!(Config{Loss: GEConfig{LossBad: 0.5}}).Any() ||
		!(Config{Partition: Partition{EndS: 5}}).Any() {
		t.Fatal("enabled config not reported by Any")
	}
}
