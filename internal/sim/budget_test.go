package sim

import "testing"

// TestBudgetBoundaryExact pins the watchdog's off-by-one contract: a run
// that processes exactly its budgeted number of events passes; needing
// one event more trips the watchdog and stops execution before the
// excess event fires.
func TestBudgetBoundaryExact(t *testing.T) {
	const events = 10

	schedule := func(s *Simulator, fired *int) {
		for i := 0; i < events; i++ {
			s.After(Time(i+1), func() { *fired++ })
		}
	}

	// Budget == exact event count: every event fires, no trip.
	s := New(1)
	fired := 0
	schedule(s, &fired)
	s.SetBudget(events)
	s.Run(1e9)
	if s.BudgetExceeded() {
		t.Fatalf("budget == event count (%d) tripped the watchdog", events)
	}
	if fired != events || s.Processed() != events {
		t.Fatalf("fired %d, processed %d events, want %d", fired, s.Processed(), events)
	}

	// Budget one short: the watchdog trips and the final event never runs.
	s = New(1)
	fired = 0
	schedule(s, &fired)
	s.SetBudget(events - 1)
	s.Run(1e9)
	if !s.BudgetExceeded() {
		t.Fatalf("budget %d with %d events did not trip the watchdog", events-1, events)
	}
	if fired != events-1 {
		t.Fatalf("fired %d events under budget %d, want %d (the over-budget event must not run)",
			fired, events-1, events-1)
	}
}
