package sim

import (
	"testing"
	"time"
)

// TestStallDetector: a zero-delay self-rescheduling event — the livelock
// the event budget only catches after its full allowance — trips the
// stall detector at the configured streak length, with the clock frozen.
func TestStallDetector(t *testing.T) {
	s := New(1)
	s.SetStallLimit(100)
	var fired int
	var loop func()
	loop = func() {
		fired++
		s.After(0, loop)
	}
	s.Schedule(1, loop)
	s.Run(50)
	if !s.Stalled() {
		t.Fatal("zero-delay loop did not trip the stall detector")
	}
	// The seeding event arrives with the clock advancing (streak 0), then
	// 99 same-instant firings grow the streak to the limit; the 100th
	// same-instant event aborts without firing.
	if fired != 100 {
		t.Fatalf("fired %d callbacks before abort, want 100", fired)
	}
}

// TestStallDetectorResetByProgress: a burst below the limit followed by
// clock progress resets the streak — bursts of same-instant events are
// normal (protocol cascades), only unbounded ones are livelock.
func TestStallDetectorResetByProgress(t *testing.T) {
	s := New(1)
	s.SetStallLimit(50)
	var fired int
	// 40 events at each of 100 distinct instants: every burst is below
	// the limit, so the run must complete.
	for i := 0; i < 100; i++ {
		at := float64(i)
		for j := 0; j < 40; j++ {
			s.At(at, func() { fired++ })
		}
	}
	s.Run(200)
	if s.Stalled() {
		t.Fatal("sub-limit same-instant bursts tripped the stall detector")
	}
	if fired != 4000 {
		t.Fatalf("fired = %d, want 4000", fired)
	}
}

// TestStallDisabledByDefault: without a limit the detector never trips,
// and Reset clears a configured one.
func TestStallDisabledByDefault(t *testing.T) {
	s := New(1)
	var fired int
	for i := 0; i < 1000; i++ {
		s.At(1, func() { fired++ })
	}
	s.Run(10)
	if s.Stalled() || fired != 1000 {
		t.Fatalf("stalled=%v fired=%d without a limit set", s.Stalled(), fired)
	}

	s.Reset(1)
	s.SetStallLimit(10)
	s.Reset(1)
	for i := 0; i < 100; i++ {
		s.At(1, func() {})
	}
	s.Run(10)
	if s.Stalled() {
		t.Fatal("Reset did not clear the stall limit")
	}
}

// TestWallDeadline: an already-expired deadline aborts the run at the
// first check stride; without a deadline the same run completes.
func TestWallDeadline(t *testing.T) {
	s := New(1)
	s.SetWallDeadline(time.Nanosecond)
	time.Sleep(time.Millisecond) // guarantee expiry before Run
	var fired int
	for i := 0; i < 3*wallCheckEvery; i++ {
		s.After(float64(i)*1e-3, func() { fired++ })
	}
	s.Run(100)
	if !s.DeadlineExceeded() {
		t.Fatal("expired deadline did not abort the run")
	}
	if fired > wallCheckEvery {
		t.Fatalf("fired %d events, want abort at the first %d-event stride", fired, wallCheckEvery)
	}

	s.Reset(1)
	fired = 0
	for i := 0; i < 3*wallCheckEvery; i++ {
		s.After(float64(i)*1e-3, func() { fired++ })
	}
	s.Run(100)
	if s.DeadlineExceeded() || fired != 3*wallCheckEvery {
		t.Fatalf("after Reset: deadline=%v fired=%d, want clean completion", s.DeadlineExceeded(), fired)
	}
}

// TestWallDeadlineGenerous: a generous deadline does not disturb a short
// run.
func TestWallDeadlineGenerous(t *testing.T) {
	s := New(1)
	s.SetWallDeadline(time.Hour)
	var fired int
	for i := 0; i < 2*wallCheckEvery; i++ {
		s.After(float64(i)*1e-3, func() { fired++ })
	}
	s.Run(100)
	if s.DeadlineExceeded() || fired != 2*wallCheckEvery {
		t.Fatalf("deadline=%v fired=%d under a generous deadline", s.DeadlineExceeded(), fired)
	}
}
