package sim

import (
	"testing"
)

func TestScheduleOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(3, func() { got = append(got, 3) })
	s.Schedule(1, func() { got = append(got, 1) })
	s.Schedule(2, func() { got = append(got, 2) })
	s.Run(10)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("order %v", got)
	}
	if s.Now() != 10 {
		t.Errorf("Now = %v after Run(10)", s.Now())
	}
}

func TestClockAdvances(t *testing.T) {
	s := New(1)
	var at []float64
	s.Schedule(1.5, func() {
		at = append(at, s.Now())
		s.Schedule(2.5, func() { at = append(at, s.Now()) })
	})
	s.Run(100)
	if len(at) != 2 || at[0] != 1.5 || at[1] != 4.0 {
		t.Errorf("timestamps %v", at)
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(5, func() { fired = true })
	s.Run(3)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if s.Now() != 3 {
		t.Errorf("Now = %v", s.Now())
	}
	s.Run(10)
	if !fired {
		t.Error("event did not fire on resumed run")
	}
}

func TestAt(t *testing.T) {
	s := New(1)
	var when float64 = -1
	s.At(4.25, func() { when = s.Now() })
	s.Run(10)
	if when != 4.25 {
		t.Errorf("At fired at %v", when)
	}
}

func TestAtPastPanics(t *testing.T) {
	s := New(1)
	s.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past should panic")
			}
		}()
		s.At(1, func() {})
	})
	s.Run(10)
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay should panic")
		}
	}()
	New(1).Schedule(-1, func() {})
}

func TestTimerCancel(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.Schedule(1, func() { fired = true })
	if !tm.Active() {
		t.Error("timer should be active before firing")
	}
	tm.Cancel()
	if tm.Active() {
		t.Error("timer active after cancel")
	}
	s.Run(10)
	if fired {
		t.Error("cancelled timer fired")
	}
	var nilTimer *Timer
	nilTimer.Cancel() // must not panic
}

func TestEvery(t *testing.T) {
	s := New(1)
	count := 0
	s.Every(1, 0, func() { count++ })
	s.Run(10.5)
	if count != 10 {
		t.Errorf("Every(1) fired %d times in 10.5s", count)
	}
}

func TestEveryJitterBounds(t *testing.T) {
	s := New(1)
	var times []float64
	s.Every(2, 0.25, func() { times = append(times, s.Now()) })
	s.Run(100)
	prev := 0.0
	for _, tm := range times {
		gap := tm - prev
		if gap < 2*0.75-1e-9 || gap > 2*1.25+1e-9 {
			t.Fatalf("jittered interval %v outside [1.5, 2.5]", gap)
		}
		prev = tm
	}
	if len(times) < 35 {
		t.Errorf("only %d firings in 100s", len(times))
	}
}

func TestTickerStop(t *testing.T) {
	s := New(1)
	count := 0
	var tk *Ticker
	tk = s.Every(1, 0, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.Run(10)
	if count != 3 {
		t.Errorf("ticker fired %d times after Stop at 3", count)
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	s.Schedule(1, func() { count++; s.Stop() })
	s.Schedule(2, func() { count++ })
	s.Run(10)
	if count != 1 {
		t.Errorf("Stop did not halt the loop: count=%d", count)
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) should panic")
		}
	}()
	New(1).Every(0, 0, func() {})
}

func TestProcessedCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		s.Schedule(float64(i), func() {})
	}
	s.Run(10)
	if s.Processed() != 5 {
		t.Errorf("Processed = %d", s.Processed())
	}
}

func TestDeterministicEventInterleaving(t *testing.T) {
	run := func() []int {
		s := New(42)
		var got []int
		for i := 0; i < 100; i++ {
			i := i
			s.Schedule(float64(i%7), func() { got = append(got, i) })
		}
		s.Run(100)
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving differs at %d", i)
		}
	}
}

func BenchmarkEventLoop(b *testing.B) {
	s := New(1)
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			s.Schedule(1, fn)
		}
	}
	s.Schedule(1, fn)
	s.Run(float64(b.N + 2))
}
