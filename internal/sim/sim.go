// Package sim implements the single-threaded deterministic discrete-event
// simulation kernel.
//
// One Simulator owns a virtual clock and an event queue. All model code
// (mobility, medium, protocols, traffic) runs inside event callbacks on the
// simulator's goroutine; simulations are therefore deterministic for a
// fixed seed. Parallelism is obtained by running many independent
// Simulators concurrently (see internal/scenario), never by sharing one.
package sim

import (
	"fmt"
	"time"

	"repro/internal/eventq"
	"repro/internal/xrand"
)

// Time is a point in simulated time, in seconds since the start of the run.
type Time = float64

// Simulator is a discrete-event scheduler with a virtual clock.
type Simulator struct {
	now     Time
	queue   *eventq.Queue
	rng     *xrand.RNG
	stopped bool
	// processed counts fired events, exposed for tests and benchmarks.
	processed uint64
	// tickers counts Every calls so each ticker gets an independent
	// jitter stream (splitting on a fixed label alone would hand every
	// ticker the same sequence).
	tickers int
	// budget, when non-zero, bounds the number of events Run may fire:
	// the sim-time watchdog that turns a runaway run (event storm,
	// self-rescheduling livelock) into a failed result instead of a hung
	// sweep worker. exceeded latches when the bound trips.
	budget   uint64
	exceeded bool
	// stallLimit, when non-zero, bounds the number of consecutive events
	// Run may fire at one simulated instant. The budget catches runs that
	// do too much work overall; the stall detector catches the sharper
	// pathology of a clock that stops advancing entirely (a zero-delay
	// self-rescheduling cycle) long before the budget would. sameAt counts
	// the current same-instant streak; stalled latches when it trips.
	stallLimit uint64
	sameAt     uint64
	stalled    bool
	// deadline, when hasDeadline, is the wall-clock instant past which Run
	// aborts. Checked every wallCheckEvery events so the time.Now() cost
	// stays off the per-event path. deadlineHit latches on expiry.
	deadline    time.Time
	hasDeadline bool
	deadlineHit bool
	// haltAt records the simulated instant a watchdog (stall or deadline)
	// aborted the run — Run advances the clock to its horizon even on an
	// abort, so Now() cannot report where the run actually stopped.
	haltAt Time
}

// wallCheckEvery is the event stride between wall-clock deadline checks:
// a power of two so the check compiles to a mask test.
const wallCheckEvery = 1024

// New creates a simulator whose random streams derive from seed.
func New(seed uint64) *Simulator {
	return &Simulator{queue: eventq.New(), rng: xrand.New(seed)}
}

// Reset rewinds the simulator for a new run seeded by seed: the clock and
// counters restart and the event queue empties, but the queue's backing
// arrays and recycled event pool survive — a reused simulator runs its
// next simulation with the same results as a fresh one while scheduling
// in steady state without allocating. Timers and Tickers from the
// previous run are dropped (they read as cancelled).
func (s *Simulator) Reset(seed uint64) {
	s.now = 0
	s.stopped = false
	s.processed = 0
	s.tickers = 0
	s.budget = 0
	s.exceeded = false
	s.stallLimit = 0
	s.sameAt = 0
	s.stalled = false
	s.deadline = time.Time{}
	s.hasDeadline = false
	s.deadlineHit = false
	s.haltAt = 0
	s.rng = xrand.New(seed)
	s.queue.Reset()
}

// SetBudget bounds the number of events Run may fire before aborting; 0
// removes the bound. Reset clears it.
func (s *Simulator) SetBudget(n uint64) { s.budget = n }

// BudgetExceeded reports whether a Run was aborted by the event budget.
func (s *Simulator) BudgetExceeded() bool { return s.exceeded }

// SetStallLimit bounds the number of consecutive events Run may fire
// without the clock advancing; 0 removes the bound. Reset clears it.
func (s *Simulator) SetStallLimit(n uint64) { s.stallLimit = n }

// Stalled reports whether a Run was aborted by the stall detector.
func (s *Simulator) Stalled() bool { return s.stalled }

// SetWallDeadline bounds the wall-clock time Run may consume, measured
// from this call; d <= 0 removes the bound. Reset clears it. Expiry is
// detected within wallCheckEvery events, so a single pathologically slow
// event callback can still overshoot.
func (s *Simulator) SetWallDeadline(d time.Duration) {
	if d <= 0 {
		s.hasDeadline = false
		return
	}
	s.deadline = time.Now().Add(d) //detlint:allow wall-deadline watchdog arm point; can only abort a run, never change a successful result
	s.hasDeadline = true
}

// DeadlineExceeded reports whether a Run was aborted by the wall-clock
// deadline.
func (s *Simulator) DeadlineExceeded() bool { return s.deadlineHit }

// HaltedAt returns the simulated instant at which a watchdog aborted the
// run (0 if none tripped).
func (s *Simulator) HaltedAt() Time { return s.haltAt }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// RNG returns the simulator's root random stream. Subsystems should Split
// it once at setup rather than drawing from it directly during the run.
func (s *Simulator) RNG() *xrand.RNG { return s.rng }

// Processed returns the number of events fired so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Timer is a handle to a scheduled callback; it can be cancelled.
type Timer struct {
	ev *eventq.Event
	q  *eventq.Queue
}

// Cancel stops the timer if it has not fired. Safe on nil and fired timers.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.q.Cancel(t.ev)
	}
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t != nil && t.ev != nil && !t.ev.Cancelled() }

// Schedule runs fn after delay seconds of simulated time. A negative delay
// panics: the simulator cannot rewind.
func (s *Simulator) Schedule(delay Time, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	return &Timer{ev: s.queue.Push(s.now+delay, fn), q: s.queue}
}

// After is Schedule without the cancellation handle. Hot paths that never
// cancel (the medium schedules millions of deliveries per run) use it: the
// Timer allocation disappears and the underlying event is recycled after
// it fires.
func (s *Simulator) After(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	s.queue.PushPooled(s.now+delay, fn)
}

// Action aliases the event queue's pre-allocated callback interface.
type Action = eventq.Action

// AfterAction is After for a pre-allocated Action: zero allocations per
// scheduled event when the Action lives in a caller-owned structure.
func (s *Simulator) AfterAction(delay Time, act Action) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	s.queue.PushAction(s.now+delay, act)
}

// ReserveSeqs allocates n consecutive event sequence numbers (the
// (time, seq) tie-break identities) without scheduling anything; see
// eventq.Queue.ReserveSeqs.
func (s *Simulator) ReserveSeqs(n int) uint64 { return s.queue.ReserveSeqs(n) }

// ActionAtSeq schedules act at absolute time at under a sequence number
// previously obtained from ReserveSeqs. Scheduling in the past panics.
func (s *Simulator) ActionAtSeq(at Time, act Action, seq uint64) {
	if at < s.now {
		panic(fmt.Sprintf("sim: ActionAtSeq(%g) is before now=%g", at, s.now))
	}
	s.queue.PushActionSeq(at, act, seq)
}

// At runs fn at absolute simulated time t, which must not be in the past.
func (s *Simulator) At(t Time, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: At(%g) is before now=%g", t, s.now))
	}
	return &Timer{ev: s.queue.Push(t, fn), q: s.queue}
}

// Every schedules fn at period intervals starting after the first period
// elapses, until the simulation ends or the returned ticker is cancelled.
// An optional jitter fraction j (0 ≤ j < 1) draws each interval uniformly
// from [period·(1−j), period·(1+j)] to avoid phase-locked timers.
func (s *Simulator) Every(period Time, jitter float64, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	s.tickers++
	t := &Ticker{sim: s, period: period, jitter: jitter, fn: fn,
		rng: s.rng.Split("sim.ticker").SplitIndex(s.tickers)}
	t.arm()
	return t
}

// Ticker repeatedly schedules a callback; see Simulator.Every. It owns a
// single reusable event and implements eventq.Action, so the re-arming
// after every firing allocates nothing.
type Ticker struct {
	sim     *Simulator
	period  Time
	jitter  float64
	fn      func()
	ev      eventq.Event
	rng     *xrand.RNG
	stopped bool
}

func (t *Ticker) arm() {
	d := t.period
	if t.jitter > 0 {
		d = t.period * (1 + t.jitter*(2*t.rng.Float64()-1))
	}
	t.sim.queue.PushOwned(&t.ev, t.sim.now+d, t)
}

// Fire implements eventq.Action: run the callback, then re-arm.
func (t *Ticker) Fire() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.arm()
	}
}

// Stop cancels all future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.sim.queue.Cancel(&t.ev)
}

// Run executes events in order until the queue drains or the clock reaches
// until. It returns the time at which execution stopped.
func (s *Simulator) Run(until Time) Time {
	s.stopped = false
	for !s.stopped {
		// One fused root inspection per event: pop the earliest live event
		// unless it lies beyond the horizon (then it stays queued).
		e := s.queue.PopNotAfter(until)
		if e == nil {
			break
		}
		if e.At < s.now {
			panic(fmt.Sprintf("sim: event at %g before now %g", e.At, s.now))
		}
		if s.stallLimit != 0 {
			if e.At > s.now {
				s.sameAt = 0
			} else if s.sameAt++; s.sameAt >= s.stallLimit {
				s.stalled = true
				s.haltAt = e.At
				s.queue.Release(e)
				break
			}
		}
		s.now = e.At
		s.processed++
		if s.budget != 0 && s.processed > s.budget {
			s.exceeded = true
			s.queue.Release(e)
			break
		}
		//detlint:allow wall-deadline watchdog check; can only abort a run, never change a successful result
		if s.hasDeadline && s.processed&(wallCheckEvery-1) == 0 && time.Now().After(s.deadline) {
			s.deadlineHit = true
			s.haltAt = e.At
			s.queue.Release(e)
			break
		}
		fn, act := e.Fn, e.Act
		s.queue.Release(e) // recycle pooled events before fn can push new ones
		if fn != nil {
			fn()
		} else {
			act.Fire()
		}
	}
	if s.now < until {
		s.now = until
	}
	return s.now
}

// Stop aborts Run after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Pending returns the number of events still queued (including cancelled
// but not yet collected entries).
func (s *Simulator) Pending() int { return s.queue.Len() }
