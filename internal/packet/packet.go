// Package packet defines the on-air packet taxonomy shared by every
// protocol in the simulator, together with the byte sizes used for control
// overhead accounting and airtime computation.
//
// Packets are plain Go structs passed by pointer through the medium; there
// is no wire serialization, but every packet reports a Size in bytes that
// matches what a real encoding would occupy, because the paper's Figure 13
// (control bytes per data byte delivered) depends on it.
package packet

import (
	"fmt"
	"math/bits"
)

// NodeID identifies a node. IDs are dense small integers assigned by the
// network at construction.
type NodeID int32

// Broadcast is the pseudo-address meaning "all nodes in range".
const Broadcast NodeID = -1

// String implements fmt.Stringer.
func (id NodeID) String() string {
	if id == Broadcast {
		return "*"
	}
	return fmt.Sprintf("n%d", int32(id))
}

// GroupID indexes a multicast group (topic) within a run. Nodes hosting K
// protocol instances route received frames by this index; the zero value
// is group 0, so single-group frames are unchanged from pre-multiplexing
// builds.
type GroupID uint8

// Kind discriminates packet payload types.
type Kind uint8

// Packet kinds. Data is the only non-control kind; everything else counts
// toward control overhead.
const (
	KindData Kind = iota
	KindBeacon
	KindRREQ       // MAODV route/join request
	KindRREP       // MAODV route/join reply
	KindMACT       // MAODV multicast activation
	KindGroupHello // MAODV group-leader hello flood
	KindJoinQuery  // ODMRP source-initiated flood
	KindJoinReply  // ODMRP receiver reply establishing forwarding group
	KindHello      // generic neighbour hello (MAODV link sensing)
	numKinds
)

var kindNames = [numKinds]string{
	"DATA", "BEACON", "RREQ", "RREP", "MACT", "GRPH", "JOIN-Q", "JOIN-R", "HELLO",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Control reports whether the kind counts as control traffic.
func (k Kind) Control() bool { return k != KindData }

// Header byte costs, loosely modelled on 802.11 + IP + UDP framing as ns-2
// charges them. Only relative magnitudes matter for the reproduced figures.
const (
	MACHeaderBytes = 34  // 802.11 data frame header + FCS
	IPHeaderBytes  = 20  // IPv4
	DataPayload    = 512 // CBR payload used throughout the paper
)

// Packet is one on-air frame. From/To are link-layer addresses; Src is the
// originator of the payload (e.g. the multicast source for data packets).
type Packet struct {
	Kind Kind
	// Group is the multicast group (topic) the frame belongs to. Receivers
	// dispatch to the matching per-group protocol instance.
	Group GroupID
	From  NodeID // transmitter of this frame
	To    NodeID // link-layer destination, Broadcast for beacons/floods
	Src   NodeID // originator (multicast source, RREQ issuer, …)
	Seq   uint32 // originator sequence number, for dedup
	TTL   uint8  // remaining hops for flooded packets
	// Bytes is the total frame size on air, headers included.
	Bytes int
	// Born is the simulated time the payload was first transmitted by its
	// originator; used for end-to-end delay accounting of data packets.
	Born float64
	// Hops counts link-layer hops traversed so far.
	Hops int
	// Payload carries protocol-specific state (e.g. beacon contents).
	// Handlers type-assert on Kind.
	Payload any
	// Owner, when non-nil, recycles the packet: the medium calls
	// Owner.FreePacket exactly once, after the frame's transmission has
	// left the air and its last scheduled reception has fired. Past that
	// point no component may retain the packet or anything reachable from
	// its payload — receivers copy what they keep. Protocols that opt in
	// pool their frames; everyone else leaves Owner nil and lets the
	// garbage collector take the frame.
	Owner Owner
}

// Owner recycles finished packets; see Packet.Owner.
type Owner interface {
	// FreePacket returns p to its owner's pool. Called exactly once per
	// transmitted frame, on the simulator goroutine.
	FreePacket(p *Packet)
}

// Clone returns a shallow copy suitable for re-forwarding with mutated
// From/TTL/Hops. The Payload pointer is shared; protocols that forward
// payloads treat them as immutable. The copy is not owned by the
// original's pool: recycling the original must not tear storage out from
// under the in-flight copy, so Owner does not propagate.
func (p *Packet) Clone() *Packet {
	q := *p
	q.Owner = nil
	return &q
}

// SeqSet is a set of (src, seq) packet identities, tuned for the
// simulator's dominant shape: one multicast source numbering its packets
// densely from zero, probed on every data reception (application dedup,
// forwarding dedup, delivery accounting). The first source seen gets a
// growable bitset indexed by seq; any other source (mixed-protocol
// tests, future multi-source traffic) falls back to a map. The zero
// value is an empty set ready to use.
type SeqSet struct {
	src    NodeID
	hasSrc bool
	bits   []uint64
	rest   map[uint64]struct{}
}

// TestAndSet inserts (src, seq) and reports whether it was already
// present.
func (s *SeqSet) TestAndSet(src NodeID, seq uint32) bool {
	if !s.hasSrc {
		s.src, s.hasSrc = src, true
	}
	if src == s.src {
		w, b := int(seq>>6), uint64(1)<<(seq&63)
		for w >= len(s.bits) {
			s.bits = append(s.bits, 0)
		}
		if s.bits[w]&b != 0 {
			return true
		}
		s.bits[w] |= b
		return false
	}
	if s.rest == nil {
		s.rest = make(map[uint64]struct{})
	}
	k := uint64(uint32(src))<<32 | uint64(seq)
	if _, dup := s.rest[k]; dup {
		return true
	}
	s.rest[k] = struct{}{}
	return false
}

// Count returns the number of identities in the set. It recounts from
// the backing storage (popcount over the bitset plus the fallback map's
// size), so it serves as the independent tally the expensive invariant
// tier compares against incrementally-maintained delivery counters.
func (s *SeqSet) Count() int {
	n := 0
	for _, w := range s.bits {
		n += bits.OnesCount64(w)
	}
	return n + len(s.rest)
}

// Reset empties the set, keeping the bitset's backing array and the
// fallback map's buckets for reuse.
func (s *SeqSet) Reset() {
	s.hasSrc = false
	for i := range s.bits {
		s.bits[i] = 0
	}
	s.bits = s.bits[:0]
	clear(s.rest)
}

// MakeData builds a multicast data frame, by value, originated by src
// with the given sequence number and born timestamp. Pooling callers
// assign it into recycled storage; NewData heap-allocates it.
func MakeData(src NodeID, seq uint32, born float64) Packet {
	return Packet{
		Kind:  KindData,
		From:  src,
		To:    Broadcast,
		Src:   src,
		Seq:   seq,
		Bytes: DataPayload + IPHeaderBytes + MACHeaderBytes,
		Born:  born,
	}
}

// NewData builds a multicast data frame originated by src with the given
// sequence number and born timestamp.
func NewData(src NodeID, seq uint32, born float64) *Packet {
	p := MakeData(src, seq, born)
	return &p
}
