// Package packet defines the on-air packet taxonomy shared by every
// protocol in the simulator, together with the byte sizes used for control
// overhead accounting and airtime computation.
//
// Packets are plain Go structs passed by pointer through the medium; there
// is no wire serialization, but every packet reports a Size in bytes that
// matches what a real encoding would occupy, because the paper's Figure 13
// (control bytes per data byte delivered) depends on it.
package packet

import "fmt"

// NodeID identifies a node. IDs are dense small integers assigned by the
// network at construction.
type NodeID int32

// Broadcast is the pseudo-address meaning "all nodes in range".
const Broadcast NodeID = -1

// String implements fmt.Stringer.
func (id NodeID) String() string {
	if id == Broadcast {
		return "*"
	}
	return fmt.Sprintf("n%d", int32(id))
}

// Kind discriminates packet payload types.
type Kind uint8

// Packet kinds. Data is the only non-control kind; everything else counts
// toward control overhead.
const (
	KindData Kind = iota
	KindBeacon
	KindRREQ       // MAODV route/join request
	KindRREP       // MAODV route/join reply
	KindMACT       // MAODV multicast activation
	KindGroupHello // MAODV group-leader hello flood
	KindJoinQuery  // ODMRP source-initiated flood
	KindJoinReply  // ODMRP receiver reply establishing forwarding group
	KindHello      // generic neighbour hello (MAODV link sensing)
	numKinds
)

var kindNames = [numKinds]string{
	"DATA", "BEACON", "RREQ", "RREP", "MACT", "GRPH", "JOIN-Q", "JOIN-R", "HELLO",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Control reports whether the kind counts as control traffic.
func (k Kind) Control() bool { return k != KindData }

// Header byte costs, loosely modelled on 802.11 + IP + UDP framing as ns-2
// charges them. Only relative magnitudes matter for the reproduced figures.
const (
	MACHeaderBytes = 34  // 802.11 data frame header + FCS
	IPHeaderBytes  = 20  // IPv4
	DataPayload    = 512 // CBR payload used throughout the paper
)

// Packet is one on-air frame. From/To are link-layer addresses; Src is the
// originator of the payload (e.g. the multicast source for data packets).
type Packet struct {
	Kind Kind
	From NodeID // transmitter of this frame
	To   NodeID // link-layer destination, Broadcast for beacons/floods
	Src  NodeID // originator (multicast source, RREQ issuer, …)
	Seq  uint32 // originator sequence number, for dedup
	TTL  uint8  // remaining hops for flooded packets
	// Bytes is the total frame size on air, headers included.
	Bytes int
	// Born is the simulated time the payload was first transmitted by its
	// originator; used for end-to-end delay accounting of data packets.
	Born float64
	// Hops counts link-layer hops traversed so far.
	Hops int
	// Payload carries protocol-specific state (e.g. beacon contents).
	// Handlers type-assert on Kind.
	Payload any
}

// Clone returns a shallow copy suitable for re-forwarding with mutated
// From/TTL/Hops. The Payload pointer is shared; protocols that forward
// payloads treat them as immutable.
func (p *Packet) Clone() *Packet {
	q := *p
	return &q
}

// NewData builds a multicast data frame originated by src with the given
// sequence number and born timestamp.
func NewData(src NodeID, seq uint32, born float64) *Packet {
	return &Packet{
		Kind:  KindData,
		From:  src,
		To:    Broadcast,
		Src:   src,
		Seq:   seq,
		Bytes: DataPayload + IPHeaderBytes + MACHeaderBytes,
		Born:  born,
	}
}
