package packet

import "testing"

func TestKindControl(t *testing.T) {
	if KindData.Control() {
		t.Error("data must not count as control")
	}
	for _, k := range []Kind{KindBeacon, KindRREQ, KindRREP, KindMACT,
		KindGroupHello, KindJoinQuery, KindJoinReply, KindHello} {
		if !k.Control() {
			t.Errorf("%v must count as control", k)
		}
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindData:       "DATA",
		KindBeacon:     "BEACON",
		KindGroupHello: "GRPH",
		KindJoinQuery:  "JOIN-Q",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestNodeIDString(t *testing.T) {
	if Broadcast.String() != "*" {
		t.Errorf("Broadcast = %q", Broadcast.String())
	}
	if NodeID(7).String() != "n7" {
		t.Errorf("n7 = %q", NodeID(7).String())
	}
}

func TestNewData(t *testing.T) {
	p := NewData(3, 42, 1.5)
	if p.Kind != KindData || p.Src != 3 || p.Seq != 42 || p.Born != 1.5 {
		t.Errorf("NewData fields: %+v", p)
	}
	if p.To != Broadcast {
		t.Error("data frames are link-layer broadcast")
	}
	want := DataPayload + IPHeaderBytes + MACHeaderBytes
	if p.Bytes != want {
		t.Errorf("Bytes = %d, want %d", p.Bytes, want)
	}
}

func TestClone(t *testing.T) {
	p := NewData(1, 2, 3)
	q := p.Clone()
	q.From = 9
	q.Hops = 5
	if p.From == 9 || p.Hops == 5 {
		t.Error("Clone shares mutable header fields with the original")
	}
	if q.Src != p.Src || q.Seq != p.Seq {
		t.Error("Clone lost identity fields")
	}
}
