package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTxEnergyMonotonicInDistance(t *testing.T) {
	m := Default()
	prev := 0.0
	for d := 10.0; d <= m.MaxRange; d += 10 {
		e := m.TxEnergy(512, d)
		if e <= prev {
			t.Fatalf("TxEnergy not increasing at d=%v: %v <= %v", d, e, prev)
		}
		prev = e
	}
}

func TestTxEnergyMonotonicInBytes(t *testing.T) {
	m := Default()
	if m.TxEnergy(1024, 100) <= m.TxEnergy(512, 100) {
		t.Error("more bytes should cost more")
	}
}

func TestTxEnergyBeyondRangeInfinite(t *testing.T) {
	m := Default()
	if e := m.TxEnergy(512, m.MaxRange+1); !math.IsInf(e, 1) {
		t.Errorf("beyond MaxRange = %v, want +Inf", e)
	}
}

func TestTxEnergyExactValue(t *testing.T) {
	m := Default()
	// 100 bytes at 100 m: 800 bits × (100e-9 + 6e-12·10000) J/bit.
	want := 800 * (100e-9 + 6e-12*10000)
	if got := m.TxEnergy(100, 100); math.Abs(got-want) > 1e-15 {
		t.Errorf("TxEnergy = %v, want %v", got, want)
	}
}

func TestRxEnergyConstant(t *testing.T) {
	m := Default()
	if m.RxEnergy(512, 10) != m.RxEnergy(512, 250) {
		t.Error("reception energy must not depend on tx power by default (paper §3)")
	}
}

func TestRxEnergyErxOfTx(t *testing.T) {
	m := Default()
	m.ErxOfTx = true
	near := m.RxEnergy(512, 10)
	far := m.RxEnergy(512, 250)
	if far <= near {
		t.Error("with ErxOfTx, higher tx power must cost receivers more")
	}
	// At full range the coupling adds exactly RxTxCoupling of the base.
	base := Default().RxEnergy(512, 0)
	if math.Abs(far-base*(1+m.RxTxCoupling)) > 1e-12 {
		t.Errorf("coupling at MaxRange = %v, want %v", far, base*(1+m.RxTxCoupling))
	}
}

func TestRelayCrossover(t *testing.T) {
	m := Default()
	// Below the crossover (~129 m) a direct hop beats two relayed halves;
	// above it, relaying wins. This property shapes every tree the energy
	// metrics build.
	direct := func(d float64) float64 { return m.TxEnergy(512, d) }
	relayed := func(d float64) float64 { return 2 * m.TxEnergy(512, d/2) }
	if direct(100) >= relayed(100) {
		t.Error("at 100 m direct should win")
	}
	if direct(240) <= relayed(240) {
		t.Error("at 240 m relaying should win")
	}
}

func TestPathLossExponent(t *testing.T) {
	m := Default()
	m.PathLossExp = 4
	if m.TxEnergy(512, 200) <= Default().TxEnergy(512, 200) {
		t.Error("two-ray exponent must cost more at distance")
	}
}

func TestMeterBuckets(t *testing.T) {
	var m Meter
	m.SpendTx(1)
	m.SpendRx(2)
	m.SpendDiscard(3)
	if m.TxJ != 1 || m.RxJ != 2 || m.DiscardJ != 3 {
		t.Errorf("buckets %v", &m)
	}
	if m.Total() != 6 {
		t.Errorf("Total = %v", m.Total())
	}
}

func TestMeterReclassify(t *testing.T) {
	var m Meter
	m.SpendRx(5)
	m.Reclassify(2)
	if m.RxJ != 3 || m.DiscardJ != 2 {
		t.Errorf("after reclassify: %v", &m)
	}
	if m.Total() != 5 {
		t.Errorf("Reclassify changed the total: %v", m.Total())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Reclassify should panic")
		}
	}()
	m.Reclassify(-1)
}

func TestBattery(t *testing.T) {
	m := NewMeter(10)
	if m.Dead() {
		t.Error("fresh battery dead")
	}
	m.SpendTx(4)
	m.SpendRx(4)
	if m.Dead() {
		t.Error("battery with 2 J left reported dead")
	}
	m.SpendDiscard(3)
	if !m.Dead() {
		t.Error("exhausted battery not dead")
	}
}

func TestUnlimitedBatteryNeverDies(t *testing.T) {
	m := NewMeter(0)
	m.SpendTx(1e12)
	if m.Dead() {
		t.Error("unlimited meter died")
	}
}

func TestTotalIsSumOfBuckets(t *testing.T) {
	f := func(tx, rx, dc float64) bool {
		tx, rx, dc = math.Abs(tx), math.Abs(rx), math.Abs(dc)
		if math.IsInf(tx+rx+dc, 0) || tx+rx+dc != tx+rx+dc {
			return true
		}
		var m Meter
		m.SpendTx(tx)
		m.SpendRx(rx)
		m.SpendDiscard(dc)
		return math.Abs(m.Total()-(tx+rx+dc)) <= 1e-9*(1+tx+rx+dc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
