// Package energy implements the first-order radio energy model and the
// per-node energy meters used for the paper's energy accounting.
//
// The paper assumes power-controlled omnidirectional radios: the energy to
// transmit a packet over distance d grows with d, while the reception
// energy is constant per bit (its §3 system model; transmission-power
// dependent reception energy is flagged as future work and is available
// here behind Model.ErxOfTx as an ablation).
//
// The meter buckets every joule into transmit, receive and *discard*
// energy. Discard energy — paid by nodes that overhear a transmission not
// addressed to them and drop it — is exactly the quantity the SS-SPST-E
// metric minimizes, so measurement and metric agree by construction.
package energy

import (
	"fmt"
	"math"
)

// Model holds the radio constants. The defaults follow the widely used
// first-order model (Heinzelman et al.): Etx(d) = (Eelec + Eamp·d²)·bits,
// Erx = Eelec·bits.
type Model struct {
	// EelecJPerBit is the electronics energy per bit, charged on both
	// transmit and receive (J/bit).
	EelecJPerBit float64
	// EampJPerBitM2 is the amplifier energy per bit per square metre
	// (J/bit/m²); the distance-dependent term.
	EampJPerBitM2 float64
	// PathLossExp is the path-loss exponent applied to distance. 2 is
	// free-space; 4 models two-ray ground reflection.
	PathLossExp float64
	// MaxRange is the maximum transmission range achievable at full power
	// (metres). Transmissions are clamped to it.
	MaxRange float64
	// ErxOfTx, when true, makes reception energy grow with the
	// transmitter's power (the paper's stated future-work extension,
	// ref [23]). Reception then costs Eelec·bits·(1 + RxTxCoupling·(d/MaxRange)^PathLossExp).
	ErxOfTx bool
	// RxTxCoupling scales the transmission-power dependent reception term
	// when ErxOfTx is enabled.
	RxTxCoupling float64
}

// Default returns the model used by all paper-reproduction experiments:
// 100 nJ/bit electronics, 6 pJ/bit/m² amplifier, free-space exponent,
// 250 m maximum range (a common 802.11 figure).
//
// The constants put the relay-vs-direct crossover near 130 m
// (Eelec = Eamp·d² at d ≈ 129 m): splitting a long hop into two relays
// pays off only beyond that, which keeps energy-optimal trees moderately
// deeper than hop-optimal ones — the regime the paper's latency/energy
// trade-off lives in.
func Default() Model {
	return Model{
		EelecJPerBit:  100e-9,
		EampJPerBitM2: 6e-12,
		PathLossExp:   2,
		MaxRange:      250,
		RxTxCoupling:  0.5,
	}
}

// TxEnergy returns the energy in joules to transmit `bytes` bytes to reach
// distance d. Distances beyond MaxRange are unreachable and return +Inf.
func (m Model) TxEnergy(bytes int, d float64) float64 {
	if d > m.MaxRange {
		return math.Inf(1)
	}
	bits := float64(bytes) * 8
	// The free-space exponent is the default and TxEnergy sits on the
	// per-transmission and per-join-evaluation hot paths; d·d produces
	// the same bits as math.Pow(d, 2) (Pow computes integer exponents by
	// squaring) without its call and classification overhead.
	var attn float64
	if m.PathLossExp == 2 {
		attn = d * d
	} else {
		attn = math.Pow(d, m.PathLossExp)
	}
	return bits * (m.EelecJPerBit + m.EampJPerBitM2*attn)
}

// RxEnergy returns the energy in joules for a node to receive `bytes`
// bytes. txDist is the transmitter's power-controlled range; it only
// matters when ErxOfTx is enabled.
func (m Model) RxEnergy(bytes int, txDist float64) float64 {
	bits := float64(bytes) * 8
	e := bits * m.EelecJPerBit
	if m.ErxOfTx {
		frac := math.Pow(txDist/m.MaxRange, m.PathLossExp)
		e *= 1 + m.RxTxCoupling*frac
	}
	return e
}

// Meter accumulates one node's energy expenditure, bucketed by purpose.
// The zero value is ready to use.
type Meter struct {
	// TxJ is energy spent transmitting (control + data).
	TxJ float64
	// RxJ is energy spent on receptions that were consumed (addressed to
	// the node, or broadcast state the node used).
	RxJ float64
	// DiscardJ is the overhearing cost: receptions paid for and dropped.
	DiscardJ float64
	// Battery, when positive, is the remaining reserve in joules; Drain
	// decrements it and Dead reports depletion. A zero Battery means
	// "unlimited" (the paper's experiments do not deplete batteries; the
	// lifetime extension experiment does).
	Battery float64

	limited bool
	// initial remembers the reserve Reset granted, so the end-of-run
	// energy-ledger invariant can compare drawdown (initial − Battery)
	// against the bucket total.
	initial float64
	// killed marks batteries exhausted by Kill rather than by spending:
	// the drawdown it fabricates has no matching bucket charges, so the
	// ledger check skips killed meters.
	killed bool
}

// NewMeter returns a meter with the given battery reserve in joules.
// reserve <= 0 means unlimited.
func NewMeter(reserve float64) *Meter {
	m := &Meter{}
	m.Reset(reserve)
	return m
}

// Reset returns the meter to its initial state with the given reserve
// (<= 0 unlimited), for reuse across runs.
func (m *Meter) Reset(reserve float64) {
	*m = Meter{}
	if reserve > 0 {
		m.Battery = reserve
		m.limited = true
		m.initial = reserve
	}
}

// Limited reports whether the meter has a finite battery.
func (m *Meter) Limited() bool { return m.limited }

// Killed reports whether the battery was exhausted by Kill.
func (m *Meter) Killed() bool { return m.killed }

// InitialJ returns the reserve the meter started with (0 if unlimited).
func (m *Meter) InitialJ() float64 { return m.initial }

// Total returns all energy spent, in joules.
func (m *Meter) Total() float64 { return m.TxJ + m.RxJ + m.DiscardJ }

// Dead reports whether a limited battery has been exhausted.
func (m *Meter) Dead() bool { return m.limited && m.Battery <= 0 }

// Kill exhausts the battery immediately (fault injection: crash, battery
// pull). The radio goes silent for the rest of the run.
func (m *Meter) Kill() {
	m.limited = true
	m.killed = true
	m.Battery = 0
}

func (m *Meter) drain(j float64) {
	if m.limited {
		m.Battery -= j
	}
}

// SpendTx charges a transmission of j joules.
func (m *Meter) SpendTx(j float64) {
	m.TxJ += j
	m.drain(j)
}

// SpendRx charges a consumed reception of j joules.
func (m *Meter) SpendRx(j float64) {
	m.RxJ += j
	m.drain(j)
}

// SpendDiscard charges an overheard-and-dropped reception of j joules.
func (m *Meter) SpendDiscard(j float64) {
	m.DiscardJ += j
	m.drain(j)
}

// Reclassify moves j joules from the consumed-reception bucket to the
// discard bucket (or back, with negative j is not supported). Protocols use
// it when a reception's fate is only known after inspection.
func (m *Meter) Reclassify(j float64) {
	if j < 0 {
		panic("energy: negative reclassify")
	}
	m.RxJ -= j
	m.DiscardJ += j
}

// String implements fmt.Stringer.
func (m *Meter) String() string {
	return fmt.Sprintf("tx=%.4gJ rx=%.4gJ discard=%.4gJ", m.TxJ, m.RxJ, m.DiscardJ)
}
