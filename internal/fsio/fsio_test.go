package fsio

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// atomicPut mimics the shard fabric's durable write path: temp → write →
// sync → close → rename → dir sync.
func atomicPut(fs FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fs.CreateTemp(dir, "put*")
	if err != nil {
		return err
	}
	defer fs.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f.json")
	if err := atomicPut(OS, p, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := OS.ReadFile(p)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
}

func TestOSSyncDirOnFile(t *testing.T) {
	// SyncDir on a missing path must surface the error.
	if err := OS.SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("SyncDir on a missing directory returned nil")
	}
}

// TestFaultDeterminism: the same seed produces the same fault schedule.
func TestFaultDeterminism(t *testing.T) {
	run := func() []string {
		dir := t.TempDir()
		fs := NewFaultFS(OS, 42, 0.5)
		for i := 0; i < 20; i++ {
			atomicPut(fs, filepath.Join(dir, "f.json"), []byte("payload"))
		}
		log := fs.Injected()
		// Paths embed the per-run temp dir; strip to the op word.
		for i, l := range log {
			for j := 0; j < len(l); j++ {
				if l[j] == ' ' {
					log[i] = l[:j]
					break
				}
			}
		}
		return log
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("rate 0.5 over 20 writes injected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestInjectionTyped: every injected failure matches ErrInjected, and
// never corrupts the visible file — atomicPut either lands the new bytes
// completely or leaves the previous content untouched.
func TestInjectionTyped(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f.json")
	if err := atomicPut(OS, p, []byte("old")); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultFS(OS, 7, 0.6)
	var failures, successes int
	for i := 0; i < 50 && !fs.Crashed(); i++ {
		err := atomicPut(fs, p, []byte("new"))
		switch {
		case err == nil:
			successes++
		case errors.Is(err, ErrInjected):
			failures++
		default:
			t.Fatalf("write %d failed with a non-injected error: %v", i, err)
		}
		got, rerr := os.ReadFile(p)
		if rerr != nil {
			t.Fatalf("visible file unreadable after write %d: %v", i, rerr)
		}
		if s := string(got); s != "old" && s != "new" {
			t.Fatalf("torn visible file after write %d: %q", i, s)
		}
	}
	if failures == 0 {
		t.Fatal("rate 0.6 over 50 writes injected nothing")
	}
}

// TestCrashLatches: after a rename-crash fires, every subsequent
// operation fails with ErrCrashed (which wraps ErrInjected).
func TestCrashLatches(t *testing.T) {
	dir := t.TempDir()
	// A moderate rate reaches the rename fault point often (a high rate
	// faults the write first and never gets there).
	fs := NewFaultFS(OS, 3, 0.3)
	for i := 0; i < 500 && !fs.Crashed(); i++ {
		atomicPut(fs, filepath.Join(dir, "f.json"), []byte("x"))
	}
	if !fs.Crashed() {
		t.Fatal("rate 0.3 over 500 writes never crashed")
	}
	if _, err := fs.ReadFile(filepath.Join(dir, "f.json")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash ReadFile error = %v, want ErrCrashed", err)
	}
	if err := fs.Rename("a", "b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("ErrCrashed does not wrap ErrInjected: %v", err)
	}
	if _, err := fs.CreateTemp(dir, "t*"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash CreateTemp error = %v, want ErrCrashed", err)
	}
}

// TestShortWriteLeavesPrefix: a faulted Write lands only a prefix, the
// way ENOSPC or a mid-buffer I/O error would.
func TestShortWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	// Find a seed whose first fault point is the write itself.
	for seed := uint64(0); seed < 100; seed++ {
		fs := NewFaultFS(OS, seed, 1.0)
		tmp, err := fs.CreateTemp(dir, "w*")
		if err != nil {
			t.Fatal(err)
		}
		n, werr := tmp.Write([]byte("0123456789"))
		tmp.Close()
		if werr == nil {
			t.Fatalf("seed %d: rate 1.0 write did not fault", seed)
		}
		if !errors.Is(werr, ErrInjected) {
			t.Fatalf("seed %d: fault not typed: %v", seed, werr)
		}
		got, rerr := os.ReadFile(tmp.Name())
		if rerr != nil {
			t.Fatal(rerr)
		}
		if n != 5 || string(got) != "01234" {
			t.Fatalf("seed %d: short write landed %d bytes %q, want 5 %q", seed, n, got, "01234")
		}
		return
	}
}

func TestParseSpec(t *testing.T) {
	seed, rate, err := ParseSpec("7,0.3")
	if err != nil || seed != 7 || rate != 0.3 {
		t.Fatalf("ParseSpec(\"7,0.3\") = %d, %g, %v", seed, rate, err)
	}
	for _, bad := range []string{"", "7", "x,0.3", "7,nan", "7,1.5", "7,-0.1"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
