// Package fsio is the filesystem seam under the shard fabric's durable
// writers: an FS interface whose production implementation (OS) is the
// real filesystem, and a deterministic fault-injecting wrapper (FaultFS)
// that chaos tests thread under the same code paths to prove the
// journal/artifact machinery recovers from short writes, failed fsyncs,
// torn renames and simulated crashes — or refuses with a typed,
// actionable error.
package fsio

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"repro/internal/xrand"
)

// File is the subset of *os.File the durable writers need.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem seam. Production code uses OS; chaos tests wrap
// it in a FaultFS.
type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(path string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	// SyncDir fsyncs a directory, making a preceding rename within it
	// durable. Filesystems that do not support directory fsync report
	// success (there is nothing more the caller could do).
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	// Some filesystems (and some OSes) reject fsync on directories;
	// the rename is still atomic, just not durably ordered — not a
	// correctness failure the caller can act on.
	if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.ENOTTY) {
		return nil
	}
	return err
}

// ErrInjected is the root of every fault FaultFS injects; callers (and
// tests) classify injected failures with errors.Is(err, ErrInjected).
var ErrInjected = errors.New("fsio: injected fault")

// ErrCrashed marks the latched post-crash state: once a simulated crash
// fires, every subsequent operation on the FaultFS fails with it, the
// way a dead process performs no further I/O. It wraps ErrInjected.
var ErrCrashed = fmt.Errorf("fsio: simulated crash: %w", ErrInjected)

// FaultFS wraps an FS with a deterministic seed-driven fault schedule.
// Each durability-relevant operation (file write, file sync, rename,
// directory sync) draws from a private RNG stream and fails with
// probability rate; renames additionally crash (latch the whole FS
// dead) half the time they fault, modeling a process killed between
// sync and rename. The schedule is a pure function of (seed, operation
// sequence), so a failing chaos seed replays exactly.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	rng      *xrand.RNG
	rate     float64
	crashed  bool
	injected []string // one line per injected fault, for diagnostics
}

// NewFaultFS wraps inner with fault probability rate drawn from seed.
func NewFaultFS(inner FS, seed uint64, rate float64) *FaultFS {
	return &FaultFS{inner: inner, rng: xrand.New(seed).Split("fsio.faults"), rate: rate}
}

// Crashed reports whether a simulated crash has latched.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Injected returns the log of injected faults, one line each.
func (f *FaultFS) Injected() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.injected...)
}

// decide runs one fault point: it returns ErrCrashed if the FS is dead,
// draws the schedule, and if the point fires appends "<op> <path>" to
// the log and returns an injected error (latching the crash for
// op "rename" when the second draw selects it). A nil return means the
// operation proceeds normally.
func (f *FaultFS) decide(op, path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if f.rate <= 0 || !f.rng.Bool(f.rate) {
		return nil
	}
	if op == "rename" && f.rng.Bool(0.5) {
		f.crashed = true
		f.injected = append(f.injected, "crash "+path)
		return ErrCrashed
	}
	f.injected = append(f.injected, op+" "+path)
	return fmt.Errorf("fsio: %s %s failed: %w", op, path, ErrInjected)
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, fs: f}, nil
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.inner.ReadFile(path)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	// A faulted rename is torn: the temp file stays, the target is
	// untouched — exactly what a crash between sync and rename leaves.
	if err := f.decide("rename", newpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	if f.Crashed() {
		return ErrCrashed
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.decide("syncdir", dir); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile intercepts the durability-relevant file operations.
type faultFile struct {
	inner File
	fs    *FaultFS
}

func (ff *faultFile) Name() string { return ff.inner.Name() }

// Write models a short write (out of space, I/O error mid-buffer): the
// first half of the buffer lands in the file, the rest does not.
func (ff *faultFile) Write(p []byte) (int, error) {
	if err := ff.fs.decide("write", ff.inner.Name()); err != nil {
		n, _ := ff.inner.Write(p[:len(p)/2])
		return n, err
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.decide("sync", ff.inner.Name()); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	// Close always reaches the real file — leaking descriptors would
	// perturb the test process itself, not the simulated disk.
	err := ff.inner.Close()
	if ff.fs.Crashed() {
		return ErrCrashed
	}
	return err
}

// ParseSpec parses a "seed,rate" chaos specification (e.g. "7,0.3").
func ParseSpec(s string) (seed uint64, rate float64, err error) {
	a, b, ok := strings.Cut(s, ",")
	if !ok {
		return 0, 0, fmt.Errorf("fsio: chaos spec %q: want \"seed,rate\" (e.g. \"7,0.3\")", s)
	}
	seed, err = strconv.ParseUint(strings.TrimSpace(a), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("fsio: chaos spec %q: bad seed: %w", s, err)
	}
	rate, err = strconv.ParseFloat(strings.TrimSpace(b), 64)
	if err != nil || !(rate >= 0 && rate <= 1) { // the negation also rejects NaN
		return 0, 0, fmt.Errorf("fsio: chaos spec %q: rate must be in [0, 1]", s)
	}
	return seed, rate, nil
}
