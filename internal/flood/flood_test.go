package flood

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/medium"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

func rig(t *testing.T, pts []geom.Point, members []int) (*sim.Simulator, *netsim.Network) {
	t.Helper()
	s := sim.New(3)
	tracker := mobility.NewTracker(len(pts), mobility.Static{Points: pts})
	mcfg := medium.DefaultConfig()
	mcfg.LossProb = 0
	mem := make([]packet.NodeID, len(members))
	for i, m := range members {
		mem[i] = packet.NodeID(m)
	}
	net := netsim.New(s, tracker, netsim.Config{
		N: len(pts), Source: 0, Members: mem,
		Medium: mcfg, PayloadBytes: packet.DataPayload,
	})
	for i := range pts {
		net.SetProtocol(packet.NodeID(i), New())
	}
	net.Start()
	return s, net
}

func TestFloodReachesEveryMember(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}, {X: 600, Y: 200}}
	s, net := rig(t, pts, []int{3, 4})
	net.Collector.DataSent(2)
	net.Nodes[0].Slots[0].Proto.Originate()
	s.Run(2)
	if sum := net.Summarize(); sum.Delivered != 2 {
		t.Errorf("delivered %d/2", sum.Delivered)
	}
}

func TestFloodForwardsOncePerNode(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 100}, {X: 200}}
	s, net := rig(t, pts, []int{2})
	net.Collector.DataSent(1)
	net.Nodes[0].Slots[0].Proto.Originate()
	s.Run(2)
	// One origination + one rebroadcast per other node = 3 transmissions.
	if tx := net.Medium.Stats().Transmissions; tx != 3 {
		t.Errorf("transmissions = %d, want 3 (dedup failed?)", tx)
	}
}

func TestFloodNoControlTraffic(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 100}}
	s, net := rig(t, pts, []int{1})
	net.Collector.DataSent(1)
	net.Nodes[0].Slots[0].Proto.Originate()
	s.Run(2)
	if net.Collector.ControlBytes != 0 {
		t.Errorf("flooding sent %d control bytes", net.Collector.ControlBytes)
	}
}
