// Package flood implements blind flooding: every node re-broadcasts every
// data packet exactly once at full power. It is not in the paper's
// comparison but serves as the redundancy upper bound against which the
// mesh (ODMRP) and tree (MAODV, SS-SPST) protocols are calibrated, and as
// the simplest possible protocol for substrate tests.
package flood

import (
	"repro/internal/medium"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/xrand"
)

// Protocol is one node's flooding instance.
type Protocol struct {
	node *netsim.Node
	rng  *xrand.RNG
	seen map[uint64]struct{}
	seq  uint32
	// JitterMax decorrelates rebroadcasts; zero means 4 ms.
	JitterMax float64
}

// New returns a flooding instance.
func New() *Protocol { return &Protocol{seen: make(map[uint64]struct{})} }

// Start implements netsim.Protocol.
func (p *Protocol) Start(n *netsim.Node) {
	p.node = n
	p.rng = n.Sim().RNG().Split("flood").SplitIndex(int(n.ID))
	if p.JitterMax == 0 {
		p.JitterMax = 4e-3
	}
}

// Receive implements netsim.Protocol.
func (p *Protocol) Receive(pkt *packet.Packet, info medium.RxInfo) {
	if pkt.Kind != packet.KindData || p.node.Source {
		p.node.DiscardRx(info)
		return
	}
	key := uint64(uint32(pkt.Src))<<32 | uint64(pkt.Seq)
	if _, dup := p.seen[key]; dup {
		p.node.DiscardRx(info)
		return
	}
	p.seen[key] = struct{}{}
	if p.node.Member {
		p.node.ConsumeData(pkt, info.At)
	}
	fwd := pkt.Clone()
	fwd.From = p.node.ID
	fwd.Hops++
	max := p.node.Net.Medium.Model().MaxRange
	p.node.Sim().After(p.rng.Range(0, p.JitterMax), func() {
		p.node.Broadcast(fwd, max)
	})
}

// Originate implements netsim.Protocol.
func (p *Protocol) Originate() {
	p.seq++
	pkt := packet.NewData(p.node.ID, p.seq, p.node.Now())
	p.node.Broadcast(pkt, p.node.Net.Medium.Model().MaxRange)
}
