// Package flood implements blind flooding: every node re-broadcasts every
// data packet exactly once at full power. It is not in the paper's
// comparison but serves as the redundancy upper bound against which the
// mesh (ODMRP) and tree (MAODV, SS-SPST) protocols are calibrated, and as
// the simplest possible protocol for substrate tests.
package flood

import (
	"repro/internal/fwdpool"
	"repro/internal/medium"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/xrand"
)

// Protocol is one node's flooding instance.
type Protocol struct {
	node *netsim.Slot
	rng  *xrand.RNG
	seen packet.SeqSet
	seq  uint32
	// frames recycles originated and re-forwarded data frames.
	frames *fwdpool.Pool[struct{}]
	// JitterMax decorrelates rebroadcasts; zero means 4 ms.
	JitterMax float64
}

// New returns a flooding instance.
func New() *Protocol { return &Protocol{} }

// Start implements netsim.Protocol.
func (p *Protocol) Start(n *netsim.Slot) {
	p.node = n
	p.rng = n.ProtoRNG("flood")
	p.frames = fwdpool.New[struct{}](n)
	if p.JitterMax == 0 {
		p.JitterMax = 4e-3
	}
}

// Receive implements netsim.Protocol.
func (p *Protocol) Receive(pkt *packet.Packet, info medium.RxInfo) {
	if pkt.Kind != packet.KindData || p.node.Source {
		p.node.DiscardRx(info)
		return
	}
	if p.seen.TestAndSet(pkt.Src, pkt.Seq) {
		p.node.DiscardRx(info)
		return
	}
	if p.node.Member {
		p.node.ConsumeData(pkt, info.At)
	}
	f := p.frames.Take()
	f.Pkt = *pkt
	f.Pkt.Owner = f
	f.Pkt.From = p.node.ID
	f.Pkt.Hops++
	max := p.node.Net.Medium.Model().MaxRange
	p.frames.SendAfter(p.rng.Range(0, p.JitterMax), f, max, nil)
}

// Originate implements netsim.Protocol.
func (p *Protocol) Originate() {
	p.seq++
	f := p.frames.Take()
	f.Pkt = packet.MakeData(p.node.ID, p.seq, p.node.Now())
	f.Pkt.Owner = f
	p.node.Broadcast(&f.Pkt, p.node.Net.Medium.Model().MaxRange)
}
