// Package eventq implements the cancellable priority queue that drives the
// discrete-event simulator.
//
// Events are ordered by (time, sequence number): ties in simulated time are
// broken by insertion order, which keeps runs deterministic regardless of
// heap internals.
package eventq

// Event is a scheduled callback. The zero value is not useful; obtain
// events from Queue.Push.
type Event struct {
	At  float64 // simulated time, seconds
	Fn  func()  // callback; nil after cancellation
	seq uint64  // tie-breaker: insertion order
	idx int     // heap index, -1 when not queued
}

// Cancelled reports whether the event was cancelled or already fired.
func (e *Event) Cancelled() bool { return e.Fn == nil }

// Queue is a binary min-heap of events. It is not safe for concurrent use;
// the simulator owns it from a single goroutine.
type Queue struct {
	heap []*Event
	seq  uint64
}

// New returns an empty queue.
func New() *Queue { return &Queue{} }

// Len returns the number of pending events (including cancelled ones that
// have not yet been popped).
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules fn at time at and returns a handle that can be passed to
// Cancel.
func (q *Queue) Push(at float64, fn func()) *Event {
	e := &Event{At: at, Fn: fn, seq: q.seq}
	q.seq++
	q.heap = append(q.heap, e)
	e.idx = len(q.heap) - 1
	q.up(e.idx)
	return e
}

// Cancel removes the event from consideration. It is safe to cancel an
// event that has already fired or been cancelled; the call is a no-op then.
// Cancelled events are dropped lazily when they reach the top of the heap.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.Fn == nil {
		return
	}
	e.Fn = nil
	if e.idx >= 0 && e.idx < len(q.heap) && q.heap[e.idx] == e {
		q.remove(e.idx)
		e.idx = -1
	}
}

// Pop removes and returns the earliest non-cancelled event, or nil if the
// queue is empty.
func (q *Queue) Pop() *Event {
	for len(q.heap) > 0 {
		e := q.heap[0]
		q.remove(0)
		e.idx = -1
		if e.Fn != nil {
			return e
		}
	}
	return nil
}

// PeekTime returns the time of the earliest pending event. ok is false when
// the queue holds no live events.
func (q *Queue) PeekTime() (t float64, ok bool) {
	for len(q.heap) > 0 {
		if q.heap[0].Fn == nil { // lazily drop cancelled head
			q.remove(0)
			continue
		}
		return q.heap[0].At, true
	}
	return 0, false
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].idx = i
	q.heap[j].idx = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

func (q *Queue) remove(i int) {
	n := len(q.heap) - 1
	if i != n {
		q.swap(i, n)
	}
	q.heap[n].idx = -1
	q.heap = q.heap[:n]
	if i < n {
		q.down(i)
		q.up(i)
	}
}
