// Package eventq implements the cancellable priority queue that drives the
// discrete-event simulator.
//
// Events are ordered by (time, sequence number): ties in simulated time are
// broken by insertion order, which keeps runs deterministic regardless of
// queue internals.
//
// Internally the queue is two 4-ary min-heaps merged at the pop: one for
// near-term events and one for far-term ones. The simulator's workload is
// sharply bimodal — frame deliveries, forward jitters and CSMA backoffs
// fire within milliseconds, while beacon tickers and samplers sit seconds
// out — and routing the long-lived majority into its own heap keeps the
// hot heap a fraction of the total pending set, so the million-plus
// delivery pushes and pops of a run touch two or three levels instead of
// five. The pop compares the two roots' (time, seq) keys exactly, so the
// split is unobservable in the event order.
//
// Cancellation is lazy: Cancel only clears the callback and the dead event
// is discarded when it surfaces at a root. Profiling full scenario runs
// showed cancellations are vanishingly rare (zero in a whole figure
// sweep), while the eager-removal bookkeeping they required — every heap
// move writing its event's position back through the event pointer — put
// one random-memory store on every level of every sift in the hottest
// loop of the simulator. Dropping the position index makes heap moves
// touch only the two contiguous arrays.
package eventq

import "math"

// Action is a pre-allocated callback: hot paths whose event payload
// already lives in a long-lived structure (the medium's receptions)
// implement it and schedule themselves without a closure allocation.
type Action interface{ Fire() }

// Event is a scheduled callback. The zero value is not useful; obtain
// events from Queue.Push.
type Event struct {
	At     float64 // simulated time, seconds
	Fn     func()  // callback; nil after cancellation
	Act    Action  // alternative no-closure callback (PushAction)
	seq    uint64  // tie-breaker: insertion order
	pooled bool    // recycled via Release; no outside handle exists
}

// Cancelled reports whether the event was cancelled or already fired.
func (e *Event) Cancelled() bool { return e.Fn == nil && e.Act == nil }

// key is an event's ordering key.
type key struct {
	at  float64
	seq uint64
}

// less is the queue's total order: (time, seq).
func (a key) less(b key) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// farHorizon is the near/far routing threshold in simulated seconds,
// measured from the last popped event's time: anything scheduled further
// out than this (beacon tickers, availability samplers, membership churn)
// goes to the far heap. The exact value only moves work between the two
// heaps; correctness never depends on it.
const farHorizon = 0.5

// Queue is the event queue. It is not safe for concurrent use; the
// simulator owns it from a single goroutine.
type Queue struct {
	near heapCore
	far  heapCore
	seq  uint64
	// watermark is the time of the last popped event: the near/far
	// routing reference (monotone within a run).
	watermark float64
	// free recycles events scheduled through PushPooled, which callers
	// cannot hold handles to; the simulator returns them after firing.
	free []*Event
}

// New returns an empty queue.
func New() *Queue { return &Queue{} }

// Len returns the number of pending events (including cancelled ones that
// have not yet been discarded).
func (q *Queue) Len() int { return len(q.near.heap) + len(q.far.heap) }

// Push schedules fn at time at and returns a handle that can be passed to
// Cancel.
func (q *Queue) Push(at float64, fn func()) *Event {
	e := &Event{At: at, Fn: fn}
	q.push(e)
	return e
}

// push assigns e its sequence number and links it into a heap.
func (q *Queue) push(e *Event) {
	e.seq = q.seq
	q.seq++
	k := key{at: e.At, seq: e.seq}
	if e.At > q.watermark+farHorizon {
		q.far.push(e, k)
	} else {
		q.near.push(e, k)
	}
}

// PushPooled schedules fn like Push but hands out no handle: the event
// cannot be cancelled, and the simulator recycles it through Release after
// it fires. The hot paths (frame deliveries, forward jitters) go through
// this, reducing the event churn to zero steady-state allocations.
func (q *Queue) PushPooled(at float64, fn func()) {
	e := q.takeFree()
	e.At, e.Fn, e.pooled = at, fn, true
	q.push(e)
}

// PushAction schedules a pre-allocated Action like PushPooled schedules a
// closure: no handle, no cancellation, and the event itself is recycled
// after firing. The Action is not: its lifetime belongs to the caller.
func (q *Queue) PushAction(at float64, act Action) {
	e := q.takeFree()
	e.At, e.Act, e.pooled = at, act, true
	q.push(e)
}

// ReserveSeqs allocates n consecutive sequence numbers and returns the
// first, advancing the counter exactly as n immediate pushes would. A
// caller that schedules a batch of future events one at a time (the
// medium's per-transmission reception chain) reserves their tie-break
// identities up front, so the chain's events order against everything
// else exactly as if each had been pushed individually at reservation
// time.
func (q *Queue) ReserveSeqs(n int) uint64 {
	s := q.seq
	q.seq += uint64(n)
	return s
}

// PushActionSeq schedules act at time at under a sequence number obtained
// from ReserveSeqs. The (at, seq) pair must be unique; events with
// reserved seqs participate in the same total (time, seq) order as every
// other event. The event is pooled like PushAction's.
func (q *Queue) PushActionSeq(at float64, act Action, seq uint64) {
	e := q.takeFree()
	e.At, e.Act, e.pooled = at, act, true
	e.seq = seq
	k := key{at: at, seq: seq}
	if at > q.watermark+farHorizon {
		q.far.push(e, k)
	} else {
		q.near.push(e, k)
	}
}

// PushOwned schedules a caller-owned event with a pre-allocated Action,
// reusing the event's storage: re-arming paths (the simulator's tickers)
// keep one Event alive for their whole life and re-push it after each
// firing instead of allocating. The event must not be physically pending:
// it has fired, or was never pushed. A cancelled owned event may still
// occupy a heap slot until its time surfaces (cancellation is lazy), so
// re-pushing after Cancel is not allowed; the only owner, sim.Ticker,
// never re-arms after Stop. It can be cancelled like any handle-bearing
// event and is never recycled into the freelist.
func (q *Queue) PushOwned(e *Event, at float64, act Action) {
	e.At, e.Fn, e.Act, e.pooled = at, nil, act, false
	q.push(e)
}

// Reset empties the queue for reuse by a new run. Pooled events return to
// the freelist and the heaps' backing arrays keep their capacity, so a
// reused queue schedules in steady state without allocating; the sequence
// counter restarts so event ordering is identical to a fresh queue's.
// Handle-bearing events still pending are dropped — their Timers read as
// cancelled afterwards.
func (q *Queue) Reset() {
	q.near.reset(q)
	q.far.reset(q)
	q.seq = 0
	q.watermark = 0
}

// takeFree returns a recycled event, or a fresh one.
func (q *Queue) takeFree() *Event {
	if n := len(q.free); n > 0 {
		e := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return e
	}
	return &Event{}
}

// Release returns a fired pooled event to the freelist; it is a no-op for
// handle-bearing events, whose Timer may still be inspected.
func (q *Queue) Release(e *Event) {
	if !e.pooled {
		return
	}
	e.Fn, e.Act = nil, nil
	q.free = append(q.free, e)
}

// Cancel removes the event from consideration. It is safe to cancel an
// event that has already fired or been cancelled; the call is a no-op
// then. The heap slot is reclaimed lazily when the dead event surfaces.
func (q *Queue) Cancel(e *Event) {
	if e == nil {
		return
	}
	e.Fn, e.Act = nil, nil
}

// minHeap returns the heap whose root is the globally earliest event, or
// nil when both heaps are empty.
func (q *Queue) minHeap() *heapCore {
	if len(q.near.heap) == 0 {
		if len(q.far.heap) == 0 {
			return nil
		}
		return &q.far
	}
	if len(q.far.heap) == 0 || q.near.keys[0].less(q.far.keys[0]) {
		return &q.near
	}
	return &q.far
}

// Pop removes and returns the earliest non-cancelled event, or nil if the
// queue is empty. Cancelled events are dropped lazily as they surface.
func (q *Queue) Pop() *Event {
	return q.PopNotAfter(math.Inf(1))
}

// PopNotAfter removes and returns the earliest non-cancelled event whose
// time is <= until, or nil when there is none; a later event stays
// queued. This fuses the simulator's peek-then-pop loop into one root
// inspection per fired event.
func (q *Queue) PopNotAfter(until float64) *Event {
	for {
		h := q.minHeap()
		if h == nil {
			return nil
		}
		e := h.heap[0]
		if e.Cancelled() {
			h.popRoot()
			continue
		}
		if e.At > until {
			return nil
		}
		h.popRoot()
		q.watermark = e.At
		return e
	}
}

// PeekTime returns the time of the earliest pending event. ok is false when
// the queue holds no live events.
func (q *Queue) PeekTime() (t float64, ok bool) {
	q.near.dropCancelledHead()
	q.far.dropCancelledHead()
	h := q.minHeap()
	if h == nil {
		return 0, false
	}
	return h.keys[0].at, true
}

// heapCore is one 4-ary min-heap over (time, seq) keys. keys mirrors heap
// with each event's ordering key: the heap's many comparisons read one
// contiguous array instead of chasing Event pointers. The 4-way fan-out
// halves the depth (and with it the moves) compared to a binary heap, and
// sifting uses hole insertion — the displaced element is held in
// registers while children/parents shift — instead of pairwise swaps.
// Events do not know their heap positions (cancellation is lazy), so a
// move never dereferences an Event.
type heapCore struct {
	heap []*Event
	keys []key
}

func (h *heapCore) push(e *Event, k key) {
	h.heap = append(h.heap, e)
	h.keys = append(h.keys, k)
	h.up(len(h.heap) - 1)
}

// arity is the heap fan-out.
const arity = 4

func (h *heapCore) up(i int) {
	e, k := h.heap[i], h.keys[i]
	for i > 0 {
		parent := (i - 1) / arity
		pk := h.keys[parent]
		if !k.less(pk) {
			break
		}
		h.heap[i], h.keys[i] = h.heap[parent], pk
		i = parent
	}
	h.heap[i], h.keys[i] = e, k
}

func (h *heapCore) down(i int) {
	n := len(h.heap)
	e, k := h.heap[i], h.keys[i]
	for {
		first := arity*i + 1
		if first >= n {
			break
		}
		last := first + arity
		if last > n {
			last = n
		}
		mc, mk := first, h.keys[first]
		for c := first + 1; c < last; c++ {
			if ck := h.keys[c]; ck.less(mk) {
				mc, mk = c, ck
			}
		}
		if !mk.less(k) {
			break
		}
		h.heap[i], h.keys[i] = h.heap[mc], mk
		i = mc
	}
	h.heap[i], h.keys[i] = e, k
}

// popRoot unlinks the root, refilling the hole with the last element.
func (h *heapCore) popRoot() {
	n := len(h.heap) - 1
	if n > 0 {
		h.heap[0], h.keys[0] = h.heap[n], h.keys[n]
	}
	h.heap[n] = nil
	h.heap = h.heap[:n]
	h.keys = h.keys[:n]
	if n > 1 {
		h.down(0)
	}
}

// dropCancelledHead discards lazily-cancelled events sitting at the root.
func (h *heapCore) dropCancelledHead() {
	for len(h.heap) > 0 && h.heap[0].Cancelled() {
		h.popRoot()
	}
}

// reset empties the heap, recycling pooled events into q's freelist.
func (h *heapCore) reset(q *Queue) {
	for i, e := range h.heap {
		h.heap[i] = nil
		e.Fn, e.Act = nil, nil
		if e.pooled {
			q.free = append(q.free, e)
		}
	}
	h.heap = h.heap[:0]
	h.keys = h.keys[:0]
}
