// Package eventq implements the cancellable priority queue that drives the
// discrete-event simulator.
//
// Events are ordered by (time, sequence number): ties in simulated time are
// broken by insertion order, which keeps runs deterministic regardless of
// heap internals.
package eventq

// Action is a pre-allocated callback: hot paths whose event payload
// already lives in a long-lived structure (the medium's receptions)
// implement it and schedule themselves without a closure allocation.
type Action interface{ Fire() }

// Event is a scheduled callback. The zero value is not useful; obtain
// events from Queue.Push.
type Event struct {
	At     float64 // simulated time, seconds
	Fn     func()  // callback; nil after cancellation
	Act    Action  // alternative no-closure callback (PushAction)
	seq    uint64  // tie-breaker: insertion order
	idx    int     // heap index, -1 when not queued
	pooled bool    // recycled via Release; no outside handle exists
}

// Cancelled reports whether the event was cancelled or already fired.
func (e *Event) Cancelled() bool { return e.Fn == nil && e.Act == nil }

// Queue is a 4-ary min-heap of events: the simulator pushes and pops
// millions of events per run, and the wider fan-out halves the heap depth
// (and with it the pointer swaps) compared to a binary heap. It is not
// safe for concurrent use; the simulator owns it from a single goroutine.
type Queue struct {
	heap []*Event
	// keys mirrors heap with each event's (At, seq) ordering key: the
	// heap's many comparisons then read one contiguous array instead of
	// chasing Event pointers.
	keys []key
	seq  uint64
	// free recycles events scheduled through PushPooled, which callers
	// cannot hold handles to; the simulator returns them after firing.
	free []*Event
}

// key is an event's heap ordering key.
type key struct {
	at  float64
	seq uint64
}

// New returns an empty queue.
func New() *Queue { return &Queue{} }

// Len returns the number of pending events (including cancelled ones that
// have not yet been popped).
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules fn at time at and returns a handle that can be passed to
// Cancel.
func (q *Queue) Push(at float64, fn func()) *Event {
	e := &Event{At: at, Fn: fn, seq: q.seq}
	q.push(e)
	return e
}

// push links e into the heap.
func (q *Queue) push(e *Event) {
	e.seq = q.seq
	q.seq++
	q.heap = append(q.heap, e)
	q.keys = append(q.keys, key{at: e.At, seq: e.seq})
	e.idx = len(q.heap) - 1
	q.up(e.idx)
}

// PushPooled schedules fn like Push but hands out no handle: the event
// cannot be cancelled, and the simulator recycles it through Release after
// it fires. The hot paths (frame deliveries, forward jitters) go through
// this, reducing the event churn to zero steady-state allocations.
func (q *Queue) PushPooled(at float64, fn func()) {
	e := q.takeFree()
	e.At, e.Fn, e.pooled = at, fn, true
	q.push(e)
}

// PushAction schedules a pre-allocated Action like PushPooled schedules a
// closure: no handle, no cancellation, and the event itself is recycled
// after firing. The Action is not: its lifetime belongs to the caller.
func (q *Queue) PushAction(at float64, act Action) {
	e := q.takeFree()
	e.At, e.Act, e.pooled = at, act, true
	q.push(e)
}

// takeFree returns a recycled event, or a fresh one.
func (q *Queue) takeFree() *Event {
	if n := len(q.free); n > 0 {
		e := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return e
	}
	return &Event{}
}

// Release returns a fired pooled event to the freelist; it is a no-op for
// handle-bearing events, whose Timer may still be inspected.
func (q *Queue) Release(e *Event) {
	if !e.pooled {
		return
	}
	e.Fn, e.Act = nil, nil
	q.free = append(q.free, e)
}

// Cancel removes the event from consideration. It is safe to cancel an
// event that has already fired or been cancelled; the call is a no-op then.
// Cancelled events are dropped lazily when they reach the top of the heap.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.Cancelled() {
		return
	}
	e.Fn, e.Act = nil, nil
	if e.idx >= 0 && e.idx < len(q.heap) && q.heap[e.idx] == e {
		q.remove(e.idx)
		e.idx = -1
	}
}

// Pop removes and returns the earliest non-cancelled event, or nil if the
// queue is empty.
func (q *Queue) Pop() *Event {
	for len(q.heap) > 0 {
		e := q.heap[0]
		q.remove(0)
		e.idx = -1
		if !e.Cancelled() {
			return e
		}
	}
	return nil
}

// PeekTime returns the time of the earliest pending event. ok is false when
// the queue holds no live events.
func (q *Queue) PeekTime() (t float64, ok bool) {
	for len(q.heap) > 0 {
		if q.heap[0].Cancelled() { // lazily drop cancelled head
			q.remove(0)
			continue
		}
		return q.keys[0].at, true
	}
	return 0, false
}

func (q *Queue) less(i, j int) bool {
	a, b := q.keys[i], q.keys[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.keys[i], q.keys[j] = q.keys[j], q.keys[i]
	q.heap[i].idx = i
	q.heap[j].idx = j
}

// arity is the heap fan-out. 4 keeps the tree half as deep as a binary
// heap; the extra comparisons per level are cheaper than the swaps and
// cache misses they avoid at simulator event rates.
const arity = 4

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / arity
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		first := arity*i + 1
		if first >= n {
			return
		}
		smallest := i
		last := first + arity
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if q.less(c, smallest) {
				smallest = c
			}
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

func (q *Queue) remove(i int) {
	n := len(q.heap) - 1
	if i != n {
		q.swap(i, n)
	}
	q.heap[n].idx = -1
	q.heap[n] = nil
	q.heap = q.heap[:n]
	q.keys = q.keys[:n]
	if i < n {
		q.down(i)
		q.up(i)
	}
}
