// Package eventq implements the cancellable priority queue that drives the
// discrete-event simulator.
//
// Events are ordered by (time, sequence number): ties in simulated time are
// broken by insertion order, which keeps runs deterministic regardless of
// queue internals.
//
// Internally the queue is two 4-ary min-heaps merged at the pop: one for
// near-term events and one for far-term ones. The simulator's workload is
// sharply bimodal — frame deliveries, forward jitters and CSMA backoffs
// fire within milliseconds, while beacon tickers and samplers sit seconds
// out — and routing the long-lived majority into its own heap keeps the
// hot heap a fraction of the total pending set, so the million-plus
// delivery pushes and pops of a run touch two or three levels instead of
// five. The pop compares the two roots' (time, seq) keys exactly, so the
// split is unobservable in the event order.
package eventq

// Action is a pre-allocated callback: hot paths whose event payload
// already lives in a long-lived structure (the medium's receptions)
// implement it and schedule themselves without a closure allocation.
type Action interface{ Fire() }

// Event is a scheduled callback. The zero value is not useful; obtain
// events from Queue.Push.
type Event struct {
	At     float64 // simulated time, seconds
	Fn     func()  // callback; nil after cancellation
	Act    Action  // alternative no-closure callback (PushAction)
	seq    uint64  // tie-breaker: insertion order
	idx    int     // index in its heap, -1 when not queued
	far    bool    // which heap holds it
	pooled bool    // recycled via Release; no outside handle exists
}

// Cancelled reports whether the event was cancelled or already fired.
func (e *Event) Cancelled() bool { return e.Fn == nil && e.Act == nil }

// key is an event's ordering key.
type key struct {
	at  float64
	seq uint64
}

// less is the queue's total order: (time, seq).
func (a key) less(b key) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// farHorizon is the near/far routing threshold in simulated seconds,
// measured from the last popped event's time: anything scheduled further
// out than this (beacon tickers, availability samplers, membership churn)
// goes to the far heap. The exact value only moves work between the two
// heaps; correctness never depends on it.
const farHorizon = 0.5

// Queue is the event queue. It is not safe for concurrent use; the
// simulator owns it from a single goroutine.
type Queue struct {
	near heapCore
	far  heapCore
	seq  uint64
	// watermark is the time of the last popped event: the near/far
	// routing reference (monotone within a run).
	watermark float64
	// free recycles events scheduled through PushPooled, which callers
	// cannot hold handles to; the simulator returns them after firing.
	free []*Event
}

// New returns an empty queue.
func New() *Queue { return &Queue{} }

// Len returns the number of pending events (including cancelled ones that
// have not yet been popped).
func (q *Queue) Len() int { return len(q.near.heap) + len(q.far.heap) }

// Push schedules fn at time at and returns a handle that can be passed to
// Cancel.
func (q *Queue) Push(at float64, fn func()) *Event {
	e := &Event{At: at, Fn: fn}
	q.push(e)
	return e
}

// push assigns e its sequence number and links it into a heap.
func (q *Queue) push(e *Event) {
	e.seq = q.seq
	q.seq++
	k := key{at: e.At, seq: e.seq}
	if e.At > q.watermark+farHorizon {
		e.far = true
		q.far.push(e, k)
	} else {
		e.far = false
		q.near.push(e, k)
	}
}

// PushPooled schedules fn like Push but hands out no handle: the event
// cannot be cancelled, and the simulator recycles it through Release after
// it fires. The hot paths (frame deliveries, forward jitters) go through
// this, reducing the event churn to zero steady-state allocations.
func (q *Queue) PushPooled(at float64, fn func()) {
	e := q.takeFree()
	e.At, e.Fn, e.pooled = at, fn, true
	q.push(e)
}

// PushAction schedules a pre-allocated Action like PushPooled schedules a
// closure: no handle, no cancellation, and the event itself is recycled
// after firing. The Action is not: its lifetime belongs to the caller.
func (q *Queue) PushAction(at float64, act Action) {
	e := q.takeFree()
	e.At, e.Act, e.pooled = at, act, true
	q.push(e)
}

// PushOwned schedules a caller-owned event with a pre-allocated Action,
// reusing the event's storage: re-arming paths (the simulator's tickers)
// keep one Event alive for their whole life and re-push it after each
// firing instead of allocating. The event must not be pending (it has
// fired, been cancelled, or never been pushed). It can be cancelled like
// any handle-bearing event and is never recycled into the freelist.
func (q *Queue) PushOwned(e *Event, at float64, act Action) {
	e.At, e.Fn, e.Act, e.pooled = at, nil, act, false
	q.push(e)
}

// Reset empties the queue for reuse by a new run. Pooled events return to
// the freelist and the heaps' backing arrays keep their capacity, so a
// reused queue schedules in steady state without allocating; the sequence
// counter restarts so event ordering is identical to a fresh queue's.
// Handle-bearing events still pending are dropped — their Timers read as
// cancelled afterwards.
func (q *Queue) Reset() {
	q.near.reset(q)
	q.far.reset(q)
	q.seq = 0
	q.watermark = 0
}

// takeFree returns a recycled event, or a fresh one.
func (q *Queue) takeFree() *Event {
	if n := len(q.free); n > 0 {
		e := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return e
	}
	return &Event{}
}

// Release returns a fired pooled event to the freelist; it is a no-op for
// handle-bearing events, whose Timer may still be inspected.
func (q *Queue) Release(e *Event) {
	if !e.pooled {
		return
	}
	e.Fn, e.Act = nil, nil
	q.free = append(q.free, e)
}

// Cancel removes the event from consideration. It is safe to cancel an
// event that has already fired or been cancelled; the call is a no-op then.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.Cancelled() {
		return
	}
	e.Fn, e.Act = nil, nil
	h := &q.near
	if e.far {
		h = &q.far
	}
	if e.idx >= 0 && e.idx < len(h.heap) && h.heap[e.idx] == e {
		h.removeAt(e.idx)
		e.idx = -1
	}
}

// minHeap returns the heap whose root is the globally earliest event, or
// nil when both heaps are empty.
func (q *Queue) minHeap() *heapCore {
	if len(q.near.heap) == 0 {
		if len(q.far.heap) == 0 {
			return nil
		}
		return &q.far
	}
	if len(q.far.heap) == 0 || q.near.keys[0].less(q.far.keys[0]) {
		return &q.near
	}
	return &q.far
}

// Pop removes and returns the earliest non-cancelled event, or nil if the
// queue is empty. Cancelled events are dropped lazily as they surface.
func (q *Queue) Pop() *Event {
	for {
		h := q.minHeap()
		if h == nil {
			return nil
		}
		e := h.heap[0]
		h.removeAt(0)
		e.idx = -1
		q.watermark = e.At
		if !e.Cancelled() {
			return e
		}
	}
}

// PeekTime returns the time of the earliest pending event. ok is false when
// the queue holds no live events.
func (q *Queue) PeekTime() (t float64, ok bool) {
	q.near.dropCancelledHead()
	q.far.dropCancelledHead()
	h := q.minHeap()
	if h == nil {
		return 0, false
	}
	return h.keys[0].at, true
}

// heapCore is one 4-ary min-heap over (time, seq) keys. keys mirrors heap
// with each event's ordering key: the heap's many comparisons read one
// contiguous array instead of chasing Event pointers. The 4-way fan-out
// halves the depth (and with it the moves) compared to a binary heap, and
// sifting uses hole insertion — the displaced element is held in
// registers while children/parents shift — instead of pairwise swaps.
type heapCore struct {
	heap []*Event
	keys []key
}

func (h *heapCore) push(e *Event, k key) {
	h.heap = append(h.heap, e)
	h.keys = append(h.keys, k)
	e.idx = len(h.heap) - 1
	h.up(e.idx)
}

// arity is the heap fan-out.
const arity = 4

func (h *heapCore) up(i int) {
	e, k := h.heap[i], h.keys[i]
	for i > 0 {
		parent := (i - 1) / arity
		pk := h.keys[parent]
		if !k.less(pk) {
			break
		}
		h.heap[i], h.keys[i] = h.heap[parent], pk
		h.heap[i].idx = i
		i = parent
	}
	h.heap[i], h.keys[i] = e, k
	e.idx = i
}

func (h *heapCore) down(i int) {
	n := len(h.heap)
	e, k := h.heap[i], h.keys[i]
	for {
		first := arity*i + 1
		if first >= n {
			break
		}
		last := first + arity
		if last > n {
			last = n
		}
		mc, mk := first, h.keys[first]
		for c := first + 1; c < last; c++ {
			if ck := h.keys[c]; ck.less(mk) {
				mc, mk = c, ck
			}
		}
		if !mk.less(k) {
			break
		}
		h.heap[i], h.keys[i] = h.heap[mc], mk
		h.heap[i].idx = i
		i = mc
	}
	h.heap[i], h.keys[i] = e, k
	e.idx = i
}

// removeAt unlinks the element at index i, refilling the hole with the
// last element. The removed event's idx is left for the caller to clear.
func (h *heapCore) removeAt(i int) {
	n := len(h.heap) - 1
	moved := i != n
	if moved {
		h.heap[i], h.keys[i] = h.heap[n], h.keys[n]
		h.heap[i].idx = i
	}
	h.heap[n] = nil
	h.heap = h.heap[:n]
	h.keys = h.keys[:n]
	if moved {
		h.down(i)
		h.up(i)
	}
}

// dropCancelledHead discards lazily-cancelled events sitting at the root.
func (h *heapCore) dropCancelledHead() {
	for len(h.heap) > 0 && h.heap[0].Cancelled() {
		e := h.heap[0]
		h.removeAt(0)
		e.idx = -1
	}
}

// reset empties the heap, recycling pooled events into q's freelist.
func (h *heapCore) reset(q *Queue) {
	for i, e := range h.heap {
		h.heap[i] = nil
		e.idx = -1
		e.Fn, e.Act = nil, nil
		if e.pooled {
			q.free = append(q.free, e)
		}
	}
	h.heap = h.heap[:0]
	h.keys = h.keys[:0]
}
