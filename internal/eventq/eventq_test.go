package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	q := New()
	var fired []int
	q.Push(3, func() { fired = append(fired, 3) })
	q.Push(1, func() { fired = append(fired, 1) })
	q.Push(2, func() { fired = append(fired, 2) })
	for e := q.Pop(); e != nil; e = q.Pop() {
		e.Fn()
	}
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Errorf("fired order %v", fired)
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	q := New()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.Push(5.0, func() { fired = append(fired, i) })
	}
	for e := q.Pop(); e != nil; e = q.Pop() {
		e.Fn()
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("equal-time events fired out of insertion order: %v", fired)
		}
	}
}

func TestCancel(t *testing.T) {
	q := New()
	fired := false
	e := q.Push(1, func() { fired = true })
	q.Cancel(e)
	if !e.Cancelled() {
		t.Error("event not marked cancelled")
	}
	if got := q.Pop(); got != nil {
		t.Errorf("Pop returned cancelled event %v", got)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	// Double-cancel and cancel-nil are no-ops.
	q.Cancel(e)
	q.Cancel(nil)
}

func TestCancelMiddle(t *testing.T) {
	q := New()
	var fired []float64
	e1 := q.Push(1, func() { fired = append(fired, 1) })
	e2 := q.Push(2, func() { fired = append(fired, 2) })
	e3 := q.Push(3, func() { fired = append(fired, 3) })
	_ = e1
	q.Cancel(e2)
	for e := q.Pop(); e != nil; e = q.Pop() {
		e.Fn()
	}
	_ = e3
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Errorf("fired %v after cancelling middle", fired)
	}
}

func TestPeekTime(t *testing.T) {
	q := New()
	if _, ok := q.PeekTime(); ok {
		t.Error("PeekTime on empty queue reported ok")
	}
	e := q.Push(7, func() {})
	q.Push(9, func() {})
	if tm, ok := q.PeekTime(); !ok || tm != 7 {
		t.Errorf("PeekTime = %v,%v", tm, ok)
	}
	q.Cancel(e)
	if tm, ok := q.PeekTime(); !ok || tm != 9 {
		t.Errorf("PeekTime after cancelling head = %v,%v", tm, ok)
	}
}

func TestLen(t *testing.T) {
	q := New()
	q.Push(1, func() {})
	q.Push(2, func() {})
	if q.Len() != 2 {
		t.Errorf("Len = %d", q.Len())
	}
	q.Pop()
	if q.Len() != 1 {
		t.Errorf("Len after pop = %d", q.Len())
	}
}

// TestHeapAgainstReference drives the heap with random schedules and
// checks the pop order against a sorted reference implementation.
func TestHeapAgainstReference(t *testing.T) {
	f := func(times []float64) bool {
		q := New()
		for _, tm := range times {
			if tm != tm { // NaN would poison any ordering
				return true
			}
			q.Push(tm, func() {})
		}
		ref := append([]float64(nil), times...)
		sort.Float64s(ref)
		for _, want := range ref {
			e := q.Pop()
			if e == nil || e.At != want {
				return false
			}
		}
		return q.Pop() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestRandomCancels removes a random subset and verifies the survivors pop
// in order.
func TestRandomCancels(t *testing.T) {
	f := func(times []float64, mask []bool) bool {
		q := New()
		var events []*Event
		for _, tm := range times {
			if tm != tm {
				return true
			}
			events = append(events, q.Push(tm, func() {}))
		}
		var keep []float64
		for i, e := range events {
			if i < len(mask) && mask[i] {
				q.Cancel(e)
			} else {
				keep = append(keep, e.At)
			}
		}
		sort.Float64s(keep)
		for _, want := range keep {
			e := q.Pop()
			if e == nil || e.At != want {
				return false
			}
		}
		return q.Pop() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestPopNotAfter pins the fused peek-and-pop contract: events beyond the
// horizon stay queued, cancelled events are discarded lazily regardless of
// the horizon, and the returned order is exactly Pop's.
func TestPopNotAfter(t *testing.T) {
	q := New()
	e1 := q.Push(1, func() {})
	q.Push(2, func() {})
	q.Push(5, func() {})
	q.Cancel(e1)
	if e := q.PopNotAfter(0.5); e != nil {
		t.Fatalf("PopNotAfter(0.5) = %v, want nil", e)
	}
	if e := q.PopNotAfter(3); e == nil || e.At != 2 {
		t.Fatalf("PopNotAfter(3) = %+v, want the t=2 event", e)
	}
	if e := q.PopNotAfter(3); e != nil {
		t.Fatalf("PopNotAfter(3) after drain = %v, want nil", e)
	}
	if e := q.PopNotAfter(10); e == nil || e.At != 5 {
		t.Fatalf("PopNotAfter(10) = %+v, want the t=5 event", e)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining", q.Len())
	}
}

// TestCancelKeepsOrder cancels events scattered through a large schedule
// and checks the survivors pop in exactly reference order even though the
// dead entries are reclaimed lazily.
func TestCancelKeepsOrder(t *testing.T) {
	q := New()
	var events []*Event
	for i := 0; i < 500; i++ {
		events = append(events, q.Push(float64((i*7919)%100), func() {}))
	}
	var keep []float64
	for i, e := range events {
		if i%3 == 0 {
			q.Cancel(e)
		} else {
			keep = append(keep, e.At)
		}
	}
	sort.Float64s(keep)
	for _, want := range keep {
		e := q.Pop()
		if e == nil || e.At != want {
			t.Fatalf("pop %v, want %v", e, want)
		}
	}
	if e := q.Pop(); e != nil {
		t.Fatalf("queue not drained: %v", e)
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New()
	for i := 0; i < b.N; i++ {
		q.Push(float64(i%1024), func() {})
		if i%2 == 1 {
			q.Pop()
		}
	}
}

func noop() {}

// TestReset checks the arena contract: after Reset the queue is empty and
// orders a new run exactly like a fresh queue, pooled events left pending
// are recycled through the freelist (no allocation on the next pushes),
// and handles from before the reset are stale-but-safe (cancelled, no-op
// to Cancel).
func TestReset(t *testing.T) {
	q := New()

	// A mix of pooled and handle-bearing events, some fired, some left.
	var fired []string
	q.PushPooled(1, func() { fired = append(fired, "a") })
	h1 := q.Push(2, func() { fired = append(fired, "b") })
	q.PushPooled(3, func() { fired = append(fired, "c") })
	h2 := q.Push(4, func() { fired = append(fired, "d") })
	e := q.Pop() // fires "a"; its pooled slot returns via Release
	if e == nil || e.At != 1 {
		t.Fatalf("pop before reset: %+v", e)
	}
	q.Release(e)

	q.Reset()

	if q.Len() != 0 {
		t.Fatalf("len after reset: %d", q.Len())
	}
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime reports a live event after reset")
	}
	if !h1.Cancelled() || !h2.Cancelled() {
		t.Fatal("pre-reset handles not cancelled")
	}
	q.Cancel(h1) // must be a no-op, not a heap corruption
	q.Cancel(h2)

	// The recycled pool must serve the next run's pooled pushes: pushing
	// as many pooled events as were ever live allocates no new Events.
	if got := testing.AllocsPerRun(100, func() {
		q.PushPooled(5, noop)
		e := q.Pop()
		q.Release(e)
	}); got != 0 {
		t.Fatalf("pooled push after reset allocates %v per run", got)
	}

	// Ordering restarts exactly like a fresh queue: same times pushed in
	// the same order pop in the same order (seq ties included).
	ref := New()
	times := []float64{3, 1, 3, 2, 1}
	type rec struct{ at float64 }
	for _, at := range times {
		q.PushPooled(at, func() {})
		ref.PushPooled(at, func() {})
	}
	for {
		a, b := q.Pop(), ref.Pop()
		if (a == nil) != (b == nil) {
			t.Fatal("reset queue and fresh queue drain differently")
		}
		if a == nil {
			break
		}
		if a.At != b.At {
			t.Fatalf("order diverges: %g vs %g", a.At, b.At)
		}
		q.Release(a)
		ref.Release(b)
	}
}

// TestResetRecyclesPendingPooled checks that pooled events still sitting
// in the heap at Reset time (a run that ended with work queued) return to
// the freelist rather than leaking.
func TestResetRecyclesPendingPooled(t *testing.T) {
	q := New()
	for i := 0; i < 64; i++ {
		q.PushPooled(float64(i), func() {})
	}
	q.Reset()
	if got := testing.AllocsPerRun(64, func() {
		q.PushPooled(1, noop)
		q.Release(q.Pop())
	}); got != 0 {
		t.Fatalf("pending pooled events were not recycled: %v allocs per run", got)
	}
}
