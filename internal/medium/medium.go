// Package medium implements the shared wireless broadcast channel: power-
// controlled transmissions, CSMA-style deferral with random backoff,
// collision-on-overlap losses, propagation/transmission delay, and the
// per-reception energy accounting (including overhearing) that the paper's
// energy figures are built on.
//
// The medium replaces the ns-2 PHY/MAC the paper used. It keeps the
// behaviours the evaluation depends on — broadcast coverage follows the
// transmitter's chosen range, every covered node pays reception energy
// whether or not it wanted the frame, and concurrent overlapping
// transmissions corrupt each other — while replacing 802.11's exact timing
// with a simpler slot-free CSMA.
//
// Coverage and interference queries run against a uniform spatial grid
// (internal/spatial) refreshed on a timed epoch, with query radii expanded
// by the worst-case node drift since the epoch and an exact distance
// filter applied to the candidates. The results are bit-identical to the
// brute-force O(N) scan (retained behind GridConfig.Disable and asserted
// by the scenario-level equivalence tests) while touching only the O(k)
// nodes near the transmitter. DESIGN.md §7 documents the argument.
package medium

import (
	"math"

	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/spatial"
	"repro/internal/xrand"
)

// Receiver is implemented by nodes attached to the medium.
type Receiver interface {
	// Deliver hands a successfully received frame to the node. The node
	// classifies the reception (consumed vs discarded) via RxInfo.Meter.
	Deliver(pkt *packet.Packet, info RxInfo)
}

// RxInfo describes one reception event.
type RxInfo struct {
	From    packet.NodeID
	Dist    float64 // transmitter→receiver distance at transmission start
	TxRange float64 // transmitter's power-controlled range
	RxJ     float64 // energy charged for this reception (already on the meter as Rx)
	At      float64 // delivery time
}

// GridConfig parameterizes the spatial neighbor index. The zero value
// enables the index in a conservative mode (snapshot refreshed whenever
// the queried instant changes) that is correct for any mobility model;
// callers that know the deployment area and a speed bound (scenario does)
// fill Area/VMax so the snapshot is instead refreshed on a timed epoch and
// queries pay only a small slack.
type GridConfig struct {
	// Disable falls back to the O(N) brute-force scans. Kept as the
	// reference implementation for the equivalence tests.
	Disable bool
	// Area is the deployment region used to size the cells. A zero Rect
	// derives bounds from the node positions at first use.
	Area geom.Rect
	// VMax bounds every node's speed (m/s). With VMax > 0 the index is
	// refreshed every SlackFrac·cell/VMax simulated seconds and queries
	// expand by VMax·(now−epoch); with VMax == 0 (unknown) the index is
	// rebuilt whenever the queried instant changes.
	VMax float64
	// Static declares positions immutable: the index is built once.
	Static bool
	// CellSize is the grid cell side in metres; 0 → Energy.MaxRange.
	CellSize float64
	// SlackFrac is the fraction of a cell the population may drift before
	// a refresh; 0 → 0.25.
	SlackFrac float64
}

// Config holds the channel parameters.
type Config struct {
	// BitrateBps is the channel bitrate; 2 Mb/s mirrors the 802.11 basic
	// rate ns-2 defaults to in that era.
	BitrateBps float64
	// PropDelayPerM is the propagation delay per metre (≈ 1/c).
	PropDelayPerM float64
	// CSMA enables carrier sensing: a sender that detects an ongoing
	// transmission covering it defers with a random backoff.
	CSMA bool
	// MaxBackoffs bounds CSMA retries before the frame is dropped.
	MaxBackoffs int
	// BackoffMax is the maximum random deferral per retry, seconds.
	BackoffMax float64
	// InterferenceFactor scales a transmission's interference radius
	// relative to its communication range. >1 models corruption beyond
	// decode range.
	InterferenceFactor float64
	// LossProb is an independent per-reception loss probability modelling
	// fading; applied after collision resolution.
	LossProb float64
	// TxQueueCap bounds each node's interface queue (frames awaiting the
	// radio). Overflow is dropped — the congestion-collapse mechanism
	// behind ODMRP's large-group degradation in the paper's Figure 12.
	TxQueueCap int
	// Energy is the radio energy model.
	Energy energy.Model
	// Grid configures the spatial neighbor index.
	Grid GridConfig
	// GELoss layers a Gilbert-Elliott bursty channel on top of LossProb:
	// each receiver owns an independent two-state chain advanced once per
	// reception. The zero value is off and draws nothing.
	GELoss faults.GEConfig
	// Partition schedules a window during which receptions whose sender
	// and receiver sit on opposite sides of a moving vertical cut are
	// suppressed. PartitionArea is the deployment side length the cut
	// fractions resolve against (scenario fills it from AreaSide).
	Partition     faults.Partition
	PartitionArea float64
}

// DefaultConfig returns the channel parameters used by the paper
// reproduction experiments.
func DefaultConfig() Config {
	return Config{
		BitrateBps:         2e6,
		PropDelayPerM:      3.34e-9,
		CSMA:               true,
		MaxBackoffs:        7,
		BackoffMax:         8e-3,
		InterferenceFactor: 1.3,
		LossProb:           0.005,
		TxQueueCap:         50,
		Energy:             energy.Default(),
	}
}

// Stats counts channel-level events for diagnostics and tests.
type Stats struct {
	Transmissions  int64
	Deliveries     int64
	Collisions     int64 // receptions corrupted by overlap
	Fading         int64 // receptions dropped by LossProb
	Backoffs       int64
	CSMADrops      int64 // frames abandoned after MaxBackoffs
	QueueDrops     int64 // frames dropped at a full interface queue
	HalfDuplex     int64 // receptions missed because the receiver was transmitting
	ControlBytes   int64 // bytes of control frames put on air
	DataBytes      int64 // bytes of data frames put on air
	FaultDrops     int64 // receptions dropped by the Gilbert-Elliott channel
	PartitionDrops int64 // receptions suppressed by a partition cut

	// Reception-conservation ledger: every reception attached to a
	// transmission (RxScheduled) resolves through exactly one deliver()
	// branch — RxOff (radio dead/down at delivery), RxCorrupt (collision
	// or half-duplex), PartitionDrops, FaultDrops, Fading or Deliveries —
	// or is still in flight at the horizon (Medium.PendingRx). The
	// end-of-run invariant check balances this ledger exactly.
	RxScheduled int64
	RxOff       int64 // receptions to radios that were off at delivery time
	RxCorrupt   int64 // corrupted receptions resolved (≤ Collisions+HalfDuplex: off radios resolve first)
}

// Medium is the shared channel. It is used only from the simulator's
// goroutine.
type Medium struct {
	sim     *sim.Simulator
	cfg     Config
	tracker *mobility.Tracker
	nodes   []Receiver
	meters  []*energy.Meter
	rng     *xrand.RNG
	active  []*transmission
	// OnTransmit, when set, observes every frame put on air together with
	// the transmit energy charged for it (used by the metrics collector
	// for control-overhead accounting and per-group energy attribution).
	OnTransmit func(pkt *packet.Packet, txJ float64)
	// OnRxWaste, when set, observes every reception the receiver burned
	// energy on without decoding — collision-corrupted frames,
	// Gilbert-Elliott losses, and independent fading losses (used for
	// per-group energy attribution). Partition drops charge no energy and
	// are not reported here.
	OnRxWaste func(pkt *packet.Packet, rxJ float64)
	// OnDeath, when set, observes each node's battery crossing into
	// depletion — fired exactly once per node, immediately after the
	// charge that exhausted it (used by the metrics collector's
	// network-lifetime tracker). Never fired with unlimited batteries.
	OnDeath func(id packet.NodeID)
	// OnFaultDrop, when set, observes every injected channel loss
	// (partition reports whether the drop came from the partition cut
	// rather than the Gilbert-Elliott chain).
	OnFaultDrop func(partition bool)
	stats       Stats
	// pendingRx counts receptions scheduled but not yet resolved; at the
	// end of a run it is exactly the in-flight balance of the
	// reception-conservation ledger (see Stats.RxScheduled).
	pendingRx int64
	posBuf    []geom.Point
	queues    []txQueue
	// geChains holds one Gilbert-Elliott chain per receiver; empty when
	// the bursty channel is disabled (no streams, no draws).
	geChains []faults.GEChain
	// down marks radios administratively off (crash faults): a down node
	// neither sends nor receives, and unlike a depleted battery the state
	// is reversible.
	down []bool

	// Spatial index state (configured lazily at the first transmission;
	// gridReady marks it configured for the current run, while the grid
	// itself survives Reset so its bucket storage is reused).
	gridOn    bool
	gridReady bool
	grid      *spatial.Grid
	gridDelta float64 // refresh period; <0 never, 0 on every new instant
	gridVMax  float64 // slack speed bound (0 in static/conservative modes)
	// activeTx is the frame node i currently has on air (nil if idle);
	// the radio serializes frames, so there is at most one.
	activeTx []*transmission
	// inflight collects the pending receptions addressed to node i for
	// every active transmission (grid mode only; cleared at retire).
	inflight [][]*reception
	// txCells registers every active transmission in the coarse cells its
	// interference disk overlaps (txCellShift-coarsened index geometry:
	// interference disks span several index cells, so a coarser registry
	// cuts insert/remove traffic ~txCellGran² while a lookup still scans
	// only the few active transmissions near the point). Cell geometry is
	// fixed, so entries stay valid across snapshot refreshes (grid mode
	// only).
	txCells  [][]*transmission
	txCols   int
	txRows   int
	candBuf  []int32
	coverBuf []int32

	// Freelists: transmissions (with their grown reception slices) and
	// CSMA backoff retries are recycled, so the per-frame hot path
	// allocates nothing in steady state. Both survive Reset.
	txFree      []*transmission
	backoffFree []*backoffRetry
}

// queued is one frame waiting for the radio.
type queued struct {
	pkt     *packet.Packet
	txRange float64
}

// txQueue serializes one node's transmissions: real radios send one frame
// at a time through a finite interface queue. frames[head:] is the
// backlog; popping advances head so a drain is O(1) instead of sliding the
// whole backlog down on every dequeue.
type txQueue struct {
	frames []queued
	head   int
	busy   bool
}

// backlog returns the number of queued frames.
func (q *txQueue) backlog() int { return len(q.frames) - q.head }

// pop removes and returns the head frame. The slot is zeroed so the queue
// does not pin packet memory; storage is recycled when the queue drains
// and compacted when the dead prefix outgrows the live backlog, keeping
// memory O(backlog) even for a source that never goes idle.
func (q *txQueue) pop() queued {
	f := q.frames[q.head]
	q.frames[q.head] = queued{}
	q.head++
	switch {
	case q.head == len(q.frames):
		q.frames = q.frames[:0]
		q.head = 0
	case q.head >= 64 && q.head*2 >= len(q.frames):
		n := copy(q.frames, q.frames[q.head:])
		tail := q.frames[n:]
		for i := range tail {
			tail[i] = queued{}
		}
		q.frames = q.frames[:n]
		q.head = 0
	}
	return f
}

// transmission is one frame in flight. Transmissions are pooled: a slot
// returns to the freelist once it is both retired (off the air) and
// drained (its last scheduled reception has fired), tracked by done and
// pending. The receptions slice keeps its capacity across reuses, so a
// warm medium attaches receptions without allocating.
type transmission struct {
	from       packet.NodeID
	pkt        *packet.Packet
	m          *Medium
	origin     geom.Point
	rng        float64 // communication range
	intRng     float64 // interference range
	start      float64
	end        float64
	rxJ        float64 // per-reception energy (bytes and range are fixed)
	receptions []reception
	pending    int  // receptions scheduled but not yet fired
	done       bool // retired from the active set
	// Reception chain: the transmission's receptions occupy ONE event
	// queue slot at a time instead of k. order lists reception indices by
	// delivery (time, seq); chain is the pooled action that delivers
	// order[chainPos] and re-arms itself for the next. Each reception
	// carries a sequence number reserved at attach time, so the chained
	// events order against every other event exactly as the k individual
	// pushes used to — the pop sequence is bit-identical, the hot heap
	// just holds one entry per in-flight transmission instead of one per
	// pending reception.
	order    []int32
	sortKeys []uint64 // scratch for the delivery-order sort
	chainPos int
	chain    rxChain
}

// sortDeliveryOrder sorts the (key, order) pairs ascending by
// (key, order). Keys arrive in covered-id order — effectively random in
// delivery time — so the small-k insertion sort switches to an in-place
// heapsort beyond a threshold: a dense large-N broadcast can cover
// hundreds of receivers, where the quadratic shift count would dominate
// the attach cost. Both produce the identical unique ordering (keys tie
// only between equal delivery times, broken by the order value).
func sortDeliveryOrder(keys []uint64, order []int32) {
	n := len(keys)
	if n <= 32 {
		for i := 1; i < n; i++ {
			ki, oi := keys[i], order[i]
			j := i
			for j > 0 && (ki < keys[j-1] || (ki == keys[j-1] && oi < order[j-1])) {
				keys[j], order[j] = keys[j-1], order[j-1]
				j--
			}
			keys[j], order[j] = ki, oi
		}
		return
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftPairDown(keys, order, i, n)
	}
	for i := n - 1; i > 0; i-- {
		keys[0], keys[i] = keys[i], keys[0]
		order[0], order[i] = order[i], order[0]
		siftPairDown(keys, order, 0, i)
	}
}

// siftPairDown restores the max-heap property for sortDeliveryOrder's
// heapsort over the pair arrays.
func siftPairDown(keys []uint64, order []int32, lo, hi int) {
	root := lo
	for {
		c := 2*root + 1
		if c >= hi {
			return
		}
		if c+1 < hi && (keys[c] < keys[c+1] || (keys[c] == keys[c+1] && order[c] < order[c+1])) {
			c++
		}
		if keys[root] > keys[c] || (keys[root] == keys[c] && order[root] > order[c]) {
			return
		}
		keys[root], keys[c] = keys[c], keys[root]
		order[root], order[c] = order[c], order[root]
		root = c
	}
}

// rxChain walks a transmission's receptions in delivery order, one event
// at a time. It implements sim.Action.
type rxChain struct{ tx *transmission }

// Fire delivers the current reception, having first re-armed the chain
// for the next one under its reserved (time, seq) identity.
func (c *rxChain) Fire() {
	tx := c.tx
	m := tx.m
	rc := &tx.receptions[tx.order[tx.chainPos]]
	tx.chainPos++
	if tx.chainPos < len(tx.order) {
		next := &tx.receptions[tx.order[tx.chainPos]]
		m.sim.ActionAtSeq(next.at, c, next.seq)
	}
	m.deliver(tx, rc)
	tx.pending--
	m.pendingRx--
	if tx.pending == 0 && tx.done {
		m.releaseTx(tx)
	}
}

// Fire implements sim.Action: the end-of-air event. The transmission
// leaves the channel and the sender's next queued frame starts.
func (tx *transmission) Fire() {
	m, from := tx.m, tx.from
	m.retire(tx)
	m.txDone(from)
}

// backoffRetry is a pooled CSMA deferral: it re-enters send with the
// attempt counter advanced, without a closure allocation per backoff.
type backoffRetry struct {
	m       *Medium
	pkt     *packet.Packet
	from    packet.NodeID
	txRange float64
	attempt int
}

// Fire implements sim.Action. The retry is recycled before re-entering
// send, so a follow-up backoff can reuse the same slot.
func (b *backoffRetry) Fire() {
	m, from, pkt, txRange, attempt := b.m, b.from, b.pkt, b.txRange, b.attempt
	b.pkt = nil
	m.backoffFree = append(m.backoffFree, b)
	m.send(from, pkt, txRange, attempt)
}

// reception is one pending delivery of a transmission at a specific node.
// Receptions are delivered by the transmission's rxChain in (at, seq)
// order; the slice is the payload, scheduling allocates nothing.
type reception struct {
	tx        *transmission
	to        packet.NodeID
	corrupted bool
	dist      float64 // transmitter→receiver distance at transmission start
	at        float64 // delivery instant
	seq       uint64  // reserved event-queue tie-break identity
}

// New creates a medium over n nodes. Receivers and meters are attached
// afterwards with Attach, allowing the network to construct nodes that
// reference the medium.
func New(s *sim.Simulator, cfg Config, tracker *mobility.Tracker, n int) *Medium {
	m := &Medium{}
	m.Reset(s, cfg, tracker, n)
	return m
}

// resized returns s with length n and every element zeroed, reusing the
// backing array when its capacity allows.
func resized[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// Reset re-initializes the medium in place for a new run over n nodes.
// Behaviour is identical to a freshly constructed medium, but every grown
// buffer survives: interface queues, reception registries, per-cell
// transmission registries, the spatial grid (when the deployment geometry
// is unchanged) and the transmission/backoff freelists, so replications
// run with a small fixed allocation cost instead of rebuilding the world.
func (m *Medium) Reset(s *sim.Simulator, cfg Config, tracker *mobility.Tracker, n int) {
	m.sim, m.cfg, m.tracker = s, cfg, tracker
	m.rng = s.RNG().Split("medium")
	m.OnTransmit = nil
	m.OnRxWaste = nil
	m.OnDeath = nil
	m.OnFaultDrop = nil
	m.stats = Stats{}
	m.pendingRx = 0
	m.nodes = resized(m.nodes, n)
	m.meters = resized(m.meters, n)
	m.down = resized(m.down, n)
	// Gilbert-Elliott chains exist only when the bursty channel is on:
	// a fault-free run creates no fault streams and draws nothing extra,
	// so pre-fault results stay bit-identical.
	if cfg.GELoss.Enabled() {
		m.geChains = resized(m.geChains, n)
		root := s.RNG().Split("faults.ge")
		for i := range m.geChains {
			m.geChains[i].Init(root.SplitIndex(i))
		}
	} else {
		m.geChains = m.geChains[:0]
	}
	m.posBuf = resized(m.posBuf, n)
	m.activeTx = resized(m.activeTx, n)
	for i := range m.active {
		m.active[i] = nil
	}
	m.active = m.active[:0]
	// Interface queues and reception registries: drop contents (zeroing
	// frame slots so no packet stays pinned), keep capacity.
	if cap(m.queues) < n {
		m.queues = make([]txQueue, n)
	} else {
		m.queues = m.queues[:n]
		for i := range m.queues {
			q := &m.queues[i]
			for j := range q.frames {
				q.frames[j] = queued{}
			}
			q.frames = q.frames[:0]
			q.head = 0
			q.busy = false
		}
	}
	m.gridOn = !cfg.Grid.Disable
	m.gridReady = false
	m.gridDelta = 0
	m.gridVMax = 0
	if m.gridOn {
		if cap(m.inflight) < n {
			m.inflight = make([][]*reception, n)
		} else {
			m.inflight = m.inflight[:n]
			for i := range m.inflight {
				lst := m.inflight[i]
				for j := range lst {
					lst[j] = nil
				}
				m.inflight[i] = lst[:0]
			}
		}
	} else {
		m.inflight = nil
	}
	if m.grid != nil {
		m.grid.Clear()
	}
	for i := range m.txCells {
		lst := m.txCells[i]
		for j := range lst {
			lst[j] = nil
		}
		m.txCells[i] = lst[:0]
	}
}

// Attach registers node id's receiver and energy meter.
func (m *Medium) Attach(id packet.NodeID, r Receiver, meter *energy.Meter) {
	m.nodes[id] = r
	m.meters[id] = meter
}

// Stats returns a copy of the channel counters.
func (m *Medium) Stats() Stats { return m.stats }

// PendingRx returns the number of scheduled receptions not yet resolved
// — the in-flight balance of the reception-conservation ledger.
func (m *Medium) PendingRx() int64 { return m.pendingRx }

// SetDown switches node id's radio administratively off or back on (crash
// faults). A down radio neither sends (queued frames drain silently, like
// a depleted battery) nor receives (pending receptions lapse uncharged);
// unlike energy.Meter.Kill the state is reversible.
func (m *Medium) SetDown(id packet.NodeID, down bool) { m.down[id] = down }

// IsDown reports whether node id's radio is administratively off.
func (m *Medium) IsDown(id packet.NodeID) bool { return m.down[id] }

// Model returns the radio energy model in force.
func (m *Medium) Model() energy.Model { return m.cfg.Energy }

// AirTime returns the on-air duration of a frame of the given size.
func (m *Medium) AirTime(bytes int) float64 {
	return float64(bytes) * 8 / m.cfg.BitrateBps
}

// Broadcast hands pkt to node `from`'s interface queue for transmission
// with the given power-controlled range. The radio serializes frames; a
// full queue drops the frame (congestion loss). Delivery to every node
// within range happens after the frame's airtime plus propagation delay.
// txRange is clamped to the model's maximum.
func (m *Medium) Broadcast(from packet.NodeID, pkt *packet.Packet, txRange float64) {
	q := &m.queues[from]
	if q.busy || q.backlog() > 0 {
		if m.cfg.TxQueueCap > 0 && q.backlog() >= m.cfg.TxQueueCap {
			m.stats.QueueDrops++
			freeDropped(pkt)
			return
		}
		q.frames = append(q.frames, queued{pkt, txRange})
		return
	}
	q.busy = true
	m.send(from, pkt, txRange, 0)
}

// txDone releases node `from`'s radio and starts the next queued frame.
func (m *Medium) txDone(from packet.NodeID) {
	q := &m.queues[from]
	if q.backlog() == 0 {
		q.busy = false
		return
	}
	next := q.pop()
	m.send(from, next.pkt, next.txRange, 0)
}

// Index tuning defaults. Cells at half the maximum radio range resolve
// power-controlled (short-range) transmissions into small candidate sets
// while full-power beacon queries still touch only a handful of cells;
// the small slack fraction keeps query expansion tiny, which incremental
// refreshing makes affordable (each refresh is O(moved), so refreshing
// 5× as often costs almost nothing).
const (
	defaultCellFrac  = 0.5
	defaultSlackFrac = 0.05
)

// ensureIndex configures the grid at the run's first transmission and
// refreshes the position snapshot according to the epoch policy. A
// refresh rebuckets only nodes that changed cell (Grid.Refresh) and only
// advances node legs, and the mobility models key their random streams by
// (node, leg history) — advancement is order- and time-of-query
// independent — so a refresh cannot perturb the run relative to the
// brute-force path.
func (m *Medium) ensureIndex(now float64) {
	if !m.gridReady {
		g := m.cfg.Grid
		cell := g.CellSize
		if cell <= 0 {
			cell = m.cfg.Energy.MaxRange * defaultCellFrac
		}
		slack := g.SlackFrac
		if slack <= 0 {
			slack = defaultSlackFrac
		}
		area := g.Area
		if area == (geom.Rect{}) {
			area = geom.BoundingBox(m.tracker.PositionsAt(now))
		}
		// Reuse the previous run's grid (and its bucket storage) when the
		// deployment geometry is unchanged.
		if m.grid == nil || !m.grid.Matches(area, cell, len(m.nodes)) {
			m.grid = spatial.NewGrid(area, cell, len(m.nodes))
			cols, rows := m.grid.Dims()
			m.txCols = (cols + txCellGran - 1) >> txCellShift
			m.txRows = (rows + txCellGran - 1) >> txCellShift
			m.txCells = make([][]*transmission, m.txCols*m.txRows)
		}
		switch {
		case g.Static:
			m.gridDelta = -1
		case g.VMax > 0:
			m.gridVMax = g.VMax
			m.gridDelta = slack * m.grid.CellSize() / g.VMax
		default:
			m.gridDelta = 0
		}
		m.grid.Rebuild(now, m.tracker.PositionsAt(now))
		m.gridReady = true
		return
	}
	switch {
	case m.gridDelta < 0:
		// Static: never refresh.
	case m.gridDelta == 0:
		if now != m.grid.Epoch() {
			m.grid.Refresh(now, m.tracker.PositionsAt(now))
		}
	default:
		if now-m.grid.Epoch() >= m.gridDelta {
			m.grid.Refresh(now, m.tracker.PositionsAt(now))
		}
	}
}

// slack returns the query-radius expansion covering all node movement
// since the snapshot epoch.
func (m *Medium) slack(now float64) float64 {
	if m.gridVMax <= 0 {
		return 0
	}
	return m.gridVMax * (now - m.grid.Epoch())
}

func (m *Medium) send(from packet.NodeID, pkt *packet.Packet, txRange float64, attempt int) {
	now := m.sim.Now()
	if m.meters[from].Dead() || m.down[from] {
		// Depleted battery or crashed node: the radio is off. Drain the
		// queue silently.
		freeDropped(pkt)
		m.txDone(from)
		return
	}
	if txRange > m.cfg.Energy.MaxRange {
		txRange = m.cfg.Energy.MaxRange
	}
	if txRange <= 0 {
		txRange = 1 // degenerate, still audible at point blank
	}
	if m.gridOn {
		m.ensureIndex(now)
	}
	pos := m.tracker.Position(int(from), now)

	if m.cfg.CSMA && m.busyAt(pos, now) {
		if attempt >= m.cfg.MaxBackoffs {
			m.stats.CSMADrops++
			freeDropped(pkt)
			m.txDone(from)
			return
		}
		m.stats.Backoffs++
		delay := m.rng.Range(0, m.cfg.BackoffMax) * float64(attempt+1)
		b := m.takeBackoff()
		b.m, b.from, b.pkt, b.txRange, b.attempt = m, from, pkt, txRange, attempt+1
		m.sim.AfterAction(delay, b)
		return
	}

	dur := m.AirTime(pkt.Bytes)
	tx := m.takeTx()
	tx.m = m
	tx.from = from
	tx.pkt = pkt
	tx.origin = pos
	tx.rng = txRange
	tx.intRng = txRange * m.cfg.InterferenceFactor
	tx.start = now
	tx.end = now + dur
	tx.rxJ = m.cfg.Energy.RxEnergy(pkt.Bytes, txRange)

	// Charge the sender.
	txJ := m.cfg.Energy.TxEnergy(pkt.Bytes, txRange)
	m.meters[from].SpendTx(txJ)
	m.noteDeath(from, m.meters[from])
	m.stats.Transmissions++
	if pkt.Kind.Control() {
		m.stats.ControlBytes += int64(pkt.Bytes)
	} else {
		m.stats.DataBytes += int64(pkt.Bytes)
	}
	if m.OnTransmit != nil {
		m.OnTransmit(pkt, txJ)
	}

	// The new transmission corrupts any in-flight reception whose receiver
	// it interferes with, and is itself corrupted at receivers covered by
	// other ongoing transmissions. Then the covered set is computed and
	// deliveries scheduled, in ascending node order either way (schedule
	// order at equal timestamps is part of the determinism contract).
	if m.gridOn {
		// One query serves both passes: the interference disk contains
		// the communication disk whenever InterferenceFactor ≥ 1. With
		// nothing else on the air there are no pending receptions to
		// corrupt, so the query shrinks to the communication disk — the
		// interference annulus only ever feeds the corrupt pass.
		qr := tx.rng
		if len(m.active) > 0 && tx.intRng > qr {
			qr = tx.intRng
		}
		m.candBuf = m.grid.AppendInDisk(m.candBuf[:0], pos, qr+m.slack(now))
		m.corruptAndCoverGrid(tx, pos, now)
	} else {
		m.corruptInflightBrute(tx, pos, now)
		m.coverBrute(tx, pos)
	}
	m.attachReceptions(tx, pos, now, dur)

	m.active = append(m.active, tx)
	m.activeTx[from] = tx
	if m.gridOn {
		m.txCellsInsert(tx)
	}
	m.sim.AfterAction(dur, tx)
}

// freeDropped returns a never-transmitted frame to its owner's pool: no
// receiver has seen a dropped frame, so it is immediately reusable.
// Keeps congested scenarios (CSMA drops, full interface queues, dead
// radios) from quietly reintroducing per-frame allocation.
func freeDropped(pkt *packet.Packet) {
	if o := pkt.Owner; o != nil {
		o.FreePacket(pkt)
	}
}

// takeTx returns a recycled transmission, or a fresh one.
func (m *Medium) takeTx() *transmission {
	if n := len(m.txFree); n > 0 {
		tx := m.txFree[n-1]
		m.txFree[n-1] = nil
		m.txFree = m.txFree[:n-1]
		return tx
	}
	return &transmission{}
}

// releaseTx recycles a retired-and-drained transmission, returning the
// frame to its owner's pool when it has one. The packet pointer is
// dropped so the pool pins no frames; the receptions slice keeps its
// capacity for the next use.
func (m *Medium) releaseTx(tx *transmission) {
	if o := tx.pkt.Owner; o != nil {
		o.FreePacket(tx.pkt)
	}
	tx.pkt = nil
	tx.receptions = tx.receptions[:0]
	tx.order = tx.order[:0]
	tx.chainPos = 0
	tx.pending = 0
	tx.done = false
	m.txFree = append(m.txFree, tx)
}

// takeBackoff returns a recycled backoff retry, or a fresh one.
func (m *Medium) takeBackoff() *backoffRetry {
	if n := len(m.backoffFree); n > 0 {
		b := m.backoffFree[n-1]
		m.backoffFree[n-1] = nil
		m.backoffFree = m.backoffFree[:n-1]
		return b
	}
	return &backoffRetry{}
}

// corruptInflightBrute marks every pending reception within tx's
// interference radius corrupted, scanning all active transmissions.
func (m *Medium) corruptInflightBrute(tx *transmission, pos geom.Point, now float64) {
	m.tracker.Positions(now, m.posBuf)
	for _, other := range m.active {
		for i := range other.receptions {
			rc := &other.receptions[i]
			if rc.corrupted {
				continue
			}
			if m.posBuf[rc.to].Dist2(pos) <= tx.intRng*tx.intRng {
				rc.corrupted = true
				m.stats.Collisions++
			}
		}
	}
}

// corruptAndCoverGrid is the O(k) equivalent of corruptInflightBrute +
// coverBrute in a single candidate pass: each candidate's fresh position
// is computed once and used for both the interference check against its
// pending receptions and the coverage test filling coverBuf. The merged
// iteration visits candidates in ascending id order, so the covered set,
// the corrupted receptions and the collision count are exactly those of
// the two-pass brute scans.
func (m *Medium) corruptAndCoverGrid(tx *transmission, pos geom.Point, now float64) {
	int2 := tx.intRng * tx.intRng
	rng2 := tx.rng * tx.rng
	// With nothing else on the air no reception can be pending, so the
	// per-candidate inflight lookup is skipped wholesale.
	checkInflight := len(m.active) > 0
	m.coverBuf = m.coverBuf[:0]
	for _, id32 := range m.candBuf {
		id := int(id32)
		p := m.tracker.Position(id, now)
		d2 := p.Dist2(pos)
		if checkInflight && d2 <= int2 && len(m.inflight[id]) > 0 {
			for _, rc := range m.inflight[id] {
				if rc.corrupted {
					continue
				}
				rc.corrupted = true
				m.stats.Collisions++
			}
		}
		if d2 <= rng2 && packet.NodeID(id) != tx.from && m.nodes[id] != nil {
			m.coverBuf = append(m.coverBuf, id32)
		}
	}
}

// coverBrute fills coverBuf with the ids covered by tx, scanning all nodes.
func (m *Medium) coverBrute(tx *transmission, pos geom.Point) {
	rng2 := tx.rng * tx.rng
	m.coverBuf = m.coverBuf[:0]
	for id := range m.nodes {
		if packet.NodeID(id) == tx.from || m.nodes[id] == nil {
			continue
		}
		if m.posBuf[id].Dist2(pos) <= rng2 {
			m.coverBuf = append(m.coverBuf, int32(id))
		}
	}
}

// attachReceptions materializes tx's receptions for the covered ids in
// coverBuf, resolves their collision/half-duplex fate, and schedules the
// deliveries. Receptions live in one slice sized up front (reusing the
// pooled transmission's capacity, so a warm medium allocates nothing) and
// the pointers handed to the inflight registry stay stable.
func (m *Medium) attachReceptions(tx *transmission, pos geom.Point, now, dur float64) {
	k := len(m.coverBuf)
	if k == 0 {
		return
	}
	if cap(tx.receptions) < k {
		tx.receptions = make([]reception, k)
	} else {
		tx.receptions = tx.receptions[:k]
	}
	tx.pending = k
	m.stats.RxScheduled += int64(k)
	m.pendingRx += int64(k)
	// An empty channel can neither corrupt this frame nor collide with a
	// mid-transmission receiver (activeTx is empty too), so the whole
	// interference/half-duplex pass vanishes — the common case for short
	// frames in a sparse schedule.
	checkBusy := len(m.active) > 0
	// Reserve the receptions' event identities up front, in covered-id
	// order — exactly the sequence numbers k individual pushes would have
	// drawn here — then let the chain schedule them one at a time.
	base := m.sim.ReserveSeqs(k)
	for i, id32 := range m.coverBuf {
		id := int(id32)
		rc := &tx.receptions[i]
		// Whole-struct assignment: recycled slots carry stale fields.
		*rc = reception{tx: tx, to: packet.NodeID(id32)}
		var p geom.Point
		if m.gridOn {
			p = m.tracker.Position(id, now)
		} else {
			p = m.posBuf[id]
		}
		if checkBusy {
			// Corrupted if any other active transmission interferes here.
			if m.interferedAt(p) {
				rc.corrupted = true
				m.stats.Collisions++
			}
			// Half-duplex: a node mid-transmission cannot receive.
			if !rc.corrupted && m.transmitting(rc.to, now) {
				rc.corrupted = true
				m.stats.HalfDuplex++
			}
		}
		if m.gridOn {
			m.inflight[id] = append(m.inflight[id], rc)
		}

		rc.dist = math.Sqrt(p.Dist2(pos))
		rc.at = now + (dur + rc.dist*m.cfg.PropDelayPerM)
		rc.seq = base + uint64(i)
	}
	// Delivery order: (time, seq); within one transmission seq ascends
	// with the reception index, so ordering by (at, index) is identical.
	// The sort runs on packed uint64 keys — at is a non-negative float, so
	// its bit pattern orders like its value — kept in a scratch array next
	// to the index permutation: contiguous compares, no struct chasing.
	if cap(tx.order) < k {
		tx.order = make([]int32, k)
		tx.sortKeys = make([]uint64, k)
	} else {
		tx.order = tx.order[:k]
		tx.sortKeys = tx.sortKeys[:k]
	}
	for i := range tx.order {
		tx.order[i] = int32(i)
		tx.sortKeys[i] = math.Float64bits(tx.receptions[i].at)
	}
	sortDeliveryOrder(tx.sortKeys, tx.order)
	tx.chainPos = 0
	tx.chain.tx = tx
	first := &tx.receptions[tx.order[0]]
	m.sim.ActionAtSeq(first.at, &tx.chain, first.seq)
}

// interferedAt reports whether any active transmission's interference disk
// covers the point p.
func (m *Medium) interferedAt(p geom.Point) bool {
	if m.gridOn {
		for _, other := range m.txCells[m.txCellAt(p)] {
			if p.Dist2(other.origin) <= other.intRng*other.intRng {
				return true
			}
		}
		return false
	}
	for _, other := range m.active {
		if p.Dist2(other.origin) <= other.intRng*other.intRng {
			return true
		}
	}
	return false
}

// noteRxWaste fires OnRxWaste for a reception that charged the radio
// without delivering.
func (m *Medium) noteRxWaste(pkt *packet.Packet, rxJ float64) {
	if m.OnRxWaste != nil {
		m.OnRxWaste(pkt, rxJ)
	}
}

// noteDeath fires OnDeath when a charge has just exhausted id's battery.
// Callers only charge meters they verified alive (send and deliver both
// early-return on dead radios), so a post-charge Dead() is exactly the
// alive→dead transition and the hook fires once per node.
func (m *Medium) noteDeath(id packet.NodeID, meter *energy.Meter) {
	if m.OnDeath != nil && meter.Dead() {
		m.OnDeath(id)
	}
}

// deliver resolves one reception at its delivery instant. Fault layers
// apply in physical order: a down/dead radio hears nothing, collisions
// corrupt the frame at the antenna, a partition cut blocks propagation
// (no energy at the receiver), and only then do the stochastic channel
// losses (Gilbert-Elliott burst state, then independent fading) charge
// the radio for a frame it failed to decode.
func (m *Medium) deliver(tx *transmission, rc *reception) {
	meter := m.meters[rc.to]
	if meter.Dead() || m.down[rc.to] {
		m.stats.RxOff++
		return // depleted battery or crashed node: the radio is off
	}
	rxJ := tx.rxJ
	if rc.corrupted {
		// The radio still burned energy on the corrupted frame.
		m.stats.RxCorrupt++
		meter.SpendDiscard(rxJ)
		m.noteDeath(rc.to, meter)
		m.noteRxWaste(tx.pkt, rxJ)
		return
	}
	now := m.sim.Now()
	if m.cfg.Partition.Active(now) {
		cut := m.cfg.Partition.CutX(now, m.cfg.PartitionArea)
		rp := m.tracker.Position(int(rc.to), now)
		if (tx.origin.X < cut) != (rp.X < cut) {
			// The cut is a geometric obstacle: the signal never reaches
			// the receiver, so no energy is charged.
			m.stats.PartitionDrops++
			if m.OnFaultDrop != nil {
				m.OnFaultDrop(true)
			}
			return
		}
	}
	if len(m.geChains) > 0 && m.geChains[rc.to].Drop(m.cfg.GELoss) {
		m.stats.FaultDrops++
		meter.SpendDiscard(rxJ)
		m.noteDeath(rc.to, meter)
		m.noteRxWaste(tx.pkt, rxJ)
		if m.OnFaultDrop != nil {
			m.OnFaultDrop(false)
		}
		return
	}
	if m.cfg.LossProb > 0 && m.rng.Bool(m.cfg.LossProb) {
		m.stats.Fading++
		meter.SpendDiscard(rxJ)
		m.noteDeath(rc.to, meter)
		m.noteRxWaste(tx.pkt, rxJ)
		return
	}
	meter.SpendRx(rxJ)
	m.noteDeath(rc.to, meter)
	m.stats.Deliveries++
	m.nodes[rc.to].Deliver(tx.pkt, RxInfo{
		From:    tx.from,
		Dist:    rc.dist,
		TxRange: tx.rng,
		RxJ:     rxJ,
		At:      m.sim.Now(),
	})
}

// busyAt reports whether any ongoing transmission is audible at pos.
func (m *Medium) busyAt(pos geom.Point, now float64) bool {
	if m.gridOn {
		for _, tx := range m.txCells[m.txCellAt(pos)] {
			if now < tx.end && pos.Dist2(tx.origin) <= tx.intRng*tx.intRng {
				return true
			}
		}
		return false
	}
	for _, tx := range m.active {
		if now < tx.end && pos.Dist2(tx.origin) <= tx.intRng*tx.intRng {
			return true
		}
	}
	return false
}

// transmitting reports whether node id has a frame on air at time now.
// The radio serializes frames, so a single per-node slot replaces the
// scan over all active transmissions.
func (m *Medium) transmitting(id packet.NodeID, now float64) bool {
	tx := m.activeTx[id]
	return tx != nil && now < tx.end
}

// Coarsening of the transmission registry relative to the index cells:
// one registry cell covers a txCellGran × txCellGran block.
const (
	txCellShift = 2
	txCellGran  = 1 << txCellShift
)

// txCellAt returns the registry cell containing p.
func (m *Medium) txCellAt(p geom.Point) int {
	ix, iy := m.grid.CellXY(p)
	return (iy>>txCellShift)*m.txCols + (ix >> txCellShift)
}

// txCellRange returns the registry-cell range covered by the disk's
// bounding box (derived from the index geometry, so it clamps the same
// way queries do).
func (m *Medium) txCellRange(center geom.Point, r float64) (ix0, iy0, ix1, iy1 int) {
	ix0, iy0, ix1, iy1 = m.grid.CellRange(center, r)
	return ix0 >> txCellShift, iy0 >> txCellShift, ix1 >> txCellShift, iy1 >> txCellShift
}

// txCellsInsert registers tx in every registry cell its interference
// disk's bounding box overlaps. Origins never move, so no slack is needed
// and membership stays exact for the transmission's whole life.
func (m *Medium) txCellsInsert(tx *transmission) {
	ix0, iy0, ix1, iy1 := m.txCellRange(tx.origin, tx.intRng)
	for iy := iy0; iy <= iy1; iy++ {
		row := iy * m.txCols
		for ix := ix0; ix <= ix1; ix++ {
			m.txCells[row+ix] = append(m.txCells[row+ix], tx)
		}
	}
}

// txCellsRemove is the inverse of txCellsInsert.
func (m *Medium) txCellsRemove(tx *transmission) {
	ix0, iy0, ix1, iy1 := m.txCellRange(tx.origin, tx.intRng)
	for iy := iy0; iy <= iy1; iy++ {
		row := iy * m.txCols
		for ix := ix0; ix <= ix1; ix++ {
			lst := m.txCells[row+ix]
			for i, t := range lst {
				if t == tx {
					last := len(lst) - 1
					lst[i] = lst[last]
					lst[last] = nil
					m.txCells[row+ix] = lst[:last]
					break
				}
			}
		}
	}
}

// retire removes a finished transmission from the active set and every
// auxiliary index.
func (m *Medium) retire(tx *transmission) {
	if m.activeTx[tx.from] == tx {
		m.activeTx[tx.from] = nil
	}
	if m.gridOn {
		m.txCellsRemove(tx)
		for i := range tx.receptions {
			rc := &tx.receptions[i]
			lst := m.inflight[rc.to]
			for j, p := range lst {
				if p == rc {
					last := len(lst) - 1
					lst[j] = lst[last]
					lst[last] = nil
					m.inflight[rc.to] = lst[:last]
					break
				}
			}
		}
	}
	for i, t := range m.active {
		if t == tx {
			last := len(m.active) - 1
			m.active[i] = m.active[last]
			m.active[last] = nil
			m.active = m.active[:last]
			break
		}
	}
	tx.done = true
	if tx.pending == 0 {
		m.releaseTx(tx)
	}
}
