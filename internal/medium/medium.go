// Package medium implements the shared wireless broadcast channel: power-
// controlled transmissions, CSMA-style deferral with random backoff,
// collision-on-overlap losses, propagation/transmission delay, and the
// per-reception energy accounting (including overhearing) that the paper's
// energy figures are built on.
//
// The medium replaces the ns-2 PHY/MAC the paper used. It keeps the
// behaviours the evaluation depends on — broadcast coverage follows the
// transmitter's chosen range, every covered node pays reception energy
// whether or not it wanted the frame, and concurrent overlapping
// transmissions corrupt each other — while replacing 802.11's exact timing
// with a simpler slot-free CSMA.
package medium

import (
	"math"

	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Receiver is implemented by nodes attached to the medium.
type Receiver interface {
	// Deliver hands a successfully received frame to the node. The node
	// classifies the reception (consumed vs discarded) via RxInfo.Meter.
	Deliver(pkt *packet.Packet, info RxInfo)
}

// RxInfo describes one reception event.
type RxInfo struct {
	From    packet.NodeID
	Dist    float64 // transmitter→receiver distance at transmission start
	TxRange float64 // transmitter's power-controlled range
	RxJ     float64 // energy charged for this reception (already on the meter as Rx)
	At      float64 // delivery time
}

// Config holds the channel parameters.
type Config struct {
	// BitrateBps is the channel bitrate; 2 Mb/s mirrors the 802.11 basic
	// rate ns-2 defaults to in that era.
	BitrateBps float64
	// PropDelayPerM is the propagation delay per metre (≈ 1/c).
	PropDelayPerM float64
	// CSMA enables carrier sensing: a sender that detects an ongoing
	// transmission covering it defers with a random backoff.
	CSMA bool
	// MaxBackoffs bounds CSMA retries before the frame is dropped.
	MaxBackoffs int
	// BackoffMax is the maximum random deferral per retry, seconds.
	BackoffMax float64
	// InterferenceFactor scales a transmission's interference radius
	// relative to its communication range. >1 models corruption beyond
	// decode range.
	InterferenceFactor float64
	// LossProb is an independent per-reception loss probability modelling
	// fading; applied after collision resolution.
	LossProb float64
	// TxQueueCap bounds each node's interface queue (frames awaiting the
	// radio). Overflow is dropped — the congestion-collapse mechanism
	// behind ODMRP's large-group degradation in the paper's Figure 12.
	TxQueueCap int
	// Energy is the radio energy model.
	Energy energy.Model
}

// DefaultConfig returns the channel parameters used by the paper
// reproduction experiments.
func DefaultConfig() Config {
	return Config{
		BitrateBps:         2e6,
		PropDelayPerM:      3.34e-9,
		CSMA:               true,
		MaxBackoffs:        7,
		BackoffMax:         8e-3,
		InterferenceFactor: 1.3,
		LossProb:           0.005,
		TxQueueCap:         50,
		Energy:             energy.Default(),
	}
}

// Stats counts channel-level events for diagnostics and tests.
type Stats struct {
	Transmissions int64
	Deliveries    int64
	Collisions    int64 // receptions corrupted by overlap
	Fading        int64 // receptions dropped by LossProb
	Backoffs      int64
	CSMADrops     int64 // frames abandoned after MaxBackoffs
	QueueDrops    int64 // frames dropped at a full interface queue
	HalfDuplex    int64 // receptions missed because the receiver was transmitting
	ControlBytes  int64 // bytes of control frames put on air
	DataBytes     int64 // bytes of data frames put on air
}

// Medium is the shared channel. It is used only from the simulator's
// goroutine.
type Medium struct {
	sim     *sim.Simulator
	cfg     Config
	tracker *mobility.Tracker
	nodes   []Receiver
	meters  []*energy.Meter
	rng     *xrand.RNG
	active  []*transmission
	// OnTransmit, when set, observes every frame put on air (used by the
	// metrics collector for control-overhead accounting).
	OnTransmit func(pkt *packet.Packet)
	stats      Stats
	posBuf     []geom.Point
	queues     []txQueue
}

// queued is one frame waiting for the radio.
type queued struct {
	pkt     *packet.Packet
	txRange float64
}

// txQueue serializes one node's transmissions: real radios send one frame
// at a time through a finite interface queue.
type txQueue struct {
	frames []queued
	busy   bool
}

// transmission is one frame in flight.
type transmission struct {
	from       packet.NodeID
	origin     geom.Point
	rng        float64 // communication range
	intRng     float64 // interference range
	start      float64
	end        float64
	receptions []*reception
}

// reception is one pending delivery of a transmission at a specific node.
type reception struct {
	to        packet.NodeID
	corrupted bool
}

// New creates a medium over n nodes. Receivers and meters are attached
// afterwards with Attach, allowing the network to construct nodes that
// reference the medium.
func New(s *sim.Simulator, cfg Config, tracker *mobility.Tracker, n int) *Medium {
	return &Medium{
		sim:     s,
		cfg:     cfg,
		tracker: tracker,
		nodes:   make([]Receiver, n),
		meters:  make([]*energy.Meter, n),
		rng:     s.RNG().Split("medium"),
		posBuf:  make([]geom.Point, n),
		queues:  make([]txQueue, n),
	}
}

// Attach registers node id's receiver and energy meter.
func (m *Medium) Attach(id packet.NodeID, r Receiver, meter *energy.Meter) {
	m.nodes[id] = r
	m.meters[id] = meter
}

// Stats returns a copy of the channel counters.
func (m *Medium) Stats() Stats { return m.stats }

// Model returns the radio energy model in force.
func (m *Medium) Model() energy.Model { return m.cfg.Energy }

// AirTime returns the on-air duration of a frame of the given size.
func (m *Medium) AirTime(bytes int) float64 {
	return float64(bytes) * 8 / m.cfg.BitrateBps
}

// Broadcast hands pkt to node `from`'s interface queue for transmission
// with the given power-controlled range. The radio serializes frames; a
// full queue drops the frame (congestion loss). Delivery to every node
// within range happens after the frame's airtime plus propagation delay.
// txRange is clamped to the model's maximum.
func (m *Medium) Broadcast(from packet.NodeID, pkt *packet.Packet, txRange float64) {
	q := &m.queues[from]
	if q.busy || len(q.frames) > 0 {
		if m.cfg.TxQueueCap > 0 && len(q.frames) >= m.cfg.TxQueueCap {
			m.stats.QueueDrops++
			return
		}
		q.frames = append(q.frames, queued{pkt, txRange})
		return
	}
	q.busy = true
	m.send(from, pkt, txRange, 0)
}

// txDone releases node `from`'s radio and starts the next queued frame.
func (m *Medium) txDone(from packet.NodeID) {
	q := &m.queues[from]
	if len(q.frames) == 0 {
		q.busy = false
		return
	}
	next := q.frames[0]
	copy(q.frames, q.frames[1:])
	q.frames = q.frames[:len(q.frames)-1]
	m.send(from, next.pkt, next.txRange, 0)
}

func (m *Medium) send(from packet.NodeID, pkt *packet.Packet, txRange float64, attempt int) {
	now := m.sim.Now()
	if m.meters[from].Dead() {
		// Depleted battery: the radio is off. Drain the queue silently.
		m.txDone(from)
		return
	}
	if txRange > m.cfg.Energy.MaxRange {
		txRange = m.cfg.Energy.MaxRange
	}
	if txRange <= 0 {
		txRange = 1 // degenerate, still audible at point blank
	}
	pos := m.tracker.Position(int(from), now)

	if m.cfg.CSMA && m.busyAt(pos, now) {
		if attempt >= m.cfg.MaxBackoffs {
			m.stats.CSMADrops++
			m.txDone(from)
			return
		}
		m.stats.Backoffs++
		delay := m.rng.Range(0, m.cfg.BackoffMax) * float64(attempt+1)
		m.sim.Schedule(delay, func() { m.send(from, pkt, txRange, attempt+1) })
		return
	}

	dur := m.AirTime(pkt.Bytes)
	tx := &transmission{
		from:   from,
		origin: pos,
		rng:    txRange,
		intRng: txRange * m.cfg.InterferenceFactor,
		start:  now,
		end:    now + dur,
	}

	// Charge the sender.
	m.meters[from].SpendTx(m.cfg.Energy.TxEnergy(pkt.Bytes, txRange))
	m.stats.Transmissions++
	if pkt.Kind.Control() {
		m.stats.ControlBytes += int64(pkt.Bytes)
	} else {
		m.stats.DataBytes += int64(pkt.Bytes)
	}
	if m.OnTransmit != nil {
		m.OnTransmit(pkt)
	}

	// The new transmission corrupts any in-flight reception whose receiver
	// it interferes with, and is itself corrupted at receivers covered by
	// other ongoing transmissions.
	m.tracker.Positions(now, m.posBuf)
	for _, other := range m.active {
		for _, rc := range other.receptions {
			if rc.corrupted {
				continue
			}
			if m.posBuf[rc.to].Dist2(pos) <= tx.intRng*tx.intRng {
				rc.corrupted = true
				m.stats.Collisions++
			}
		}
	}

	rng2 := txRange * txRange
	for id := range m.nodes {
		nid := packet.NodeID(id)
		if nid == from || m.nodes[id] == nil {
			continue
		}
		d2 := m.posBuf[id].Dist2(pos)
		if d2 > rng2 {
			continue
		}
		rc := &reception{to: nid}
		// Corrupted if any other active transmission interferes here.
		for _, other := range m.active {
			if m.posBuf[id].Dist2(other.origin) <= other.intRng*other.intRng {
				rc.corrupted = true
				m.stats.Collisions++
				break
			}
		}
		// Half-duplex: a node mid-transmission cannot receive.
		if !rc.corrupted && m.transmitting(nid, now) {
			rc.corrupted = true
			m.stats.HalfDuplex++
		}
		tx.receptions = append(tx.receptions, rc)

		dist := math.Sqrt(d2)
		delay := dur + dist*m.cfg.PropDelayPerM
		m.scheduleDelivery(tx, rc, pkt, dist, delay)
	}

	m.active = append(m.active, tx)
	m.sim.Schedule(dur, func() {
		m.retire(tx)
		m.txDone(from)
	})
}

func (m *Medium) scheduleDelivery(tx *transmission, rc *reception, pkt *packet.Packet, dist, delay float64) {
	m.sim.Schedule(delay, func() {
		meter := m.meters[rc.to]
		if meter.Dead() {
			return // depleted battery: the radio is off
		}
		rxJ := m.cfg.Energy.RxEnergy(pkt.Bytes, tx.rng)
		if rc.corrupted {
			// The radio still burned energy on the corrupted frame.
			meter.SpendDiscard(rxJ)
			return
		}
		if m.cfg.LossProb > 0 && m.rng.Bool(m.cfg.LossProb) {
			m.stats.Fading++
			meter.SpendDiscard(rxJ)
			return
		}
		meter.SpendRx(rxJ)
		m.stats.Deliveries++
		m.nodes[rc.to].Deliver(pkt, RxInfo{
			From:    tx.from,
			Dist:    dist,
			TxRange: tx.rng,
			RxJ:     rxJ,
			At:      m.sim.Now(),
		})
	})
}

// busyAt reports whether any ongoing transmission is audible at pos.
func (m *Medium) busyAt(pos geom.Point, now float64) bool {
	for _, tx := range m.active {
		if now < tx.end && pos.Dist2(tx.origin) <= tx.intRng*tx.intRng {
			return true
		}
	}
	return false
}

// transmitting reports whether node id has a frame on air at time now.
func (m *Medium) transmitting(id packet.NodeID, now float64) bool {
	for _, tx := range m.active {
		if tx.from == id && now < tx.end {
			return true
		}
	}
	return false
}

// retire removes a finished transmission from the active set.
func (m *Medium) retire(tx *transmission) {
	for i, t := range m.active {
		if t == tx {
			last := len(m.active) - 1
			m.active[i] = m.active[last]
			m.active = m.active[:last]
			return
		}
	}
}
