package medium

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// recorder collects deliveries for one node.
type recorder struct {
	got []RxInfo
}

func (r *recorder) Deliver(pkt *packet.Packet, info RxInfo) { r.got = append(r.got, info) }

// rig assembles a medium over static positions with collision-free
// defaults unless cfg overrides are applied by the caller.
func rig(t *testing.T, pts []geom.Point, mutate func(*Config)) (*sim.Simulator, *Medium, []*recorder, []*energy.Meter) {
	t.Helper()
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.LossProb = 0
	if mutate != nil {
		mutate(&cfg)
	}
	tracker := mobility.NewTracker(len(pts), mobility.Static{Points: pts})
	m := New(s, cfg, tracker, len(pts))
	recs := make([]*recorder, len(pts))
	meters := make([]*energy.Meter, len(pts))
	for i := range pts {
		recs[i] = &recorder{}
		meters[i] = energy.NewMeter(0)
		m.Attach(packet.NodeID(i), recs[i], meters[i])
	}
	return s, m, recs, meters
}

func testPacket(from packet.NodeID) *packet.Packet {
	return &packet.Packet{Kind: packet.KindData, From: from, To: packet.Broadcast, Src: from, Bytes: 100}
}

func TestDeliveryWithinRange(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 100}, {X: 300}}
	s, m, recs, _ := rig(t, pts, nil)
	m.Broadcast(0, testPacket(0), 150)
	s.Run(1)
	if len(recs[1].got) != 1 {
		t.Fatalf("in-range node got %d deliveries", len(recs[1].got))
	}
	if len(recs[2].got) != 0 {
		t.Fatal("out-of-range node received")
	}
	info := recs[1].got[0]
	if info.From != 0 || info.Dist != 100 || info.TxRange != 150 {
		t.Errorf("RxInfo %+v", info)
	}
}

func TestSenderDoesNotHearItself(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 50}}
	s, m, recs, _ := rig(t, pts, nil)
	m.Broadcast(0, testPacket(0), 100)
	s.Run(1)
	if len(recs[0].got) != 0 {
		t.Error("sender delivered to itself")
	}
}

func TestEnergyAccounting(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 100}, {X: 140}}
	s, m, _, meters := rig(t, pts, nil)
	pkt := testPacket(0)
	m.Broadcast(0, pkt, 150)
	s.Run(1)
	em := m.Model()
	if want := em.TxEnergy(pkt.Bytes, 150); meters[0].TxJ != want {
		t.Errorf("sender TxJ = %v, want %v", meters[0].TxJ, want)
	}
	wantRx := em.RxEnergy(pkt.Bytes, 150)
	for _, i := range []int{1, 2} {
		if meters[i].RxJ != wantRx {
			t.Errorf("node %d RxJ = %v, want %v", i, meters[i].RxJ, wantRx)
		}
	}
}

func TestRangeClampedToMax(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 240}}
	s, m, recs, meters := rig(t, pts, nil)
	m.Broadcast(0, testPacket(0), 1e9)
	s.Run(1)
	if len(recs[1].got) != 1 {
		t.Fatal("no delivery at clamped max range")
	}
	em := m.Model()
	if meters[0].TxJ != em.TxEnergy(100, em.MaxRange) {
		t.Error("tx energy not clamped to MaxRange")
	}
}

func TestCollision(t *testing.T) {
	// Two simultaneous transmitters both covering the middle node: the
	// middle reception is corrupted, energy goes to discard.
	pts := []geom.Point{{X: 0}, {X: 100}, {X: 200}}
	s, m, recs, meters := rig(t, pts, func(c *Config) { c.CSMA = false })
	m.Broadcast(0, testPacket(0), 120)
	m.Broadcast(2, testPacket(2), 120)
	s.Run(1)
	if len(recs[1].got) != 0 {
		t.Fatalf("middle node decoded %d frames through a collision", len(recs[1].got))
	}
	if meters[1].DiscardJ == 0 {
		t.Error("corrupted receptions must still cost energy")
	}
	if m.Stats().Collisions == 0 {
		t.Error("collision not counted")
	}
}

func TestNoCollisionWhenSeparated(t *testing.T) {
	// Far-apart transmitters with narrow ranges do not interfere.
	pts := []geom.Point{{X: 0}, {X: 60}, {X: 1000}, {X: 1060}}
	s, m, recs, _ := rig(t, pts, func(c *Config) { c.CSMA = false })
	m.Broadcast(0, testPacket(0), 80)
	m.Broadcast(2, testPacket(2), 80)
	s.Run(1)
	if len(recs[1].got) != 1 || len(recs[3].got) != 1 {
		t.Error("spatially separated transmissions should both deliver")
	}
}

func TestCSMADefers(t *testing.T) {
	// Second sender within carrier range defers and transmits after the
	// first finishes: both deliveries succeed.
	pts := []geom.Point{{X: 0}, {X: 100}, {X: 200}}
	s, m, recs, _ := rig(t, pts, nil)
	m.Broadcast(0, testPacket(0), 250)
	m.Broadcast(2, testPacket(2), 250)
	s.Run(1)
	if len(recs[1].got) != 2 {
		t.Errorf("middle node got %d deliveries, want 2 (CSMA serialization)", len(recs[1].got))
	}
	if m.Stats().Backoffs == 0 {
		t.Error("no backoff recorded")
	}
}

func TestTxQueueSerializes(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 50}}
	s, m, recs, _ := rig(t, pts, nil)
	for i := 0; i < 5; i++ {
		m.Broadcast(0, testPacket(0), 100)
	}
	s.Run(1)
	if len(recs[1].got) != 5 {
		t.Fatalf("got %d deliveries, want 5", len(recs[1].got))
	}
	// Deliveries must be spaced at least one airtime apart.
	air := m.AirTime(100)
	for i := 1; i < 5; i++ {
		gap := recs[1].got[i].At - recs[1].got[i-1].At
		if gap < air-1e-12 {
			t.Errorf("deliveries %d/%d only %v apart (airtime %v)", i-1, i, gap, air)
		}
	}
}

func TestTxQueueDrops(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 50}}
	s, m, _, _ := rig(t, pts, func(c *Config) { c.TxQueueCap = 3 })
	for i := 0; i < 10; i++ {
		m.Broadcast(0, testPacket(0), 100)
	}
	s.Run(1)
	if m.Stats().QueueDrops != 6 { // 1 on air + 3 queued, 6 dropped
		t.Errorf("QueueDrops = %d, want 6", m.Stats().QueueDrops)
	}
}

func TestControlVsDataBytes(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 50}}
	s, m, _, _ := rig(t, pts, nil)
	beacon := &packet.Packet{Kind: packet.KindBeacon, From: 0, Bytes: 80}
	m.Broadcast(0, beacon, 100)
	m.Broadcast(0, testPacket(0), 100)
	s.Run(1)
	st := m.Stats()
	if st.ControlBytes != 80 || st.DataBytes != 100 {
		t.Errorf("byte split ctrl=%d data=%d", st.ControlBytes, st.DataBytes)
	}
}

func TestOnTransmitHook(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 50}}
	s, m, _, _ := rig(t, pts, nil)
	var seen []packet.Kind
	m.OnTransmit = func(p *packet.Packet, txJ float64) { seen = append(seen, p.Kind) }
	m.Broadcast(0, testPacket(0), 100)
	s.Run(1)
	if len(seen) != 1 || seen[0] != packet.KindData {
		t.Errorf("hook saw %v", seen)
	}
}

func TestFadingLoss(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 50}}
	s, m, recs, _ := rig(t, pts, func(c *Config) { c.LossProb = 1 })
	m.Broadcast(0, testPacket(0), 100)
	s.Run(1)
	if len(recs[1].got) != 0 {
		t.Error("LossProb=1 still delivered")
	}
	if m.Stats().Fading != 1 {
		t.Errorf("Fading = %d", m.Stats().Fading)
	}
}

func TestDeadBatteryTxSuppressed(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 50}}
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.LossProb = 0
	tracker := mobility.NewTracker(2, mobility.Static{Points: pts})
	m := New(s, cfg, tracker, 2)
	dead := energy.NewMeter(1e-12)
	dead.SpendTx(1) // exhaust
	rec := &recorder{}
	m.Attach(0, &recorder{}, dead)
	m.Attach(1, rec, energy.NewMeter(0))
	m.Broadcast(0, testPacket(0), 100)
	s.Run(1)
	if len(rec.got) != 0 {
		t.Error("dead node transmitted")
	}
}

func TestDeadBatteryRxSuppressed(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 50}}
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.LossProb = 0
	tracker := mobility.NewTracker(2, mobility.Static{Points: pts})
	m := New(s, cfg, tracker, 2)
	dead := energy.NewMeter(1e-12)
	dead.SpendTx(1)
	rec := &recorder{}
	m.Attach(0, &recorder{}, energy.NewMeter(0))
	m.Attach(1, rec, dead)
	before := dead.Total()
	m.Broadcast(0, testPacket(0), 100)
	s.Run(1)
	if len(rec.got) != 0 {
		t.Error("dead node received")
	}
	if dead.Total() != before {
		t.Error("dead node charged for reception")
	}
}

func TestAirTime(t *testing.T) {
	pts := []geom.Point{{X: 0}}
	_, m, _, _ := rig(t, pts, nil)
	if got := m.AirTime(250); got != 250*8/2e6 {
		t.Errorf("AirTime = %v", got)
	}
}

// TestSortDeliveryOrderPaths checks the insertion-sort and heapsort
// paths of sortDeliveryOrder produce the identical (unique) ordering:
// the pairs form a total order, so both must agree element for element.
func TestSortDeliveryOrderPaths(t *testing.T) {
	rng := xrand.New(99)
	for _, n := range []int{0, 1, 2, 31, 32, 33, 200, 513} {
		keys := make([]uint64, n)
		order := make([]int32, n)
		for i := range keys {
			keys[i] = rng.Uint64() % 64 // dense: force plenty of ties
			order[i] = int32(i)
		}
		k2 := append([]uint64(nil), keys...)
		o2 := append([]int32(nil), order...)
		sortDeliveryOrder(keys, order) // path chosen by n
		// Reference: insertion sort regardless of size.
		for i := 1; i < n; i++ {
			ki, oi := k2[i], o2[i]
			j := i
			for j > 0 && (ki < k2[j-1] || (ki == k2[j-1] && oi < o2[j-1])) {
				k2[j], o2[j] = k2[j-1], o2[j-1]
				j--
			}
			k2[j], o2[j] = ki, oi
		}
		for i := range keys {
			if keys[i] != k2[i] || order[i] != o2[i] {
				t.Fatalf("n=%d: sorted pair %d = (%d,%d), reference (%d,%d)",
					n, i, keys[i], order[i], k2[i], o2[i])
			}
		}
	}
}
