package traffic

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/medium"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// countingProto records Originate calls.
type countingProto struct {
	n     int
	times []float64
	node  *netsim.Slot
}

func (c *countingProto) Start(n *netsim.Slot)                         { c.node = n }
func (c *countingProto) Receive(p *packet.Packet, info medium.RxInfo) {}
func (c *countingProto) Originate()                                   { c.n++; c.times = append(c.times, c.node.Now()) }

func TestCBRInterval(t *testing.T) {
	c := DefaultCBR()
	// 512 bytes at 64 kb/s → 64 ms.
	if math.Abs(c.Interval()-0.064) > 1e-12 {
		t.Errorf("Interval = %v", c.Interval())
	}
}

func rig(t *testing.T) (*sim.Simulator, *netsim.Network, *countingProto) {
	t.Helper()
	s := sim.New(1)
	pts := []geom.Point{{X: 0}, {X: 100}}
	tracker := mobility.NewTracker(2, mobility.Static{Points: pts})
	net := netsim.New(s, tracker, netsim.Config{
		N: 2, Source: 0, Members: []packet.NodeID{1},
		Medium: medium.DefaultConfig(), PayloadBytes: 512,
	})
	cp := &countingProto{}
	net.SetProtocol(0, cp)
	net.SetProtocol(1, &countingProto{})
	net.Start()
	return s, net, cp
}

func TestCBRRate(t *testing.T) {
	s, net, cp := rig(t)
	DefaultCBR().Attach(net.Nodes[0].Slots[0])
	s.Run(6.4) // exactly 100 intervals
	if cp.n < 99 || cp.n > 101 {
		t.Errorf("originated %d packets in 6.4 s, want ~100", cp.n)
	}
	if net.Collector.Sent != cp.n {
		t.Errorf("collector sent %d != originations %d", net.Collector.Sent, cp.n)
	}
	// Expected deliveries = sends × group size (1 member).
	if net.Collector.Expected != cp.n {
		t.Errorf("expected %d", net.Collector.Expected)
	}
}

func TestCBRStop(t *testing.T) {
	s, net, cp := rig(t)
	c := DefaultCBR()
	c.Stop = 1.0
	c.Attach(net.Nodes[0].Slots[0])
	s.Run(10)
	want := int(1.0/c.Interval()) + 1
	if cp.n < want-1 || cp.n > want+1 {
		t.Errorf("originated %d packets with Stop=1s, want ~%d", cp.n, want)
	}
}

func TestCBRStart(t *testing.T) {
	s, net, cp := rig(t)
	c := DefaultCBR()
	c.Start = 2.0
	c.Attach(net.Nodes[0].Slots[0])
	s.Run(1.9)
	if cp.n != 0 {
		t.Errorf("originated before Start: %d", cp.n)
	}
	s.Run(3)
	if cp.n == 0 {
		t.Error("never originated after Start")
	}
	if len(cp.times) > 0 && cp.times[0] != 2.0 {
		t.Errorf("first packet at %v, want 2.0", cp.times[0])
	}
}

func TestCBRSpacing(t *testing.T) {
	s, net, cp := rig(t)
	DefaultCBR().Attach(net.Nodes[0].Slots[0])
	s.Run(2)
	for i := 1; i < len(cp.times); i++ {
		gap := cp.times[i] - cp.times[i-1]
		if math.Abs(gap-0.064) > 1e-9 {
			t.Fatalf("inter-packet gap %v, want 64 ms", gap)
		}
	}
}
