// Package traffic implements the constant-bit-rate multicast source used
// throughout the paper's evaluation: 64 kb/s of 512-byte packets from one
// source node.
package traffic

import "repro/internal/netsim"

// CBR drives a node's protocol with constant-bit-rate application traffic.
type CBR struct {
	// RateBps is the application bitrate (payload bits per second).
	RateBps float64
	// PayloadBytes is the payload per packet.
	PayloadBytes int
	// Start and Stop bound the sending interval in simulated seconds;
	// Stop <= 0 means "until the end of the run".
	Start, Stop float64
}

// DefaultCBR returns the paper's source: 64 kb/s of 512-byte packets.
func DefaultCBR() CBR {
	return CBR{RateBps: 64e3, PayloadBytes: 512, Start: 0}
}

// Interval returns the packet inter-departure time.
func (c CBR) Interval() float64 {
	return float64(c.PayloadBytes) * 8 / c.RateBps
}

// Attach schedules the generator on slot s (the group's source). Each
// firing records the expected deliveries with the collector — using the
// group size *at send time*, so dynamic membership churn is accounted
// correctly — and asks the slot's protocol to originate one packet.
func (c CBR) Attach(s *netsim.Slot) {
	interval := c.Interval()
	g := int(s.Group)
	var fire func()
	fire = func() {
		now := s.Now()
		if c.Stop > 0 && now > c.Stop {
			return
		}
		s.Net.Collector.GroupDataSent(g, len(s.Net.Groups[g].Members))
		s.Proto.Originate()
		s.Sim().After(interval, fire)
	}
	s.Sim().At(c.Start, fire)
}
