// Package odmrp implements the On-Demand Multicast Routing Protocol
// (Gerla, Lee & Chiang, WCNC'99): a mesh-based protocol in which the
// source periodically floods Join Queries, receivers answer with Join
// Replies that walk the reverse path, and every node named as a next hop
// joins the Forwarding Group. Data is flooded across the forwarding group,
// whose redundancy buys ODMRP the highest delivery ratio — and the highest
// energy and control overhead — in the paper's comparison.
//
// ODMRP is energy-oblivious: all transmissions are at full power.
package odmrp

import (
	"repro/internal/fwdpool"
	"repro/internal/medium"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Config parameterizes an ODMRP instance.
type Config struct {
	// RefreshInterval is the Join Query flood period (3 s in the original
	// paper and in common ns-2 configurations).
	RefreshInterval float64
	// FGTimeout is the forwarding-group membership lifetime; typically a
	// small multiple of the refresh interval.
	FGTimeout float64
	// RouteTTL bounds the age of a reverse-path entry used to send a
	// Join Reply.
	RouteTTL float64
	// ReplyDelayMax spreads Join Replies after a Join Query arrives.
	ReplyDelayMax float64
	// ForwardJitterMax decorrelates data re-broadcasts.
	ForwardJitterMax float64
}

// DefaultConfig returns the conventional ODMRP timer values.
func DefaultConfig() Config {
	return Config{
		RefreshInterval: 3,
		FGTimeout:       3 * 2.2,
		RouteTTL:        6,
		ReplyDelayMax:   50e-3,
		// Near-immediate rebroadcast, as in the original protocol: the
		// forwarding group re-floods data with no deliberate jitter,
		// which is what makes large forwarding groups storm-collide.
		ForwardJitterMax: 0.8e-3,
	}
}

// jqPayload is the Join Query flood content.
type jqPayload struct {
	Hops int
}

// jrPayload is a Join Reply naming the next hop toward the source.
type jrPayload struct {
	Source  packet.NodeID
	NextHop packet.NodeID
}

const (
	jqBytes = packet.MACHeaderBytes + packet.IPHeaderBytes + 20
	jrBytes = packet.MACHeaderBytes + packet.IPHeaderBytes + 28
)

// Protocol is one node's ODMRP instance. It implements netsim.Protocol.
type Protocol struct {
	cfg  Config
	node *netsim.Slot
	rng  *xrand.RNG

	// Reverse path toward the source, refreshed by Join Queries.
	upstream packet.NodeID
	upHops   int
	upAt     float64
	haveUp   bool

	// Forwarding-group membership deadline (0 = not a member).
	fgUntil float64
	// lastCascade rate-limits reply propagation (one per refresh round).
	lastCascade float64

	// seenData dedups the data mesh flood; seenCtl dedups Join Query
	// floods. Both see a single originator (the multicast source) numbering
	// densely from zero — packet.SeqSet's bitset fast path — where the old
	// hash maps put several probes on every reception of the hottest kind.
	seenData packet.SeqSet
	seenCtl  packet.SeqSet
	seq      uint32
	jqSeq    uint32

	// Frame pools (fwdpool): forwarded data, Join Query floods and Join
	// Replies recycle through packet.Owner instead of allocating per frame.
	datPool *fwdpool.Pool[struct{}]
	jqPool  *fwdpool.Pool[jqPayload]
	jrPool  *fwdpool.Pool[jrPayload]
	// fwdGuard re-checks forwarding-group membership at jitter-fire time;
	// allocated once so SendAfter never closes over anything.
	fwdGuard func() bool

	ticker *sim.Ticker
	// startTimer is the source's desynchronized first-query timer; stored
	// so Stop can cancel an instance crashed before its first flood.
	startTimer *sim.Timer
}

// New returns an ODMRP instance.
func New(cfg Config) *Protocol {
	return &Protocol{cfg: cfg}
}

// Start implements netsim.Protocol.
func (p *Protocol) Start(n *netsim.Slot) {
	p.node = n
	p.rng = n.ProtoRNG("odmrp")
	p.datPool = fwdpool.New[struct{}](n)
	p.jqPool = fwdpool.New[jqPayload](n)
	p.jrPool = fwdpool.New[jrPayload](n)
	p.fwdGuard = p.isForwarder
	p.lastCascade = -1e9 // allow the first cascade immediately
	if n.Source {
		first := p.rng.Range(0.05, 0.4)
		p.startTimer = n.Sim().Schedule(first, func() {
			p.sendJoinQuery()
			p.ticker = n.Sim().Every(p.cfg.RefreshInterval, 0.1, p.sendJoinQuery)
		})
	}
}

// Stop implements netsim.Stopper: it cancels the instance's timers so a
// crashed node goes quiet. Crashed nodes restart with a fresh instance.
func (p *Protocol) Stop() {
	p.startTimer.Cancel()
	if p.ticker != nil {
		p.ticker.Stop()
	}
}

func (p *Protocol) maxRange() float64 { return p.node.Net.Medium.Model().MaxRange }

// sendJoinQuery floods one refresh round from the source.
func (p *Protocol) sendJoinQuery() {
	p.jqSeq++
	f := p.jqPool.Take()
	f.Payload = jqPayload{}
	f.Pkt = packet.Packet{
		Kind:    packet.KindJoinQuery,
		From:    p.node.ID,
		To:      packet.Broadcast,
		Src:     p.node.ID,
		Seq:     p.jqSeq,
		Bytes:   jqBytes,
		Payload: &f.Payload,
		Owner:   f,
	}
	p.node.Broadcast(&f.Pkt, p.maxRange())
}

// Receive implements netsim.Protocol.
func (p *Protocol) Receive(pkt *packet.Packet, info medium.RxInfo) {
	switch pkt.Kind {
	case packet.KindJoinQuery:
		p.handleJoinQuery(pkt, info)
	case packet.KindJoinReply:
		p.handleJoinReply(pkt, info)
	case packet.KindData:
		p.handleData(pkt, info)
	default:
		p.node.DiscardRx(info)
	}
}

func (p *Protocol) handleJoinQuery(pkt *packet.Packet, info medium.RxInfo) {
	if p.node.Source {
		p.node.DiscardRx(info)
		return
	}
	jq := pkt.Payload.(*jqPayload)
	if p.seenCtl.TestAndSet(pkt.Src, pkt.Seq) {
		p.node.DiscardRx(info)
		return
	}

	// Record the reverse path (first copy ≈ shortest) and re-flood.
	p.upstream = info.From
	p.upHops = jq.Hops + 1
	p.upAt = info.At
	p.haveUp = true

	f := p.jqPool.Take()
	f.Pkt = *pkt
	f.Pkt.Owner = f
	f.Pkt.From = p.node.ID
	f.Pkt.Hops++
	f.Payload = jqPayload{Hops: jq.Hops + 1}
	f.Pkt.Payload = &f.Payload
	delay := p.rng.Range(0, p.cfg.ForwardJitterMax)
	p.jqPool.SendAfter(delay, f, p.maxRange(), nil)

	// Members answer each refresh with a Join Reply after a short spread.
	if p.node.Member {
		reply := p.rng.Range(1e-3, p.cfg.ReplyDelayMax)
		p.node.Sim().After(reply, func() { p.sendJoinReply(pkt.Src) })
	}
}

// sendJoinReply emits a reply naming this node's current upstream as next
// hop toward source.
func (p *Protocol) sendJoinReply(source packet.NodeID) {
	if !p.haveUp || p.node.Now()-p.upAt > p.cfg.RouteTTL {
		return
	}
	f := p.jrPool.Take()
	f.Payload = jrPayload{Source: source, NextHop: p.upstream}
	f.Pkt = packet.Packet{
		Kind:    packet.KindJoinReply,
		From:    p.node.ID,
		To:      p.upstream,
		Src:     p.node.ID,
		Seq:     p.nextSeq(),
		Bytes:   jrBytes,
		Payload: &f.Payload,
		Owner:   f,
	}
	p.node.Broadcast(&f.Pkt, p.maxRange())
}

func (p *Protocol) nextSeq() uint32 { p.seq++; return p.seq }

// handleJoinReply makes the named next hop a forwarding-group member and
// cascades the reply toward the source.
func (p *Protocol) handleJoinReply(pkt *packet.Packet, info medium.RxInfo) {
	jr := pkt.Payload.(*jrPayload)
	if jr.NextHop != p.node.ID {
		p.node.DiscardRx(info)
		return
	}
	if p.node.Source {
		return // reply reached the source: the mesh path is complete
	}
	now := p.node.Now()
	p.fgUntil = now + p.cfg.FGTimeout
	// Cascade toward the source, at most once per half refresh interval so
	// replies from many downstream members coalesce into one per round.
	if now-p.lastCascade > p.cfg.RefreshInterval/2 {
		p.lastCascade = now
		p.sendJoinReply(jr.Source)
	}
}

// isForwarder reports live forwarding-group membership.
func (p *Protocol) isForwarder() bool { return p.node.Now() < p.fgUntil }

func (p *Protocol) handleData(pkt *packet.Packet, info medium.RxInfo) {
	if p.node.Source {
		p.node.DiscardRx(info)
		return
	}
	if p.seenData.TestAndSet(pkt.Src, pkt.Seq) {
		p.node.DiscardRx(info)
		return
	}
	consumed := false
	if p.node.Member {
		p.node.ConsumeData(pkt, info.At)
		consumed = true
	}
	if p.isForwarder() {
		consumed = true
		f := p.datPool.Take()
		f.Pkt = *pkt
		f.Pkt.Owner = f
		f.Pkt.From = p.node.ID
		f.Pkt.Hops++
		delay := p.rng.Range(0, p.cfg.ForwardJitterMax)
		p.datPool.SendAfter(delay, f, p.maxRange(), p.fwdGuard)
	}
	if !consumed {
		p.node.DiscardRx(info)
	}
}

// Originate implements netsim.Protocol (source only).
func (p *Protocol) Originate() {
	p.seq++
	f := p.datPool.Take()
	f.Pkt = packet.MakeData(p.node.ID, p.seq, p.node.Now())
	f.Pkt.Owner = f
	p.node.Broadcast(&f.Pkt, p.maxRange())
}

// Forwarder exposes forwarding-group membership for tests.
func (p *Protocol) Forwarder() bool { return p.isForwarder() }
