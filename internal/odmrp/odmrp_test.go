package odmrp

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/medium"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

func rig(t *testing.T, pts []geom.Point, members []int) (*sim.Simulator, *netsim.Network, []*Protocol) {
	t.Helper()
	s := sim.New(3)
	tracker := mobility.NewTracker(len(pts), mobility.Static{Points: pts})
	mcfg := medium.DefaultConfig()
	mcfg.LossProb = 0
	mem := make([]packet.NodeID, len(members))
	for i, m := range members {
		mem[i] = packet.NodeID(m)
	}
	net := netsim.New(s, tracker, netsim.Config{
		N: len(pts), Source: 0, Members: mem,
		Medium: mcfg, PayloadBytes: packet.DataPayload,
	})
	protos := make([]*Protocol, len(pts))
	for i := range pts {
		protos[i] = New(DefaultConfig())
		net.SetProtocol(packet.NodeID(i), protos[i])
	}
	net.Start()
	return s, net, protos
}

func chain() []geom.Point {
	return []geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}}
}

func TestJoinQueryEstablishesReversePaths(t *testing.T) {
	s, _, protos := rig(t, chain(), []int{3})
	s.Run(4) // one refresh round
	for i := 1; i < 4; i++ {
		if !protos[i].haveUp {
			t.Errorf("node %d has no reverse path after the Join Query flood", i)
		}
	}
	if protos[1].upstream != 0 || protos[2].upstream != 1 {
		t.Errorf("reverse path wrong: up(1)=%v up(2)=%v", protos[1].upstream, protos[2].upstream)
	}
}

func TestForwardingGroupForms(t *testing.T) {
	s, _, protos := rig(t, chain(), []int{3})
	s.Run(5)
	// Nodes 1 and 2 are on the member→source reverse path: both must be
	// forwarding-group members.
	if !protos[1].Forwarder() || !protos[2].Forwarder() {
		t.Error("reverse-path nodes not in the forwarding group")
	}
	// The member itself is not necessarily FG.
	if protos[3].Forwarder() {
		t.Log("member ended up in FG (harmless, but unexpected on a chain)")
	}
}

func TestDataDeliveredOverMesh(t *testing.T) {
	s, net, _ := rig(t, chain(), []int{3})
	s.Run(5)
	for i := 0; i < 30; i++ {
		net.Collector.DataSent(1)
		net.Nodes[0].Slots[0].Proto.Originate()
		s.Run(s.Now() + 0.0625)
	}
	s.Run(s.Now() + 1)
	if sum := net.Summarize(); sum.PDR < 0.9 {
		t.Errorf("mesh PDR = %v", sum.PDR)
	}
}

func TestForwardingGroupExpires(t *testing.T) {
	s, _, protos := rig(t, chain(), []int{3})
	s.Run(5)
	if !protos[1].Forwarder() {
		t.Fatal("precondition: node 1 in FG")
	}
	// Silence the source: no more Join Queries → FG times out.
	protos[0].ticker.Stop()
	s.Run(s.Now() + DefaultConfig().FGTimeout + 1)
	if protos[1].Forwarder() {
		t.Error("forwarding-group membership did not expire")
	}
}

func TestRefreshKeepsFGAlive(t *testing.T) {
	s, _, protos := rig(t, chain(), []int{3})
	s.Run(30) // many refresh rounds
	if !protos[1].Forwarder() || !protos[2].Forwarder() {
		t.Error("FG membership lapsed despite periodic refreshes")
	}
}

func TestControlOverheadGrowsWithMembers(t *testing.T) {
	// More members → more Join Replies per refresh → more control bytes.
	wide := []geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 400, Y: 150}, {X: 400, Y: -150}, {X: 600}}
	run := func(members []int) int64 {
		s, net, _ := rig(t, wide, members)
		s.Run(30)
		return net.Collector.ControlBytes
	}
	few := run([]int{5})
	many := run([]int{2, 3, 4, 5})
	if many <= few {
		t.Errorf("control bytes did not grow with membership: %d vs %d", many, few)
	}
}

func TestMemberConsumesWithoutFG(t *testing.T) {
	// Two nodes: source and adjacent member; no forwarding needed.
	pts := []geom.Point{{X: 0}, {X: 100}}
	s, net, _ := rig(t, pts, []int{1})
	s.Run(4)
	net.Collector.DataSent(1)
	net.Nodes[0].Slots[0].Proto.Originate()
	s.Run(s.Now() + 0.5)
	if sum := net.Summarize(); sum.Delivered != 1 {
		t.Errorf("adjacent member deliveries = %d", sum.Delivered)
	}
}
