// Package fwdpool pools on-air frames and their delayed-send actions for
// protocols that forward copies of received packets (flooding, mesh and
// tree forwarding). It generalizes the frame-recycling idiom of
// internal/core's beaconFrame/dataFrame/fwdAction: a Frame carries its
// payload storage inline and implements packet.Owner, so the medium
// returns it to the pool once the frame has fully left the air, and a
// pooled action replaces the per-forward closure. Steady-state forwarding
// through a pool allocates nothing.
package fwdpool

import (
	"repro/internal/netsim"
	"repro/internal/packet"
)

// Frame is a pooled frame with inline payload storage of type P. Point
// Pkt.Payload at &f.Payload when the frame carries one; receivers must not
// retain the payload beyond their Receive callback (the packet.Owner
// contract, which every protocol in this repository already obeys).
type Frame[P any] struct {
	pool *Pool[P]
	// Pkt is the transmitted packet; fill it per send and keep Pkt.Owner
	// pointing at the frame (Take pre-sets it; restore it after a
	// whole-struct copy from a received packet).
	Pkt packet.Packet
	// Payload is the inline payload scratch.
	Payload P
}

// FreePacket implements packet.Owner: the medium calls it exactly once,
// after the frame has left the air and its last reception has fired.
func (f *Frame[P]) FreePacket(*packet.Packet) { f.pool.free = append(f.pool.free, f) }

// Free returns a never-transmitted frame to its pool directly.
func (f *Frame[P]) Free() { f.pool.free = append(f.pool.free, f) }

// Pool recycles frames of one payload shape for one protocol slot.
type Pool[P any] struct {
	slot    *netsim.Slot
	free    []*Frame[P]
	actFree []*sendAction[P]
}

// New returns an empty pool bound to slot.
func New[P any](slot *netsim.Slot) *Pool[P] { return &Pool[P]{slot: slot} }

// Take returns a recycled frame (or a fresh one). Pkt is zeroed except for
// Owner, which points back at the frame; Payload holds stale scratch the
// caller overwrites.
func (p *Pool[P]) Take() *Frame[P] {
	var f *Frame[P]
	if n := len(p.free); n > 0 {
		f = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	} else {
		f = &Frame[P]{pool: p}
	}
	f.Pkt = packet.Packet{Owner: f}
	return f
}

// sendAction is a pooled deferred broadcast; it recycles itself on firing.
type sendAction[P any] struct {
	f       *Frame[P]
	txRange float64
	guard   func() bool
}

// Fire implements sim.Action.
func (a *sendAction[P]) Fire() {
	f, r, guard := a.f, a.txRange, a.guard
	pool := f.pool
	a.f, a.guard = nil, nil
	pool.actFree = append(pool.actFree, a)
	if guard != nil && !guard() {
		// The forwarding condition lapsed during the jitter: the frame was
		// never transmitted, so the medium will not free it — recycle here.
		f.Free()
		return
	}
	pool.slot.Broadcast(&f.Pkt, r)
}

// SendAfter broadcasts f with the given range after delay seconds of
// simulated time. guard, when non-nil, is re-evaluated at fire time; a
// false result returns the frame to the pool without transmitting. Pass a
// guard stored once on the protocol, not a fresh closure per send.
func (p *Pool[P]) SendAfter(delay float64, f *Frame[P], txRange float64, guard func() bool) {
	var a *sendAction[P]
	if n := len(p.actFree); n > 0 {
		a = p.actFree[n-1]
		p.actFree[n-1] = nil
		p.actFree = p.actFree[:n-1]
	} else {
		a = &sendAction[P]{}
	}
	a.f, a.txRange, a.guard = f, txRange, guard
	p.slot.Sim().AfterAction(delay, a)
}
