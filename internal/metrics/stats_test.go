package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	// Known dataset: population stddev 2, sample stddev = sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", s.Stddev(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("extremes %v..%v", s.Min(), s.Max())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Stddev() != 0 || s.CI95() != 0 {
		t.Error("empty sample should reduce to zeros")
	}
}

func TestSampleSingle(t *testing.T) {
	var s Sample
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Stddev() != 0 || s.CI95() != 0 {
		t.Errorf("single observation: mean=%v sd=%v ci=%v", s.Mean(), s.Stddev(), s.CI95())
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	mk := func(n int) float64 {
		var s Sample
		for i := 0; i < n; i++ {
			s.Add(float64(i % 10))
		}
		return s.CI95()
	}
	if mk(100) >= mk(10) {
		t.Error("CI did not shrink with more observations")
	}
}

func TestTQuantile(t *testing.T) {
	if tQuantile95(1) != 12.706 {
		t.Errorf("t(1) = %v", tQuantile95(1))
	}
	if tQuantile95(1000) != 1.96 {
		t.Errorf("t(1000) = %v", tQuantile95(1000))
	}
	if tQuantile95(0) != 0 {
		t.Errorf("t(0) = %v", tQuantile95(0))
	}
}

func TestSampleMeanWithinExtremesQuick(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarNonNegativeQuick(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
			s.Add(v)
		}
		return s.Var() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCI95SingleSeedEmitsZero pins the single-seed contract the lifetime
// figure (which defaults to few seeds) depends on: every CI95 a sweep CSV
// or figure table can print — including the degenerate all-dead case
// where the per-run energy ratio is +Inf — is exactly 0 with one
// observation, and never NaN with more.
func TestCI95SingleSeedEmitsZero(t *testing.T) {
	var a Aggregate
	a.AddSummary(Summary{
		PDR: 0.5, EnergyPerDeliveredJ: 2, AvgDelayS: 0.01, CtrlPerDataByte: 0.3,
		Unavailability: 0.1, TotalEnergyJ: 16, DeadNodes: 3, FirstDeathS: 40,
		Expected: 10, Delivered: 5, UniquePayloadBytes: 512, UnavailSamples: 10,
		FirstDeaths: 1, Nodes: 50,
	})
	for name, ci := range map[string]float64{
		"pdr":         a.PDR.CI95(),
		"energy":      a.EnergyPerPkt.CI95(),
		"delay":       a.DelayS.CI95(),
		"ctrl":        a.CtrlPerByte.CI95(),
		"unavail":     a.Unavailability.CI95(),
		"totalJ":      a.TotalEnergyJ.CI95(),
		"dead_nodes":  a.DeadNodes.CI95(),
		"first_death": a.FirstDeathS.CI95(),
	} {
		if ci != 0 {
			t.Errorf("N=1 CI95(%s) = %v, want exactly 0", name, ci)
		}
		if math.IsNaN(ci) {
			t.Errorf("N=1 CI95(%s) is NaN", name)
		}
	}
	// Repeated +Inf observations (all-dead pools rank at +Inf energy/pkt):
	// the spread is undefined — report 0, not NaN.
	var s Sample
	s.Add(math.Inf(1))
	s.Add(math.Inf(1))
	if ci := s.CI95(); math.IsNaN(ci) {
		t.Errorf("CI95 over +Inf observations = %v, want a number", ci)
	}
}

// TestAggregateDeathSamples: dead-node counts always join their sample
// (0 dead is a real observation); the first-death time joins only when a
// death was observed.
func TestAggregateDeathSamples(t *testing.T) {
	var a Aggregate
	a.AddSummary(Summary{DeadNodes: 4, FirstDeathS: 100, FirstDeaths: 1, Nodes: 50})
	a.AddSummary(Summary{Nodes: 50}) // nothing died
	if a.DeadNodes.N() != 2 {
		t.Errorf("DeadNodes sample N = %d, want 2", a.DeadNodes.N())
	}
	if a.FirstDeathS.N() != 1 {
		t.Errorf("FirstDeathS sample N = %d, want 1 (deathless run must not enter)", a.FirstDeathS.N())
	}
	if a.FirstDeathS.Mean() != 100 {
		t.Errorf("FirstDeathS mean = %v", a.FirstDeathS.Mean())
	}
}

func TestAggregate(t *testing.T) {
	var a Aggregate
	a.AddSummary(Summary{PDR: 0.8, EnergyPerDeliveredJ: 2, Expected: 10, Delivered: 8})
	a.AddSummary(Summary{PDR: 0.6, EnergyPerDeliveredJ: 4, Expected: 10, Delivered: 6})
	if math.Abs(a.PDR.Mean()-0.7) > 1e-12 {
		t.Errorf("aggregate PDR mean = %v", a.PDR.Mean())
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

// TestAggregateSkipsUndefinedRatios: a zero-delivery run must not push
// its placeholder zeros into the energy/delay samples (they would drag
// the sample mean away from the pooled mean and blow up the CI).
func TestAggregateSkipsUndefinedRatios(t *testing.T) {
	var a Aggregate
	a.AddSummary(Summary{PDR: 0.8, EnergyPerDeliveredJ: 2, AvgDelayS: 0.01, Expected: 10, Delivered: 8, TotalEnergyJ: 16})
	a.AddSummary(Summary{Expected: 10, Delivered: 0, TotalEnergyJ: 16}) // dead run
	if a.EnergyPerPkt.N() != 1 || a.DelayS.N() != 1 {
		t.Errorf("dead run entered ratio samples: energy N=%d delay N=%d", a.EnergyPerPkt.N(), a.DelayS.N())
	}
	if a.PDR.N() != 2 {
		t.Errorf("dead run's real PDR=0 must still count: N=%d", a.PDR.N())
	}
	if a.TotalEnergyJ.N() != 2 {
		t.Errorf("energy totals always count: N=%d", a.TotalEnergyJ.N())
	}
}
