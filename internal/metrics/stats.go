package metrics

import (
	"fmt"
	"math"
)

// Sample is a univariate sample with the reductions experiment reports
// need: mean, standard deviation and a normal-approximation confidence
// interval. The paper averages over scenario files; Sample makes the
// spread visible too.
type Sample struct {
	n    int
	sum  float64
	sum2 float64
	min  float64
	max  float64
}

// Add appends one observation.
func (s *Sample) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sum2 += v * v
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 with no observations).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min and Max return the observed extremes.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.max }

// Var returns the unbiased sample variance (0 with fewer than two
// observations).
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	n := float64(s.n)
	v := (s.sum2 - s.sum*s.sum/n) / (n - 1)
	if v < 0 {
		return 0 // numeric noise on constant samples
	}
	return v
}

// Stddev returns the unbiased sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Var()) }

// CI95 returns the half-width of the 95% confidence interval on the mean
// using Student's t quantiles for small samples. A single observation has
// no spread estimate: the half-width is 0, never NaN — sweep CSVs and
// figure tables with one seed print a plain mean.
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	ci := tQuantile95(s.n-1) * s.Stddev() / math.Sqrt(float64(s.n))
	if math.IsNaN(ci) {
		return 0 // degenerate sample (e.g. repeated +Inf observations)
	}
	return ci
}

// String implements fmt.Stringer as "mean ± ci95".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean(), s.CI95())
}

// tQuantile95 returns the two-sided 95% Student-t quantile for the given
// degrees of freedom (table for small df, normal limit beyond).
func tQuantile95(df int) float64 {
	table := []float64{
		0,                                                             // df 0 (unused)
		12.706,                                                        // 1
		4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 2-10
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11-20
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21-30
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// Aggregate reduces a set of run summaries into per-metric samples, so
// sweeps can report mean ± CI per point instead of a bare mean.
type Aggregate struct {
	PDR            Sample
	EnergyPerPkt   Sample
	DelayS         Sample
	CtrlPerByte    Sample
	Unavailability Sample
	TotalEnergyJ   Sample
	DeadNodes      Sample
	FirstDeathS    Sample
	// Failed counts replications that produced no summary (panic, config
	// error, watchdog abort). Failed runs join no metric pool — a partial
	// grid reports a degraded answer, flagged by n_failed, instead of
	// poisoning the means with zeros.
	Failed int
}

// AddFailed records one failed replication.
func (a *Aggregate) AddFailed() { a.Failed++ }

// AddSummary folds one run into the aggregate. Each ratio joins its
// sample only when the run has that ratio's denominator: a run that
// delivered nothing has no energy-per-delivery or delay observation, and
// folding its zero placeholder in would both re-center the mean and
// inflate the CI with a value that never happened.
func (a *Aggregate) AddSummary(s Summary) {
	if s.Expected > 0 {
		a.PDR.Add(s.PDR)
	}
	if s.Delivered > 0 {
		a.EnergyPerPkt.Add(s.EnergyPerDeliveredJ)
		a.DelayS.Add(s.AvgDelayS)
	}
	if s.UniquePayloadBytes > 0 {
		a.CtrlPerByte.Add(s.CtrlPerDataByte)
	}
	if s.UnavailSamples > 0 {
		a.Unavailability.Add(s.Unavailability)
	}
	a.TotalEnergyJ.Add(s.TotalEnergyJ)
	a.DeadNodes.Add(float64(s.DeadNodes))
	if s.FirstDeaths > 0 {
		a.FirstDeathS.Add(s.FirstDeathS)
	}
}

// String implements fmt.Stringer with the headline means and CIs.
func (a *Aggregate) String() string {
	return fmt.Sprintf("PDR %s | energy/pkt %s J | delay %s s",
		a.PDR.String(), a.EnergyPerPkt.String(), a.DelayS.String())
}
