package metrics_test

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

// TestCountersRoundTrip pins the property the whole shard fabric rests
// on: a real run's Summary, exported as raw Counters, marshaled to JSON,
// parsed back and rehydrated, is bit-identical to the original —
// including every derived float64 ratio. Summary is a comparable struct
// (fixed-size array, no pointers), so == is exact bit comparison apart
// from NaN, which no field produces.
func TestCountersRoundTrip(t *testing.T) {
	cfgs := []scenario.Config{}
	base := scenario.Default()
	base.Duration = 30

	battery := base
	battery.Battery = 1 // force deaths so the lifetime fields are non-zero
	churn := base
	churn.MemberChurnInterval = 5
	groups := base
	groups.Groups = 3
	for _, cfg := range []scenario.Config{base, battery, churn, groups} {
		cfg.Seed = 7
		cfgs = append(cfgs, cfg)
	}

	for _, cfg := range cfgs {
		res, err := scenario.RunE(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range append([]metrics.Summary{res.Summary}, res.PerGroup...) {
			b, err := json.Marshal(metrics.CountersOf(s))
			if err != nil {
				t.Fatal(err)
			}
			var c metrics.Counters
			if err := json.Unmarshal(b, &c); err != nil {
				t.Fatal(err)
			}
			if got := c.Summary(); got != s {
				t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, s)
			}
		}
	}
}

// TestCountersInfEnergy: the one non-finite Summary field (+Inf energy
// per delivery on a run that spent energy and delivered nothing) is
// derived, never stored, so the wire form stays JSON-legal and the
// rehydration reproduces the Inf.
func TestCountersInfEnergy(t *testing.T) {
	c := metrics.Counters{Sent: 10, Expected: 10, Delivered: 0, TxJ: 2.5}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("all-dead counters not JSON-marshalable: %v", err)
	}
	var c2 metrics.Counters
	if err := json.Unmarshal(b, &c2); err != nil {
		t.Fatal(err)
	}
	s := c2.Summary()
	if !math.IsInf(s.EnergyPerDeliveredJ, 1) {
		t.Fatalf("EnergyPerDeliveredJ = %v, want +Inf", s.EnergyPerDeliveredJ)
	}
	if s.PDR != 0 || s.TotalEnergyJ != 2.5 {
		t.Fatalf("unexpected rehydration: %+v", s)
	}
}
