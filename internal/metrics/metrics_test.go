package metrics

import (
	"math"
	"testing"

	"repro/internal/energy"
)

func TestPDR(t *testing.T) {
	c := NewCollector(512, 4)
	c.DataSent(4) // 4 members expected
	c.DataSent(4)
	c.DataDelivered(1, 0, 1, 0, 0.01)
	c.DataDelivered(2, 0, 1, 0, 0.02)
	c.DataDelivered(1, 0, 2, 0.0625, 0.07)
	s := c.Summarize(nil, 10)
	if s.Sent != 2 || s.Expected != 8 || s.Delivered != 3 {
		t.Fatalf("counters %+v", s)
	}
	if math.Abs(s.PDR-3.0/8) > 1e-12 {
		t.Errorf("PDR = %v", s.PDR)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	c := NewCollector(512, 4)
	c.DataSent(2)
	c.DataDelivered(1, 0, 1, 0, 0.01)
	c.DataDelivered(1, 0, 1, 0, 0.02) // duplicate
	s := c.Summarize(nil, 10)
	if s.Delivered != 1 || s.Duplicates != 1 {
		t.Errorf("delivered=%d dups=%d", s.Delivered, s.Duplicates)
	}
}

func TestDelay(t *testing.T) {
	c := NewCollector(512, 4)
	c.DataSent(2)
	c.DataDelivered(1, 0, 1, 1.0, 1.010)
	c.DataDelivered(2, 0, 1, 1.0, 1.030)
	s := c.Summarize(nil, 10)
	if math.Abs(s.AvgDelayS-0.020) > 1e-12 {
		t.Errorf("AvgDelayS = %v", s.AvgDelayS)
	}
}

func TestCtrlPerDataByte(t *testing.T) {
	c := NewCollector(512, 4)
	c.DataSent(1)
	c.ControlTx(100)
	c.ControlTx(28)
	// Packet reaches two members but its payload counts once.
	c.DataDelivered(1, 0, 1, 0, 0.01)
	c.DataDelivered(2, 0, 1, 0, 0.01)
	s := c.Summarize(nil, 10)
	if math.Abs(s.CtrlPerDataByte-128.0/512) > 1e-12 {
		t.Errorf("CtrlPerDataByte = %v", s.CtrlPerDataByte)
	}
}

func TestUnavailability(t *testing.T) {
	c := NewCollector(512, 4)
	c.ServiceSample(false)
	c.ServiceSample(true)
	c.ServiceSample(true)
	c.ServiceSample(false)
	s := c.Summarize(nil, 10)
	if s.Unavailability != 0.5 {
		t.Errorf("Unavailability = %v", s.Unavailability)
	}
}

func TestEnergyAggregation(t *testing.T) {
	c := NewCollector(512, 4)
	c.DataSent(1)
	c.DataDelivered(1, 0, 1, 0, 0.01)
	m1 := energy.NewMeter(0)
	m1.SpendTx(1)
	m1.SpendRx(2)
	m2 := energy.NewMeter(0)
	m2.SpendDiscard(3)
	s := c.Summarize([]*energy.Meter{m1, m2}, 10)
	if s.TxJ != 1 || s.RxJ != 2 || s.DiscardJ != 3 || s.TotalEnergyJ != 6 {
		t.Errorf("energy %+v", s)
	}
	if s.EnergyPerDeliveredJ != 6 {
		t.Errorf("EnergyPerDeliveredJ = %v", s.EnergyPerDeliveredJ)
	}
}

func TestLastDelivery(t *testing.T) {
	c := NewCollector(512, 4)
	if _, ever := c.LastDelivery(1); ever {
		t.Error("fresh collector reports a delivery")
	}
	c.DataDelivered(1, 0, 1, 0, 3.5)
	if tm, ever := c.LastDelivery(1); !ever || tm != 3.5 {
		t.Errorf("LastDelivery = %v,%v", tm, ever)
	}
	// Duplicates do not refresh.
	c.DataDelivered(1, 0, 1, 0, 9.9)
	if tm, _ := c.LastDelivery(1); tm != 3.5 {
		t.Errorf("duplicate refreshed LastDelivery to %v", tm)
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewCollector(512, 4).Summarize(nil, 10)
	if s.PDR != 0 || s.EnergyPerDeliveredJ != 0 || s.AvgDelayS != 0 ||
		s.CtrlPerDataByte != 0 || s.Unavailability != 0 {
		t.Errorf("zero-activity summary not zero: %+v", s)
	}
}

func TestMean(t *testing.T) {
	a := Summary{
		PDR: 0.8, EnergyPerDeliveredJ: 2, TotalEnergyJ: 16,
		AvgDelayS: 0.010, DelaySumS: 0.080,
		Sent: 10, Expected: 10, Delivered: 8,
	}
	b := Summary{
		PDR: 0.6, EnergyPerDeliveredJ: 4, TotalEnergyJ: 24,
		AvgDelayS: 0.020, DelaySumS: 0.120,
		Sent: 10, Expected: 10, Delivered: 6,
	}
	m := Mean([]Summary{a, b})
	// Pooled PDR: 14 delivered over 20 expected.
	if math.Abs(m.PDR-0.7) > 1e-12 {
		t.Errorf("mean PDR = %v", m.PDR)
	}
	// Pooled energy per delivery: (16+24) J over 14 deliveries, i.e. the
	// per-run ratios weighted by their delivery counts.
	if math.Abs(m.EnergyPerDeliveredJ-40.0/14) > 1e-12 {
		t.Errorf("mean energy = %v", m.EnergyPerDeliveredJ)
	}
	// Pooled delay: 0.200 s of delay over 14 deliveries.
	if math.Abs(m.AvgDelayS-0.200/14) > 1e-12 {
		t.Errorf("mean delay = %v", m.AvgDelayS)
	}
	// Energies stay per-run means.
	if math.Abs(m.TotalEnergyJ-20) > 1e-12 {
		t.Errorf("mean total energy = %v", m.TotalEnergyJ)
	}
	if m.Sent != 20 || m.Delivered != 14 {
		t.Errorf("counters should sum: %+v", m)
	}
	if empty := Mean(nil); empty != (Summary{}) {
		t.Errorf("Mean(nil) = %+v", empty)
	}
}

// TestMeanZeroDeliveryRun is the regression test for the dead-run bias: a
// run that delivered nothing (EnergyPerDeliveredJ = 0, AvgDelayS = 0 by
// construction) must not drag the aggregate ratios down. Its energy still
// counts — so it worsens the pooled energy per delivery — and its zero
// delay carries zero weight.
func TestMeanZeroDeliveryRun(t *testing.T) {
	alive := Summary{
		PDR: 0.8, EnergyPerDeliveredJ: 2, TotalEnergyJ: 16,
		AvgDelayS: 0.010, DelaySumS: 0.080,
		Sent: 10, Expected: 10, Delivered: 8,
		UnavailSamples: 100, UnavailBroken: 10, Unavailability: 0.1,
	}
	dead := Summary{
		// Delivered nothing: ratio fields are zero, but the run burned
		// energy and was broken at every availability probe.
		TotalEnergyJ: 16,
		Sent:         10, Expected: 10, Delivered: 0,
		UnavailSamples: 100, UnavailBroken: 100, Unavailability: 1,
	}
	m := Mean([]Summary{alive, dead})
	if math.Abs(m.PDR-0.4) > 1e-12 {
		t.Errorf("pooled PDR = %v, want 0.4", m.PDR)
	}
	// The unweighted mean would report (2+0)/2 = 1 J/pkt — the dead run
	// "improving" the metric. Pooled: 32 J for 8 deliveries = 4 J/pkt.
	if math.Abs(m.EnergyPerDeliveredJ-4) > 1e-12 {
		t.Errorf("pooled energy/pkt = %v, want 4", m.EnergyPerDeliveredJ)
	}
	// Unweighted delay would halve to 0.005; pooled keeps 0.010.
	if math.Abs(m.AvgDelayS-0.010) > 1e-12 {
		t.Errorf("pooled delay = %v, want 0.010", m.AvgDelayS)
	}
	if math.Abs(m.Unavailability-0.55) > 1e-12 {
		t.Errorf("pooled unavailability = %v, want 0.55", m.Unavailability)
	}
}

func TestDistinctSourcesDistinctPackets(t *testing.T) {
	c := NewCollector(100, 4)
	c.DataSent(1)
	c.DataSent(1)
	c.DataDelivered(5, 0, 1, 0, 0.1) // source 0, seq 1
	c.DataDelivered(5, 1, 1, 0, 0.1) // source 1, seq 1 — different packet
	s := c.Summarize(nil, 10)
	if s.Delivered != 2 {
		t.Errorf("Delivered = %d, want 2 (distinct sources)", s.Delivered)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{PDR: 0.5}
	if s.String() == "" {
		t.Error("String() empty")
	}
}

// TestDeathTracker exercises the landmark logic: first death, the
// half-dead crossing (ceil(n/2) deaths) with its delivered-payload
// snapshot, and the cumulative fixed-bucket timeline.
func TestDeathTracker(t *testing.T) {
	c := NewCollector(512, 4)
	c.DataSent(2)
	c.DataDelivered(1, 0, 1, 0, 0.5) // 512 payload bytes before any death

	c.NodeDied(10)
	if c.Deaths() != 1 {
		t.Fatalf("Deaths = %d", c.Deaths())
	}
	c.NodeDied(40)                  // 2 of 4 dead: half-dead crossing
	c.DataDelivered(2, 0, 2, 0, 45) // distinct packet, after the crossing
	c.NodeDied(90)

	s := c.Summarize(nil, 100)
	if s.FirstDeaths != 1 || s.FirstDeathS != 10 {
		t.Errorf("first death = (n=%d, t=%v), want (1, 10)", s.FirstDeaths, s.FirstDeathS)
	}
	if s.HalfDeaths != 1 || s.HalfDeathS != 40 {
		t.Errorf("half death = (n=%d, t=%v), want (1, 40)", s.HalfDeaths, s.HalfDeathS)
	}
	// Only the pre-crossing delivery counts toward the half-dead payload.
	if s.HalfDeadDeliveredBytes != 512 || s.HalfDeadDeliveredB != 512 {
		t.Errorf("half-dead payload = %d bytes", s.HalfDeadDeliveredBytes)
	}
	// Timeline: deaths at 10, 40, 90 over 100 s in 16 buckets of 6.25 s:
	// buckets 1, 6, 14. Cumulative counts 0,1,...,1,2,...,2,3,3 and the
	// final fraction is 3/4.
	if s.DeadTimeline[0] != 0 || s.DeadTimeline[1] != 1 || s.DeadTimeline[6] != 2 ||
		s.DeadTimeline[14] != 3 || s.DeadTimeline[LifetimeBuckets-1] != 3 {
		t.Errorf("timeline = %v", s.DeadTimeline)
	}
	if s.DeadFrac[LifetimeBuckets-1] != 0.75 {
		t.Errorf("final dead fraction = %v, want 0.75", s.DeadFrac[LifetimeBuckets-1])
	}
}

// TestDeathTrackerReset: a reused collector must forget the previous
// run's deaths entirely.
func TestDeathTrackerReset(t *testing.T) {
	c := NewCollector(512, 4)
	c.NodeDied(1)
	c.NodeDied(2)
	c.NodeDied(3)
	c.Reset(512, 6)
	s := c.Summarize(nil, 100)
	if s.FirstDeaths != 0 || s.HalfDeaths != 0 || s.DeadTimeline != [LifetimeBuckets]int{} {
		t.Errorf("death state survived Reset: %+v", s)
	}
	// The new node count governs the next half-dead crossing: 3 of 6.
	c.NodeDied(5)
	c.NodeDied(6)
	if s := c.Summarize(nil, 100); s.HalfDeaths != 0 {
		t.Error("half-dead crossed at 2/6 deaths")
	}
	c.NodeDied(7)
	if s := c.Summarize(nil, 100); s.HalfDeaths != 1 || s.HalfDeathS != 7 {
		t.Errorf("half-dead not crossed at 3/6 deaths: %+v", s)
	}
}

// TestDeathEdgeBuckets: a death exactly at the horizon lands in the last
// bucket; a zero-duration summary must not divide by zero.
func TestDeathEdgeBuckets(t *testing.T) {
	c := NewCollector(512, 10)
	c.NodeDied(100)
	s := c.Summarize(nil, 100)
	if s.DeadTimeline[LifetimeBuckets-1] != 1 {
		t.Errorf("horizon death missing from last bucket: %v", s.DeadTimeline)
	}
	c2 := NewCollector(512, 10)
	c2.NodeDied(0)
	if s := c2.Summarize(nil, 0); s.DeadTimeline[0] != 1 {
		t.Errorf("zero-duration timeline = %v", s.DeadTimeline)
	}
}

// TestMeanPoolsDeaths: landmark times average over the runs that observed
// them; node counts and timelines sum, so the pooled dead fraction is the
// fraction of all nodes across all runs.
func TestMeanPoolsDeaths(t *testing.T) {
	a := Summary{
		Nodes: 50, DeadNodes: 10,
		FirstDeaths: 1, FirstDeathSumS: 100, FirstDeathS: 100,
		HalfDeaths: 1, HalfDeathSumS: 300, HalfDeathS: 300,
		HalfDeadDeliveredBytes: 4000, HalfDeadDeliveredB: 4000,
	}
	a.DeadTimeline[LifetimeBuckets-1] = 10
	a.DeadFrac[LifetimeBuckets-1] = 0.2
	b := Summary{Nodes: 50} // outlived the horizon: no landmarks
	m := Mean([]Summary{a, b})
	if m.Nodes != 100 || m.DeadNodes != 10 {
		t.Errorf("pooled nodes/dead = %d/%d", m.Nodes, m.DeadNodes)
	}
	if m.FirstDeaths != 1 || m.FirstDeathS != 100 {
		t.Errorf("pooled first death = (n=%d, t=%v)", m.FirstDeaths, m.FirstDeathS)
	}
	if m.HalfDeathS != 300 || m.HalfDeadDeliveredB != 4000 {
		t.Errorf("pooled half death = (t=%v, B=%v)", m.HalfDeathS, m.HalfDeadDeliveredB)
	}
	if m.DeadFrac[LifetimeBuckets-1] != 0.1 {
		t.Errorf("pooled final dead fraction = %v, want 10/100", m.DeadFrac[LifetimeBuckets-1])
	}
	// Two observing runs: landmark times average.
	c := a
	c.FirstDeathSumS, c.FirstDeathS = 200, 200
	m2 := Mean([]Summary{a, c})
	if m2.FirstDeathS != 150 {
		t.Errorf("pooled first death over two runs = %v, want 150", m2.FirstDeathS)
	}
}
