package metrics

import (
	"math"
	"testing"

	"repro/internal/energy"
)

func TestPDR(t *testing.T) {
	c := NewCollector(512)
	c.DataSent(4) // 4 members expected
	c.DataSent(4)
	c.DataDelivered(1, 0, 1, 0, 0.01)
	c.DataDelivered(2, 0, 1, 0, 0.02)
	c.DataDelivered(1, 0, 2, 0.0625, 0.07)
	s := c.Summarize(nil)
	if s.Sent != 2 || s.Expected != 8 || s.Delivered != 3 {
		t.Fatalf("counters %+v", s)
	}
	if math.Abs(s.PDR-3.0/8) > 1e-12 {
		t.Errorf("PDR = %v", s.PDR)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	c := NewCollector(512)
	c.DataSent(2)
	c.DataDelivered(1, 0, 1, 0, 0.01)
	c.DataDelivered(1, 0, 1, 0, 0.02) // duplicate
	s := c.Summarize(nil)
	if s.Delivered != 1 || s.Duplicates != 1 {
		t.Errorf("delivered=%d dups=%d", s.Delivered, s.Duplicates)
	}
}

func TestDelay(t *testing.T) {
	c := NewCollector(512)
	c.DataSent(2)
	c.DataDelivered(1, 0, 1, 1.0, 1.010)
	c.DataDelivered(2, 0, 1, 1.0, 1.030)
	s := c.Summarize(nil)
	if math.Abs(s.AvgDelayS-0.020) > 1e-12 {
		t.Errorf("AvgDelayS = %v", s.AvgDelayS)
	}
}

func TestCtrlPerDataByte(t *testing.T) {
	c := NewCollector(512)
	c.DataSent(1)
	c.ControlTx(100)
	c.ControlTx(28)
	// Packet reaches two members but its payload counts once.
	c.DataDelivered(1, 0, 1, 0, 0.01)
	c.DataDelivered(2, 0, 1, 0, 0.01)
	s := c.Summarize(nil)
	if math.Abs(s.CtrlPerDataByte-128.0/512) > 1e-12 {
		t.Errorf("CtrlPerDataByte = %v", s.CtrlPerDataByte)
	}
}

func TestUnavailability(t *testing.T) {
	c := NewCollector(512)
	c.ServiceSample(false)
	c.ServiceSample(true)
	c.ServiceSample(true)
	c.ServiceSample(false)
	s := c.Summarize(nil)
	if s.Unavailability != 0.5 {
		t.Errorf("Unavailability = %v", s.Unavailability)
	}
}

func TestEnergyAggregation(t *testing.T) {
	c := NewCollector(512)
	c.DataSent(1)
	c.DataDelivered(1, 0, 1, 0, 0.01)
	m1 := energy.NewMeter(0)
	m1.SpendTx(1)
	m1.SpendRx(2)
	m2 := energy.NewMeter(0)
	m2.SpendDiscard(3)
	s := c.Summarize([]*energy.Meter{m1, m2})
	if s.TxJ != 1 || s.RxJ != 2 || s.DiscardJ != 3 || s.TotalEnergyJ != 6 {
		t.Errorf("energy %+v", s)
	}
	if s.EnergyPerDeliveredJ != 6 {
		t.Errorf("EnergyPerDeliveredJ = %v", s.EnergyPerDeliveredJ)
	}
}

func TestLastDelivery(t *testing.T) {
	c := NewCollector(512)
	if _, ever := c.LastDelivery(1); ever {
		t.Error("fresh collector reports a delivery")
	}
	c.DataDelivered(1, 0, 1, 0, 3.5)
	if tm, ever := c.LastDelivery(1); !ever || tm != 3.5 {
		t.Errorf("LastDelivery = %v,%v", tm, ever)
	}
	// Duplicates do not refresh.
	c.DataDelivered(1, 0, 1, 0, 9.9)
	if tm, _ := c.LastDelivery(1); tm != 3.5 {
		t.Errorf("duplicate refreshed LastDelivery to %v", tm)
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewCollector(512).Summarize(nil)
	if s.PDR != 0 || s.EnergyPerDeliveredJ != 0 || s.AvgDelayS != 0 ||
		s.CtrlPerDataByte != 0 || s.Unavailability != 0 {
		t.Errorf("zero-activity summary not zero: %+v", s)
	}
}

func TestMean(t *testing.T) {
	a := Summary{
		PDR: 0.8, EnergyPerDeliveredJ: 2, TotalEnergyJ: 16,
		AvgDelayS: 0.010, DelaySumS: 0.080,
		Sent: 10, Expected: 10, Delivered: 8,
	}
	b := Summary{
		PDR: 0.6, EnergyPerDeliveredJ: 4, TotalEnergyJ: 24,
		AvgDelayS: 0.020, DelaySumS: 0.120,
		Sent: 10, Expected: 10, Delivered: 6,
	}
	m := Mean([]Summary{a, b})
	// Pooled PDR: 14 delivered over 20 expected.
	if math.Abs(m.PDR-0.7) > 1e-12 {
		t.Errorf("mean PDR = %v", m.PDR)
	}
	// Pooled energy per delivery: (16+24) J over 14 deliveries, i.e. the
	// per-run ratios weighted by their delivery counts.
	if math.Abs(m.EnergyPerDeliveredJ-40.0/14) > 1e-12 {
		t.Errorf("mean energy = %v", m.EnergyPerDeliveredJ)
	}
	// Pooled delay: 0.200 s of delay over 14 deliveries.
	if math.Abs(m.AvgDelayS-0.200/14) > 1e-12 {
		t.Errorf("mean delay = %v", m.AvgDelayS)
	}
	// Energies stay per-run means.
	if math.Abs(m.TotalEnergyJ-20) > 1e-12 {
		t.Errorf("mean total energy = %v", m.TotalEnergyJ)
	}
	if m.Sent != 20 || m.Delivered != 14 {
		t.Errorf("counters should sum: %+v", m)
	}
	if empty := Mean(nil); empty != (Summary{}) {
		t.Errorf("Mean(nil) = %+v", empty)
	}
}

// TestMeanZeroDeliveryRun is the regression test for the dead-run bias: a
// run that delivered nothing (EnergyPerDeliveredJ = 0, AvgDelayS = 0 by
// construction) must not drag the aggregate ratios down. Its energy still
// counts — so it worsens the pooled energy per delivery — and its zero
// delay carries zero weight.
func TestMeanZeroDeliveryRun(t *testing.T) {
	alive := Summary{
		PDR: 0.8, EnergyPerDeliveredJ: 2, TotalEnergyJ: 16,
		AvgDelayS: 0.010, DelaySumS: 0.080,
		Sent: 10, Expected: 10, Delivered: 8,
		UnavailSamples: 100, UnavailBroken: 10, Unavailability: 0.1,
	}
	dead := Summary{
		// Delivered nothing: ratio fields are zero, but the run burned
		// energy and was broken at every availability probe.
		TotalEnergyJ: 16,
		Sent:         10, Expected: 10, Delivered: 0,
		UnavailSamples: 100, UnavailBroken: 100, Unavailability: 1,
	}
	m := Mean([]Summary{alive, dead})
	if math.Abs(m.PDR-0.4) > 1e-12 {
		t.Errorf("pooled PDR = %v, want 0.4", m.PDR)
	}
	// The unweighted mean would report (2+0)/2 = 1 J/pkt — the dead run
	// "improving" the metric. Pooled: 32 J for 8 deliveries = 4 J/pkt.
	if math.Abs(m.EnergyPerDeliveredJ-4) > 1e-12 {
		t.Errorf("pooled energy/pkt = %v, want 4", m.EnergyPerDeliveredJ)
	}
	// Unweighted delay would halve to 0.005; pooled keeps 0.010.
	if math.Abs(m.AvgDelayS-0.010) > 1e-12 {
		t.Errorf("pooled delay = %v, want 0.010", m.AvgDelayS)
	}
	if math.Abs(m.Unavailability-0.55) > 1e-12 {
		t.Errorf("pooled unavailability = %v, want 0.55", m.Unavailability)
	}
}

func TestDistinctSourcesDistinctPackets(t *testing.T) {
	c := NewCollector(100)
	c.DataSent(1)
	c.DataSent(1)
	c.DataDelivered(5, 0, 1, 0, 0.1) // source 0, seq 1
	c.DataDelivered(5, 1, 1, 0, 0.1) // source 1, seq 1 — different packet
	s := c.Summarize(nil)
	if s.Delivered != 2 {
		t.Errorf("Delivered = %d, want 2 (distinct sources)", s.Delivered)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{PDR: 0.5}
	if s.String() == "" {
		t.Error("String() empty")
	}
}
