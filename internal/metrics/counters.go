package metrics

import "math"

// Counters is the raw-counter wire form of a single run's Summary: only
// the pooled numerators, denominators and energy sums survive; every
// ratio metric (PDR, energy per delivery, delay, control overhead,
// unavailability, the lifetime landmarks and the dead-fraction timeline)
// is re-derived on import by exactly the divisions Summarize performs.
//
// This is what makes cross-process merging exact rather than approximate:
// a shard artifact or checkpoint journal stores Counters, and a Summary
// round-tripped through CountersOf → JSON → Summary is bit-identical to
// the original — the derived fields repeat the same float64 operations on
// the same operands, the raw fields are integers or finite float64 sums
// (Go's encoding/json emits the shortest representation that round-trips
// float64 exactly), and the non-finite values a Summary can carry
// (EnergyPerDeliveredJ = +Inf on all-dead runs), which JSON cannot
// represent, are never stored because they are derived.
//
// Counters represents PER-RUN summaries only. A pooled Mean summary is
// not representable: Mean reports per-run mean energies whose
// TotalEnergyJ is not bitwise TxJ+RxJ+DiscardJ, and its lifetime
// landmarks divide by the observing-run counts. Pool after importing,
// never before exporting.
type Counters struct {
	Sent       int `json:"sent"`
	Expected   int `json:"expected"`
	Delivered  int `json:"delivered"`
	Duplicates int `json:"duplicates"`

	ControlBytes       int64   `json:"control_bytes"`
	DataTxBytes        int64   `json:"data_tx_bytes"`
	DelaySumS          float64 `json:"delay_sum_s"`
	UniquePayloadBytes int64   `json:"unique_payload_bytes"`

	UnavailSamples int `json:"unavail_samples"`
	UnavailBroken  int `json:"unavail_broken"`

	TxJ      float64 `json:"tx_j"`
	RxJ      float64 `json:"rx_j"`
	DiscardJ float64 `json:"discard_j"`

	DeadNodes int `json:"dead_nodes,omitempty"`
	Nodes     int `json:"nodes,omitempty"`

	FirstDeaths            int     `json:"first_deaths,omitempty"`
	HalfDeaths             int     `json:"half_deaths,omitempty"`
	FirstDeathSumS         float64 `json:"first_death_sum_s,omitempty"`
	HalfDeathSumS          float64 `json:"half_death_sum_s,omitempty"`
	HalfDeadDeliveredBytes int64   `json:"half_dead_delivered_bytes,omitempty"`

	DeadTimeline [LifetimeBuckets]int `json:"dead_timeline,omitempty"`

	Faults FaultStats `json:"faults,omitempty"`
}

// CountersOf extracts the raw counters of one run's summary. s must be a
// per-run summary (Summarize or SummarizeGroups output), not a pooled
// Mean — see the type comment.
func CountersOf(s Summary) Counters {
	return Counters{
		Sent: s.Sent, Expected: s.Expected,
		Delivered: s.Delivered, Duplicates: s.Duplicates,
		ControlBytes: s.ControlBytes, DataTxBytes: s.DataTxBytes,
		DelaySumS:          s.DelaySumS,
		UniquePayloadBytes: s.UniquePayloadBytes,
		UnavailSamples:     s.UnavailSamples, UnavailBroken: s.UnavailBroken,
		TxJ: s.TxJ, RxJ: s.RxJ, DiscardJ: s.DiscardJ,
		DeadNodes: s.DeadNodes, Nodes: s.Nodes,
		FirstDeaths: s.FirstDeaths, HalfDeaths: s.HalfDeaths,
		FirstDeathSumS: s.FirstDeathSumS, HalfDeathSumS: s.HalfDeathSumS,
		HalfDeadDeliveredBytes: s.HalfDeadDeliveredBytes,
		DeadTimeline:           s.DeadTimeline,
		Faults:                 s.Faults,
	}
}

// Summary rehydrates the full per-run summary, repeating Summarize's
// derivations on the imported counters so every field — including the
// float64 ratio metrics — matches the original bit for bit
// (TestCountersRoundTrip pins this over real runs).
func (c Counters) Summary() Summary {
	s := Summary{
		Sent: c.Sent, Expected: c.Expected,
		Delivered: c.Delivered, Duplicates: c.Duplicates,
		ControlBytes: c.ControlBytes, DataTxBytes: c.DataTxBytes,
		DelaySumS:          c.DelaySumS,
		UniquePayloadBytes: c.UniquePayloadBytes,
		UnavailSamples:     c.UnavailSamples, UnavailBroken: c.UnavailBroken,
		TxJ: c.TxJ, RxJ: c.RxJ, DiscardJ: c.DiscardJ,
		DeadNodes: c.DeadNodes, Nodes: c.Nodes,
		FirstDeaths: c.FirstDeaths, HalfDeaths: c.HalfDeaths,
		FirstDeathSumS: c.FirstDeathSumS, HalfDeathSumS: c.HalfDeathSumS,
		HalfDeadDeliveredBytes: c.HalfDeadDeliveredBytes,
		DeadTimeline:           c.DeadTimeline,
		Faults:                 c.Faults,
	}
	s.TotalEnergyJ = s.TxJ + s.RxJ + s.DiscardJ
	// Per-run landmark values: FirstDeaths/HalfDeaths are 0 or 1 on a
	// single run, so the landmark equals its sum (same assignment
	// Summarize performs, no division).
	if c.FirstDeaths > 0 {
		s.FirstDeathS = c.FirstDeathSumS
	}
	if c.HalfDeaths > 0 {
		s.HalfDeathS = c.HalfDeathSumS
		s.HalfDeadDeliveredB = float64(c.HalfDeadDeliveredBytes)
	}
	if c.Nodes > 0 {
		for k := range s.DeadFrac {
			s.DeadFrac[k] = float64(c.DeadTimeline[k]) / float64(c.Nodes)
		}
	}
	if c.Expected > 0 {
		s.PDR = float64(c.Delivered) / float64(c.Expected)
	}
	if c.Delivered > 0 {
		s.EnergyPerDeliveredJ = s.TotalEnergyJ / float64(c.Delivered)
		s.AvgDelayS = c.DelaySumS / float64(c.Delivered)
	} else if s.TotalEnergyJ > 0 {
		s.EnergyPerDeliveredJ = math.Inf(1) // see Summarize
	}
	if c.UniquePayloadBytes > 0 {
		s.CtrlPerDataByte = float64(c.ControlBytes) / float64(c.UniquePayloadBytes)
	}
	if c.UnavailSamples > 0 {
		s.Unavailability = float64(c.UnavailBroken) / float64(c.UnavailSamples)
	}
	return s
}
