package netsim

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/medium"
	"repro/internal/mobility"
	"repro/internal/packet"
	"repro/internal/sim"
)

// echoProto consumes data and discards everything else.
type echoProto struct {
	node     *Slot
	received int
}

func (e *echoProto) Start(n *Slot) { e.node = n }
func (e *echoProto) Receive(p *packet.Packet, info medium.RxInfo) {
	if p.Kind == packet.KindData {
		e.received++
		if e.node.Member {
			e.node.ConsumeData(p, info.At)
		}
		return
	}
	e.node.DiscardRx(info)
}
func (e *echoProto) Originate() {
	pkt := packet.NewData(e.node.ID, 1, e.node.Now())
	e.node.Broadcast(pkt, 200)
}

func rig(t *testing.T) (*sim.Simulator, *Network, []*echoProto) {
	t.Helper()
	s := sim.New(1)
	pts := []geom.Point{{X: 0}, {X: 100}, {X: 150}}
	tracker := mobility.NewTracker(3, mobility.Static{Points: pts})
	mcfg := medium.DefaultConfig()
	mcfg.LossProb = 0
	net := New(s, tracker, Config{
		N: 3, Source: 0, Members: []packet.NodeID{1},
		Medium: mcfg, PayloadBytes: 512,
	})
	protos := make([]*echoProto, 3)
	for i := range protos {
		protos[i] = &echoProto{}
		net.SetProtocol(packet.NodeID(i), protos[i])
	}
	net.Start()
	return s, net, protos
}

func TestMembership(t *testing.T) {
	_, net, _ := rig(t)
	if !net.IsMember(1) || net.IsMember(2) || net.IsMember(0) {
		t.Error("membership flags wrong")
	}
	if !net.Nodes[1].Slots[0].Member || net.Nodes[2].Slots[0].Member {
		t.Error("node Member fields wrong")
	}
	if !net.Nodes[0].Slots[0].Source {
		t.Error("source flag missing")
	}
}

func TestBroadcastReachesProtocols(t *testing.T) {
	s, net, protos := rig(t)
	net.Collector.DataSent(1)
	net.Nodes[0].Slots[0].Proto.Originate()
	s.Run(1)
	if protos[1].received != 1 || protos[2].received != 1 {
		t.Errorf("receptions: %d, %d", protos[1].received, protos[2].received)
	}
	sum := net.Summarize()
	if sum.Delivered != 1 {
		t.Errorf("member deliveries = %d", sum.Delivered)
	}
}

func TestDiscardReclassification(t *testing.T) {
	s, net, _ := rig(t)
	// Send a beacon-kind frame: echoProto discards it.
	pkt := &packet.Packet{Kind: packet.KindBeacon, From: 0, Bytes: 80}
	net.Nodes[0].Slots[0].Broadcast(pkt, 200)
	s.Run(1)
	for _, i := range []int{1, 2} {
		m := net.Meters[i]
		if m.DiscardJ == 0 || m.RxJ != 0 {
			t.Errorf("node %d energy not reclassified: rx=%v discard=%v", i, m.RxJ, m.DiscardJ)
		}
	}
}

func TestUnsetProtocolPanics(t *testing.T) {
	s := sim.New(1)
	tracker := mobility.NewTracker(1, mobility.Static{Points: []geom.Point{{}}})
	net := New(s, tracker, Config{N: 1, Source: 0, Medium: medium.DefaultConfig(), PayloadBytes: 1})
	defer func() {
		if recover() == nil {
			t.Error("Start without protocols should panic")
		}
	}()
	net.Start()
}

// TestRejoinRebaselinesJoinClock is the leave→rejoin regression test: a
// member that is churned out and later rejoins must have its join clock
// re-baselined to the rejoin instant. The availability sampler computes
// its outage base as max(JoinedAt, LastDelivery); with a stale join clock
// (and a LastDelivery frozen at the first membership stint) the first
// post-rejoin window would be misclassified as an outage that accrued
// while the node was not even in the group.
func TestRejoinRebaselinesJoinClock(t *testing.T) {
	s, net, _ := rig(t)

	// Initial member: joined at 0.
	if got := net.JoinedAt(1); got != 0 {
		t.Fatalf("initial member JoinedAt = %v", got)
	}

	// Deliver data during the first stint, then leave at t=2.
	net.Collector.DataSent(1)
	net.Nodes[0].Slots[0].Proto.Originate()
	s.Run(2)
	last, ever := net.Collector.LastDelivery(1)
	if !ever {
		t.Fatal("no delivery during first membership stint")
	}
	net.SetMember(1, false)
	if net.IsMember(1) {
		t.Fatal("leave did not take")
	}

	// Rejoin at t=5: the join clock must move to the rejoin instant and
	// past the stale LastDelivery, so the sampler's outage base is the
	// rejoin time, not the first stint's last packet.
	s.Run(5)
	net.SetMember(1, true)
	if got := net.JoinedAt(1); got != 5 {
		t.Errorf("JoinedAt after rejoin = %v, want 5", got)
	}
	if net.JoinedAt(1) <= last {
		t.Errorf("rejoin clock %v not past stale LastDelivery %v", net.JoinedAt(1), last)
	}

	// A second leave/rejoin keeps re-baselining.
	net.SetMember(1, false)
	s.Run(9)
	net.SetMember(1, true)
	if got := net.JoinedAt(1); got != 9 {
		t.Errorf("JoinedAt after second rejoin = %v, want 9", got)
	}
}

// TestCrashRecoverRestoresDelivery is the crash/reboot analogue of the
// rejoin test: a member crashed mid-run receives nothing while down, and
// after Recover + a fresh protocol instance (the crash dropped all state)
// deliveries resume. Unlike Kill, the node never counts as dead, and the
// join clock is untouched — the outage accrued while down is exactly what
// the unavailability metric should see.
func TestCrashRecoverRestoresDelivery(t *testing.T) {
	s, net, protos := rig(t)

	// Crash the member at t=2; re-crashing is a no-op (counted once).
	s.Run(2)
	net.Crash(1)
	net.Crash(1)
	if !net.IsDown(1) || net.IsDown(2) {
		t.Fatal("down flags wrong after crash")
	}

	// Data sent while the node is down never reaches it.
	net.Collector.DataSent(1)
	net.Nodes[0].Slots[0].Proto.Originate()
	s.Run(3)
	if protos[1].received != 0 {
		t.Fatalf("crashed node received %d packets", protos[1].received)
	}
	if protos[2].received != 1 {
		t.Fatalf("bystander received %d packets, want 1", protos[2].received)
	}

	// Recover at t=5: the caller installs a fresh instance and restarts it.
	s.Run(5)
	if !net.Recover(1) {
		t.Fatal("Recover returned false for a crashed node")
	}
	fresh := &echoProto{}
	net.SetProtocol(1, fresh)
	net.StartNode(1)
	if net.IsDown(1) {
		t.Fatal("node still down after recovery")
	}
	// The join clock is deliberately NOT re-baselined by recovery: the
	// crash outage is the unavailability signal.
	if got := net.JoinedAt(1); got != 0 {
		t.Errorf("JoinedAt after recovery = %v, want 0", got)
	}

	// Deliveries resume through the fresh instance.
	net.Collector.DataSent(1)
	net.Nodes[0].Slots[0].Proto.Originate()
	s.Run(6)
	if fresh.received != 1 {
		t.Errorf("recovered node received %d packets, want 1", fresh.received)
	}

	sum := net.Summarize()
	if sum.Faults.Crashes != 1 || sum.Faults.Recoveries != 1 {
		t.Errorf("fault stats = %+v, want 1 crash / 1 recovery", sum.Faults)
	}
	if sum.DeadNodes != 0 {
		t.Errorf("crash counted as death: DeadNodes = %d", sum.DeadNodes)
	}
	// Recovering an up node is a no-op.
	if net.Recover(1) {
		t.Error("Recover on an up node returned true")
	}
}

// TestCrashDeadInteraction: battery-dead nodes can neither crash nor
// recover — death is permanent, crash is not.
func TestCrashDeadInteraction(t *testing.T) {
	s, net, _ := rig(t)
	s.Run(1)
	net.Kill(2)
	net.Crash(2) // no-op on a dead node
	if net.IsDown(2) {
		t.Error("dead node marked down by Crash")
	}
	net.Crash(1)
	net.Kill(1) // battery dies while down: recovery must refuse
	if net.Recover(1) {
		t.Error("Recover revived a battery-dead node")
	}
	sum := net.Summarize()
	if sum.Faults.Crashes != 1 || sum.Faults.Recoveries != 0 {
		t.Errorf("fault stats = %+v, want 1 crash / 0 recoveries", sum.Faults)
	}
}

// TestKillRecordsDeath: fault injection must feed the death tracker like
// a natural depletion — timestamped once, idempotent on re-kill.
func TestKillRecordsDeath(t *testing.T) {
	s, net, _ := rig(t)
	s.Run(3)
	net.Kill(2)
	net.Kill(2) // no-op: already dead
	s.Run(7)
	sum := net.Summarize()
	if sum.DeadNodes != 1 {
		t.Fatalf("DeadNodes = %d, want 1", sum.DeadNodes)
	}
	if sum.FirstDeaths != 1 || sum.FirstDeathS != 3 {
		t.Errorf("first death = (n=%d, t=%v), want (1, 3)", sum.FirstDeaths, sum.FirstDeathS)
	}
	if net.Collector.Deaths() != 1 {
		t.Errorf("collector recorded %d deaths, want 1", net.Collector.Deaths())
	}
	// 3 nodes, 1 dead: half-dead (ceil 3/2 = 2 deaths) not reached.
	if sum.HalfDeaths != 0 {
		t.Errorf("half-dead landmark set with 1/3 dead: %+v", sum)
	}
}

func TestControlAccounting(t *testing.T) {
	s, net, _ := rig(t)
	pkt := &packet.Packet{Kind: packet.KindBeacon, From: 0, Bytes: 80}
	net.Nodes[0].Slots[0].Broadcast(pkt, 200)
	s.Run(1)
	if net.Collector.ControlBytes != 80 {
		t.Errorf("ControlBytes = %d", net.Collector.ControlBytes)
	}
}
