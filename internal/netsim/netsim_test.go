package netsim

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/medium"
	"repro/internal/mobility"
	"repro/internal/packet"
	"repro/internal/sim"
)

// echoProto consumes data and discards everything else.
type echoProto struct {
	node     *Node
	received int
}

func (e *echoProto) Start(n *Node) { e.node = n }
func (e *echoProto) Receive(p *packet.Packet, info medium.RxInfo) {
	if p.Kind == packet.KindData {
		e.received++
		if e.node.Member {
			e.node.ConsumeData(p, info.At)
		}
		return
	}
	e.node.DiscardRx(info)
}
func (e *echoProto) Originate() {
	pkt := packet.NewData(e.node.ID, 1, e.node.Now())
	e.node.Broadcast(pkt, 200)
}

func rig(t *testing.T) (*sim.Simulator, *Network, []*echoProto) {
	t.Helper()
	s := sim.New(1)
	pts := []geom.Point{{X: 0}, {X: 100}, {X: 150}}
	tracker := mobility.NewTracker(3, mobility.Static{Points: pts})
	mcfg := medium.DefaultConfig()
	mcfg.LossProb = 0
	net := New(s, tracker, Config{
		N: 3, Source: 0, Members: []packet.NodeID{1},
		Medium: mcfg, PayloadBytes: 512,
	})
	protos := make([]*echoProto, 3)
	for i := range protos {
		protos[i] = &echoProto{}
		net.SetProtocol(packet.NodeID(i), protos[i])
	}
	net.Start()
	return s, net, protos
}

func TestMembership(t *testing.T) {
	_, net, _ := rig(t)
	if !net.IsMember(1) || net.IsMember(2) || net.IsMember(0) {
		t.Error("membership flags wrong")
	}
	if !net.Nodes[1].Member || net.Nodes[2].Member {
		t.Error("node Member fields wrong")
	}
	if !net.Nodes[0].Source {
		t.Error("source flag missing")
	}
}

func TestBroadcastReachesProtocols(t *testing.T) {
	s, net, protos := rig(t)
	net.Collector.DataSent(1)
	net.Nodes[0].Proto.Originate()
	s.Run(1)
	if protos[1].received != 1 || protos[2].received != 1 {
		t.Errorf("receptions: %d, %d", protos[1].received, protos[2].received)
	}
	sum := net.Summarize()
	if sum.Delivered != 1 {
		t.Errorf("member deliveries = %d", sum.Delivered)
	}
}

func TestDiscardReclassification(t *testing.T) {
	s, net, _ := rig(t)
	// Send a beacon-kind frame: echoProto discards it.
	pkt := &packet.Packet{Kind: packet.KindBeacon, From: 0, Bytes: 80}
	net.Nodes[0].Broadcast(pkt, 200)
	s.Run(1)
	for _, i := range []int{1, 2} {
		m := net.Meters[i]
		if m.DiscardJ == 0 || m.RxJ != 0 {
			t.Errorf("node %d energy not reclassified: rx=%v discard=%v", i, m.RxJ, m.DiscardJ)
		}
	}
}

func TestUnsetProtocolPanics(t *testing.T) {
	s := sim.New(1)
	tracker := mobility.NewTracker(1, mobility.Static{Points: []geom.Point{{}}})
	net := New(s, tracker, Config{N: 1, Source: 0, Medium: medium.DefaultConfig(), PayloadBytes: 1})
	defer func() {
		if recover() == nil {
			t.Error("Start without protocols should panic")
		}
	}()
	net.Start()
}

func TestControlAccounting(t *testing.T) {
	s, net, _ := rig(t)
	pkt := &packet.Packet{Kind: packet.KindBeacon, From: 0, Bytes: 80}
	net.Nodes[0].Broadcast(pkt, 200)
	s.Run(1)
	if net.Collector.ControlBytes != 80 {
		t.Errorf("ControlBytes = %d", net.Collector.ControlBytes)
	}
}
