// Package netsim wires the simulation substrate together: it owns the
// nodes, their protocol instances and energy meters, the shared medium,
// the mobility tracker and the metrics collector, and it defines the
// Protocol interface every multicast routing protocol implements.
//
// A node hosts one protocol instance per multicast group (topic): the
// instances are independent — each has its own membership flag, trees,
// seen-sets and timers — but they share the node's single radio, battery
// and mobility trace, so per-group traffic genuinely competes for the
// channel. Frames carry a packet.GroupID and the node dispatches each
// reception to the matching slot. Single-group runs use slot 0
// throughout and behave exactly as the pre-multiplexing build.
package netsim

import (
	"fmt"
	"math"

	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/medium"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/packet"
	"repro/internal/runerr"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Protocol is one group's protocol instance on one node. Implementations
// receive every frame the medium delivers to their node for their group
// and drive their own timers via the node's simulator.
type Protocol interface {
	// Start binds the protocol to its slot and arms initial timers.
	Start(s *Slot)
	// Receive handles a successfully received frame. The reception energy
	// has already been charged as consumed; protocols that drop the frame
	// must call s.DiscardRx(info) so the energy is re-bucketed as
	// overhearing cost.
	Receive(pkt *packet.Packet, info medium.RxInfo)
	// Originate injects one application data packet at this node (called
	// by the traffic generator on the group's source only).
	Originate()
}

// TreeStater is implemented by tree-based protocols that can report their
// current parent pointer; the availability sampler uses it.
type TreeStater interface {
	// TreeParent returns the node's current parent and whether it has one.
	// The root returns (own id, true).
	TreeParent() (packet.NodeID, bool)
}

// Node is one mobile host. It owns the radio, battery and position; the
// per-group protocol state lives in its Slots.
type Node struct {
	ID    packet.NodeID
	Net   *Network
	Meter *energy.Meter
	// Slots holds one protocol slot per multicast group; Slots[g] serves
	// group g. Single-group runs have exactly Slots[0].
	Slots []*Slot
}

// Slot is one node's seat in one multicast group: the protocol instance
// serving that group plus the node's role in it. It embeds the node, so
// protocols reach the shared radio, battery, clock and simulator through
// their slot; the slot-level methods (Broadcast, DiscardRx, ConsumeData)
// additionally tag the traffic and energy they account with the group.
type Slot struct {
	*Node
	Group  packet.GroupID
	Proto  Protocol
	Member bool // receiver of this group
	Source bool // source of this group
}

// Deliver implements medium.Receiver: receptions route to the slot
// serving the frame's group.
func (n *Node) Deliver(pkt *packet.Packet, info medium.RxInfo) {
	g := int(pkt.Group)
	n.Net.Collector.GroupSpendRx(g, info.RxJ)
	n.Slots[g].Proto.Receive(pkt, info)
}

// Broadcast transmits pkt from this slot's node with the given
// power-controlled range, tagging the frame with the slot's group.
func (s *Slot) Broadcast(pkt *packet.Packet, txRange float64) {
	pkt.Group = s.Group
	s.Net.Medium.Broadcast(s.Node.ID, pkt, txRange)
}

// DiscardRx reclassifies a reception's energy as overhearing waste, both
// on the node's meter and in the group's attributed-energy tally. Call
// exactly once for frames the protocol drops.
func (s *Slot) DiscardRx(info medium.RxInfo) {
	s.Meter.Reclassify(info.RxJ)
	s.Net.Collector.GroupReclassifyRx(int(s.Group), info.RxJ)
}

// ConsumeData records the application-level delivery of a data packet at
// this (member) slot.
func (s *Slot) ConsumeData(pkt *packet.Packet, now float64) {
	s.Net.Collector.GroupDataDelivered(int(s.Group), s.Node.ID, pkt.Src, pkt.Seq, pkt.Born, now)
}

// ProtoRNG derives the slot's protocol jitter stream. Slot 0 uses the
// exact stream the single-protocol build used (label × node id), so
// single-group runs stay bit-identical; higher slots fork once more by
// group so K instances on one node never share a stream.
func (s *Slot) ProtoRNG(label string) *xrand.RNG {
	r := s.Sim().RNG().Split(label).SplitIndex(int(s.Node.ID))
	if s.Group > 0 {
		r = r.Split("group").SplitIndex(int(s.Group))
	}
	return r
}

// Dead reports whether the node's (finite) battery is exhausted: its
// radio is permanently silent for the rest of the run.
func (n *Node) Dead() bool { return n.Meter.Dead() }

// Sim returns the simulation kernel.
func (n *Node) Sim() *sim.Simulator { return n.Net.Sim }

// Now returns the current simulated time.
func (n *Node) Now() float64 { return n.Net.Sim.Now() }

// GroupState is one multicast group's membership within a run.
type GroupState struct {
	Source  packet.NodeID
	Members []packet.NodeID // receivers; excludes the source
	// memberSet mirrors Members for O(1) lookup.
	memberSet []bool
	// joinTime[i] is the instant node i last became a member (0 for the
	// initial membership). The availability sampler baselines a member's
	// outage clock here: a node that joined mid-run has had no chance to
	// receive anything before its join, so silence predating it is not an
	// outage.
	joinTime []float64
}

// Network aggregates one simulation run's components.
type Network struct {
	Sim       *sim.Simulator
	Medium    *medium.Medium
	Tracker   *mobility.Tracker
	Collector *metrics.Collector
	Nodes     []*Node
	Meters    []*energy.Meter
	// Groups holds the per-group membership state; Groups[g] belongs to
	// multicast group g. Always at least one group.
	Groups []GroupState

	groupCfgBuf []GroupConfig // scratch for the single-group shorthand
}

// GroupConfig describes one multicast group at construction.
type GroupConfig struct {
	Source  packet.NodeID
	Members []packet.NodeID
}

// Config parameterizes network construction.
type Config struct {
	N int
	// Source and Members describe the single group of a one-group run;
	// ignored when Groups is non-empty.
	Source  packet.NodeID
	Members []packet.NodeID
	// Groups, when non-empty, declares one multicast group per entry and
	// every node gets one protocol slot per group.
	Groups []GroupConfig
	Medium medium.Config
	// Battery, in joules per node; <= 0 means unlimited.
	Battery float64
	// PayloadBytes is the application payload per data packet.
	PayloadBytes int
	// Area is the deployment region; plumbed into the medium's spatial
	// index when the caller has not configured it explicitly.
	Area geom.Rect
	// VMax bounds node speed for the index's epoch/slack sizing; see
	// medium.GridConfig.VMax. Ignored when StaticNodes is set.
	VMax float64
	// StaticNodes declares that no node ever moves, letting the index
	// snapshot positions exactly once.
	StaticNodes bool
}

// New builds a network of cfg.N nodes over the given tracker. Protocol
// instances are attached afterwards with SetProtocol (or
// SetGroupProtocol), then Start launches them.
func New(s *sim.Simulator, tracker *mobility.Tracker, cfg Config) *Network {
	net := &Network{}
	net.Reset(s, tracker, cfg)
	return net
}

// Reset re-initializes the network in place for a new run, exactly as New
// would, while reusing its components: node, slot and meter structs, the
// metrics collector (and its map buckets) and the medium (with its
// queues, registries and freelists) all survive, so a run arena pays a
// small fixed setup cost per replication instead of rebuilding the world.
func (net *Network) Reset(s *sim.Simulator, tracker *mobility.Tracker, cfg Config) {
	n := cfg.N
	net.Sim, net.Tracker = s, tracker
	gcs := cfg.Groups
	if len(gcs) == 0 {
		net.groupCfgBuf = append(net.groupCfgBuf[:0], GroupConfig{Source: cfg.Source, Members: cfg.Members})
		gcs = net.groupCfgBuf
	}
	k := len(gcs)
	if net.Collector == nil {
		net.Collector = metrics.NewCollector(cfg.PayloadBytes, n)
	}
	net.Collector.ResetGroups(cfg.PayloadBytes, n, k)
	mcfg := cfg.Medium
	if !mcfg.Grid.Disable {
		if mcfg.Grid.Area == (geom.Rect{}) {
			mcfg.Grid.Area = cfg.Area
		}
		if mcfg.Grid.VMax == 0 {
			mcfg.Grid.VMax = cfg.VMax
		}
		if cfg.StaticNodes {
			mcfg.Grid.Static = true
		}
	}
	if net.Medium == nil {
		net.Medium = medium.New(s, mcfg, tracker, n)
	} else {
		net.Medium.Reset(s, mcfg, tracker, n)
	}
	net.Medium.OnTransmit = func(pkt *packet.Packet, txJ float64) {
		g := int(pkt.Group)
		if pkt.Kind.Control() {
			net.Collector.GroupControlTx(g, pkt.Bytes)
		} else {
			net.Collector.GroupDataTx(g, pkt.Bytes)
		}
		net.Collector.GroupSpendTx(g, txJ)
	}
	// Receptions the radio paid for but never decoded, attributed to the
	// frame's group.
	net.Medium.OnRxWaste = func(pkt *packet.Packet, rxJ float64) {
		net.Collector.GroupDiscard(int(pkt.Group), rxJ)
	}
	// Time-resolved death tracking: the medium reports the charge that
	// exhausts each battery, the collector timestamps it.
	net.Medium.OnDeath = func(packet.NodeID) {
		net.Collector.NodeDied(net.Sim.Now())
	}
	// Injected channel losses (Gilbert-Elliott, partition cuts) feed the
	// per-run fault statistics.
	net.Medium.OnFaultDrop = func(partition bool) {
		net.Collector.FaultLoss(partition)
	}
	// Per-group membership and join-time state.
	if cap(net.Groups) >= k {
		net.Groups = net.Groups[:k]
	} else {
		net.Groups = append(net.Groups[:cap(net.Groups)], make([]GroupState, k-cap(net.Groups))...)
	}
	for g := range net.Groups {
		gs := &net.Groups[g]
		gs.Source = gcs[g].Source
		gs.Members = gcs[g].Members
		if cap(gs.memberSet) < n {
			gs.memberSet = make([]bool, n)
			gs.joinTime = make([]float64, n)
		} else {
			gs.memberSet = gs.memberSet[:n]
			gs.joinTime = gs.joinTime[:n]
			for i := range gs.memberSet {
				gs.memberSet[i] = false
				gs.joinTime[i] = 0
			}
		}
		for _, m := range gs.Members {
			gs.memberSet[m] = true
		}
	}
	// Nodes and meters: reuse the structs, reassign every field.
	for len(net.Nodes) < n {
		net.Nodes = append(net.Nodes, nil)
		net.Meters = append(net.Meters, nil)
	}
	net.Nodes = net.Nodes[:n]
	net.Meters = net.Meters[:n]
	for i := 0; i < n; i++ {
		id := packet.NodeID(i)
		if net.Meters[i] == nil {
			net.Meters[i] = energy.NewMeter(cfg.Battery)
		} else {
			net.Meters[i].Reset(cfg.Battery)
		}
		if net.Nodes[i] == nil {
			net.Nodes[i] = &Node{}
		}
		nd := net.Nodes[i]
		*nd = Node{ID: id, Net: net, Meter: net.Meters[i], Slots: nd.Slots}
		for len(nd.Slots) < k {
			nd.Slots = append(nd.Slots, &Slot{})
		}
		nd.Slots = nd.Slots[:k]
		for g := range nd.Slots {
			*nd.Slots[g] = Slot{
				Node:   nd,
				Group:  packet.GroupID(g),
				Member: net.Groups[g].memberSet[i],
				Source: id == net.Groups[g].Source,
			}
		}
		net.Medium.Attach(id, nd, net.Meters[i])
	}
}

// GroupCount returns the number of multicast groups in the run (≥ 1).
func (net *Network) GroupCount() int { return len(net.Groups) }

// IsMember reports whether id is a receiver of group 0.
func (net *Network) IsMember(id packet.NodeID) bool { return net.IsGroupMember(0, id) }

// IsGroupMember reports whether id is a receiver of group g.
func (net *Network) IsGroupMember(g int, id packet.NodeID) bool {
	return net.Groups[g].memberSet[id]
}

// JoinedAt returns the time node id last joined group 0 (0 for initial
// members and for nodes that never joined).
func (net *Network) JoinedAt(id packet.NodeID) float64 { return net.GroupJoinedAt(0, id) }

// GroupJoinedAt is JoinedAt for group g.
func (net *Network) GroupJoinedAt(g int, id packet.NodeID) float64 {
	return net.Groups[g].joinTime[id]
}

// SetMember changes id's membership of group 0 at runtime.
func (net *Network) SetMember(id packet.NodeID, member bool) {
	net.SetGroupMember(0, id, member)
}

// SetGroupMember changes id's membership of group g at runtime (dynamic
// join/leave). The group's protocol instances observe the flag on their
// next beacon round — the pruning machinery then grows or sheds the
// branch. The group's source cannot be a member.
func (net *Network) SetGroupMember(g int, id packet.NodeID, member bool) {
	gs := &net.Groups[g]
	if id == gs.Source || gs.memberSet[id] == member {
		return
	}
	gs.memberSet[id] = member
	net.Nodes[id].Slots[g].Member = member
	if member {
		gs.joinTime[id] = net.Sim.Now()
		gs.Members = append(gs.Members, id)
		return
	}
	for i, m := range gs.Members {
		if m == id {
			gs.Members = append(gs.Members[:i], gs.Members[i+1:]...)
			return
		}
	}
}

// Kill exhausts node id's battery immediately: fault injection for
// self-stabilization tests. The node's radio goes permanently silent and
// its neighbours detect the disappearance through beacon timeouts. The
// death is timestamped like a natural depletion; re-killing a dead node
// is a no-op.
func (net *Network) Kill(id packet.NodeID) {
	if net.Meters[id].Dead() {
		return
	}
	net.Meters[id].Kill()
	net.Collector.NodeDied(net.Sim.Now())
}

// Stopper is implemented by protocols that can cancel their pending
// timers; Crash uses it so a downed node's protocols go quiet instead of
// ticking against a dead radio.
type Stopper interface{ Stop() }

// Crash takes node id down reversibly: the radio switches off (queued
// frames drain silently, pending receptions lapse) and every slot's
// protocol timers stop when the instance implements Stopper. Unlike Kill,
// the battery is untouched and the node does not count as dead — Recover
// brings it back. Crashing a dead or already-down node is a no-op.
func (net *Network) Crash(id packet.NodeID) {
	if net.Meters[id].Dead() || net.Medium.IsDown(id) {
		return
	}
	net.Medium.SetDown(id, true)
	for _, sl := range net.Nodes[id].Slots {
		if s, ok := sl.Proto.(Stopper); ok {
			s.Stop()
		}
	}
	net.Collector.NodeCrashed()
}

// Recover switches a crashed node's radio back on. A crashed node lost
// all protocol state, so the caller must install freshly initialized
// protocols (SetGroupProtocol for every group + StartNode) after Recover
// returns; the join clocks are deliberately left alone — the outage a
// member accumulated while down, and until it re-attaches, is exactly the
// unavailability the crash figures measure. Recovering an up or
// battery-dead node is a no-op (a battery that depleted while the node
// was down stays dead).
func (net *Network) Recover(id packet.NodeID) bool {
	if !net.Medium.IsDown(id) || net.Meters[id].Dead() {
		return false
	}
	net.Medium.SetDown(id, false)
	net.Collector.NodeRecovered()
	return true
}

// IsDown reports whether node id is currently crashed.
func (net *Network) IsDown(id packet.NodeID) bool { return net.Medium.IsDown(id) }

// SetProtocol attaches a protocol instance to node id's group-0 slot.
func (net *Network) SetProtocol(id packet.NodeID, p Protocol) {
	net.SetGroupProtocol(0, id, p)
}

// SetGroupProtocol attaches a protocol instance to node id's slot for
// group g.
func (net *Network) SetGroupProtocol(g int, id packet.NodeID, p Protocol) {
	net.Nodes[id].Slots[g].Proto = p
}

// Start launches every slot's protocol on every node.
func (net *Network) Start() {
	for _, n := range net.Nodes {
		for _, sl := range n.Slots {
			if sl.Proto == nil {
				panic("netsim: node without protocol")
			}
			sl.Proto.Start(sl)
		}
	}
}

// StartNode launches every slot's protocol on one node mid-run: the
// recovery half of the crash/reboot fault path, after the caller
// installed fresh instances with SetGroupProtocol.
func (net *Network) StartNode(id packet.NodeID) {
	for _, sl := range net.Nodes[id].Slots {
		sl.Proto.Start(sl)
	}
}

// Summarize reduces the run to its metrics summary. The current simulated
// time is the run horizon (sim.Run advances the clock to its `until` even
// when the queue drains early), scaling the dead-fraction timeline.
func (net *Network) Summarize() metrics.Summary {
	return net.Collector.Summarize(net.Meters, net.Sim.Now())
}

// Float accumulations are compared under a relative tolerance: the two
// sides of each law sum the same charges in different orders (a battery
// drains sequentially from a large reserve while buckets sum small
// values; per-group tallies accumulate in delivery order while meters
// accumulate per node), so they agree to float precision, not bit
// equality. 1e-6 relative sits far above that noise and far below any
// real accounting bug — a single dropped packet charge is ~1e-4 J.
const checkRelTol = 1e-6

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := math.Abs(a) + math.Abs(b) + 1
	return d <= checkRelTol*scale
}

// CheckConservation verifies the cross-layer conservation laws of a
// finished run and returns a *runerr.InvariantError naming the first
// violated one, or nil. The cheap laws are O(N):
//
//   - energy-ledger: for every finite battery not exhausted by Kill,
//     the drawdown (initial − remaining) equals the sum of the meter's
//     tx/rx/discard buckets.
//   - rx-conservation: every reception the medium scheduled resolved
//     through exactly one delivery branch or is still in flight.
//   - byte-counters: the collector's control/data byte tallies (fed by
//     the OnTransmit hook) equal the medium's own counters exactly.
//   - death-count: depletion events recorded by the collector equal the
//     number of dead meters.
//
// full additionally recounts every group's delivered tally from the
// dedup sets (see metrics.Collector.VerifyDeliveredRecount).
func (net *Network) CheckConservation(full bool) error {
	for i, m := range net.Meters {
		if !m.Limited() || m.Killed() {
			continue
		}
		drawn := m.InitialJ() - m.Battery
		if !closeEnough(drawn, m.Total()) {
			return &runerr.InvariantError{
				Name:   "energy-ledger",
				Detail: fmt.Sprintf("node %d: battery drawdown %.9g J but buckets sum to %.9g J (%s)", i, drawn, m.Total(), m),
			}
		}
	}
	st := net.Medium.Stats()
	resolved := st.RxOff + st.RxCorrupt + st.PartitionDrops + st.FaultDrops + st.Fading + st.Deliveries
	pending := net.Medium.PendingRx()
	if pending < 0 || st.RxScheduled != resolved+pending {
		return &runerr.InvariantError{
			Name: "rx-conservation",
			Detail: fmt.Sprintf("scheduled %d receptions but resolved %d (+%d in flight): off=%d corrupt=%d partition=%d fault=%d fading=%d delivered=%d",
				st.RxScheduled, resolved, pending, st.RxOff, st.RxCorrupt, st.PartitionDrops, st.FaultDrops, st.Fading, st.Deliveries),
		}
	}
	if net.Collector.ControlBytes != st.ControlBytes || net.Collector.DataTxBytes != st.DataBytes {
		return &runerr.InvariantError{
			Name: "byte-counters",
			Detail: fmt.Sprintf("collector counted %d control / %d data bytes, medium put %d / %d on air",
				net.Collector.ControlBytes, net.Collector.DataTxBytes, st.ControlBytes, st.DataBytes),
		}
	}
	deadMeters := 0
	for _, m := range net.Meters {
		if m.Dead() {
			deadMeters++
		}
	}
	if deaths := net.Collector.Deaths(); deaths != deadMeters {
		return &runerr.InvariantError{
			Name:   "death-count",
			Detail: fmt.Sprintf("collector recorded %d depletion events but %d meters are dead", deaths, deadMeters),
		}
	}
	if full {
		if err := net.Collector.VerifyDeliveredRecount(); err != nil {
			return &runerr.InvariantError{Name: "delivered-recount", Detail: err.Error()}
		}
	}
	return nil
}
