// Package netsim wires the simulation substrate together: it owns the
// nodes, their protocol instances and energy meters, the shared medium,
// the mobility tracker and the metrics collector, and it defines the
// Protocol interface every multicast routing protocol implements.
package netsim

import (
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/medium"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Protocol is one node's instance of a multicast routing protocol.
// Implementations receive every frame the medium delivers to their node
// and drive their own timers via the node's simulator.
type Protocol interface {
	// Start binds the protocol to its node and arms initial timers.
	Start(n *Node)
	// Receive handles a successfully received frame. The reception energy
	// has already been charged as consumed; protocols that drop the frame
	// must call n.DiscardRx(info) so the energy is re-bucketed as
	// overhearing cost.
	Receive(pkt *packet.Packet, info medium.RxInfo)
	// Originate injects one application data packet at this node (called
	// by the traffic generator on the multicast source only).
	Originate()
}

// TreeStater is implemented by tree-based protocols that can report their
// current parent pointer; the availability sampler uses it.
type TreeStater interface {
	// TreeParent returns the node's current parent and whether it has one.
	// The root returns (own id, true).
	TreeParent() (packet.NodeID, bool)
}

// Node is one mobile host.
type Node struct {
	ID     packet.NodeID
	Net    *Network
	Proto  Protocol
	Meter  *energy.Meter
	Member bool // multicast receiver
	Source bool // multicast source
}

// Deliver implements medium.Receiver.
func (n *Node) Deliver(pkt *packet.Packet, info medium.RxInfo) {
	n.Proto.Receive(pkt, info)
}

// Broadcast transmits pkt from this node with the given power-controlled
// range.
func (n *Node) Broadcast(pkt *packet.Packet, txRange float64) {
	n.Net.Medium.Broadcast(n.ID, pkt, txRange)
}

// DiscardRx reclassifies a reception's energy as overhearing waste. Call
// exactly once for frames the protocol drops.
func (n *Node) DiscardRx(info medium.RxInfo) { n.Meter.Reclassify(info.RxJ) }

// Dead reports whether the node's (finite) battery is exhausted: its
// radio is permanently silent for the rest of the run.
func (n *Node) Dead() bool { return n.Meter.Dead() }

// Sim returns the simulation kernel.
func (n *Node) Sim() *sim.Simulator { return n.Net.Sim }

// Now returns the current simulated time.
func (n *Node) Now() float64 { return n.Net.Sim.Now() }

// ConsumeData records the application-level delivery of a data packet at
// this (member) node.
func (n *Node) ConsumeData(pkt *packet.Packet, now float64) {
	n.Net.Collector.DataDelivered(n.ID, pkt.Src, pkt.Seq, pkt.Born, now)
}

// Network aggregates one simulation run's components.
type Network struct {
	Sim       *sim.Simulator
	Medium    *medium.Medium
	Tracker   *mobility.Tracker
	Collector *metrics.Collector
	Nodes     []*Node
	Meters    []*energy.Meter
	Source    packet.NodeID
	Members   []packet.NodeID // receivers; excludes the source
	memberSet []bool
	// joinTime[i] is the instant node i last became a member (0 for the
	// initial membership). The availability sampler baselines a member's
	// outage clock here: a node that joined mid-run has had no chance to
	// receive anything before its join, so silence predating it is not an
	// outage.
	joinTime []float64
}

// Config parameterizes network construction.
type Config struct {
	N       int
	Source  packet.NodeID
	Members []packet.NodeID
	Medium  medium.Config
	// Battery, in joules per node; <= 0 means unlimited.
	Battery float64
	// PayloadBytes is the application payload per data packet.
	PayloadBytes int
	// Area is the deployment region; plumbed into the medium's spatial
	// index when the caller has not configured it explicitly.
	Area geom.Rect
	// VMax bounds node speed for the index's epoch/slack sizing; see
	// medium.GridConfig.VMax. Ignored when StaticNodes is set.
	VMax float64
	// StaticNodes declares that no node ever moves, letting the index
	// snapshot positions exactly once.
	StaticNodes bool
}

// New builds a network of cfg.N nodes over the given tracker. Protocol
// instances are attached afterwards with SetProtocol, then Start launches
// them.
func New(s *sim.Simulator, tracker *mobility.Tracker, cfg Config) *Network {
	net := &Network{}
	net.Reset(s, tracker, cfg)
	return net
}

// Reset re-initializes the network in place for a new run, exactly as New
// would, while reusing its components: node and meter structs, the
// metrics collector (and its map buckets) and the medium (with its
// queues, registries and freelists) all survive, so a run arena pays a
// small fixed setup cost per replication instead of rebuilding the world.
func (net *Network) Reset(s *sim.Simulator, tracker *mobility.Tracker, cfg Config) {
	n := cfg.N
	net.Sim, net.Tracker = s, tracker
	net.Source = cfg.Source
	net.Members = cfg.Members
	if net.Collector == nil {
		net.Collector = metrics.NewCollector(cfg.PayloadBytes, n)
	} else {
		net.Collector.Reset(cfg.PayloadBytes, n)
	}
	mcfg := cfg.Medium
	if !mcfg.Grid.Disable {
		if mcfg.Grid.Area == (geom.Rect{}) {
			mcfg.Grid.Area = cfg.Area
		}
		if mcfg.Grid.VMax == 0 {
			mcfg.Grid.VMax = cfg.VMax
		}
		if cfg.StaticNodes {
			mcfg.Grid.Static = true
		}
	}
	if net.Medium == nil {
		net.Medium = medium.New(s, mcfg, tracker, n)
	} else {
		net.Medium.Reset(s, mcfg, tracker, n)
	}
	net.Medium.OnTransmit = func(pkt *packet.Packet) {
		if pkt.Kind.Control() {
			net.Collector.ControlTx(pkt.Bytes)
		} else {
			net.Collector.DataTx(pkt.Bytes)
		}
	}
	// Time-resolved death tracking: the medium reports the charge that
	// exhausts each battery, the collector timestamps it.
	net.Medium.OnDeath = func(packet.NodeID) {
		net.Collector.NodeDied(net.Sim.Now())
	}
	// Injected channel losses (Gilbert-Elliott, partition cuts) feed the
	// per-run fault statistics.
	net.Medium.OnFaultDrop = func(partition bool) {
		net.Collector.FaultLoss(partition)
	}
	// Membership and join-time state.
	if cap(net.memberSet) < n {
		net.memberSet = make([]bool, n)
		net.joinTime = make([]float64, n)
	} else {
		net.memberSet = net.memberSet[:n]
		net.joinTime = net.joinTime[:n]
		for i := range net.memberSet {
			net.memberSet[i] = false
			net.joinTime[i] = 0
		}
	}
	for _, m := range cfg.Members {
		net.memberSet[m] = true
	}
	// Nodes and meters: reuse the structs, reassign every field.
	for len(net.Nodes) < n {
		net.Nodes = append(net.Nodes, nil)
		net.Meters = append(net.Meters, nil)
	}
	net.Nodes = net.Nodes[:n]
	net.Meters = net.Meters[:n]
	for i := 0; i < n; i++ {
		id := packet.NodeID(i)
		if net.Meters[i] == nil {
			net.Meters[i] = energy.NewMeter(cfg.Battery)
		} else {
			net.Meters[i].Reset(cfg.Battery)
		}
		if net.Nodes[i] == nil {
			net.Nodes[i] = &Node{}
		}
		*net.Nodes[i] = Node{
			ID:     id,
			Net:    net,
			Meter:  net.Meters[i],
			Member: net.memberSet[i],
			Source: id == cfg.Source,
		}
		net.Medium.Attach(id, net.Nodes[i], net.Meters[i])
	}
}

// IsMember reports whether id is a multicast receiver.
func (net *Network) IsMember(id packet.NodeID) bool { return net.memberSet[id] }

// JoinedAt returns the time node id last joined the group (0 for initial
// members and for nodes that never joined).
func (net *Network) JoinedAt(id packet.NodeID) float64 { return net.joinTime[id] }

// SetMember changes id's group membership at runtime (dynamic join/leave).
// The protocols observe the flag on their next beacon round — the pruning
// machinery then grows or sheds the branch. The source cannot be a member.
func (net *Network) SetMember(id packet.NodeID, member bool) {
	if id == net.Source || net.memberSet[id] == member {
		return
	}
	net.memberSet[id] = member
	net.Nodes[id].Member = member
	if member {
		net.joinTime[id] = net.Sim.Now()
		net.Members = append(net.Members, id)
		return
	}
	for i, m := range net.Members {
		if m == id {
			net.Members = append(net.Members[:i], net.Members[i+1:]...)
			return
		}
	}
}

// Kill exhausts node id's battery immediately: fault injection for
// self-stabilization tests. The node's radio goes permanently silent and
// its neighbours detect the disappearance through beacon timeouts. The
// death is timestamped like a natural depletion; re-killing a dead node
// is a no-op.
func (net *Network) Kill(id packet.NodeID) {
	if net.Meters[id].Dead() {
		return
	}
	net.Meters[id].Kill()
	net.Collector.NodeDied(net.Sim.Now())
}

// Stopper is implemented by protocols that can cancel their pending
// timers; Crash uses it so a downed node's protocol goes quiet instead of
// ticking against a dead radio.
type Stopper interface{ Stop() }

// Crash takes node id down reversibly: the radio switches off (queued
// frames drain silently, pending receptions lapse) and the protocol's
// timers stop when it implements Stopper. Unlike Kill, the battery is
// untouched and the node does not count as dead — Recover brings it back.
// Crashing a dead or already-down node is a no-op.
func (net *Network) Crash(id packet.NodeID) {
	if net.Meters[id].Dead() || net.Medium.IsDown(id) {
		return
	}
	net.Medium.SetDown(id, true)
	if s, ok := net.Nodes[id].Proto.(Stopper); ok {
		s.Stop()
	}
	net.Collector.NodeCrashed()
}

// Recover switches a crashed node's radio back on. A crashed node lost
// all protocol state, so the caller must install a freshly initialized
// protocol (SetProtocol + Start on the node) after Recover returns; the
// join clock is deliberately left alone — the outage a member accumulated
// while down, and until it re-attaches, is exactly the unavailability the
// crash figures measure. Recovering an up or battery-dead node is a no-op
// (a battery that depleted while the node was down stays dead).
func (net *Network) Recover(id packet.NodeID) bool {
	if !net.Medium.IsDown(id) || net.Meters[id].Dead() {
		return false
	}
	net.Medium.SetDown(id, false)
	net.Collector.NodeRecovered()
	return true
}

// IsDown reports whether node id is currently crashed.
func (net *Network) IsDown(id packet.NodeID) bool { return net.Medium.IsDown(id) }

// SetProtocol attaches a protocol instance to node id.
func (net *Network) SetProtocol(id packet.NodeID, p Protocol) {
	net.Nodes[id].Proto = p
}

// Start launches every node's protocol.
func (net *Network) Start() {
	for _, n := range net.Nodes {
		if n.Proto == nil {
			panic("netsim: node without protocol")
		}
		n.Proto.Start(n)
	}
}

// StartNode launches one node's protocol mid-run: the recovery half of the
// crash/reboot fault path, after the caller installed a fresh instance with
// SetProtocol.
func (net *Network) StartNode(id packet.NodeID) {
	net.Nodes[id].Proto.Start(net.Nodes[id])
}

// Summarize reduces the run to its metrics summary. The current simulated
// time is the run horizon (sim.Run advances the clock to its `until` even
// when the queue drains early), scaling the dead-fraction timeline.
func (net *Network) Summarize() metrics.Summary {
	return net.Collector.Summarize(net.Meters, net.Sim.Now())
}
