package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws across seeds", same)
	}
}

func TestKnownSequenceStability(t *testing.T) {
	// Pin the SplitMix64 output so accidental algorithm changes (which
	// would silently invalidate every recorded experiment) fail loudly.
	r := New(0)
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("draw %d = %#x, want %#x (SplitMix64 reference)", i, got, w)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(10) value %d drawn %d/10000 times", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range(-3,7) = %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(9)
	sum := 0.0
	n := 50000
	for i := 0; i < n; i++ {
		v := r.Exp(2.5)
		if v < 0 {
			t.Fatalf("Exp negative: %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-2.5) > 0.1 {
		t.Errorf("Exp(2.5) mean = %v", mean)
	}
}

func TestBool(t *testing.T) {
	r := New(13)
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	if trues < 2700 || trues > 3300 {
		t.Errorf("Bool(0.3): %d/10000 true", trues)
	}
	if New(1).Bool(0) {
		t.Error("Bool(0) returned true")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for n := 1; n <= 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(99)
	a := root.Split("mobility")
	b := root.Split("traffic")
	// Streams must differ from each other...
	if a.Uint64() == b.Uint64() {
		t.Error("split streams with different labels collide")
	}
	// ...and splitting must not advance the parent.
	before := *root
	root.Split("x")
	if *root != before {
		t.Error("Split advanced the parent's state")
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := New(5).Split("medium").Uint64()
	b := New(5).Split("medium").Uint64()
	if a != b {
		t.Error("same label split differs across identical parents")
	}
}

func TestSplitIndexIndependence(t *testing.T) {
	root := New(7)
	seen := map[uint64]int{}
	for i := 0; i < 100; i++ {
		v := root.SplitIndex(i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("SplitIndex(%d) and SplitIndex(%d) collide", i, j)
		}
		seen[v] = i
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(21)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestNormDeterministic(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 100; i++ {
		if a.Norm() != b.Norm() {
			t.Fatal("Norm not deterministic for a fixed seed")
		}
	}
}
