package xrand

import "math"

// Zipf is a bounded rank-popularity distribution over the ranks
// [0, n): rank k carries unnormalized weight (k+1)^-s, so rank 0 is the
// most popular topic and the tail decays polynomially. s = 0 degenerates
// to the uniform distribution; larger s concentrates mass on the head.
//
// The sampler is a pure function of the RNG stream passed to Rank: it
// holds no mutable state of its own, so two Zipf values with the same
// (n, s) driven by identical streams produce identical rank sequences.
// Weights and the cumulative table are precomputed at construction, which
// keeps Rank allocation-free on the hot path.
type Zipf struct {
	n   int
	s   float64
	w   []float64 // w[k] = (k+1)^-s
	cum []float64 // cum[k] = sum of w[0..k]
}

// NewZipf builds a Zipf distribution over n ranks with exponent s. It
// panics if n <= 0 or s < 0 — both indicate a configuration bug, matching
// Intn's contract.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("xrand: NewZipf with negative exponent")
	}
	z := &Zipf{n: n, s: s, w: make([]float64, n), cum: make([]float64, n)}
	total := 0.0
	for k := 0; k < n; k++ {
		z.w[k] = math.Pow(float64(k+1), -s)
		total += z.w[k]
		z.cum[k] = total
	}
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Weight returns rank k's unnormalized weight (k+1)^-s.
func (z *Zipf) Weight(k int) float64 { return z.w[k] }

// PMF returns the probability of rank k.
func (z *Zipf) PMF(k int) float64 { return z.w[k] / z.cum[z.n-1] }

// Rank draws one rank from r by inverting the cumulative table. Exactly
// one uniform is consumed per call, so the stream's trajectory depends
// only on the draw count.
func (z *Zipf) Rank(r *RNG) int {
	u := r.Float64() * z.cum[z.n-1]
	// Binary search for the first rank whose cumulative weight exceeds u.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
