// Package xrand implements the deterministic pseudo-random number
// generation used throughout the simulator.
//
// Reproducibility is a hard requirement: a scenario is fully identified by
// its root seed, and re-running it must produce bit-identical results on any
// platform and Go release. The package therefore implements its own
// SplitMix64 generator instead of relying on math/rand, whose sequences are
// not guaranteed stable across releases.
//
// A root seed is split into independent named streams (mobility, traffic,
// MAC backoff, per-protocol jitter, …) so that adding random draws to one
// subsystem does not perturb the sequences seen by another.
package xrand

import "math"

// RNG is a SplitMix64 pseudo-random generator. It is small enough to copy
// but must not be used concurrently from multiple goroutines.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// golden gamma of SplitMix64.
const gamma = 0x9E3779B97F4A7C15

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += gamma
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split derives an independent generator from r, keyed by label. Streams
// derived with distinct labels from the same parent are statistically
// independent; the parent's own sequence is not advanced.
func (r *RNG) Split(label string) *RNG {
	var g uint64 = gamma
	h := r.state + g*7 // wrapping multiply mixes the stream id
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001B3 // FNV-1a prime
	}
	// Run one SplitMix64 finalization so nearby labels diverge fully.
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return &RNG{state: h ^ (h >> 31)}
}

// SplitIndex derives an independent generator keyed by an integer index,
// e.g. one stream per node.
func (r *RNG) SplitIndex(i int) *RNG {
	h := r.state ^ (uint64(i)+1)*0xD6E8FEB86659FD93
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return &RNG{state: h ^ (h >> 31)}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits → uniform dyadic rationals in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Multiply-shift rejection-free mapping is fine for simulation use.
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed float64 with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a standard-normal (mean 0, stddev 1) float64 via the
// Box–Muller transform. The number of uniforms consumed depends only on
// the stream's own values, never on external state, so replays stay
// bit-identical.
func (r *RNG) Norm() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64() // log(0) guard
	}
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Pick returns a uniformly chosen element index from a slice of length n
// together with a second draw helper; provided for readability at call
// sites that select random nodes.
func (r *RNG) Pick(n int) int { return r.Intn(n) }
