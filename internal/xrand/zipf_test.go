package xrand

import (
	"math"
	"testing"
)

// TestZipfDistribution draws a large sample and checks the empirical rank
// frequencies against the analytic PMF within a loose tolerance, for a
// uniform (s=0) and a skewed (s=1.2) exponent.
func TestZipfDistribution(t *testing.T) {
	const draws = 200000
	for _, s := range []float64{0, 0.8, 1.2} {
		z := NewZipf(8, s)
		r := New(42).Split("zipf.dist")
		counts := make([]int, z.N())
		for i := 0; i < draws; i++ {
			counts[z.Rank(r)]++
		}
		for k := 0; k < z.N(); k++ {
			got := float64(counts[k]) / draws
			want := z.PMF(k)
			if math.Abs(got-want) > 0.01 {
				t.Errorf("s=%v rank %d: frequency %.4f, want %.4f ± 0.01", s, k, got, want)
			}
		}
	}
}

// TestZipfMonotone checks the PMF is non-increasing in rank (rank 0 is
// the most popular) and sums to one.
func TestZipfMonotone(t *testing.T) {
	z := NewZipf(16, 1.0)
	sum := 0.0
	for k := 0; k < z.N(); k++ {
		sum += z.PMF(k)
		if k > 0 && z.PMF(k) > z.PMF(k-1) {
			t.Errorf("PMF(%d)=%v exceeds PMF(%d)=%v", k, z.PMF(k), k-1, z.PMF(k-1))
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("PMF sums to %v, want 1", sum)
	}
}

// TestZipfDeterminism pins that Rank is a pure function of the stream:
// identical streams yield identical rank sequences, and the sampler
// consumes exactly one uniform per draw so interleaved consumers stay
// reproducible.
func TestZipfDeterminism(t *testing.T) {
	z := NewZipf(10, 1.1)
	a := New(7).Split("zipf.det")
	b := New(7).Split("zipf.det")
	for i := 0; i < 1000; i++ {
		ra, rb := z.Rank(a), z.Rank(b)
		if ra != rb {
			t.Fatalf("draw %d: streams diverge (%d vs %d)", i, ra, rb)
		}
	}
	// One uniform per draw: a fresh stream advanced by n Rank calls must
	// be in the same state as one advanced by n Float64 calls.
	c, d := New(9).Split("zipf.one"), New(9).Split("zipf.one")
	for i := 0; i < 100; i++ {
		z.Rank(c)
		d.Float64()
	}
	if c.Uint64() != d.Uint64() {
		t.Error("Rank consumed a different number of uniforms than one Float64 per call")
	}
}

// TestZipfPanics pins the constructor's contract on invalid arguments.
func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"n=0", func() { NewZipf(0, 1) }},
		{"s<0", func() { NewZipf(4, -0.1) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}
