// Command manetsim runs a single MANET multicast simulation and prints
// its summary: the quickest way to poke at one scenario.
//
// Usage:
//
//	manetsim -proto ss-spst-e -n 50 -area 750 -group 20 -vmax 5 \
//	         -beacon 2 -duration 300 -seed 1 [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/scenario"
)

var protoByName = map[string]scenario.ProtocolKind{
	"ss-spst":   scenario.SSSPST,
	"ss-spst-t": scenario.SSSPSTT,
	"ss-spst-f": scenario.SSSPSTF,
	"ss-spst-e": scenario.SSSPSTE,
	"maodv":     scenario.MAODV,
	"odmrp":     scenario.ODMRP,
	"flood":     scenario.Flood,
}

func main() {
	proto := flag.String("proto", "ss-spst-e", "protocol: ss-spst, ss-spst-t, ss-spst-f, ss-spst-e, maodv, odmrp, flood")
	n := flag.Int("n", 50, "number of nodes")
	area := flag.Float64("area", 750, "square area side (m)")
	group := flag.Int("group", 20, "multicast receivers")
	vmin := flag.Float64("vmin", 1, "minimum node speed (m/s, must be > 0)")
	vmax := flag.Float64("vmax", 5, "maximum node speed (m/s)")
	pause := flag.Float64("pause", 2, "waypoint pause (s)")
	beacon := flag.Float64("beacon", 2, "beacon interval (s)")
	duration := flag.Float64("duration", 300, "simulated seconds")
	seed := flag.Uint64("seed", 1, "root RNG seed")
	seeds := flag.Int("seeds", 1, "average over this many seeds")
	jsonOut := flag.Bool("json", false, "print the summary as JSON")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	flag.Parse()

	kind, ok := protoByName[strings.ToLower(*proto)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *proto)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "manetsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "manetsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "manetsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "manetsim:", err)
			}
		}()
	}

	cfg := scenario.Default()
	cfg.Protocol = kind
	cfg.N = *n
	cfg.AreaSide = *area
	cfg.GroupSize = *group
	cfg.VMin = *vmin
	cfg.VMax = *vmax
	cfg.Pause = *pause
	cfg.BeaconInterval = *beacon
	cfg.Duration = *duration
	cfg.Seed = *seed

	// Validate up front: a broken flag combination prints one message and
	// exits instead of panicking deep in the run.
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "manetsim:", err)
		os.Exit(1)
	}

	sum := scenario.RunSeeds(cfg, *seeds)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%s over %d node(s), group %d, vmax %.0f m/s, %.0fs x%d seed(s)\n",
		kind, *n, *group, *vmax, *duration, *seeds)
	fmt.Printf("  PDR                 %.3f\n", sum.PDR)
	fmt.Printf("  energy/packet       %.2f mJ\n", sum.EnergyPerDeliveredJ*1e3)
	fmt.Printf("  avg delay           %.1f ms\n", sum.AvgDelayS*1e3)
	fmt.Printf("  ctrl/data bytes     %.3f\n", sum.CtrlPerDataByte)
	fmt.Printf("  unavailability      %.3f\n", sum.Unavailability)
	fmt.Printf("  total energy        %.1f J (tx %.1f / rx %.1f / discard %.1f)\n",
		sum.TotalEnergyJ, sum.TxJ, sum.RxJ, sum.DiscardJ)
}
