// manetlint is the repro's determinism/RNG/error-discipline multichecker
// (DESIGN §16): a driver for the analyzer fleet under internal/analysis,
// built entirely on the standard library so it runs in the offline build
// environment where x/tools is unavailable.
//
// Usage:
//
//	go run ./cmd/manetlint ./...
//	go run ./cmd/manetlint -only detrand,mapiter ./internal/sim/...
//	go run ./cmd/manetlint -notests ./...
//
// Exit status is 1 when any analyzer reports a finding, 2 on a driver
// failure (unparsable package, type error). CI runs the full fleet over
// the whole tree as a required job; the tree must stay lint-clean, with
// //detlint:allow <reason> as the only, argued, escape.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/errdiscipline"
	"repro/internal/analysis/fingerprintfields"
	"repro/internal/analysis/mapiter"
)

// fleet is every analyzer the driver knows, in reporting order.
var fleet = []*analysis.Analyzer{
	analysis.DirectiveAnalyzer,
	detrand.Analyzer,
	mapiter.Analyzer,
	errdiscipline.Analyzer,
	fingerprintfields.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	notests := flag.Bool("notests", false, "skip _test.go files and external test packages")
	list := flag.Bool("list", false, "print the analyzer fleet and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: manetlint [-only a,b] [-notests] [patterns]\n\nAnalyzers:\n")
		for _, a := range fleet {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range fleet {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := fleet
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(fleet))
		for _, a := range fleet {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "manetlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "manetlint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "manetlint:", err)
		os.Exit(2)
	}
	loader.Tests = !*notests

	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "manetlint:", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "manetlint: no packages matched", strings.Join(patterns, " "))
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "manetlint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			findings++
			fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "manetlint: %d finding(s) across %d package unit(s)\n", findings, len(pkgs))
		os.Exit(1)
	}
}
