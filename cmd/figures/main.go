// Command figures regenerates the paper's evaluation figures (7–16) and
// prints each as an aligned text table, plus the repository's extension
// tables: 17 — the cross-mobility comparison (random waypoint vs
// Gauss-Markov vs RPGM vs Manhattan at the paper's baseline), 18 — the
// membership-churn sweep (PDR / unavailability / control overhead vs
// churn interval, all four protocols), and 19 — the network-lifetime
// study under finite batteries (dead-fraction timeline plus the
// first-death / half-dead / delivered-bytes summary; emits two tables),
// and 20 — the fault-injection robustness study (PDR / unavailability /
// control overhead vs Gilbert-Elliott loss burst length and vs
// crash/reboot rate; emits two tables), and 21 — the concurrent-group
// sweep (PDR / unavailability / control overhead vs the number of
// Zipf-popular multicast groups multiplexed over each node's radio).
//
// Usage:
//
//	figures [-quick] [-duration 1800] [-seeds 5] [-fig 7,9,17,18,21]
//	        [-mobility gauss-markov,rpgm,manhattan,rwp] [-workers N]
//
// All requested figures are flattened into ONE globally scheduled batch
// on the shared sweep engine: the longest runs start first across figure
// boundaries, worker arenas stay hot for the whole session, and the runs
// sharing a (mobility, seed) point replay one recorded movement trace.
// Progress streams to stderr as runs land.
//
// With -quick the sweep uses short runs (the same setting the test suite
// uses); curve shapes are stable well before the paper's 1800 s horizon.
// -mobility selects the models compared in table 17; -workers bounds the
// engine (default: GOMAXPROCS).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	quick := flag.Bool("quick", false, "short runs (180 s, 2 seeds)")
	duration := flag.Float64("duration", 0, "simulated seconds per run (overrides -quick)")
	seeds := flag.Int("seeds", 0, "seeds averaged per point (overrides -quick)")
	figs := flag.String("fig", "", "comma-separated figure numbers (default: all)")
	mob := flag.String("mobility", "", "comma-separated mobility models for the cross-mobility table 17 (default: rwp,gauss-markov,rpgm,manhattan)")
	workers := flag.Int("workers", 0, "sweep engine width (default: GOMAXPROCS)")
	flag.Parse()

	if *workers > 0 {
		scenario.ConfigureDefaultEngine(*workers)
	}

	opts := experiments.Full()
	if *quick {
		opts = experiments.Quick()
	}
	if *duration > 0 {
		opts.Duration = *duration
	}
	if *seeds > 0 {
		opts.Seeds = *seeds
	}

	var kinds []scenario.MobilityKind
	if *mob != "" {
		for _, name := range strings.Split(*mob, ",") {
			k, err := scenario.ParseMobility(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			kinds = append(kinds, k)
		}
	}

	want := experiments.AllFigures()
	if *figs != "" {
		want = nil
		for _, s := range strings.Split(*figs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 7 || n > 21 {
				fmt.Fprintf(os.Stderr, "unknown figure %q (valid: 7-21)\n", s)
				os.Exit(2)
			}
			want = append(want, n)
		}
	}

	// Progress: one stderr update per percent so logs stay readable.
	lastPct := -1
	opts.Progress = func(done, total int) {
		pct := done * 100 / total
		if pct != lastPct {
			lastPct = pct
			fmt.Fprintf(os.Stderr, "\rfigures: %d/%d runs (%d%%)", done, total, pct)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	start := time.Now()
	tables, err := experiments.Generate(opts, want, kinds)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, tbl := range tables {
		fmt.Println(tbl.Format())
	}
	hits, misses := scenario.DefaultEngine().TraceStats()
	fmt.Fprintf(os.Stderr, "generated %d table(s) in %.1fs on %d worker(s); trace cache: %d replays / %d recordings\n",
		len(tables), time.Since(start).Seconds(), scenario.DefaultEngine().Workers(), hits, misses)
}
