// Command figures regenerates the paper's evaluation figures (7–16) and
// prints each as an aligned text table, plus the repository's extension
// table 17: the cross-mobility comparison (random waypoint vs
// Gauss-Markov vs RPGM vs Manhattan at the paper's baseline).
//
// Usage:
//
//	figures [-quick] [-duration 1800] [-seeds 5] [-fig 7,9,17]
//	        [-mobility gauss-markov,rpgm,manhattan,rwp]
//
// With -quick the sweep uses short runs (the same setting the test suite
// uses); curve shapes are stable well before the paper's 1800 s horizon.
// -mobility selects the models compared in table 17.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	quick := flag.Bool("quick", false, "short runs (180 s, 2 seeds)")
	duration := flag.Float64("duration", 0, "simulated seconds per run (overrides -quick)")
	seeds := flag.Int("seeds", 0, "seeds averaged per point (overrides -quick)")
	figs := flag.String("fig", "", "comma-separated figure numbers (default: all)")
	mob := flag.String("mobility", "", "comma-separated mobility models for the cross-mobility table 17 (default: rwp,gauss-markov,rpgm,manhattan)")
	flag.Parse()

	opts := experiments.Full()
	if *quick {
		opts = experiments.Quick()
	}
	if *duration > 0 {
		opts.Duration = *duration
	}
	if *seeds > 0 {
		opts.Seeds = *seeds
	}

	var kinds []scenario.MobilityKind
	if *mob != "" {
		for _, name := range strings.Split(*mob, ",") {
			k, err := scenario.ParseMobility(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			kinds = append(kinds, k)
		}
	}

	gens := map[int]func(experiments.Options) experiments.Table{
		7: experiments.Figure7, 8: experiments.Figure8, 9: experiments.Figure9,
		10: experiments.Figure10, 11: experiments.Figure11, 12: experiments.Figure12,
		13: experiments.Figure13, 14: experiments.Figure14, 15: experiments.Figure15,
		16: experiments.Figure16,
		17: func(o experiments.Options) experiments.Table {
			return experiments.CrossMobility(o, kinds)
		},
	}
	order := []int{7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}

	want := order
	if *figs != "" {
		want = nil
		for _, s := range strings.Split(*figs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || gens[n] == nil {
				fmt.Fprintf(os.Stderr, "unknown figure %q (valid: 7-17)\n", s)
				os.Exit(2)
			}
			want = append(want, n)
		}
	}

	for _, n := range want {
		start := time.Now()
		tbl := gens[n](opts)
		fmt.Println(tbl.Format())
		fmt.Printf("(generated in %.1fs)\n\n", time.Since(start).Seconds())
	}
}
