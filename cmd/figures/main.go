// Command figures regenerates the paper's evaluation figures (7–16) and
// prints each as an aligned text table, plus the repository's extension
// tables: 17 — the cross-mobility comparison (random waypoint vs
// Gauss-Markov vs RPGM vs Manhattan at the paper's baseline), 18 — the
// membership-churn sweep (PDR / unavailability / control overhead vs
// churn interval, all four protocols), and 19 — the network-lifetime
// study under finite batteries (dead-fraction timeline plus the
// first-death / half-dead / delivered-bytes summary; emits two tables),
// and 20 — the fault-injection robustness study (PDR / unavailability /
// control overhead vs Gilbert-Elliott loss burst length and vs
// crash/reboot rate; emits two tables), and 21 — the concurrent-group
// sweep (PDR / unavailability / control overhead vs the number of
// Zipf-popular multicast groups multiplexed over each node's radio).
//
// Usage:
//
//	figures [-quick] [-duration 1800] [-seeds 5] [-fig 7,9,17,18,21]
//	        [-mobility gauss-markov,rpgm,manhattan,rwp] [-workers N]
//	        [-shard k/n -out shard.json] [-journal FILE [-resume]]
//	        [-retries N] [-deadline SECONDS] [-check cheap|full|off]
//	        [-chaos-fs seed,rate]
//
// All requested figures are flattened into ONE globally scheduled batch
// on the shared sweep engine: the longest runs start first across figure
// boundaries, worker arenas stay hot for the whole session, and the runs
// sharing a (mobility, seed) point replay one recorded movement trace.
// Progress streams to stderr as runs land.
//
// With -quick the sweep uses short runs (the same setting the test suite
// uses); curve shapes are stable well before the paper's 1800 s horizon.
// -mobility selects the models compared in table 17; -workers bounds the
// engine (default: GOMAXPROCS).
//
// # Crash tolerance and sharding
//
// -shard k/n runs only the k-th of n deterministic, cost-balanced slices
// of the flattened (figure point × seed) grid and writes a raw-counter
// artifact (to -out) instead of tables; cmd/mergefigs validates and
// merges the n artifacts into tables byte-identical to an unsharded run
// with the same flags. -journal FILE checkpoints every completed
// replication crash-safely; -resume skips replications the journal
// already holds, so a SIGKILLed batch re-runs at most the one
// replication that was in flight. -retries bounds re-execution of failed
// replications; persistent failures surface as partial-coverage
// footnotes on the affected points rather than aborting the batch. On
// SIGINT/SIGTERM the journal is flushed before exiting non-zero; a
// second signal force-exits immediately.
//
// # Hardening knobs
//
// -deadline bounds each replication's wall-clock time (a typed,
// retryable failure — never classified deterministic). -check selects
// the end-of-run invariant tier: cheap (default; the O(N) conservation
// laws), full (adds the delivered-tally recount), or off. -chaos-fs
// seed,rate threads a deterministic fault-injecting filesystem under
// the journal and artifact writers — a test hook for exercising the
// crash-tolerance machinery, not for production sweeps.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/fsio"
	"repro/internal/runerr"
	"repro/internal/scenario"
	"repro/internal/shard"
)

func main() {
	quick := flag.Bool("quick", false, "short runs (180 s, 2 seeds)")
	duration := flag.Float64("duration", 0, "simulated seconds per run (overrides -quick)")
	seeds := flag.Int("seeds", 0, "seeds averaged per point (overrides -quick)")
	figs := flag.String("fig", "", "comma-separated figure numbers (default: all)")
	mob := flag.String("mobility", "", "comma-separated mobility models for the cross-mobility table 17 (default: rwp,gauss-markov,rpgm,manhattan)")
	workers := flag.Int("workers", 0, "sweep engine width (default: GOMAXPROCS)")
	shardSpec := flag.String("shard", "", "run slice k/n of the job grid and write an artifact instead of tables (merge with mergefigs)")
	out := flag.String("out", "", "artifact path for -shard (default figures-shard-K-of-N.json)")
	journalPath := flag.String("journal", "", "checkpoint journal: record every completed replication crash-safely")
	resume := flag.Bool("resume", false, "skip replications already recorded in -journal")
	retries := flag.Int("retries", 1, "re-runs of a failed replication before recording the failure (0 = none)")
	deadline := flag.Float64("deadline", 0, "wall-clock seconds per replication before it fails typed (0 = unlimited)")
	check := flag.String("check", "cheap", "end-of-run invariant tier: cheap, full or off")
	chaosFS := flag.String("chaos-fs", "", "inject seed-scheduled I/O faults under journal/artifact writers, as \"seed,rate\" (test hook)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}

	checkTier, err := scenario.ParseCheckTier(*check)
	if err != nil {
		fail(err)
	}
	var fsys fsio.FS = fsio.OS
	if *chaosFS != "" {
		seed, rate, err := fsio.ParseSpec(*chaosFS)
		if err != nil {
			fail(err)
		}
		fsys = fsio.NewFaultFS(fsio.OS, seed, rate)
	}

	if *workers > 0 {
		scenario.ConfigureDefaultEngine(*workers)
	}
	engine := scenario.DefaultEngine()
	engine.SetRetryPolicy(*retries, 100*time.Millisecond)

	opts := experiments.Full()
	if *quick {
		opts = experiments.Quick()
	}
	if *duration > 0 {
		opts.Duration = *duration
	}
	if *seeds > 0 {
		opts.Seeds = *seeds
	}

	// Mobility names are canonicalized through the parser so the PlanSpec
	// (and with it the grid fingerprint) is identical however they were
	// spelled on the command line.
	var mobility []string
	if *mob != "" {
		for _, name := range strings.Split(*mob, ",") {
			k, err := scenario.ParseMobility(name)
			if err != nil {
				fail(err)
			}
			mobility = append(mobility, k.String())
		}
	}

	want := experiments.AllFigures()
	if *figs != "" {
		want = nil
		for _, s := range strings.Split(*figs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 7 || n > 21 {
				fail(fmt.Errorf("unknown figure %q (valid: 7-21)", s))
			}
			want = append(want, n)
		}
	}

	ps := experiments.PlanSpec{
		Figures:  want,
		Mobility: mobility,
		Duration: opts.Duration,
		Seeds:    opts.Seeds,
		BaseSeed: opts.BaseSeed,
	}
	plan, err := ps.Plan()
	if err != nil {
		fail(err)
	}
	cfgs := plan.Jobs()
	gridFP := plan.GridFingerprint()
	// Execution-control knobs are excluded from config fingerprints, so
	// applying them after the grid is built cannot move gridFP: journals
	// and artifacts stay resumable across watchdog settings.
	for i := range cfgs {
		cfgs[i].Deadline = *deadline
		cfgs[i].Check = checkTier
	}

	sel := make([]int, len(cfgs))
	for i := range sel {
		sel[i] = i
	}
	shardK, shardN := 1, 1
	if *shardSpec != "" {
		shardK, shardN, err = shard.ParseSpec(*shardSpec)
		if err != nil {
			fail(err)
		}
		sel = shard.Partition(plan.Costs(), shardK, shardN)
		if *out == "" {
			*out = fmt.Sprintf("figures-shard-%d-of-%d.json", shardK, shardN)
		}
	}

	var journal *shard.Journal
	if *journalPath != "" {
		var skipped int
		journal, skipped, err = shard.OpenJournalFS(fsys, *journalPath, "figures", gridFP)
		if err != nil {
			fail(err)
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "figures: journal: %d corrupt record(s) skipped; their jobs will re-run\n", skipped)
		}
	}
	if *resume && journal == nil {
		fail(fmt.Errorf("-resume needs -journal"))
	}

	var mu sync.Mutex
	results := make([]scenario.Result, len(cfgs))

	// Resume: preset every journaled success; failures re-run (transient
	// faults may pass; deterministic ones re-fail identically, so the
	// final tables come out byte-identical either way).
	var todo []int
	resumed := 0
	for _, gi := range sel {
		if *resume {
			if rec, ok := journal.Lookup(cfgs[gi].Fingerprint()); ok && rec.Err == "" {
				results[gi] = rec.Result(cfgs[gi])
				resumed++
				continue
			}
		}
		todo = append(todo, gi)
	}
	if resumed > 0 {
		fmt.Fprintf(os.Stderr, "figures: resume: %d of %d replications already journaled, %d to run\n",
			resumed, len(sel), len(todo))
	}

	// SIGINT/SIGTERM: flush the journal, then exit non-zero. Tables and
	// artifacts are whole-batch outputs — a partial one must not exist.
	// A second signal force-exits immediately: an operator hammering ^C
	// must not be held hostage by a wedged flush.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "\nfigures: second signal, exiting immediately")
			os.Exit(130)
		}()
		mu.Lock()
		defer mu.Unlock()
		if journal != nil {
			if err := journal.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
			}
		}
		fmt.Fprintf(os.Stderr, "\nfigures: %v: journal has %d record(s); re-run with -resume to continue\n",
			sig, journalLen(journal))
		os.Exit(1)
	}()

	run := make([]scenario.Config, len(todo))
	for i, gi := range todo {
		run[i] = cfgs[gi]
	}
	start := time.Now()
	completed, lastPct := 0, -1
	engine.SweepFunc(run, func(i int, res scenario.Result) {
		gi := todo[i]
		mu.Lock()
		results[gi] = res
		mu.Unlock()
		if journal != nil {
			if err := journal.Append(shard.RecordOf(gi, res, false)); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
			}
		}
		completed++
		if pct := completed * 100 / len(run); pct != lastPct {
			lastPct = pct
			fmt.Fprintf(os.Stderr, "\rfigures: %d/%d runs (%d%%)", completed, len(run), pct)
			if completed == len(run) {
				fmt.Fprintln(os.Stderr)
			}
		}
	})
	signal.Stop(sigc)
	reportFailures("figures", results, sel)

	if *shardSpec != "" {
		meta, err := json.Marshal(ps)
		if err != nil {
			fail(err)
		}
		art := &shard.Artifact{
			Kind: "figures", Shard: shardK, Shards: shardN,
			TotalJobs: len(cfgs), GridFP: gridFP, Meta: meta,
		}
		for _, gi := range sel {
			art.Jobs = append(art.Jobs, shard.RecordOf(gi, results[gi], false))
		}
		if err := shard.WriteArtifactFS(fsys, *out, art); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "figures: shard %d/%d: %d job(s) -> %s (grid %s)\n",
			shardK, shardN, len(sel), *out, gridFP)
		return
	}

	tables, err := plan.Tables(results)
	if err != nil {
		fail(err)
	}
	for _, tbl := range tables {
		fmt.Println(tbl.Format())
	}
	hits, misses := engine.TraceStats()
	fmt.Fprintf(os.Stderr, "generated %d table(s) in %.1fs on %d worker(s); trace cache: %d replays / %d recordings\n",
		len(tables), time.Since(start).Seconds(), engine.Workers(), hits, misses)
}

func journalLen(j *shard.Journal) int {
	if j == nil {
		return 0
	}
	return j.Len()
}

// reportFailures prints a one-line failure census by taxonomy kind —
// "panic=2 deadline=1" — so a long sweep log answers "what broke" at a
// glance. Silent when everything passed.
func reportFailures(tool string, results []scenario.Result, sel []int) {
	counts := map[string]int{}
	total := 0
	for _, gi := range sel {
		if err := results[gi].Err; err != nil {
			counts[runerr.Kind(err)]++
			total++
		}
	}
	if total == 0 {
		return
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%s=%d", k, counts[k])
	}
	fmt.Fprintf(os.Stderr, "%s: %d failed replication(s) by kind: %s\n", tool, total, strings.Join(parts, " "))
}
