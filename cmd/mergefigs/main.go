// Command mergefigs validates and merges the shard artifacts written by
// `figures -shard k/n` or `sweep -shard k/n` and emits the final output
// — figure tables or sweep CSV — byte-identical to the corresponding
// unsharded run. This works because artifacts carry raw counters, not
// derived means: the merge rehydrates each replication's summary bit for
// bit and pools them through the exact reduction the single-process path
// uses.
//
// Usage:
//
//	mergefigs shard-1.json shard-2.json shard-3.json > output
//
// Every artifact is integrity-checked (CRC envelope, schema version) and
// the set is validated as one complete, consistent grid before anything
// is pooled: artifacts from different grids (mismatched flags, figure
// sets or code versions), mixed shard splits, missing or duplicate
// shards, duplicate jobs and coverage holes are all rejected with errors
// naming the offending files. Shards with persistently failed
// replications merge fine — the affected points report partial seed
// coverage (figures footnotes, the sweep failed_runs column) instead of
// aborting the merge.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/shard"
	"repro/internal/sweepgrid"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mergefigs shard-1.json shard-2.json ... > output")
		flag.PrintDefaults()
	}
	flag.Parse()
	paths := flag.Args()
	if len(paths) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(paths); err != nil {
		fmt.Fprintln(os.Stderr, "mergefigs:", err)
		// The shard fabric's errors are typed; translate each class into
		// the operator's next move.
		switch {
		case errors.Is(err, shard.ErrCorrupt):
			fmt.Fprintln(os.Stderr, "mergefigs: (corrupt input: delete the named file and re-run its shard)")
		case errors.Is(err, shard.ErrGridMismatch):
			fmt.Fprintln(os.Stderr, "mergefigs: (grid mismatch: regenerate every shard with the same flags and code version)")
		case errors.Is(err, shard.ErrIncomplete):
			fmt.Fprintln(os.Stderr, "mergefigs: (incomplete results: re-run the missing shard(s), with -resume where a journal exists)")
		}
		os.Exit(1)
	}
}

func run(paths []string) error {
	arts := make([]*shard.Artifact, len(paths))
	for i, p := range paths {
		a, err := shard.ReadArtifact(p)
		if err != nil {
			return err
		}
		arts[i] = a
	}

	// The first artifact's Meta nominates the grid; Merge then verifies
	// every artifact (including the first) against the grid rebuilt from
	// it, so a lying Meta cannot pass — the fingerprint covers every job.
	switch kind := arts[0].Kind; kind {
	case "figures":
		var ps experiments.PlanSpec
		if err := json.Unmarshal(arts[0].Meta, &ps); err != nil {
			return fmt.Errorf("%s: figures meta: %w", paths[0], err)
		}
		plan, err := ps.Plan()
		if err != nil {
			return fmt.Errorf("%s: rebuilding plan: %w", paths[0], err)
		}
		results, nFailed, err := mergeResults(arts, paths, kind, plan.GridFingerprint(), plan.Jobs())
		if err != nil {
			return err
		}
		tables, err := plan.Tables(results)
		if err != nil {
			return err
		}
		for _, tbl := range tables {
			fmt.Println(tbl.Format())
		}
		fmt.Fprintf(os.Stderr, "mergefigs: %d shard(s), %d job(s), %d failed replication(s), %d table(s)\n",
			len(arts), plan.NumJobs(), nFailed, len(tables))
		return nil

	case "sweep":
		var a sweepgrid.Axes
		if err := json.Unmarshal(arts[0].Meta, &a); err != nil {
			return fmt.Errorf("%s: sweep meta: %w", paths[0], err)
		}
		points, cfgs, err := sweepgrid.Build(a)
		if err != nil {
			return fmt.Errorf("%s: rebuilding grid: %w", paths[0], err)
		}
		results, nFailed, err := mergeResults(arts, paths, kind, shard.GridFingerprint("sweep", a, cfgs), cfgs)
		if err != nil {
			return err
		}
		if err := sweepgrid.WriteCSV(os.Stdout, a, points, results); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mergefigs: %d shard(s), %d job(s), %d failed replication(s), %d point(s)\n",
			len(arts), len(cfgs), nFailed, len(points))
		return nil

	default:
		return fmt.Errorf("%s: unknown artifact kind %q (want \"figures\" or \"sweep\")", paths[0], kind)
	}
}

// mergeResults runs the shard-set validation against the rebuilt grid and
// rehydrates one result per job, double-checking each record's config
// fingerprint against the grid slot it claims.
func mergeResults(arts []*shard.Artifact, paths []string, kind, gridFP string, cfgs []scenario.Config) ([]scenario.Result, int, error) {
	records, err := shard.Merge(arts, paths, kind, gridFP, len(cfgs))
	if err != nil {
		return nil, 0, err
	}
	results := make([]scenario.Result, len(cfgs))
	nFailed := 0
	for i, rec := range records {
		if want := cfgs[i].Fingerprint(); rec.FP != want {
			return nil, 0, fmt.Errorf("config-mismatched shard: job %d carries config fingerprint %s, the grid expects %s", i, rec.FP, want)
		}
		if rec.Err != "" {
			nFailed++
		}
		results[i] = rec.Result(cfgs[i])
	}
	return results, nFailed, nil
}
