// Command benchsnap runs the repository's headline performance benchmarks
// (the BenchmarkRun* scenario suite and the simulator event-rate probes,
// mirroring bench_test.go) and writes the results to BENCH_<date>.json so
// the performance trajectory accumulates across PRs. Each benchmark reuses
// one scenario.RunContext across its iterations, exactly as sweep workers
// do, so allocs/op reports the steady-state per-replication cost.
//
//	go run ./cmd/benchsnap            # full measurements into ./BENCH_<date>.json
//	go run ./cmd/benchsnap -quick     # CI-friendly short runs
//	go run ./cmd/benchsnap -out perf/ # choose the output directory
//
// It doubles as the regression gate for the recorded trajectory:
//
//	go run ./cmd/benchsnap -compare old.json new.json
//
// prints per-benchmark deltas and exits non-zero when any benchmark's
// time regressed by more than 15%. Comparisons are made on ns per
// simulated second, so a -quick snapshot can be compared against a
// full-length baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/scenario"
)

// entry is one benchmark measurement.
type entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SimSeconds  float64 `json:"sim_seconds"` // simulated horizon per op
	// TraceHitRate is the mobility-trace cache's replay fraction for the
	// FigureSweep benchmarks (28 replays per 32-run point → 0.875 at
	// perfect sharing); zero for single-run benchmarks.
	TraceHitRate float64 `json:"trace_hit_rate,omitempty"`
}

// snapshot is the file layout of BENCH_<date>.json.
type snapshot struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GOMAXPROCS and SweepWorkers record the parallelism actually
	// available to the run: NumCPU alone says nothing about a
	// GOMAXPROCS-limited container, which is what made earlier
	// snapshots' sweep benchmarks uninterpretable.
	GOMAXPROCS   int  `json:"gomaxprocs"`
	SweepWorkers int  `json:"sweep_workers"`
	Quick        bool `json:"quick"`
	// EngineWorkers is the sweep engine width the FigureSweep benchmarks
	// ran at (1: trace sharing and arena persistence isolated from
	// parallelism); each FigureSweep entry records its own trace-cache
	// hit rate.
	EngineWorkers int `json:"engine_workers"`
	// FaultsActive records whether any benchmark ran with fault injection
	// enabled. The standard suite is fault-free; the flag exists so a
	// fault-enabled snapshot (hand-built for profiling the fault paths) is
	// never silently gated against a fault-free baseline — the workloads
	// differ, so the >15% comparison would be meaningless.
	FaultsActive bool `json:"faults_active"`
	// Groups is the concurrent-group count of the multi-group FigureSweep
	// benchmark (FigureSweepGroups<K>); zero in snapshots predating the
	// many-group workload. Two snapshots measured at different non-zero
	// counts never meet in -compare: a groups-16 point times a different
	// workload than a groups-8 one even when the benchmark names line up.
	Groups     int     `json:"groups"`
	Benchmarks []entry `json:"benchmarks"`
}

// bench describes one scenario measurement: the config mutator mirrors the
// corresponding function in bench_test.go.
type bench struct {
	name     string
	duration float64
	mutate   func(*scenario.Config)
}

// scale500 mirrors bench_test.go's 500-node scaling scenario: the paper's
// node density (hence a ~2372 m square) with the multicast group scaled
// to 20% of the network.
func scale500(c *scenario.Config) {
	c.Protocol = scenario.SSSPSTE
	c.N = 500
	c.AreaSide = 2372
	c.GroupSize = 100
}

func main() {
	quick := flag.Bool("quick", false, "shorter simulated horizons (CI)")
	outDir := flag.String("out", ".", "directory for BENCH_<date>.json")
	compare := flag.Bool("compare", false, "compare two snapshot files (old.json new.json) instead of measuring")
	threshold := flag.Float64("threshold", 0.15, "relative ns/op regression that fails -compare")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measurement runs to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the measurement runs to this file")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchsnap -compare old.json new.json")
			os.Exit(2)
		}
		os.Exit(compareSnapshots(flag.Arg(0), flag.Arg(1), *threshold))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	dur := 120.0
	if *quick {
		dur = 30
	}
	rateDur := dur / 2

	benches := []bench{
		{"RunSSSPST", dur, func(c *scenario.Config) { c.Protocol = scenario.SSSPST }},
		{"RunSSSPSTE", dur, func(c *scenario.Config) { c.Protocol = scenario.SSSPSTE }},
		{"RunMAODV", dur, func(c *scenario.Config) { c.Protocol = scenario.MAODV }},
		{"RunODMRP", dur, func(c *scenario.Config) { c.Protocol = scenario.ODMRP }},
		{"RunSSSPSTE200", dur, func(c *scenario.Config) { c.Protocol = scenario.SSSPSTE; c.N = 200 }},
		{"RunSSSPSTE200Brute", dur, func(c *scenario.Config) {
			c.Protocol = scenario.SSSPSTE
			c.N = 200
			c.Medium.Grid.Disable = true
		}},
		{"RunSSSPSTE500", dur, scale500},
		{"RunSSSPSTE500Brute", dur, func(c *scenario.Config) {
			scale500(c)
			c.Medium.Grid.Disable = true
		}},
		{"SimulatorEventRate", rateDur, nil},
		{"SimulatorEventRate200", rateDur, func(c *scenario.Config) { c.N = 200 }},
		{"SimulatorEventRate200Brute", rateDur, func(c *scenario.Config) {
			c.N = 200
			c.Medium.Grid.Disable = true
		}},
		{"SimulatorEventRate500", rateDur, scale500},
		{"SimulatorEventRate500Brute", rateDur, func(c *scenario.Config) {
			scale500(c)
			c.Medium.Grid.Disable = true
		}},
	}

	snap := snapshot{
		Date:         time.Now().UTC().Format("2006-01-02"),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		SweepWorkers: runtime.GOMAXPROCS(0), // scenario.Sweep's worker count
		Quick:        *quick,
	}

	iters := 5
	if *quick {
		iters = 3
	}
	for _, bm := range benches {
		// Record whether any benchmark injects faults: fault-on and
		// fault-off snapshots must never meet in -compare.
		probe := scenario.Default()
		if bm.mutate != nil {
			bm.mutate(&probe)
		}
		if probe.Faults.Any() {
			snap.FaultsActive = true
		}
		e := measure(bm, iters)
		snap.Benchmarks = append(snap.Benchmarks, e)
		fmt.Printf("%-28s %12d ns/op %10d B/op %9d allocs/op\n",
			bm.name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}

	// Figure-sweep benchmarks: one full figure point (8 protocols × 4
	// seeds) through a persistent workers=1 engine — the steady state of
	// the global experiment scheduler with parallelism factored out.
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintln(os.Stderr, "benchsnap: warning: GOMAXPROCS=1 — engine parallel speedup is unmeasurable on this host; FigureSweep numbers still isolate trace sharing and arena reuse")
	}
	snap.EngineWorkers = 1
	// benchGroups is the concurrent-group count of the multi-group point:
	// figure 21's heaviest standard K, recorded in the snapshot so
	// -compare never gates it against a point of a different width.
	const benchGroups = 8
	snap.Groups = benchGroups
	for _, fb := range []struct {
		name   string
		mob    scenario.MobilityKind
		groups int
	}{
		{"FigureSweep", scenario.RandomWaypoint, 1},
		{"FigureSweepGM", scenario.GaussMarkov, 1},
		{"FigureSweepGroups8", scenario.RandomWaypoint, benchGroups},
	} {
		e := measureFigureSweep(fb.name, fb.mob, dur/2, iters, fb.groups)
		snap.Benchmarks = append(snap.Benchmarks, e)
		fmt.Printf("%-28s %12d ns/op %10d B/op %9d allocs/op  (trace hit rate %.3f)\n",
			fb.name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.TraceHitRate)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		f.Close()
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	path := filepath.Join(*outDir, "BENCH_"+snap.Date+".json")
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}

// measure times one benchmark: a warmup replication grows the arena,
// then a fixed set of seeds is replicated on one shared RunContext —
// exactly a sweep worker's steady state. ns_per_op records the *minimum*
// replication time over the seed set: each seed's workload is
// deterministic and machine noise (scheduler steal, thermal drift) only
// ever inflates a replication, so the minimum is the repeatable
// estimator — means were observed to wobble ±4% between back-to-back
// snapshots on shared hardware, enough to flip close comparisons like
// grid-vs-brute at N=200. Grid and brute variants share the seed set, so
// their entries stay directly comparable. Allocations are averaged (they
// are deterministic per seed).
func measure(bm bench, iters int) entry {
	rc := scenario.NewRunContext()
	run := func(seed uint64) {
		cfg := scenario.Default()
		cfg.Duration = bm.duration
		cfg.VMax = 5
		cfg.Seed = seed
		if bm.mutate != nil {
			bm.mutate(&cfg)
		}
		rc.Run(cfg)
	}
	run(1)
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	best := int64(0)
	for i := 0; i < iters; i++ {
		start := time.Now()
		run(uint64(i) + 2)
		if d := time.Since(start).Nanoseconds(); best == 0 || d < best {
			best = d
		}
	}
	runtime.ReadMemStats(&ms1)
	return entry{
		Name:        bm.name,
		Iterations:  iters,
		NsPerOp:     best,
		AllocsPerOp: int64(ms1.Mallocs-ms0.Mallocs) / int64(iters),
		BytesPerOp:  int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(iters),
		SimSeconds:  bm.duration,
	}
}

// measureFigureSweep times whole figure points on a persistent workers=1
// engine: a warmup point grows the arenas, then each iteration sweeps a
// fresh point (new base seed → new traces) and the minimum wall time is
// reported, exactly like measure. sim_seconds is the point's total
// simulated extent so -compare normalizes against per-run benchmarks.
// groups > 1 times the multi-group point (figure 21's workload).
func measureFigureSweep(name string, mob scenario.MobilityKind, dur float64, iters, groups int) entry {
	eng := scenario.NewEngine(1)
	defer eng.Close()
	eng.Sweep(scenario.FigurePointConfigsGroups(mob, 1, dur, groups))
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	best := int64(0)
	for i := 0; i < iters; i++ {
		start := time.Now()
		eng.Sweep(scenario.FigurePointConfigsGroups(mob, uint64(i)+2, dur, groups))
		if d := time.Since(start).Nanoseconds(); best == 0 || d < best {
			best = d
		}
	}
	runtime.ReadMemStats(&ms1)
	hits, misses := eng.TraceStats()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	return entry{
		Name:         name,
		Iterations:   iters,
		NsPerOp:      best,
		AllocsPerOp:  int64(ms1.Mallocs-ms0.Mallocs) / int64(iters),
		BytesPerOp:   int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(iters),
		SimSeconds:   dur * 32,
		TraceHitRate: hitRate,
	}
}

// loadSnapshot reads one BENCH_<date>.json.
func loadSnapshot(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// compareSnapshots prints per-benchmark deltas between two snapshots and
// returns the process exit code: 1 when any benchmark's normalized time
// (ns per simulated second) regressed by more than threshold, 0 otherwise.
// Normalizing by the simulated horizon makes a -quick snapshot comparable
// to a full-length baseline; allocs/op deltas are printed for context but
// do not gate.
func compareSnapshots(oldPath, newPath string, threshold float64) int {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		return 2
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		return 2
	}
	if oldSnap.FaultsActive != newSnap.FaultsActive {
		fmt.Fprintf(os.Stderr, "benchsnap: refusing to compare: faults_active differs (%s: %v, %s: %v) — fault-on and fault-off snapshots time different workloads\n",
			oldPath, oldSnap.FaultsActive, newPath, newSnap.FaultsActive)
		return 2
	}
	if oldSnap.Groups != newSnap.Groups && oldSnap.Groups != 0 && newSnap.Groups != 0 {
		fmt.Fprintf(os.Stderr, "benchsnap: refusing to compare: groups differs (%s: %d, %s: %d) — multi-group points at different K time different workloads; zero (a snapshot predating the multi-group suite) is exempt, its deltas simply skip the Groups entries\n",
			oldPath, oldSnap.Groups, newPath, newSnap.Groups)
		return 2
	}
	oldBy := make(map[string]entry, len(oldSnap.Benchmarks))
	for _, e := range oldSnap.Benchmarks {
		oldBy[e.Name] = e
	}

	fmt.Printf("comparing %s (%s) -> %s (%s), gate at +%.0f%% ns/sim-second\n",
		oldPath, oldSnap.Date, newPath, newSnap.Date, threshold*100)
	fmt.Printf("%-28s %14s %14s %8s %9s\n", "benchmark", "old ns/sims", "new ns/sims", "delta", "allocs")
	regressed := 0
	for _, n := range newSnap.Benchmarks {
		o, ok := oldBy[n.Name]
		if !ok {
			fmt.Printf("%-28s %14s %14.0f %8s %9d  (new benchmark)\n",
				n.Name, "-", rate(n), "-", n.AllocsPerOp)
			continue
		}
		delete(oldBy, n.Name)
		or, nr := rate(o), rate(n)
		delta := nr/or - 1
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressed++
		}
		fmt.Printf("%-28s %14.0f %14.0f %+7.1f%% %+8.1f%%%s\n",
			n.Name, or, nr, delta*100, allocDelta(o, n)*100, mark)
	}
	for name := range oldBy {
		fmt.Printf("%-28s  (dropped from new snapshot)\n", name)
	}
	if regressed > 0 {
		fmt.Printf("%d benchmark(s) regressed beyond %.0f%%\n", regressed, threshold*100)
		return 1
	}
	fmt.Println("no regressions beyond threshold")
	return 0
}

// rate returns an entry's ns per simulated second.
func rate(e entry) float64 {
	if e.SimSeconds <= 0 {
		return float64(e.NsPerOp)
	}
	return float64(e.NsPerOp) / e.SimSeconds
}

// allocDelta returns the relative allocs/op change, normalized per
// simulated second like rate.
func allocDelta(o, n entry) float64 {
	oa := float64(o.AllocsPerOp) / maxf(o.SimSeconds, 1)
	na := float64(n.AllocsPerOp) / maxf(n.SimSeconds, 1)
	if oa == 0 {
		return 0
	}
	return na/oa - 1
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
