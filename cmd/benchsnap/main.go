// Command benchsnap runs the repository's headline performance benchmarks
// (the BenchmarkRun* scenario suite and the simulator event-rate probes,
// mirroring bench_test.go) and writes the results to BENCH_<date>.json so
// the performance trajectory accumulates across PRs.
//
//	go run ./cmd/benchsnap            # full measurements into ./BENCH_<date>.json
//	go run ./cmd/benchsnap -quick     # CI-friendly short runs
//	go run ./cmd/benchsnap -out perf/ # choose the output directory
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/scenario"
)

// entry is one benchmark measurement.
type entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SimSeconds  float64 `json:"sim_seconds"` // simulated horizon per op
}

// snapshot is the file layout of BENCH_<date>.json.
type snapshot struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	Quick      bool    `json:"quick"`
	Benchmarks []entry `json:"benchmarks"`
}

// bench describes one scenario measurement: the config mutator mirrors the
// corresponding function in bench_test.go.
type bench struct {
	name     string
	duration float64
	mutate   func(*scenario.Config)
}

func main() {
	quick := flag.Bool("quick", false, "shorter simulated horizons (CI)")
	outDir := flag.String("out", ".", "directory for BENCH_<date>.json")
	flag.Parse()

	dur := 120.0
	if *quick {
		dur = 30
	}
	rateDur := dur / 2

	benches := []bench{
		{"RunSSSPST", dur, func(c *scenario.Config) { c.Protocol = scenario.SSSPST }},
		{"RunSSSPSTE", dur, func(c *scenario.Config) { c.Protocol = scenario.SSSPSTE }},
		{"RunMAODV", dur, func(c *scenario.Config) { c.Protocol = scenario.MAODV }},
		{"RunODMRP", dur, func(c *scenario.Config) { c.Protocol = scenario.ODMRP }},
		{"RunSSSPSTE200", dur, func(c *scenario.Config) { c.Protocol = scenario.SSSPSTE; c.N = 200 }},
		{"RunSSSPSTE200Brute", dur, func(c *scenario.Config) {
			c.Protocol = scenario.SSSPSTE
			c.N = 200
			c.Medium.Grid.Disable = true
		}},
		{"SimulatorEventRate", rateDur, nil},
		{"SimulatorEventRate200", rateDur, func(c *scenario.Config) { c.N = 200 }},
		{"SimulatorEventRate200Brute", rateDur, func(c *scenario.Config) {
			c.N = 200
			c.Medium.Grid.Disable = true
		}},
	}

	snap := snapshot{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Quick:     *quick,
	}

	for _, bm := range benches {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := scenario.Default()
				cfg.Duration = bm.duration
				cfg.VMax = 5
				cfg.Seed = uint64(i) + 1
				if bm.mutate != nil {
					bm.mutate(&cfg)
				}
				scenario.Run(cfg)
			}
		})
		e := entry{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			SimSeconds:  bm.duration,
		}
		snap.Benchmarks = append(snap.Benchmarks, e)
		fmt.Printf("%-28s %12d ns/op %10d B/op %9d allocs/op\n",
			bm.name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}

	path := filepath.Join(*outDir, "BENCH_"+snap.Date+".json")
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}
