// Command sweep runs an arbitrary parameter grid and emits one CSV row
// per (mobility, protocol, velocity, group size, group count, beacon,
// churn, battery, loss, crash-MTBF) point with each headline metric as
// mean ± CI95 across seeds — the raw material for custom plots beyond the
// paper's figures. With -raw it emits one row per seed instead.
// Single-seed points print a CI of 0.
//
// Usage:
//
//	sweep -protos ss-spst,ss-spst-e -vmax 1,5,10,20 -groupsize 10,30 \
//	      -groups 1,4,16 \
//	      -mobility rwp,gauss-markov,rpgm,manhattan \
//	      -churn 0,5,20 -battery 0,10 \
//	      -loss 0,4,16 -crash-mtbf 0,300 \
//	      -seeds 3 -duration 300 [-workers N] > results.csv
//
// -groupsize sweeps the primary group's receiver count; -groups sweeps the
// number of concurrent multicast groups (topics) multiplexed over each
// node's radio. -loss sweeps Gilbert-Elliott bursty channel loss by mean
// burst length; -crash-mtbf sweeps crash/reboot node faults (see the
// sweepgrid package for the full axis semantics).
//
// # Crash tolerance and sharding
//
// -shard k/n runs only the k-th of n deterministic, cost-balanced slices
// of the job grid and writes a raw-counter artifact (to -out) instead of
// CSV; cmd/mergefigs validates and merges the n artifacts into CSV
// byte-identical to an unsharded run. -journal FILE checkpoints every
// completed replication crash-safely (write-temp-fsync-rename per
// record); -resume skips replications the journal already holds, so a
// SIGKILLed sweep re-runs at most the one replication that was in
// flight. -retries bounds the re-execution of failed replications
// (identical consecutive failures are classified deterministic and not
// retried); persistent failures flow into the failed_runs column rather
// than aborting the sweep. On SIGINT/SIGTERM the journal is flushed and
// the CSV rows of every fully-completed point are emitted before exiting
// non-zero; a second signal force-exits immediately.
//
// -deadline bounds each replication's wall-clock time; -check selects
// the end-of-run invariant tier (cheap, full, off); -chaos-fs seed,rate
// injects deterministic I/O faults under the journal/artifact writers
// (a test hook for the crash-tolerance machinery).
//
// The grid runs as one batch on the shared sweep engine (cost-ordered
// queue, persistent worker arenas, shared mobility traces across the
// protocols at each point); progress streams to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/fsio"
	"repro/internal/runerr"
	"repro/internal/scenario"
	"repro/internal/shard"
	"repro/internal/sweepgrid"
)

func main() {
	a := sweepgrid.Axes{}
	flag.StringVar(&a.Protos, "protos", "ss-spst,ss-spst-e", "comma-separated protocols")
	flag.StringVar(&a.VMaxs, "vmax", "1,5,10,20", "comma-separated max speeds (m/s)")
	flag.StringVar(&a.GroupSizes, "groupsize", "20", "comma-separated group sizes (receivers in the primary group)")
	flag.StringVar(&a.GroupCounts, "groups", "1", "comma-separated concurrent group (topic) counts; 1 = the paper's single group")
	flag.StringVar(&a.Beacons, "beacons", "2", "comma-separated beacon intervals (s)")
	flag.StringVar(&a.Churns, "churn", "0", "comma-separated membership-churn intervals (s); 0 = no churn")
	flag.StringVar(&a.Batteries, "battery", "0", "comma-separated per-node battery reserves (J); 0 = unlimited")
	flag.StringVar(&a.Losses, "loss", "0", "comma-separated Gilbert-Elliott mean loss burst lengths (packets); 0 = no injected loss")
	flag.StringVar(&a.CrashMTBFs, "crash-mtbf", "0", "comma-separated crash mean-time-between-failures (s); 0 = no crashes")
	flag.Float64Var(&a.CrashMTTR, "crash-mttr", 0, "crash mean repair time (s); 0 = MTBF/10")
	flag.StringVar(&a.Mobilities, "mobility", "rwp", "comma-separated mobility models (rwp, random-direction, gauss-markov, rpgm, manhattan, static)")
	flag.IntVar(&a.Seeds, "seeds", 2, "seeds per point")
	flag.Float64Var(&a.Duration, "duration", 180, "simulated seconds per run")
	flag.BoolVar(&a.Raw, "raw", false, "emit one row per seed instead of mean ± CI95 per point")
	workers := flag.Int("workers", 0, "sweep engine width (default: GOMAXPROCS)")
	shardSpec := flag.String("shard", "", "run slice k/n of the job grid and write an artifact instead of CSV (merge with mergefigs)")
	out := flag.String("out", "", "artifact path for -shard (default sweep-shard-K-of-N.json)")
	journalPath := flag.String("journal", "", "checkpoint journal: record every completed replication crash-safely")
	resume := flag.Bool("resume", false, "skip replications already recorded in -journal")
	retries := flag.Int("retries", 1, "re-runs of a failed replication before recording the failure (0 = none)")
	deadline := flag.Float64("deadline", 0, "wall-clock seconds per replication before it fails typed (0 = unlimited)")
	check := flag.String("check", "cheap", "end-of-run invariant tier: cheap, full or off")
	chaosFS := flag.String("chaos-fs", "", "inject seed-scheduled I/O faults under journal/artifact writers, as \"seed,rate\" (test hook)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}

	checkTier, err := scenario.ParseCheckTier(*check)
	if err != nil {
		fail(err)
	}
	var fsys fsio.FS = fsio.OS
	if *chaosFS != "" {
		seed, rate, err := fsio.ParseSpec(*chaosFS)
		if err != nil {
			fail(err)
		}
		fsys = fsio.NewFaultFS(fsio.OS, seed, rate)
	}

	if *workers > 0 {
		scenario.ConfigureDefaultEngine(*workers)
	}
	engine := scenario.DefaultEngine()
	engine.SetRetryPolicy(*retries, 100*time.Millisecond)

	points, cfgs, err := sweepgrid.Build(a)
	if err != nil {
		fail(err)
	}
	gridFP := shard.GridFingerprint("sweep", a, cfgs)
	// Execution-control knobs are excluded from config fingerprints, so
	// applying them after the grid is built cannot move gridFP: journals
	// and artifacts stay resumable across watchdog settings.
	for i := range cfgs {
		cfgs[i].Deadline = *deadline
		cfgs[i].Check = checkTier
	}

	// sel is the global job-index slice this process owns: the whole grid,
	// or its deterministic cost-balanced shard.
	sel := make([]int, len(cfgs))
	for i := range sel {
		sel[i] = i
	}
	shardK, shardN := 1, 1
	if *shardSpec != "" {
		shardK, shardN, err = shard.ParseSpec(*shardSpec)
		if err != nil {
			fail(err)
		}
		costs := make([]float64, len(cfgs))
		for i, cfg := range cfgs {
			costs[i] = float64(cfg.N) * cfg.Duration
		}
		sel = shard.Partition(costs, shardK, shardN)
		if *out == "" {
			*out = fmt.Sprintf("sweep-shard-%d-of-%d.json", shardK, shardN)
		}
	}

	var journal *shard.Journal
	if *journalPath != "" {
		var skipped int
		journal, skipped, err = shard.OpenJournalFS(fsys, *journalPath, "sweep", gridFP)
		if err != nil {
			fail(err)
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "sweep: journal: %d corrupt record(s) skipped; their jobs will re-run\n", skipped)
		}
	}
	if *resume && journal == nil {
		fail(fmt.Errorf("-resume needs -journal"))
	}

	// results/done are shared with the signal handler; mu guards them.
	var mu sync.Mutex
	results := make([]scenario.Result, len(cfgs))
	done := make([]bool, len(cfgs))

	// Resume: preset every journaled success; failures re-run (a transient
	// fault may pass this time — a deterministic one re-fails identically,
	// keeping the final output byte-identical either way).
	var todo []int
	resumed := 0
	for _, gi := range sel {
		if *resume {
			if rec, ok := journal.Lookup(cfgs[gi].Fingerprint()); ok && rec.Err == "" {
				results[gi] = rec.Result(cfgs[gi])
				done[gi] = true
				resumed++
				continue
			}
		}
		todo = append(todo, gi)
	}
	if resumed > 0 {
		fmt.Fprintf(os.Stderr, "sweep: resume: %d of %d replications already journaled, %d to run\n",
			resumed, len(sel), len(todo))
	}

	// SIGINT/SIGTERM: flush the journal and the CSV rows of every
	// fully-completed point, then exit non-zero. The artifact is not
	// written — a partial shard must not look mergeable.
	// A second signal force-exits immediately: an operator hammering ^C
	// must not be held hostage by a wedged flush.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "\nsweep: second signal, exiting immediately")
			os.Exit(130)
		}()
		mu.Lock()
		defer mu.Unlock()
		if journal != nil {
			if err := journal.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
			}
		}
		if *shardSpec == "" {
			n, err := sweepgrid.WriteCompletedCSV(os.Stdout, a, points, results, done)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
			}
			fmt.Fprintf(os.Stderr, "\nsweep: %v: flushed %d completed point(s); journal has %d record(s)\n",
				sig, n, journalLen(journal))
		} else {
			fmt.Fprintf(os.Stderr, "\nsweep: %v: journal has %d record(s); artifact not written (re-run with -resume)\n",
				sig, journalLen(journal))
		}
		os.Exit(1)
	}()

	run := make([]scenario.Config, len(todo))
	for i, gi := range todo {
		run[i] = cfgs[gi]
	}
	completed, lastPct := 0, -1
	engine.SweepFunc(run, func(i int, res scenario.Result) {
		gi := todo[i]
		mu.Lock()
		results[gi] = res
		done[gi] = true
		mu.Unlock()
		if journal != nil {
			if err := journal.Append(shard.RecordOf(gi, res, true)); err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
			}
		}
		completed++
		if pct := completed * 100 / len(run); pct != lastPct {
			lastPct = pct
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d runs (%d%%)", completed, len(run), pct)
			if completed == len(run) {
				fmt.Fprintln(os.Stderr)
			}
		}
	})
	signal.Stop(sigc)
	reportFailures("sweep", results, sel)
	hits, misses := engine.TraceStats()
	fmt.Fprintf(os.Stderr, "%d runs on %d worker(s); trace cache: %d replays / %d recordings\n",
		len(run), engine.Workers(), hits, misses)

	if *shardSpec != "" {
		meta, err := json.Marshal(a)
		if err != nil {
			fail(err)
		}
		art := &shard.Artifact{
			Kind: "sweep", Shard: shardK, Shards: shardN,
			TotalJobs: len(cfgs), GridFP: gridFP, Meta: meta,
		}
		for _, gi := range sel {
			art.Jobs = append(art.Jobs, shard.RecordOf(gi, results[gi], true))
		}
		if err := shard.WriteArtifactFS(fsys, *out, art); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "sweep: shard %d/%d: %d job(s) -> %s (grid %s)\n",
			shardK, shardN, len(sel), *out, gridFP)
		return
	}
	if err := sweepgrid.WriteCSV(os.Stdout, a, points, results); err != nil {
		fail(err)
	}
}

func journalLen(j *shard.Journal) int {
	if j == nil {
		return 0
	}
	return j.Len()
}

// reportFailures prints a one-line failure census by taxonomy kind —
// "panic=2 deadline=1" — so a long sweep log answers "what broke" at a
// glance. Silent when everything passed.
func reportFailures(tool string, results []scenario.Result, sel []int) {
	counts := map[string]int{}
	total := 0
	for _, gi := range sel {
		if err := results[gi].Err; err != nil {
			counts[runerr.Kind(err)]++
			total++
		}
	}
	if total == 0 {
		return
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%s=%d", k, counts[k])
	}
	fmt.Fprintf(os.Stderr, "%s: %d failed replication(s) by kind: %s\n", tool, total, strings.Join(parts, " "))
}
