// Command sweep runs an arbitrary parameter grid and emits one CSV row
// per (mobility, protocol, velocity, group size, group count, beacon,
// churn, battery, loss, crash-MTBF) point with each headline metric as
// mean ± CI95 across seeds — the raw material for custom plots beyond the
// paper's figures. With -raw it emits one row per seed instead.
// Single-seed points print a CI of 0.
//
// Usage:
//
//	sweep -protos ss-spst,ss-spst-e -vmax 1,5,10,20 -groupsize 10,30 \
//	      -groups 1,4,16 \
//	      -mobility rwp,gauss-markov,rpgm,manhattan \
//	      -churn 0,5,20 -battery 0,10 \
//	      -loss 0,4,16 -crash-mtbf 0,300 \
//	      -seeds 3 -duration 300 [-workers N] > results.csv
//
// -groupsize sweeps the primary group's receiver count; -groups sweeps the
// number of concurrent multicast groups (topics) multiplexed over each
// node's radio — per-topic popularity is Zipf-skewed, topic 0 keeping the
// configured size and rate. Aggregated points with more than one topic
// emit a pooled row (topic "all") followed by one row per topic whose
// metrics come from that topic's own summaries; per-topic rows leave the
// node-lifecycle columns (dead nodes, deaths, retries) zero, as those are
// radio-level, not per-topic, quantities.
//
// -loss sweeps Gilbert-Elliott bursty channel loss by mean burst length in
// packets (0 = off; the figure 20a calibration: P(good→bad) = 0.05, 80%
// loss in the bad state). -crash-mtbf sweeps crash/reboot node faults by
// mean time between crashes in seconds (0 = off; -crash-mttr sets the mean
// repair time, 0 = MTBF/10). Aggregated rows carry failed_runs (panics and
// watchdog aborts, excluded from every metric pool) and retries (total
// SS-SPST join retries across the pooled seeds).
//
// The grid runs as one batch on the shared sweep engine (cost-ordered
// queue, persistent worker arenas, shared mobility traces across the
// protocols at each point); progress streams to stderr.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

var protoByName = map[string]scenario.ProtocolKind{
	"ss-spst":   scenario.SSSPST,
	"ss-spst-t": scenario.SSSPSTT,
	"ss-spst-f": scenario.SSSPSTF,
	"ss-spst-e": scenario.SSSPSTE,
	"ss-mst":    scenario.SSMST,
	"maodv":     scenario.MAODV,
	"odmrp":     scenario.ODMRP,
	"flood":     scenario.Flood,
}

// point is one grid cell; its seeds vary only the RNG.
type point struct {
	mobility  scenario.MobilityKind
	proto     scenario.ProtocolKind
	vmax      float64
	group     int
	groups    int // concurrent multicast groups (topics); 1 = paper workload
	beacon    float64
	churn     float64 // membership-churn interval (s); 0 = no churn
	battery   float64 // joules per node; 0 = unlimited
	loss      float64 // GE mean loss burst length (packets); 0 = no injected loss
	crashMTBF float64 // mean time between crashes (s); 0 = no crashes
}

// faultsFor translates the CLI fault axes into a faults config: loss is
// the Gilbert-Elliott mean burst length (figure 20a calibration), mtbf the
// crash process mean (mttr 0 defaults to MTBF/10 in the model).
func faultsFor(loss, mtbf, mttr float64) (f faults.Config) {
	if loss > 0 {
		f.Loss = faults.GEConfig{PGoodBad: 0.05, PBadGood: 1 / loss, LossBad: 0.8}
	}
	if mtbf > 0 {
		f.CrashMTBF = mtbf
		f.CrashMTTR = mttr
	}
	return f
}

func main() {
	protos := flag.String("protos", "ss-spst,ss-spst-e", "comma-separated protocols")
	vmaxs := flag.String("vmax", "1,5,10,20", "comma-separated max speeds (m/s)")
	groupSizes := flag.String("groupsize", "20", "comma-separated group sizes (receivers in the primary group)")
	groupCounts := flag.String("groups", "1", "comma-separated concurrent group (topic) counts; 1 = the paper's single group")
	beacons := flag.String("beacons", "2", "comma-separated beacon intervals (s)")
	churns := flag.String("churn", "0", "comma-separated membership-churn intervals (s); 0 = no churn")
	batteries := flag.String("battery", "0", "comma-separated per-node battery reserves (J); 0 = unlimited")
	losses := flag.String("loss", "0", "comma-separated Gilbert-Elliott mean loss burst lengths (packets); 0 = no injected loss")
	crashMTBFs := flag.String("crash-mtbf", "0", "comma-separated crash mean-time-between-failures (s); 0 = no crashes")
	crashMTTR := flag.Float64("crash-mttr", 0, "crash mean repair time (s); 0 = MTBF/10")
	mobilities := flag.String("mobility", "rwp", "comma-separated mobility models (rwp, random-direction, gauss-markov, rpgm, manhattan, static)")
	seeds := flag.Int("seeds", 2, "seeds per point")
	duration := flag.Float64("duration", 180, "simulated seconds per run")
	raw := flag.Bool("raw", false, "emit one row per seed instead of mean ± CI95 per point")
	workers := flag.Int("workers", 0, "sweep engine width (default: GOMAXPROCS)")
	flag.Parse()

	if *workers > 0 {
		scenario.ConfigureDefaultEngine(*workers)
	}

	var kinds []scenario.MobilityKind
	for _, name := range splitList(*mobilities) {
		k, err := scenario.ParseMobility(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		kinds = append(kinds, k)
	}

	var cfgs []scenario.Config
	var points []point
	completed := 0
	for _, m := range kinds {
		for _, pName := range splitList(*protos) {
			kind, ok := protoByName[pName]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown protocol %q\n", pName)
				os.Exit(2)
			}
			for _, v := range parseFloats(*vmaxs) {
				for _, g := range parseInts(*groupSizes) {
					for _, k := range parseInts(*groupCounts) {
						for _, b := range parseFloats(*beacons) {
							for _, ch := range parseFloats(*churns) {
								for _, bat := range parseFloats(*batteries) {
									for _, loss := range parseFloats(*losses) {
										for _, mtbf := range parseFloats(*crashMTBFs) {
											points = append(points, point{m, kind, v, g, k, b, ch, bat, loss, mtbf})
											for s := 0; s < *seeds; s++ {
												cfg := scenario.Default()
												cfg.Mobility = m
												cfg.Protocol = kind
												cfg.VMax = v
												cfg.GroupSize = g
												cfg.Groups = k
												cfg.BeaconInterval = b
												cfg.MemberChurnInterval = ch
												cfg.Battery = bat
												cfg.Faults = faultsFor(loss, mtbf, *crashMTTR)
												cfg.Duration = *duration
												cfg.Seed = scenario.ReplicationSeed(1, s)
												if err := cfg.Validate(); err != nil {
													fmt.Fprintln(os.Stderr, "sweep:", err)
													os.Exit(1)
												}
												cfgs = append(cfgs, cfg)
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}

	engine := scenario.DefaultEngine()
	lastPct := -1
	results := engine.SweepFunc(cfgs, func(done int, _ scenario.Result) {
		completed++
		if pct := completed * 100 / len(cfgs); pct != lastPct {
			lastPct = pct
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d runs (%d%%)", completed, len(cfgs), pct)
			if completed == len(cfgs) {
				fmt.Fprintln(os.Stderr)
			}
		}
	})
	hits, misses := engine.TraceStats()
	fmt.Fprintf(os.Stderr, "%d runs on %d worker(s); trace cache: %d replays / %d recordings\n",
		len(cfgs), engine.Workers(), hits, misses)

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	if *raw {
		writeRaw(w, results)
		return
	}
	writeAggregated(w, points, results, *seeds)
}

// cfgBurst recovers the -loss axis value (GE mean burst length) from a
// run's config; 0 when no loss was injected.
func cfgBurst(c scenario.Config) float64 {
	if c.Faults.Loss.PBadGood > 0 {
		return 1 / c.Faults.Loss.PBadGood
	}
	return 0
}

// cfgGroups recovers the -groups axis value (concurrent topic count) from
// a run's config; the zero value means the single paper group.
func cfgGroups(c scenario.Config) int {
	if c.Groups > 1 {
		return c.Groups
	}
	return 1
}

// writeRaw emits the legacy one-row-per-seed format. A failed replication
// (isolated panic, watchdog abort) keeps its identifying columns, sets
// failed=1 and zeroes every metric — consumers filter on the flag.
func writeRaw(w *csv.Writer, results []scenario.Result) {
	w.Write([]string{
		"mobility", "protocol", "vmax", "group", "groups", "beacon", "churn", "battery",
		"loss", "crash_mtbf", "seed",
		"pdr", "energy_per_pkt_mJ", "delay_ms", "ctrl_per_data_byte",
		"unavailability", "total_energy_J", "tx_J", "rx_J", "discard_J",
		"dead_nodes", "first_death_s", "half_death_s", "retries", "failed",
	})
	for _, r := range results {
		s := r.Summary
		c := r.Config
		failed := "0"
		if r.Err != nil {
			failed = "1"
		}
		w.Write([]string{
			c.Mobility.String(), c.Protocol.String(),
			ftoa(c.VMax), strconv.Itoa(c.GroupSize), strconv.Itoa(cfgGroups(c)),
			ftoa(c.BeaconInterval),
			ftoa(c.MemberChurnInterval), ftoa(c.Battery),
			ftoa(cfgBurst(c)), ftoa(c.Faults.CrashMTBF),
			strconv.FormatUint(c.Seed, 10),
			ftoa(s.PDR), ftoa(s.EnergyPerDeliveredJ * 1e3), ftoa(s.AvgDelayS * 1e3),
			ftoa(s.CtrlPerDataByte), ftoa(s.Unavailability),
			ftoa(s.TotalEnergyJ), ftoa(s.TxJ), ftoa(s.RxJ), ftoa(s.DiscardJ),
			strconv.Itoa(s.DeadNodes), ftoa(s.FirstDeathS), ftoa(s.HalfDeathS),
			strconv.Itoa(s.Faults.JoinRetries), failed,
		})
	}
}

// writeAggregated reduces each point's seeds to mean ± CI95 columns. The
// mean is the pooled (denominator-weighted) metrics.Mean; the CI is the
// Student-t 95% half-width of the per-seed values. Failed replications
// join no pool: n_seeds still reports the attempted count, failed_runs how
// many were excluded. Multi-topic points (groups > 1) emit the pooled row
// (topic "all") followed by one row per topic, pooled from that topic's
// per-seed summaries; node-lifecycle columns stay zero on per-topic rows
// because battery death and crash retries are radio-level, not per-topic.
func writeAggregated(w *csv.Writer, points []point, results []scenario.Result, seeds int) {
	w.Write([]string{
		"mobility", "protocol", "vmax", "group", "groups", "topic",
		"beacon", "churn", "battery",
		"loss", "crash_mtbf", "seeds",
		"pdr", "pdr_ci95",
		"energy_per_pkt_mJ", "energy_per_pkt_ci95",
		"delay_ms", "delay_ci95",
		"ctrl_per_data_byte", "ctrl_ci95",
		"unavailability", "unavailability_ci95",
		"total_energy_J", "total_energy_ci95",
		"dead_nodes", "dead_nodes_ci95",
		"first_death_s", "first_death_ci95",
		"retries", "failed_runs",
	})
	row := func(p point, topic string, sums []metrics.Summary, agg *metrics.Aggregate) {
		pooled := metrics.Mean(sums)
		nOK := len(sums)
		deadPerRun := 0.0
		if nOK > 0 {
			deadPerRun = float64(pooled.DeadNodes) / float64(nOK)
		}
		k := p.groups
		if k < 1 {
			k = 1
		}
		w.Write([]string{
			p.mobility.String(), p.proto.String(),
			ftoa(p.vmax), strconv.Itoa(p.group), strconv.Itoa(k), topic,
			ftoa(p.beacon),
			ftoa(p.churn), ftoa(p.battery),
			ftoa(p.loss), ftoa(p.crashMTBF), strconv.Itoa(seeds),
			ftoa(pooled.PDR), ftoa(agg.PDR.CI95()),
			ftoa(pooled.EnergyPerDeliveredJ * 1e3), ftoa(agg.EnergyPerPkt.CI95() * 1e3),
			ftoa(pooled.AvgDelayS * 1e3), ftoa(agg.DelayS.CI95() * 1e3),
			ftoa(pooled.CtrlPerDataByte), ftoa(agg.CtrlPerByte.CI95()),
			ftoa(pooled.Unavailability), ftoa(agg.Unavailability.CI95()),
			ftoa(pooled.TotalEnergyJ), ftoa(agg.TotalEnergyJ.CI95()),
			ftoa(deadPerRun), ftoa(agg.DeadNodes.CI95()),
			ftoa(pooled.FirstDeathS), ftoa(agg.FirstDeathS.CI95()),
			strconv.Itoa(pooled.Faults.JoinRetries), strconv.Itoa(agg.Failed),
		})
	}
	for i, p := range points {
		var agg metrics.Aggregate
		var sums []metrics.Summary
		for s := 0; s < seeds; s++ {
			r := results[i*seeds+s]
			if r.Err != nil {
				agg.AddFailed()
				continue
			}
			sums = append(sums, r.Summary)
			agg.AddSummary(r.Summary)
		}
		row(p, "all", sums, &agg)
		if p.groups <= 1 {
			continue
		}
		for g := 0; g < p.groups; g++ {
			var tagg metrics.Aggregate
			var tsums []metrics.Summary
			for s := 0; s < seeds; s++ {
				r := results[i*seeds+s]
				if r.Err != nil || g >= len(r.PerGroup) {
					tagg.AddFailed()
					continue
				}
				tsums = append(tsums, r.PerGroup[g])
				tagg.AddSummary(r.PerGroup[g])
			}
			row(p, strconv.Itoa(g), tsums, &tagg)
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.ToLower(p))
		}
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad number %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, v := range parseFloats(s) {
		out = append(out, int(v))
	}
	return out
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', 6, 64) }
