// Command sweep runs an arbitrary parameter grid and emits one CSV row
// per (protocol, velocity, group size, seed) combination — the raw
// material for custom plots beyond the paper's figures.
//
// Usage:
//
//	sweep -protos ss-spst,ss-spst-e -vmax 1,5,10,20 -groups 10,30 \
//	      -seeds 3 -duration 300 > results.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/scenario"
)

var protoByName = map[string]scenario.ProtocolKind{
	"ss-spst":   scenario.SSSPST,
	"ss-spst-t": scenario.SSSPSTT,
	"ss-spst-f": scenario.SSSPSTF,
	"ss-spst-e": scenario.SSSPSTE,
	"ss-mst":    scenario.SSMST,
	"maodv":     scenario.MAODV,
	"odmrp":     scenario.ODMRP,
	"flood":     scenario.Flood,
}

func main() {
	protos := flag.String("protos", "ss-spst,ss-spst-e", "comma-separated protocols")
	vmaxs := flag.String("vmax", "1,5,10,20", "comma-separated max speeds (m/s)")
	groups := flag.String("groups", "20", "comma-separated group sizes")
	beacons := flag.String("beacons", "2", "comma-separated beacon intervals (s)")
	seeds := flag.Int("seeds", 2, "seeds per point")
	duration := flag.Float64("duration", 180, "simulated seconds per run")
	flag.Parse()

	var cfgs []scenario.Config
	for _, pName := range splitList(*protos) {
		kind, ok := protoByName[pName]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown protocol %q\n", pName)
			os.Exit(2)
		}
		for _, v := range parseFloats(*vmaxs) {
			for _, g := range parseInts(*groups) {
				for _, b := range parseFloats(*beacons) {
					for s := 0; s < *seeds; s++ {
						cfg := scenario.Default()
						cfg.Protocol = kind
						cfg.VMax = v
						cfg.GroupSize = g
						cfg.BeaconInterval = b
						cfg.Duration = *duration
						cfg.Seed = 1 + uint64(s)*1000003
						cfgs = append(cfgs, cfg)
					}
				}
			}
		}
	}

	results := scenario.Sweep(cfgs)

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	w.Write([]string{
		"protocol", "vmax", "group", "beacon", "seed",
		"pdr", "energy_per_pkt_mJ", "delay_ms", "ctrl_per_data_byte",
		"unavailability", "total_energy_J", "tx_J", "rx_J", "discard_J",
	})
	for _, r := range results {
		s := r.Summary
		c := r.Config
		w.Write([]string{
			c.Protocol.String(),
			ftoa(c.VMax), strconv.Itoa(c.GroupSize), ftoa(c.BeaconInterval),
			strconv.FormatUint(c.Seed, 10),
			ftoa(s.PDR), ftoa(s.EnergyPerDeliveredJ * 1e3), ftoa(s.AvgDelayS * 1e3),
			ftoa(s.CtrlPerDataByte), ftoa(s.Unavailability),
			ftoa(s.TotalEnergyJ), ftoa(s.TxJ), ftoa(s.RxJ), ftoa(s.DiscardJ),
		})
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.ToLower(p))
		}
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad number %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, v := range parseFloats(s) {
		out = append(out, int(v))
	}
	return out
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', 6, 64) }
