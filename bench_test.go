// Package repro's root benchmarks regenerate every figure of the paper's
// evaluation (one benchmark per table/figure; see DESIGN.md §4 for the
// mapping) plus the ablation studies DESIGN.md calls out. Each figure
// benchmark reports the reproduced curves through -v logging on the first
// iteration, so
//
//	go test -bench=Figure -benchtime=1x -v
//
// both times the harness and prints the regenerated series. Benchmarks use
// experiments.Quick (180 s runs, 2 seeds); cmd/figures runs the paper-scale
// version.
package repro

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

func benchFigure(b *testing.B, gen func(experiments.Options) experiments.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := gen(experiments.Quick())
		if i == 0 {
			b.Log("\n" + tbl.Format())
		}
	}
}

// BenchmarkFigure7 regenerates "PDR vs velocity" for the SS-SPST family.
func BenchmarkFigure7(b *testing.B) { benchFigure(b, experiments.Figure7) }

// BenchmarkFigure8 regenerates "Unavailability ratio vs velocity".
func BenchmarkFigure8(b *testing.B) { benchFigure(b, experiments.Figure8) }

// BenchmarkFigure9 regenerates "Energy per packet vs velocity" (SS family).
func BenchmarkFigure9(b *testing.B) { benchFigure(b, experiments.Figure9) }

// BenchmarkFigure10 regenerates "PDR vs beacon interval".
func BenchmarkFigure10(b *testing.B) { benchFigure(b, experiments.Figure10) }

// BenchmarkFigure11 regenerates "Energy per packet vs beacon interval".
func BenchmarkFigure11(b *testing.B) { benchFigure(b, experiments.Figure11) }

// BenchmarkFigure12 regenerates "PDR vs multicast group size" (all four).
func BenchmarkFigure12(b *testing.B) { benchFigure(b, experiments.Figure12) }

// BenchmarkFigure13 regenerates "Control overhead vs group size".
func BenchmarkFigure13(b *testing.B) { benchFigure(b, experiments.Figure13) }

// BenchmarkFigure14 regenerates "PDR vs velocity" (all four protocols).
func BenchmarkFigure14(b *testing.B) { benchFigure(b, experiments.Figure14) }

// BenchmarkFigure15 regenerates "Average delay vs group size".
func BenchmarkFigure15(b *testing.B) { benchFigure(b, experiments.Figure15) }

// BenchmarkFigure16 regenerates "Energy per packet vs velocity" (all four).
func BenchmarkFigure16(b *testing.B) { benchFigure(b, experiments.Figure16) }

// benchScenario times one complete simulation run of the given config.
// Iterations share one RunContext, mirroring how sweep workers run
// replications: the reported ns/op and allocs/op are the steady-state
// per-replication cost, not the cold-start cost.
func benchScenario(b *testing.B, mutate func(*scenario.Config)) {
	b.ReportAllocs()
	rc := scenario.NewRunContext()
	for i := 0; i < b.N; i++ {
		cfg := scenario.Default()
		cfg.Duration = 120
		cfg.VMax = 5
		cfg.Seed = uint64(i) + 1
		if mutate != nil {
			mutate(&cfg)
		}
		res := rc.Run(cfg)
		if i == 0 {
			b.Logf("%s: %v", cfg.Protocol, res.Summary)
		}
	}
}

// BenchmarkRunSSSPST times one 120 s SS-SPST run (simulator throughput).
func BenchmarkRunSSSPST(b *testing.B) {
	benchScenario(b, func(c *scenario.Config) { c.Protocol = scenario.SSSPST })
}

// BenchmarkRunSSSPSTE times one 120 s SS-SPST-E run.
func BenchmarkRunSSSPSTE(b *testing.B) {
	benchScenario(b, func(c *scenario.Config) { c.Protocol = scenario.SSSPSTE })
}

// BenchmarkRunSSSPSTE200 is the scaling variant: the same run at 200
// nodes, where the medium's per-transmission cost dominates. Compare
// against BenchmarkRunSSSPSTE200Brute to see the spatial index's effect.
func BenchmarkRunSSSPSTE200(b *testing.B) {
	benchScenario(b, func(c *scenario.Config) {
		c.Protocol = scenario.SSSPSTE
		c.N = 200
	})
}

// BenchmarkRunSSSPSTE200Brute runs the identical scenario over the
// retained brute-force medium (GridConfig.Disable) — the ablation
// documenting what the spatial index buys. Results are bit-identical to
// BenchmarkRunSSSPSTE200 (TestGridEquivalence); only the time differs.
func BenchmarkRunSSSPSTE200Brute(b *testing.B) {
	benchScenario(b, func(c *scenario.Config) {
		c.Protocol = scenario.SSSPSTE
		c.N = 200
		c.Medium.Grid.Disable = true
	})
}

// scale500 configures the 500-node scaling scenario. Node density is held
// at the paper's own (50 nodes in a 750 m square ≈ 8.9·10⁻⁵ nodes/m²),
// so the deployment grows to a ~2372 m square and locality — not raw N —
// decides the medium's per-transmission cost: a full-power beacon now
// covers ~3.5% of the nodes instead of all of them. The multicast group
// scales with the network (100 receivers — 20%, the low end of the
// paper's Figure-12 sweep), so the data tree spans the deployment and
// power-controlled forwards carry real weight next to the beacons. This
// is the regime the spatial index exists for, and the shape of every
// N≥500 scenario the ROADMAP asks for.
func scale500(c *scenario.Config) {
	c.Protocol = scenario.SSSPSTE
	c.N = 500
	c.AreaSide = 2372
	c.GroupSize = 100
}

// BenchmarkRunSSSPSTE500 is the large-N scaling benchmark: a 500-node
// SS-SPST-E run at the same node density as the 200-node scenario.
func BenchmarkRunSSSPSTE500(b *testing.B) {
	benchScenario(b, scale500)
}

// BenchmarkRunSSSPSTE500Brute runs the identical 500-node scenario over
// the brute-force medium. Results are bit-identical (TestGridEquivalence
// asserts the invariant); the ratio to BenchmarkRunSSSPSTE500 is the
// spatial index's large-N payoff.
func BenchmarkRunSSSPSTE500Brute(b *testing.B) {
	benchScenario(b, func(c *scenario.Config) {
		scale500(c)
		c.Medium.Grid.Disable = true
	})
}

// BenchmarkRunMAODV times one 120 s MAODV run.
func BenchmarkRunMAODV(b *testing.B) {
	benchScenario(b, func(c *scenario.Config) { c.Protocol = scenario.MAODV })
}

// BenchmarkRunODMRP times one 120 s ODMRP run.
func BenchmarkRunODMRP(b *testing.B) {
	benchScenario(b, func(c *scenario.Config) { c.Protocol = scenario.ODMRP })
}

// --- Ablation benchmarks (DESIGN.md §6) -----------------------------------
//
// Each ablation runs the SS-SPST-E scenario with one design choice flipped
// and logs the resulting headline metrics next to the default, so a single
// -bench=Ablation -benchtime=1x -v pass documents every trade-off.

func ablationRun(b *testing.B, mutate func(*scenario.Config)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := scenario.Default()
		cfg.Protocol = scenario.SSSPSTE
		cfg.Duration = 120
		cfg.VMax = 5
		if mutate != nil {
			mutate(&cfg)
		}
		res := scenario.Run(cfg)
		if i == 0 {
			b.Logf("%v", res.Summary)
		}
	}
}

// BenchmarkAblationBaseline is the reference configuration for every
// ablation below.
func BenchmarkAblationBaseline(b *testing.B) { ablationRun(b, nil) }

// BenchmarkAblationHopCapLoopGuard swaps the path-vector guard for the
// paper's bare hop-cap (Lemma 3): loops then take up to N rounds to
// dissolve, and the delivery ratio drops accordingly.
func BenchmarkAblationHopCapLoopGuard(b *testing.B) {
	ablationRun(b, func(c *scenario.Config) {
		c.SSCore.LoopGuard = core.LoopGuardHopCap
	})
}

// BenchmarkAblationMakeBeforeBreak enables the make-before-break grace
// (forwarding from the previous parent for one beacon interval after a
// switch), an extension beyond the paper that removes most per-switch
// outages.
func BenchmarkAblationMakeBeforeBreak(b *testing.B) {
	ablationRun(b, func(c *scenario.Config) {
		c.SSCore.MakeBeforeBreak = true
	})
}

// BenchmarkAblationNoHopPenalty disables SS-SPST-E's per-hop regularizer,
// letting in-coverage joins be exactly free: trees grow deeper and the
// compounded per-hop loss shows up in PDR.
func BenchmarkAblationNoHopPenalty(b *testing.B) {
	ablationRun(b, func(c *scenario.Config) {
		c.SSCore.HopPenaltyFrac = -1 // negative → disabled
	})
}

// BenchmarkAblationErxOfTx enables transmission-power-dependent reception
// energy — the paper's stated future work (its ref [23]).
func BenchmarkAblationErxOfTx(b *testing.B) {
	ablationRun(b, func(c *scenario.Config) {
		c.Medium.Energy.ErxOfTx = true
	})
}

// BenchmarkAblationRandomDirection swaps random waypoint for the
// random-direction model, checking the curves are not an artifact of RWP's
// centre-biased node density.
func BenchmarkAblationRandomDirection(b *testing.B) {
	ablationRun(b, func(c *scenario.Config) {
		c.Mobility = scenario.RandomDirection
	})
}

// BenchmarkAblationNoBeaconJitter phase-locks all beacons (no timer
// jitter), showing the collision cost of synchronized control traffic.
func BenchmarkAblationNoBeaconJitter(b *testing.B) {
	ablationRun(b, func(c *scenario.Config) {
		c.SSCore.BeaconJitter = -1e-9 // effectively zero, bypasses the default
	})
}

// BenchmarkExtensionMST regenerates the SS-MST extension table (DESIGN.md
// §6): the minimax companion protocol next to SS-SPST and SS-SPST-E.
func BenchmarkExtensionMST(b *testing.B) { benchFigure(b, experiments.ExtensionMST) }

// figurePointConfigs is one full figure point: all 8 protocols × 4 seeds
// at the paper baseline (5 m/s, 20 receivers), the unit of work the
// sweep engine schedules when regenerating a figure. The 8 protocol runs
// at each seed share one recorded mobility trace. The workload
// definition lives in scenario so cmd/benchsnap's FigureSweep entries
// measure exactly this benchmark.
func figurePointConfigs(mob scenario.MobilityKind) []scenario.Config {
	return scenario.FigurePointConfigs(mob, 1, 60)
}

// BenchmarkFigureSweep measures sweep-engine throughput on one figure
// point at workers=1: trace sharing and arena persistence isolated from
// parallelism. The engine persists across iterations, exactly as the
// global scheduler holds its pool across figures.
func BenchmarkFigureSweep(b *testing.B) {
	e := scenario.NewEngine(1)
	defer e.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Sweep(figurePointConfigs(scenario.RandomWaypoint))
	}
	hits, misses := e.TraceStats()
	b.Logf("trace cache: %d hits, %d misses", hits, misses)
}

// BenchmarkFigureSweepGM is the trace-heavy variant: Gauss-Markov legs
// are the expensive ones (one autoregressive step per node per second),
// so this point shows the recording/replay split most clearly.
func BenchmarkFigureSweepGM(b *testing.B) {
	e := scenario.NewEngine(1)
	defer e.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Sweep(figurePointConfigs(scenario.GaussMarkov))
	}
}

// BenchmarkFigureSweepGroups8 is the multi-group variant: the same figure
// point with every run multiplexing 8 Zipf-popular multicast groups over
// each node's radio — the steady-state per-point cost of the figure 21
// workload. Compared against BenchmarkFigureSweep, the ratio is the
// marginal cost of seven extra protocol instances sharing one medium.
func BenchmarkFigureSweepGroups8(b *testing.B) {
	e := scenario.NewEngine(1)
	defer e.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Sweep(scenario.FigurePointConfigsGroups(scenario.RandomWaypoint, 1, 60, 8))
	}
}

// BenchmarkFigureSweepParallel runs the same point on a machine-wide
// engine; the speedup over BenchmarkFigureSweep is the parallel-scaling
// factor (meaningless when GOMAXPROCS=1 — benchsnap warns).
func BenchmarkFigureSweepParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scenario.Sweep(figurePointConfigs(scenario.RandomWaypoint))
	}
}

// BenchmarkSweepParallelism measures the sweep runner's scaling: the same
// 8-point sweep with 1 worker vs GOMAXPROCS workers.
func BenchmarkSweepParallelism(b *testing.B) {
	mk := func() []scenario.Config {
		var cfgs []scenario.Config
		for i := 0; i < 8; i++ {
			cfg := scenario.Default()
			cfg.Duration = 30
			cfg.Seed = uint64(i + 1)
			cfgs = append(cfgs, cfg)
		}
		return cfgs
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scenario.SweepN(mk(), 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scenario.Sweep(mk())
		}
	})
}

// BenchmarkSimulatorEventRate measures raw event throughput of a full
// 50-node SS-SPST-E stack, in simulated seconds per wall second.
func BenchmarkSimulatorEventRate(b *testing.B) {
	benchEventRate(b, nil)
}

// BenchmarkSimulatorEventRate200 is the 200-node scaling variant.
func BenchmarkSimulatorEventRate200(b *testing.B) {
	benchEventRate(b, func(c *scenario.Config) { c.N = 200 })
}

// BenchmarkSimulatorEventRate200Brute is the 200-node variant on the
// brute-force medium, for the grid-vs-scan ablation.
func BenchmarkSimulatorEventRate200Brute(b *testing.B) {
	benchEventRate(b, func(c *scenario.Config) {
		c.N = 200
		c.Medium.Grid.Disable = true
	})
}

// BenchmarkSimulatorEventRate500 is the 500-node scaling variant (same
// constant-density deployment as BenchmarkRunSSSPSTE500).
func BenchmarkSimulatorEventRate500(b *testing.B) {
	benchEventRate(b, scale500)
}

// BenchmarkSimulatorEventRate500Brute is the 500-node variant on the
// brute-force medium, for the grid-vs-scan ablation at scale.
func BenchmarkSimulatorEventRate500Brute(b *testing.B) {
	benchEventRate(b, func(c *scenario.Config) {
		scale500(c)
		c.Medium.Grid.Disable = true
	})
}

func benchEventRate(b *testing.B, mutate func(*scenario.Config)) {
	b.ReportAllocs()
	rc := scenario.NewRunContext()
	var once sync.Once
	for i := 0; i < b.N; i++ {
		cfg := scenario.Default()
		cfg.Duration = 60
		if mutate != nil {
			mutate(&cfg)
		}
		res := rc.Run(cfg)
		once.Do(func() {
			b.Logf("60 simulated seconds: %d transmissions, %d deliveries",
				res.Medium.Transmissions, res.Medium.Deliveries)
		})
	}
}
